// Micro benchmarks (google-benchmark) for the library's hot paths:
// satisfiability checking, rule generation, rule-conformant record
// generation, pollution, C4.5 induction and audit-time prediction.

#include <benchmark/benchmark.h>

#include "audit/auditor.h"
#include "eval/test_environment.h"
#include "mining/split_kernels.h"
#include "stats/descriptive.h"
#include "obs/drift.h"
#include "obs/history.h"
#include "obs/trace.h"
#include "pollution/pipeline.h"
#include "tdg/data_generator.h"
#include "tdg/rule_generator.h"

namespace dq {
namespace {

const Schema& BaseSchema() {
  static const Schema schema = MakeBaseSchema();
  return schema;
}

std::vector<Rule> BaseRules(int n) {
  RuleGenConfig cfg;
  cfg.num_rules = n;
  cfg.seed = 11;
  RuleGenerator gen(&BaseSchema(), cfg);
  auto rules = gen.Generate();
  return rules.ok() ? *rules : std::vector<Rule>{};
}

void BM_SatisfiabilityCheck(benchmark::State& state) {
  const Schema& schema = BaseSchema();
  SatChecker sat(&schema);
  std::vector<Rule> rules = BaseRules(30);
  size_t i = 0;
  for (auto _ : state) {
    const Rule& r = rules[i++ % rules.size()];
    auto result = sat.Satisfiable(Formula::And({r.premise, r.consequent}));
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SatisfiabilityCheck);

void BM_ImplicationCheck(benchmark::State& state) {
  const Schema& schema = BaseSchema();
  SatChecker sat(&schema);
  std::vector<Rule> rules = BaseRules(30);
  size_t i = 0;
  for (auto _ : state) {
    const Rule& a = rules[i % rules.size()];
    const Rule& b = rules[(i + 1) % rules.size()];
    ++i;
    auto result = sat.Implies(a.premise, b.premise);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ImplicationCheck);

void BM_RuleGeneration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  uint64_t seed = 0;
  for (auto _ : state) {
    RuleGenConfig cfg;
    cfg.num_rules = n;
    cfg.seed = ++seed;
    RuleGenerator gen(&BaseSchema(), cfg);
    auto rules = gen.Generate();
    benchmark::DoNotOptimize(rules);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RuleGeneration)->Arg(10)->Arg(25);

void BM_DataGeneration(benchmark::State& state) {
  const size_t records = static_cast<size_t>(state.range(0));
  const Schema& schema = BaseSchema();
  std::vector<Rule> rules = BaseRules(25);
  std::vector<DistributionSpec> specs(schema.num_attributes(),
                                      DistributionSpec::Uniform());
  DataGenerator gen(&schema, specs, nullptr, rules);
  DataGenConfig cfg;
  cfg.num_records = records;
  uint64_t seed = 0;
  for (auto _ : state) {
    cfg.seed = ++seed;
    auto data = gen.Generate(cfg);
    benchmark::DoNotOptimize(data);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(records));
}
BENCHMARK(BM_DataGeneration)->Arg(1000)->Arg(5000);

void BM_Pollution(benchmark::State& state) {
  const Schema& schema = BaseSchema();
  std::vector<DistributionSpec> specs(schema.num_attributes(),
                                      DistributionSpec::Uniform());
  DataGenerator gen(&schema, specs, nullptr, {});
  DataGenConfig cfg;
  cfg.num_records = 10000;
  auto data = gen.Generate(cfg);
  if (!data.ok()) {
    state.SkipWithError("generation failed");
    return;
  }
  uint64_t seed = 0;
  for (auto _ : state) {
    PollutionPipeline pipeline(DefaultPolluterMix(), ++seed);
    auto result = pipeline.Apply(data->table);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_Pollution);

void BM_C45Induction(benchmark::State& state) {
  const size_t records = static_cast<size_t>(state.range(0));
  const Schema& schema = BaseSchema();
  std::vector<Rule> rules = BaseRules(25);
  std::vector<DistributionSpec> specs(schema.num_attributes(),
                                      DistributionSpec::Uniform());
  DataGenerator gen(&schema, specs, nullptr, rules);
  DataGenConfig cfg;
  cfg.num_records = records;
  auto data = gen.Generate(cfg);
  if (!data.ok()) {
    state.SkipWithError("generation failed");
    return;
  }
  auto encoder = ClassEncoder::Fit(data->table, 0, 8);
  if (!encoder.ok()) {
    state.SkipWithError("encoder failed");
    return;
  }
  TrainingData td;
  td.table = &data->table;
  td.class_attr = 0;
  td.base_attrs = {1, 2, 3, 4, 5, 6, 7};
  td.encoder = &*encoder;
  // range(1): 0 = histogram evaluator (default), 1 = exact row sweep.
  for (auto _ : state) {
    C45Config tree_cfg;
    tree_cfg.min_error_confidence = 0.8;
    tree_cfg.split_mode =
        state.range(1) == 0 ? SplitMode::kHistogram : SplitMode::kExact;
    C45Tree tree(tree_cfg);
    auto status = tree.Train(td);
    benchmark::DoNotOptimize(status);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(records));
}
BENCHMARK(BM_C45Induction)
    ->Args({2000, 0})
    ->Args({2000, 1})
    ->Args({10000, 0})
    ->Args({10000, 1});

// Entropy over small-integer class counts: the log2 cache in XLog2X turns
// every std::log2 call on the C4.5 hot path into a table load. range(0) is
// the number of count vectors per iteration.
void BM_EntropyFromCounts(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::vector<double>> counts(n);
  uint64_t x = 42;
  for (size_t i = 0; i < n; ++i) {
    counts[i].resize(4);
    for (double& c : counts[i]) {
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
      c = static_cast<double>((x >> 33) % 1000);
    }
  }
  for (auto _ : state) {
    double sum = 0.0;
    for (const std::vector<double>& c : counts) sum += EntropyFromCounts(c);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_EntropyFromCounts)->Arg(1024);

// Bin/class count accumulation kernel feeding the histogram evaluator:
// scalar reference vs the dispatched SIMD variant.
void BM_CountBinClass(benchmark::State& state) {
  const size_t n = 1 << 16;
  const size_t nc = 8;
  std::vector<uint8_t> bins(n);
  std::vector<int32_t> cls(n);
  uint64_t x = 7;
  for (size_t i = 0; i < n; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    bins[i] = static_cast<uint8_t>((x >> 33) % 255);
    cls[i] = static_cast<int32_t>((x >> 17) % nc);
  }
  std::vector<uint32_t> out(255 * nc);
  const bool scalar = state.range(0) == 1;
  for (auto _ : state) {
    std::fill(out.begin(), out.end(), 0u);
    if (scalar) {
      kernels::CountBinClassScalar(bins.data(), cls.data(), n, nc, out.data());
    } else {
      kernels::CountBinClass(bins.data(), cls.data(), n, nc, out.data());
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_CountBinClass)->Arg(0)->Arg(1);

void BM_AuditPrediction(benchmark::State& state) {
  const Schema& schema = BaseSchema();
  std::vector<Rule> rules = BaseRules(25);
  std::vector<DistributionSpec> specs(schema.num_attributes(),
                                      DistributionSpec::Uniform());
  DataGenerator gen(&schema, specs, nullptr, rules);
  DataGenConfig cfg;
  cfg.num_records = 5000;
  auto data = gen.Generate(cfg);
  if (!data.ok()) {
    state.SkipWithError("generation failed");
    return;
  }
  Auditor auditor;
  auto model = auditor.Induce(data->table);
  if (!model.ok()) {
    state.SkipWithError("induction failed");
    return;
  }
  size_t row = 0;
  for (auto _ : state) {
    for (const AttributeModel& am : model->models()) {
      benchmark::DoNotOptimize(
          am.classifier->Predict(data->table.row(row % 5000)));
    }
    ++row;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(model->num_models()));
}
BENCHMARK(BM_AuditPrediction);

// Raw cost of one Span with recording off (Arg(0)) vs on (Arg(1)). Off is
// two clock reads — the ScopedTimer it replaced; on adds the per-thread
// buffer append.
void BM_SpanOverhead(benchmark::State& state) {
  obs::Tracer::Global().SetEnabled(state.range(0) != 0);
  double sink = 0.0;
  for (auto _ : state) {
    obs::Span span("bench.span", -1, &sink);
    benchmark::DoNotOptimize(sink);
  }
  obs::Tracer::Global().SetEnabled(false);
  obs::Tracer::Global().Reset();
}
BENCHMARK(BM_SpanOverhead)->Arg(0)->Arg(1);

// Whole induce+audit pipeline with the tracer off (Arg(0), the default
// production path) vs on (Arg(1)). CI's overhead guard compares the off
// timing against the pre-instrumentation baseline: the disabled tracer
// must stay within noise (<2%).
void BM_AuditTracer(benchmark::State& state) {
  const Schema& schema = BaseSchema();
  std::vector<Rule> rules = BaseRules(25);
  std::vector<DistributionSpec> specs(schema.num_attributes(),
                                      DistributionSpec::Uniform());
  DataGenerator gen(&schema, specs, nullptr, rules);
  DataGenConfig cfg;
  cfg.num_records = 5000;
  auto data = gen.Generate(cfg);
  if (!data.ok()) {
    state.SkipWithError("generation failed");
    return;
  }
  obs::Tracer::Global().SetEnabled(state.range(0) != 0);
  Auditor auditor;
  for (auto _ : state) {
    auto model = auditor.Induce(data->table);
    if (!model.ok()) {
      state.SkipWithError("induction failed");
      break;
    }
    auto report = auditor.Audit(*model, data->table);
    benchmark::DoNotOptimize(report);
    // Drop recorded spans between iterations so an enabled run's buffers
    // stay bounded.
    obs::Tracer::Global().Reset();
  }
  obs::Tracer::Global().SetEnabled(false);
  obs::Tracer::Global().Reset();
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_AuditTracer)->Arg(0)->Arg(1);

// One history-record serialize + parse round trip — the per-run cost a
// dqaudit --history append adds, and the per-line cost dqmon pays reading
// the ledger back.
void BM_HistoryRecordRoundTrip(benchmark::State& state) {
  obs::HistoryRecord record;
  record.manifest.tool = "dqaudit";
  record.manifest.version = "1.0.0";
  record.manifest.build_type = "Release";
  record.manifest.config_hash = "9de6aa1e283a7ce0";
  record.manifest.started_unix_ms = 1754600000000;
  record.manifest.started_utc = "2025-08-07T20:53:20.000Z";
  record.manifest.input_hashes = {{"schema", "1111111111111111"},
                                  {"data", "2222222222222222"}};
  record.summary.records = 1000000;
  record.summary.suspicious = 6000;
  record.summary.suspicion_rate = 0.006;
  for (int i = 0; i < 25; ++i) {
    record.summary.rule_violations.emplace_back(
        "rule " + std::to_string(i) + " -> conclusion", i * 3);
  }
  record.summary.top_confidences.assign(10, 0.97);
  record.summary.timings_ms = {{"ingest", 120.0}, {"induce", 800.0},
                               {"audit", 300.0}};
  for (int i = 0; i < 20; ++i) {
    record.metrics.counters.emplace_back("counter." + std::to_string(i),
                                         1ull << i);
  }
  for (auto _ : state) {
    const std::string line = record.ToJsonLine();
    obs::JsonValue json;
    bool parsed = obs::ParseJson(line, &json);
    benchmark::DoNotOptimize(parsed);
    auto back = obs::HistoryRecord::FromJson(json);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_HistoryRecordRoundTrip);

// Drift detection over a rolling baseline window — the dqmon check hot
// path (no I/O; pure comparison and ranking).
void BM_DriftCompare(benchmark::State& state) {
  auto make_record = [](uint64_t suspicious) {
    obs::HistoryRecord r;
    r.manifest.config_hash = "9de6aa1e283a7ce0";
    r.manifest.input_hashes = {{"schema", "1111111111111111"},
                               {"data", "2222222222222222"}};
    r.summary.records = 1000000;
    r.summary.suspicious = suspicious;
    r.summary.suspicion_rate = static_cast<double>(suspicious) / 1e6;
    for (int i = 0; i < 25; ++i) {
      r.summary.rule_violations.emplace_back(
          "rule " + std::to_string(i) + " -> conclusion",
          suspicious / 100 + static_cast<uint64_t>(i));
    }
    r.summary.timings_ms = {{"ingest", 120.0}, {"induce", 800.0},
                            {"audit", 300.0}};
    return r;
  };
  std::vector<obs::HistoryRecord> baseline;
  for (uint64_t i = 0; i < 5; ++i) baseline.push_back(make_record(6000 + i));
  const obs::HistoryRecord current = make_record(9000);
  for (auto _ : state) {
    obs::DriftReport report = obs::DetectDrift(baseline, current);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_DriftCompare);

}  // namespace
}  // namespace dq
