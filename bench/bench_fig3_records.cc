// Figure 3 reproduction: "Influence of number of records on sensitivity".
//
// Base parameter configuration of sec. 6.1 (base schema, multivariate +
// univariate start distributions, 100 random natural rules, standard
// polluter mix, minimal error confidence 80%), sweeping the number of
// records. The paper reports sensitivity rising with the number of records
// towards ~0.3, with a jump once leaves clear the minimal-error-confidence
// limit (minInst) — reproduced here as the low-record plateau near zero.

#include "bench_util.h"

using namespace dq;
using namespace dq::bench;

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  std::vector<size_t> record_counts =
      quick ? std::vector<size_t>{1000, 4000}
            : std::vector<size_t>{1000, 2000, 3000, 4000, 5000, 6000,
                                  7000, 8000, 10000};
  const int seeds = quick ? 1 : 2;

  std::printf("# Figure 3: influence of number of records on sensitivity\n");
  std::printf("%10s %12s %12s %10s %10s %10s\n", "records", "sensitivity",
              "specificity", "flagged", "corrupted", "ms");
  BenchJson json("fig3_records", argc, argv);
  json.Add("seeds_per_point", seeds);
  int failed_seeds = 0;
  for (size_t records : record_counts) {
    TestEnvironmentConfig cfg;
    cfg.num_records = records;
    cfg.num_rules = 100;
    cfg.pollution_factor = 1.0;
    cfg.auditor.min_error_confidence = 0.8;
    SweepPoint p = RunAveraged(cfg, seeds);
    failed_seeds += p.failed_seeds;
    std::printf("%10zu %12.4f %12.4f %10.1f %10.1f %10.0f\n", records,
                p.sensitivity, p.specificity, p.flagged, p.corrupted,
                p.total_ms);
    const std::string prefix = "records_" + std::to_string(records);
    json.Add(prefix + "_sensitivity", p.sensitivity);
    json.Add(prefix + "_specificity", p.specificity);
    json.Add(prefix + "_total_ms", p.total_ms);
  }
  json.SetFailedSeeds(failed_seeds);
  json.WriteFile();
  std::printf(
      "# paper shape: rising towards ~0.3; jump once the training set\n"
      "# supports rules above the minimal error confidence limit\n");
  return 0;
}
