// Ablation of the sec. 5.4 adjustments: the paper replaces C4.5's
// pessimistic pruning with the integrated expected-error-confidence
// strategy (Def. 9) plus minInst pre-pruning. This bench compares:
//   * no pruning,
//   * classic pessimistic pruning (unadjusted C4.5),
//   * the paper's expected-error-confidence pruning,
// and additionally expected-error-confidence *without* the minInst
// pre-pruning (min_error_confidence = 0 inside the tree), measuring
// detection quality and model size.

#include "bench_util.h"
#include "mining/c45.h"

using namespace dq;
using namespace dq::bench;

namespace {

struct Variant {
  const char* label;
  PruningMode mode;
  bool min_inst;
};

}  // namespace

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  const Variant variants[] = {
      {"no pruning", PruningMode::kNone, true},
      {"pessimistic (C4.5)", PruningMode::kPessimistic, true},
      {"expErrorConf (paper)", PruningMode::kExpectedErrorConfidence, true},
      {"expErrorConf, no minInst", PruningMode::kExpectedErrorConfidence,
       false},
  };
  std::printf("# Pruning-strategy ablation (sec. 5.4 adjustments)\n");
  std::printf("%-26s %12s %12s %10s %10s\n", "variant", "sensitivity",
              "specificity", "flagged", "ms");
  for (const Variant& v : variants) {
    TestEnvironmentConfig cfg;
    cfg.num_records = quick ? 2000 : 8000;
    cfg.num_rules = quick ? 40 : 100;
    cfg.auditor.min_error_confidence = 0.8;
    cfg.auditor.c45.pruning = v.mode;
    // The auditor copies its min_error_confidence into the tree config;
    // disabling minInst is modelled by dropping the tree-internal
    // threshold while keeping the audit-level flag threshold.
    if (!v.min_inst) {
      cfg.auditor.c45.min_split_weight = 2.0;
      // Run with min-conf-driven pre-pruning off: use a dedicated auditor
      // configuration where the tree sees min_error_confidence 0. The
      // Auditor forwards its own value, so emulate by setting the audit
      // threshold via post-filtering: keep audit threshold at 0.8 but
      // induce with a zero tree threshold.
    }
    TestEnvironment env(cfg);
    if (!v.min_inst) {
      // Manual pipeline for the no-minInst variant.
      auto base = TestEnvironment(cfg).Run();  // reuse generation
      if (!base.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", v.label,
                     base.status().ToString().c_str());
        continue;
      }
      AuditorConfig acfg = cfg.auditor;
      C45Config c45 = acfg.c45;
      c45.pruning = v.mode;
      c45.min_error_confidence = 0.0;
      c45.confidence_level = acfg.confidence_level;
      // Induce trees with the modified config via a custom auditor run.
      // AuditorConfig copies min_error_confidence into the tree, so set
      // the auditor threshold to 0 for induction and re-apply the 0.8
      // threshold when counting flags.
      AuditorConfig induce_cfg = acfg;
      induce_cfg.min_error_confidence = 0.0;
      induce_cfg.c45 = c45;
      Auditor inducer(induce_cfg);
      auto model = inducer.Induce(base->pollution.dirty);
      if (!model.ok()) continue;
      AuditorConfig audit_cfg = acfg;  // threshold 0.8
      Auditor checker(audit_cfg);
      auto report = checker.Audit(*model, base->pollution.dirty);
      if (!report.ok()) continue;
      DetectionMatrix m = EvaluateDetection(base->pollution, *report);
      std::printf("%-26s %12.4f %12.4f %10zu %10s\n", v.label,
                  m.Sensitivity(), m.Specificity(), report->NumFlagged(),
                  "-");
      continue;
    }
    SweepPoint p = RunAveraged(cfg, 1);
    std::printf("%-26s %12.4f %12.4f %10.1f %10.0f\n", v.label, p.sensitivity,
                p.specificity, p.flagged, p.total_ms);
  }
  std::printf(
      "# expected: the paper's integrated strategy matches or beats the\n"
      "# unadjusted C4.5 pruning on the sensitivity/specificity trade-off\n");
  return 0;
}
