// Shared helpers for the figure/table reproduction binaries.

#ifndef DQ_BENCH_BENCH_UTIL_H_
#define DQ_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <string>

#include "eval/test_environment.h"
#include "obs/bench_report.h"
#include "obs/log.h"

namespace dq::bench {

/// Aggregated outcome of one sweep point, averaged over seeds.
struct SweepPoint {
  double sensitivity = 0.0;
  double specificity = 0.0;
  double correction_improvement = 0.0;
  double flagged = 0.0;
  double corrupted = 0.0;
  double total_ms = 0.0;
  int failed_seeds = 0;  ///< runs that errored and were excluded
};

/// Runs the test environment for `seeds` seeds and averages the measures.
/// Failed seeds are excluded from the averages and counted in the result
/// (report them via BenchJson::SetFailedSeeds so they land in the JSON).
inline SweepPoint RunAveraged(TestEnvironmentConfig cfg, int seeds) {
  SweepPoint p;
  int ok_runs = 0;
  for (int s = 0; s < seeds; ++s) {
    cfg.seed = 1000 + static_cast<uint64_t>(s) * 77;
    auto result = TestEnvironment(cfg).Run();
    if (!result.ok()) {
      DQ_LOG_WARN("bench", "run failed (seed %d): %s", s,
                  result.status().ToString().c_str());
      ++p.failed_seeds;
      continue;
    }
    ++ok_runs;
    p.sensitivity += result->sensitivity;
    p.specificity += result->specificity;
    p.correction_improvement += result->correction_improvement;
    p.flagged += static_cast<double>(result->flagged);
    p.corrupted += static_cast<double>(result->corrupted);
    p.total_ms += result->generate_ms + result->pollute_ms +
                  result->induce_ms + result->audit_ms;
  }
  if (ok_runs == 0) {
    DQ_LOG_ERROR("bench", "all runs failed");
    std::exit(1);
  }
  p.sensitivity /= ok_runs;
  p.specificity /= ok_runs;
  p.correction_improvement /= ok_runs;
  p.flagged /= ok_runs;
  p.corrupted /= ok_runs;
  p.total_ms /= ok_runs;
  return p;
}

/// "--quick" on the command line shrinks a sweep for smoke runs.
inline bool QuickMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") return true;
  }
  return false;
}

/// "--threads N" on the command line (default 0 = hardware concurrency).
inline int ThreadsArg(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == "--threads") {
      return std::atoi(argv[i + 1]);
    }
  }
  return 0;
}

/// "--split-mode histogram|exact" on the command line (default
/// "histogram", matching C45Config::split_mode). Anything else is treated
/// as "histogram".
inline std::string SplitModeArg(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == "--split-mode") return argv[i + 1];
  }
  return "histogram";
}

/// "--trace-out FILE" on the command line (empty = no trace export). When
/// set, the bench enables the tracer and writes the stitched span tree as
/// Chrome trace-event JSON; left unset, tracing stays disabled so the
/// timings match the uninstrumented path.
inline std::string TraceOutArg(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == "--trace-out") return argv[i + 1];
  }
  return "";
}

/// The BENCH_<name>.json emitter every bench binary shares. This is the
/// schema-versioned obs::BenchReport; construct it with (name, argc, argv)
/// so the emitted JSON carries the run manifest.
using BenchJson = ::dq::obs::BenchReport;

}  // namespace dq::bench

#endif  // DQ_BENCH_BENCH_UTIL_H_
