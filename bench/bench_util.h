// Shared helpers for the figure/table reproduction binaries.

#ifndef DQ_BENCH_BENCH_UTIL_H_
#define DQ_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "eval/test_environment.h"

namespace dq::bench {

/// Aggregated outcome of one sweep point, averaged over seeds.
struct SweepPoint {
  double sensitivity = 0.0;
  double specificity = 0.0;
  double correction_improvement = 0.0;
  double flagged = 0.0;
  double corrupted = 0.0;
  double total_ms = 0.0;
};

/// Runs the test environment for `seeds` seeds and averages the measures.
inline SweepPoint RunAveraged(TestEnvironmentConfig cfg, int seeds) {
  SweepPoint p;
  int ok_runs = 0;
  for (int s = 0; s < seeds; ++s) {
    cfg.seed = 1000 + static_cast<uint64_t>(s) * 77;
    auto result = TestEnvironment(cfg).Run();
    if (!result.ok()) {
      std::fprintf(stderr, "run failed (seed %d): %s\n", s,
                   result.status().ToString().c_str());
      continue;
    }
    ++ok_runs;
    p.sensitivity += result->sensitivity;
    p.specificity += result->specificity;
    p.correction_improvement += result->correction_improvement;
    p.flagged += static_cast<double>(result->flagged);
    p.corrupted += static_cast<double>(result->corrupted);
    p.total_ms += result->generate_ms + result->pollute_ms +
                  result->induce_ms + result->audit_ms;
  }
  if (ok_runs == 0) {
    std::fprintf(stderr, "all runs failed\n");
    std::exit(1);
  }
  p.sensitivity /= ok_runs;
  p.specificity /= ok_runs;
  p.correction_improvement /= ok_runs;
  p.flagged /= ok_runs;
  p.corrupted /= ok_runs;
  p.total_ms /= ok_runs;
  return p;
}

/// "--quick" on the command line shrinks a sweep for smoke runs.
inline bool QuickMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") return true;
  }
  return false;
}

}  // namespace dq::bench

#endif  // DQ_BENCH_BENCH_UTIL_H_
