// Shared helpers for the figure/table reproduction binaries.

#ifndef DQ_BENCH_BENCH_UTIL_H_
#define DQ_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "eval/test_environment.h"

namespace dq::bench {

/// Aggregated outcome of one sweep point, averaged over seeds.
struct SweepPoint {
  double sensitivity = 0.0;
  double specificity = 0.0;
  double correction_improvement = 0.0;
  double flagged = 0.0;
  double corrupted = 0.0;
  double total_ms = 0.0;
};

/// Runs the test environment for `seeds` seeds and averages the measures.
inline SweepPoint RunAveraged(TestEnvironmentConfig cfg, int seeds) {
  SweepPoint p;
  int ok_runs = 0;
  for (int s = 0; s < seeds; ++s) {
    cfg.seed = 1000 + static_cast<uint64_t>(s) * 77;
    auto result = TestEnvironment(cfg).Run();
    if (!result.ok()) {
      std::fprintf(stderr, "run failed (seed %d): %s\n", s,
                   result.status().ToString().c_str());
      continue;
    }
    ++ok_runs;
    p.sensitivity += result->sensitivity;
    p.specificity += result->specificity;
    p.correction_improvement += result->correction_improvement;
    p.flagged += static_cast<double>(result->flagged);
    p.corrupted += static_cast<double>(result->corrupted);
    p.total_ms += result->generate_ms + result->pollute_ms +
                  result->induce_ms + result->audit_ms;
  }
  if (ok_runs == 0) {
    std::fprintf(stderr, "all runs failed\n");
    std::exit(1);
  }
  p.sensitivity /= ok_runs;
  p.specificity /= ok_runs;
  p.correction_improvement /= ok_runs;
  p.flagged /= ok_runs;
  p.corrupted /= ok_runs;
  p.total_ms /= ok_runs;
  return p;
}

/// "--quick" on the command line shrinks a sweep for smoke runs.
inline bool QuickMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") return true;
  }
  return false;
}

/// "--threads N" on the command line (default 0 = hardware concurrency).
inline int ThreadsArg(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == "--threads") {
      return std::atoi(argv[i + 1]);
    }
  }
  return 0;
}

/// Accumulates flat key/value pairs and writes them as
/// `BENCH_<name>.json` next to the binary, so sweeps can be diffed and
/// plotted without scraping stdout.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {
    Add("bench", name_);
  }

  void Add(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + Escaped(value) + "\"");
  }
  void Add(const std::string& key, const char* value) {
    Add(key, std::string(value));
  }
  void Add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.emplace_back(key, buf);
  }
  void Add(const std::string& key, int value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void Add(const std::string& key, size_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }

  /// Writes `BENCH_<name>.json` into the working directory.
  bool WriteFile() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fputs("{\n", f);
    for (size_t i = 0; i < fields_.size(); ++i) {
      std::fprintf(f, "  \"%s\": %s%s\n", fields_[i].first.c_str(),
                   fields_[i].second.c_str(),
                   i + 1 < fields_.size() ? "," : "");
    }
    std::fputs("}\n", f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  static std::string Escaped(const std::string& in) {
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out.push_back(c);
    }
    return out;
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace dq::bench

#endif  // DQ_BENCH_BENCH_UTIL_H_
