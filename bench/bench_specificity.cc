// Sec. 6.1 claim: "For the following we fix a minimal error confidence of
// 80%. This leads to high values for specificity of about 99% in all
// parameter settings described." This bench sweeps all three figure axes
// and reports the specificity column.

#include "bench_util.h"

using namespace dq;
using namespace dq::bench;

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  const int seeds = 1;

  std::printf("# Specificity at minimal error confidence 0.8 across all "
              "parameter settings\n");
  std::printf("%-28s %12s %12s\n", "setting", "specificity", "sensitivity");

  auto report = [&](const char* label, TestEnvironmentConfig cfg) {
    cfg.auditor.min_error_confidence = 0.8;
    SweepPoint p = RunAveraged(cfg, seeds);
    std::printf("%-28s %12.4f %12.4f\n", label, p.specificity, p.sensitivity);
  };

  {
    TestEnvironmentConfig cfg;
    cfg.num_records = quick ? 2000 : 10000;
    cfg.num_rules = 100;
    report("base configuration", cfg);
  }
  for (size_t records : {size_t{2000}, size_t{6000}}) {
    TestEnvironmentConfig cfg;
    cfg.num_records = records;
    cfg.num_rules = 100;
    char label[64];
    std::snprintf(label, sizeof(label), "records = %zu", records);
    report(label, cfg);
  }
  for (int rules : {25, 200}) {
    if (quick && rules == 200) continue;
    TestEnvironmentConfig cfg;
    cfg.num_records = quick ? 2000 : 10000;
    cfg.num_rules = rules;
    char label[64];
    std::snprintf(label, sizeof(label), "rules = %d", rules);
    report(label, cfg);
  }
  for (double factor : {0.5, 2.0, 4.0}) {
    if (quick && factor > 1.0) continue;
    TestEnvironmentConfig cfg;
    cfg.num_records = quick ? 2000 : 10000;
    cfg.num_rules = 100;
    cfg.pollution_factor = factor;
    char label[64];
    std::snprintf(label, sizeof(label), "pollution factor = %.1f", factor);
    report(label, cfg);
  }
  std::printf("# paper: specificity ~0.99 in every setting\n");
  return 0;
}
