// Sec. 4.3 reproduction: prints the full 2x2 detection matrix (tool's
// opinion vs corruption ground truth) and the 2x2 correction matrix
// (record correctness before vs after following the proposals) for one
// base-configuration run.

#include "bench_util.h"

using namespace dq;
using namespace dq::bench;

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  TestEnvironmentConfig cfg;
  cfg.num_records = quick ? 2000 : 10000;
  cfg.num_rules = quick ? 40 : 100;
  cfg.seed = 2003;
  cfg.auditor.min_error_confidence = 0.8;
  auto result = TestEnvironment(cfg).Run();
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("# Detection matrix (sec. 4.3), base configuration, %zu "
              "records, %d rules\n",
              cfg.num_records, cfg.num_rules);
  std::printf("%s\n\n", result->detection.ToString().c_str());
  std::printf("# Correction matrix (sec. 4.3)\n");
  std::printf("%s\n", result->correction.ToString().c_str());
  std::printf("\n# timings: generate %.0f ms, pollute %.0f ms, induce %.0f "
              "ms, audit %.0f ms\n",
              result->generate_ms, result->pollute_ms, result->induce_ms,
              result->audit_ms);
  return 0;
}
