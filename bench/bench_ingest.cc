// CSV ingest throughput: serial vs parallel streaming parse of the QUIS
// surrogate, clean and with injected malformed records (the quarantine
// path), plus the dqcol binary columnar load of the same table. The audit
// workflow starts by pointing the tool at a real operational extract, so
// ingest is a first-class phase next to induce and audit; this emitter
// makes its cost and recovery behaviour diffable.

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>

#include "bench_util.h"
#include "obs/metrics.h"
#include "quis/quis_sample.h"
#include "table/columnar.h"
#include "table/csv.h"
#include "table/csv_scan.h"

using namespace dq;

namespace {

/// Corrupts every `stride`-th data line, cycling through the error kinds.
std::string InjectDirt(const std::string& csv, size_t stride,
                       size_t* injected) {
  std::string out;
  out.reserve(csv.size() + csv.size() / 16);
  size_t line = 0;
  size_t start = 0;
  *injected = 0;
  while (start < csv.size()) {
    size_t end = csv.find('\n', start);
    if (end == std::string::npos) end = csv.size();
    std::string record = csv.substr(start, end - start);
    // Line 0 is the header; corrupt every stride-th data line.
    if (line > 0 && line % stride == 0) {
      switch ((*injected)++ % 3) {
        case 0:  // arity mismatch: drop the last field
          record = record.substr(0, record.rfind(','));
          break;
        case 1:  // stray quote mid-field (offset 1 is inside the first
                 // field, so the quote can never open a quoted field)
          record.insert(1, 1, '"');
          break;
        case 2:  // bad value: out-of-domain category
          record = "ZZZ" + record.substr(record.find(','));
          break;
      }
    }
    out += record;
    out += '\n';
    ++line;
    start = end + 1;
  }
  return out;
}

double ParseMs(const Schema& schema, const std::string& csv,
               const CsvOptions& options, IngestReport* report,
               size_t* rows) {
  std::istringstream is(csv);
  auto table = ReadCsv(schema, &is, options, report);
  if (!table.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 table.status().ToString().c_str());
    std::exit(1);
  }
  *rows = table->num_rows();
  return report->parse_ms;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = dq::bench::QuickMode(argc, argv);
  const int threads = dq::bench::ThreadsArg(argc, argv);
  QuisConfig qcfg;
  qcfg.num_records = quick ? 20000 : 200000;
  qcfg.seed = 2003;
  auto sample = GenerateQuisSample(qcfg);
  if (!sample.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 sample.status().ToString().c_str());
    return 1;
  }
  const Schema& schema = sample->table.schema();

  std::ostringstream os;
  if (!WriteCsv(sample->table, &os).ok()) {
    std::fprintf(stderr, "write failed\n");
    return 1;
  }
  const std::string clean = os.str();
  const double mb = static_cast<double>(clean.size()) / (1024.0 * 1024.0);

  CsvOptions serial_opts;
  serial_opts.num_threads = 1;
  CsvOptions parallel_opts;
  parallel_opts.num_threads = threads;

  IngestReport serial_report;
  IngestReport parallel_report;
  size_t serial_rows = 0;
  size_t parallel_rows = 0;
  const double serial_ms =
      ParseMs(schema, clean, serial_opts, &serial_report, &serial_rows);
  const double parallel_ms =
      ParseMs(schema, clean, parallel_opts, &parallel_report, &parallel_rows);
  if (serial_rows != parallel_rows) {
    std::fprintf(stderr, "serial/parallel row count mismatch: %zu vs %zu\n",
                 serial_rows, parallel_rows);
    return 1;
  }

  // dqcol axis: snapshot the parsed table once, then measure the binary
  // columnar load of the identical rows. The loaded table must match the
  // CSV decode cell for cell — the speedup is only meaningful if the two
  // paths deliver the same bytes.
  const std::string dqcol_path =
      (std::filesystem::temp_directory_path() / "bench_ingest_quis.dqcol")
          .string();
  double dqcol_ms = 0.0;
  double dqcol_mb = 0.0;
  {
    std::istringstream is(clean);
    auto parsed = ReadCsv(schema, &is, serial_opts);
    if (!parsed.ok() || !WriteDqcolFile(*parsed, dqcol_path).ok()) {
      std::fprintf(stderr, "dqcol snapshot failed\n");
      return 1;
    }
    dqcol_mb = static_cast<double>(std::filesystem::file_size(dqcol_path)) /
               (1024.0 * 1024.0);
    IngestReport dqcol_report;
    auto loaded = ReadDqcolFile(schema, dqcol_path, &dqcol_report);
    if (!loaded.ok()) {
      std::fprintf(stderr, "dqcol load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    dqcol_ms = dqcol_report.parse_ms;
    if (loaded->num_rows() != parsed->num_rows()) {
      std::fprintf(stderr, "dqcol row count mismatch\n");
      return 1;
    }
    for (size_t r = 0; r < parsed->num_rows(); ++r) {
      for (size_t a = 0; a < schema.num_attributes(); ++a) {
        if (!loaded->cell(r, a).StrictEquals(parsed->cell(r, a))) {
          std::fprintf(stderr, "dqcol cell mismatch at row %zu attr %zu\n",
                       r, a);
          return 1;
        }
      }
    }
    std::filesystem::remove(dqcol_path);
  }

  size_t injected = 0;
  const std::string dirty = InjectDirt(clean, 100, &injected);
  CsvOptions lenient_opts;
  lenient_opts.num_threads = threads;
  lenient_opts.on_error = CsvErrorPolicy::kSkipAndReport;
  IngestReport dirty_report;
  size_t dirty_rows = 0;
  const double dirty_ms =
      ParseMs(schema, dirty, lenient_opts, &dirty_report, &dirty_rows);
  if (dirty_report.records_quarantined != injected) {
    std::fprintf(stderr, "expected %zu quarantined records, got %zu\n",
                 injected, dirty_report.records_quarantined);
    return 1;
  }

  std::printf("# CSV ingest throughput (QUIS surrogate)\n");
  std::printf("records:        %zu  (%.1f MB of CSV, scan kernel %s)\n",
              serial_rows, mb, csvscan::SimdLevel());
  std::printf("serial parse:   %8.1f ms  (%.1f MB/s)\n", serial_ms,
              mb / (serial_ms / 1000.0));
  std::printf("parallel parse: %8.1f ms  (%.1f MB/s, threads=%d)\n",
              parallel_ms, mb / (parallel_ms / 1000.0),
              parallel_report.threads_used);
  std::printf("dqcol load:     %8.1f ms  (%.1f MB file, %.1fx vs serial "
              "CSV)\n",
              dqcol_ms, dqcol_mb,
              dqcol_ms > 0.0 ? serial_ms / dqcol_ms : 0.0);
  std::printf("dirty parse:    %8.1f ms  (%zu of %zu records quarantined)\n",
              dirty_ms, dirty_report.records_quarantined,
              dirty_report.records_total);
  std::printf("quarantine:     %s\n", dirty_report.Summary().c_str());

  dq::bench::BenchJson json("ingest", argc, argv);
  json.manifest()->seed = qcfg.seed;
  json.manifest()->threads_requested = threads;
  json.manifest()->threads_used = parallel_report.threads_used;
  json.IncludeMetrics();
  obs::SyncPoolMetrics();
  json.Add("records", serial_rows);
  json.Add("csv_mb", mb);
  json.Add("table_bytes",
           static_cast<size_t>(obs::GetGauge("table.bytes")->Value()));
  json.Add("quick", quick ? 1 : 0);
  json.Add("threads_requested", threads);
  json.Add("threads_used", parallel_report.threads_used);
  json.Add("serial_ms", serial_ms);
  json.Add("parallel_ms", parallel_ms);
  json.Add("serial_mb_per_s", mb / (serial_ms / 1000.0));
  json.Add("parallel_mb_per_s", mb / (parallel_ms / 1000.0));
  json.Add("scan_kernel", csvscan::SimdLevel());
  json.Add("dqcol_ms", dqcol_ms);
  json.Add("dqcol_mb", dqcol_mb);
  json.Add("dqcol_speedup_vs_serial_csv",
           dqcol_ms > 0.0 ? serial_ms / dqcol_ms : 0.0);
  json.Add("dirty_ms", dirty_ms);
  json.Add("dirty_injected", injected);
  json.Add("dirty_quarantined", dirty_report.records_quarantined);
  json.Add("dirty_kept", dirty_report.records_kept);
  json.WriteFile();
  return 0;
}
