// Ablation of the error-confidence parameterization (sec. 5.1.2/5.2): "the
// confidence level of this interval can be parameterized". Sweeps the
// two-sided confidence level of the leftBound/rightBound intervals and
// toggles the null-flagging policy, showing the screening-vs-filtering
// trade-off the level controls (wider intervals = more conservative tool).

#include "bench_util.h"

using namespace dq;
using namespace dq::bench;

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);

  std::printf("# Confidence-level ablation (minimal error confidence 0.8)\n");
  std::printf("%10s %12s %12s %10s\n", "level", "sensitivity", "specificity",
              "flagged");
  for (double level : {0.80, 0.90, 0.95, 0.99}) {
    TestEnvironmentConfig cfg;
    cfg.num_records = quick ? 2000 : 8000;
    cfg.num_rules = quick ? 40 : 100;
    cfg.auditor.min_error_confidence = 0.8;
    cfg.auditor.confidence_level = level;
    SweepPoint p = RunAveraged(cfg, quick ? 1 : 2);
    std::printf("%10.2f %12.4f %12.4f %10.1f\n", level, p.sensitivity,
                p.specificity, p.flagged);
  }

  std::printf("\n# Null-flagging policy (does an observed null deviate?)\n");
  std::printf("%10s %12s %12s %10s\n", "flag_nulls", "sensitivity",
              "specificity", "flagged");
  for (bool flag_nulls : {true, false}) {
    TestEnvironmentConfig cfg;
    cfg.num_records = quick ? 2000 : 8000;
    cfg.num_rules = quick ? 40 : 100;
    cfg.auditor.min_error_confidence = 0.8;
    cfg.auditor.flag_null_values = flag_nulls;
    SweepPoint p = RunAveraged(cfg, quick ? 1 : 2);
    std::printf("%10s %12.4f %12.4f %10.1f\n", flag_nulls ? "on" : "off",
                p.sensitivity, p.specificity, p.flagged);
  }
  std::printf(
      "# higher levels widen the intervals: fewer, surer flags (the filter\n"
      "# regime); disabling null flags blinds the tool to the null-value\n"
      "# polluter's share of the corruption\n");
  return 0;
}
