// Sec. 6.2 reproduction: audit of the QUIS engine-composition sample.
//
// Paper setup: 8 attributes, ~200000 records; error detection took ~21
// minutes on an Athlon 900 MHz and revealed ~6000 suspicious records. Two
// induced dependencies are reported:
//   BRV = 404 -> GBM = 901           (16118 instances, one deviating
//                                     instance at confidence 99.95%,
//                                     ranked first),
//   KBM = 01 AND GBM = 901 -> BRV = 501  (9530 records, deviation
//                                     confidence 92%).
// QUIS is proprietary; this runs against the synthetic surrogate with the
// same planted dependency shapes (see src/quis and DESIGN.md).

#include <algorithm>
#include <chrono>

#include "audit/auditor.h"
#include "audit/error_confidence.h"
#include "audit/rule_export.h"
#include "bench_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "quis/quis_sample.h"

using namespace dq;

int main(int argc, char** argv) {
  const bool quick = dq::bench::QuickMode(argc, argv);
  const int threads = dq::bench::ThreadsArg(argc, argv);
  const std::string trace_out = dq::bench::TraceOutArg(argc, argv);
  if (!trace_out.empty()) obs::Tracer::Global().SetEnabled(true);
  QuisConfig qcfg;
  qcfg.num_records = quick ? 20000 : 200000;
  qcfg.seed = 2003;
  auto sample = GenerateQuisSample(qcfg);
  if (!sample.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 sample.status().ToString().c_str());
    return 1;
  }

  const std::string split_mode = dq::bench::SplitModeArg(argc, argv);

  AuditorConfig acfg;
  acfg.min_error_confidence = 0.8;
  acfg.num_threads = threads;
  acfg.c45.split_mode = split_mode == "exact" ? SplitMode::kExact
                                              : SplitMode::kHistogram;
  Auditor auditor(acfg);
  AuditTimings timings;
  const auto t0 = std::chrono::steady_clock::now();
  auto model = auditor.Induce(sample->table, &timings);
  if (!model.ok()) {
    std::fprintf(stderr, "induction failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  auto report = auditor.Audit(*model, sample->table, &timings);
  if (!report.ok()) {
    std::fprintf(stderr, "audit failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf("# QUIS engine-composition audit (sec. 6.2 surrogate)\n");
  std::printf("records:            %zu (paper: ~200000)\n",
              sample->table.num_rows());
  std::printf("runtime:            %.1f s (paper: ~21 min on Athlon "
              "900 MHz)\n",
              seconds);
  std::printf("suspicious records: %zu (paper: ~6000)\n",
              report->NumFlagged());

  std::printf("\nphase breakdown (threads=%d):\n", timings.threads_used);
  std::printf("  induce:  %8.1f ms (encode %.1f ms, c4.5 presort %.1f ms, "
              "tree build %.1f ms)\n",
              timings.induce_ms, timings.encode_ms, timings.presort_ms,
              timings.tree_build_ms);
  for (const auto& [attr, ms] : timings.induce_attr_ms) {
    std::printf("    %-8s %8.1f ms\n",
                sample->table.schema()
                    .attribute(static_cast<size_t>(attr))
                    .name.c_str(),
                ms);
  }
  std::printf("  audit:   %8.1f ms\n", timings.audit_ms);

  // Headline rule: BRV = 404 -> GBM = 901.
  const Schema& s = sample->table.schema();
  const double planted_conf =
      report->record_confidence[sample->planted_deviation_row];
  size_t rank = 0;
  for (size_t i = 0; i < report->suspicious.size(); ++i) {
    if (report->suspicious[i].row == sample->planted_deviation_row) {
      rank = i + 1;
      break;
    }
  }
  std::printf("\nrule BRV = 404 -> GBM = 901:\n");
  std::printf("  instances:           %zu (paper: 16118)\n",
              sample->brv404_count);
  std::printf("  deviating instance:  confidence %.4f (paper: 0.9995), "
              "rank %zu of %zu (paper: rank 1)\n",
              planted_conf, rank, report->suspicious.size());

  // Second rule: KBM = 01 AND GBM = 901 -> BRV = 501; find a deviating
  // (non-501) record in the slice and report its confidence.
  const int brv = *s.IndexOf("BRV");
  const int gbm = *s.IndexOf("GBM");
  const int kbm = *s.IndexOf("KBM");
  const int32_t brv501 = *s.CategoryCode(brv, "501");
  const int32_t gbm901 = *s.CategoryCode(gbm, "901");
  const int32_t kbm01 = *s.CategoryCode(kbm, "01");
  // Confidence the *BRV classifier* assigns to a record deviating from the
  // rule (the paper reports the per-rule deviation confidence, not the
  // record's overall maximum).
  double best_conf = 0.0;
  const AttributeModel* brv_model = model->ModelFor(brv);
  for (size_t r = 0; r < sample->table.num_rows(); ++r) {
    if (brv_model == nullptr) break;
    if (sample->table.cell(r, static_cast<size_t>(kbm)).nominal_code() !=
            kbm01 ||
        sample->table.cell(r, static_cast<size_t>(gbm)).nominal_code() !=
            gbm901 ||
        sample->table.cell(r, static_cast<size_t>(brv)).nominal_code() ==
            brv501) {
      continue;
    }
    const Prediction pred = brv_model->classifier->Predict(sample->table.row(r));
    if (pred.PredictedClass() != brv501) continue;
    const int observed = brv_model->encoder.Encode(
        sample->table.cell(r, static_cast<size_t>(brv)));
    const double conf =
        ErrorConfidence(pred, observed, auditor.config().confidence_level);
    if (conf > best_conf) best_conf = conf;
  }
  std::printf("\nrule KBM = 01 AND GBM = 901 -> BRV = 501:\n");
  std::printf("  slice size:          %zu (paper: 9530)\n",
              sample->kbm01_gbm901_count);
  std::printf("  deviation confidence: %.4f (paper: 0.92)\n", best_conf);

  std::printf("\ninduced rules touching the planted dependencies:\n");
  for (int attr : {gbm, brv}) {
    const AttributeModel* am = model->ModelFor(attr);
    if (am == nullptr) continue;
    auto rules = ExtractRules(*am, /*drop_useless=*/true);
    std::sort(rules.begin(), rules.end(),
              [](const StructureRule& a, const StructureRule& b) {
                return a.support > b.support;
              });
    for (size_t i = 0; i < rules.size() && i < 2; ++i) {
      std::printf("  %s\n", rules[i].ToString(s, am->encoder).c_str());
    }
  }

  dq::bench::BenchJson json("quis_audit", argc, argv);
  json.manifest()->seed = qcfg.seed;
  json.manifest()->threads_requested = threads;
  json.manifest()->threads_used = timings.threads_used;
  json.IncludeMetrics();
  json.Add("records", sample->table.num_rows());
  json.Add("seed", static_cast<size_t>(qcfg.seed));
  json.Add("quick", quick ? 1 : 0);
  json.Add("threads_requested", threads);
  json.Add("threads_used", timings.threads_used);
  json.Add("split_mode", split_mode == "exact" ? 1 : 0);
  json.Add("runtime_s", seconds);
  json.Add("induce_ms", timings.induce_ms);
  json.Add("encode_ms", timings.encode_ms);
  json.Add("presort_ms", timings.presort_ms);
  json.Add("tree_build_ms", timings.tree_build_ms);
  json.Add("audit_ms", timings.audit_ms);
  json.Add("suspicious", report->NumFlagged());
  json.Add("table_bytes", sample->table.byte_size());
  json.Add("encode_builds",
           static_cast<size_t>(obs::GetCounter("audit.encode_builds")->Value()));
  json.Add("brv404_instances", sample->brv404_count);
  json.Add("planted_confidence", planted_conf);
  json.Add("planted_rank", rank);
  json.Add("kbm01_gbm901_slice", sample->kbm01_gbm901_count);
  json.Add("kbm01_gbm901_deviation_confidence", best_conf);
  obs::SyncPoolMetrics();
  json.WriteFile();

  if (!trace_out.empty()) {
    Status written =
        obs::Tracer::Global().WriteChromeTraceFile(trace_out, json.manifest());
    if (!written.ok()) {
      DQ_LOG_ERROR("bench", "%s", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote trace to %s\n", trace_out.c_str());
  }
  return 0;
}
