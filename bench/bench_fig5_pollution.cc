// Figure 5 reproduction: "Influence of pollution factor on sensitivity".
//
// All polluter activation probabilities are multiplied by a common
// pollution factor. The paper: "the more corrupted the table is, the less
// valid rules that lead to correct error identifications can be induced",
// with a drop at factor ~3 when partitions become too impure to clear the
// minimal error confidence limit.

#include "bench_util.h"

using namespace dq;
using namespace dq::bench;

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  std::vector<double> factors =
      quick ? std::vector<double>{0.5, 2.0}
            : std::vector<double>{0.25, 0.5, 1.0, 1.5, 2.0, 2.5,
                                  3.0,  4.0, 6.0};
  const int seeds = quick ? 1 : 2;

  std::printf("# Figure 5: influence of pollution factor on sensitivity\n");
  std::printf("%10s %12s %12s %10s %10s %10s\n", "factor", "sensitivity",
              "specificity", "flagged", "corrupted", "ms");
  for (double factor : factors) {
    TestEnvironmentConfig cfg;
    cfg.num_records = 10000;
    cfg.num_rules = 100;
    cfg.pollution_factor = factor;
    cfg.auditor.min_error_confidence = 0.8;
    SweepPoint p = RunAveraged(cfg, seeds);
    std::printf("%10.2f %12.4f %12.4f %10.1f %10.1f %10.0f\n", factor,
                p.sensitivity, p.specificity, p.flagged, p.corrupted,
                p.total_ms);
  }
  std::printf(
      "# paper shape: decreasing with pollution; drop once partitions fall\n"
      "# below the minimal error confidence limit\n");
  return 0;
}
