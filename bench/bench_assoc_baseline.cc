// Related-work baseline (sec. 5.2 / sec. 7): association-rule deviation
// scoring a la Hipp et al. versus the paper's C4.5-based auditor, plus the
// Def. 8 combination ablation.
//
// The paper argues two points against the association-rule approach:
//  (1) "association rules cannot directly model dependencies between
//      numerical attributes" (the miner only sees the nominal attributes,
//      so limiter corruption on numeric/date attributes is invisible);
//  (2) adding the confidences of all violated rules (Hipp's scoring) "is,
//      strictly speaking, only valid if all rules predict values for the
//      same attributes" — Def. 8 therefore takes the maximum.

#include "bench_util.h"
#include "mining/assoc_rules.h"

using namespace dq;
using namespace dq::bench;

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  TestEnvironmentConfig cfg;
  cfg.num_records = quick ? 2000 : 8000;
  cfg.num_rules = quick ? 40 : 100;
  cfg.seed = 2003;
  cfg.auditor.min_error_confidence = 0.8;
  auto result = TestEnvironment(cfg).Run();
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("# C4.5 auditor vs association-rule deviation scoring\n");
  std::printf("%-34s %12s %12s %10s\n", "detector", "sensitivity",
              "specificity", "flagged");
  std::printf("%-34s %12.4f %12.4f %10zu\n", "C4.5 multiple classification",
              result->sensitivity, result->specificity, result->flagged);

  AssocMinerConfig mcfg;
  mcfg.min_support = quick ? 20.0 : 40.0;
  mcfg.min_confidence = 0.9;
  mcfg.max_premise_items = 2;
  AssociationRuleAuditor assoc(mcfg);
  Status mined = assoc.Mine(result->pollution.dirty);
  if (!mined.ok()) {
    std::fprintf(stderr, "mining failed: %s\n", mined.ToString().c_str());
    return 1;
  }

  // Flag threshold above the miner's minimum confidence, so a single
  // violated borderline rule does not flag by itself — this is where the
  // sum and max combinations genuinely part ways.
  const double assoc_threshold = 0.95;
  for (ScoreCombination combination :
       {ScoreCombination::kMax, ScoreCombination::kSum}) {
    std::vector<bool> flagged;
    assoc.ScoreTable(result->pollution.dirty, combination, assoc_threshold,
                     &flagged);
    DetectionMatrix m;
    for (size_t r = 0; r < flagged.size(); ++r) {
      const bool corrupted = result->pollution.is_corrupted[r];
      if (corrupted && flagged[r]) {
        ++m.true_positive;
      } else if (corrupted) {
        ++m.false_negative;
      } else if (flagged[r]) {
        ++m.false_positive;
      } else {
        ++m.true_negative;
      }
    }
    char label[80];
    std::snprintf(label, sizeof(label), "assoc rules (%zu rules, %s)",
                  assoc.num_rules(),
                  combination == ScoreCombination::kMax ? "max comb."
                                                        : "sum comb.");
    size_t total_flagged = m.true_positive + m.false_positive;
    std::printf("%-34s %12.4f %12.4f %10zu\n", label, m.Sensitivity(),
                m.Specificity(), total_flagged);
  }
  std::printf(
      "# expected: the sum combination over-flags (lower specificity) and\n"
      "# the association baseline misses numeric/date corruption entirely\n");
  return 0;
}
