// Sec. 6.1 claim: "it was observed that the quality of correction is
// highly correlated to sensitivity." This bench runs the record sweep,
// reports both measures per point and their Pearson correlation.

#include "bench_util.h"
#include "stats/descriptive.h"

using namespace dq;
using namespace dq::bench;

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  // The rules axis spans the widest sensitivity range (fig. 4), which makes
  // the correlation between detection and correction quality visible.
  std::vector<int> rule_counts = quick
                                     ? std::vector<int>{10, 60}
                                     : std::vector<int>{10, 25, 50, 100,
                                                        150, 200};
  const int seeds = quick ? 1 : 5;

  std::printf("# Quality of correction vs sensitivity (rules sweep)\n");
  std::printf("%10s %12s %14s\n", "rules", "sensitivity", "improvement");
  std::vector<double> sens, impr;
  for (int rules : rule_counts) {
    TestEnvironmentConfig cfg;
    cfg.num_records = quick ? 2000 : 8000;
    cfg.num_rules = rules;
    cfg.auditor.min_error_confidence = 0.8;
    SweepPoint p = RunAveraged(cfg, seeds);
    sens.push_back(p.sensitivity);
    impr.push_back(p.correction_improvement);
    std::printf("%10d %12.4f %14.4f\n", rules, p.sensitivity,
                p.correction_improvement);
  }
  std::printf("pearson(sensitivity, improvement) = %.4f\n",
              PearsonCorrelation(sens, impr));
  std::printf("# paper: quality of correction highly correlated with "
              "sensitivity\n");
  return 0;
}
