// Figure 4 reproduction: "Influence of number of rules on sensitivity".
//
// The number of (natural) rules measures the structural strength of the
// generated data. The paper: "the more constraints are imposed on the data
// the easier it is to identify errors based on deviation detection.
// Nevertheless ... even for highly regular data sets a sensitivity value
// of 0.3 is not exceeded" because hierarchical decision-tree rules cannot
// express every TDG-rule.

#include "bench_util.h"

using namespace dq;
using namespace dq::bench;

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  std::vector<int> rule_counts = quick
                                     ? std::vector<int>{10, 60}
                                     : std::vector<int>{10, 25, 50, 75, 100,
                                                        150, 200};
  const int seeds = quick ? 1 : 2;

  std::printf("# Figure 4: influence of number of rules on sensitivity\n");
  std::printf("%10s %12s %12s %10s %10s %10s\n", "rules", "sensitivity",
              "specificity", "flagged", "corrupted", "ms");
  for (int rules : rule_counts) {
    TestEnvironmentConfig cfg;
    cfg.num_records = 10000;
    cfg.num_rules = rules;
    cfg.pollution_factor = 1.0;
    cfg.auditor.min_error_confidence = 0.8;
    SweepPoint p = RunAveraged(cfg, seeds);
    std::printf("%10d %12.4f %12.4f %10.1f %10.1f %10.0f\n", rules,
                p.sensitivity, p.specificity, p.flagged, p.corrupted,
                p.total_ms);
  }
  std::printf(
      "# paper shape: rising with structural strength, saturating below "
      "~0.3\n");
  return 0;
}
