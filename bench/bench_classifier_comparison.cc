// Sec. 5 reproduction: "For the QUIS domain we evaluated different
// alternatives (instance based classifiers, naive Bayes classifiers,
// classification rule inducers, and decision trees). This led to the
// decision to base our structure inducer and deviation detector on ...
// C4.5." All four inducers run through the identical audit pipeline.

#include "bench_util.h"

using namespace dq;
using namespace dq::bench;

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  std::printf("# Inducer comparison on the base configuration\n");
  std::printf("%-14s %12s %12s %10s %12s %10s\n", "inducer", "sensitivity",
              "specificity", "flagged", "improvement", "ms");
  for (InducerKind kind : {InducerKind::kC45, InducerKind::kNaiveBayes,
                           InducerKind::kKnn, InducerKind::kOneR}) {
    TestEnvironmentConfig cfg;
    cfg.num_records = quick ? 2000 : 8000;
    cfg.num_rules = quick ? 40 : 100;
    cfg.auditor.min_error_confidence = 0.8;
    cfg.auditor.inducer = kind;
    // A Def. 7 flag at minConf 0.8 needs support >= ~35 (minInst); k-NN's
    // support IS k, so give it a sufficient neighbourhood — with the
    // default k = 25 an instance-based auditor can never flag anything,
    // which is the crux of the paper's case against it.
    cfg.auditor.knn.k = 64;
    cfg.auditor.knn.max_training_instances = 2000;
    SweepPoint p = RunAveraged(cfg, 1);
    std::printf("%-14s %12.4f %12.4f %10.1f %12.4f %10.0f\n",
                InducerKindToString(kind), p.sensitivity, p.specificity,
                p.flagged, p.correction_improvement, p.total_ms);
  }
  std::printf(
      "# paper outcome: the C4.5-based tool wins on the combined\n"
      "# sensitivity/specificity trade-off, motivating its selection\n");
  return 0;
}
