// Out-of-core audit benchmark: streams a QUIS surrogate CSV that is many
// times larger than the memory budget through the SegmentStore-backed
// audit and reports throughput plus spill traffic, then cross-checks that
// the budgeted run produced exactly the ranking an unbudgeted run does.
//
// Default sweep uses a ~50 MB CSV against an 8 MB budget (>= 6x
// oversubscription once the columnar form is tighter than the text);
// --quick shrinks the table for CI smoke runs, --records / --budget
// override both ends of the ratio for manual experiments.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "audit/stream_audit.h"
#include "bench_util.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "quis/quis_sample.h"
#include "table/csv.h"

using namespace dq;

namespace {

size_t RecordsArg(int argc, char** argv, size_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == "--records") {
      int64_t v = 0;
      if (ParseInt64(argv[i + 1], &v) && v > 0) {
        return static_cast<size_t>(v);
      }
    }
  }
  return fallback;
}

uint64_t BudgetArg(int argc, char** argv, uint64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == "--budget") {
      uint64_t v = 0;
      if (ParseByteSize(argv[i + 1], &v) && v > 0) return v;
    }
  }
  return fallback;
}

double Seconds(std::chrono::steady_clock::time_point from) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       from)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = dq::bench::QuickMode(argc, argv);
  const int threads = dq::bench::ThreadsArg(argc, argv);
  QuisConfig qcfg;
  qcfg.num_records = RecordsArg(argc, argv, quick ? 60000 : 600000);
  qcfg.seed = 2003;
  const uint64_t budget =
      BudgetArg(argc, argv, quick ? (1u << 20) : (8u << 20));

  const std::string csv_path =
      (std::filesystem::temp_directory_path() / "bench_oocore_quis.csv")
          .string();
  const std::string spill_dir = csv_path + ".spill";

  // Phase 1: chunked generation — the writer itself never holds more than
  // one chunk of rows.
  auto gen = QuisStreamGenerator::Create(qcfg);
  if (!gen.ok()) {
    std::fprintf(stderr, "generator: %s\n", gen.status().ToString().c_str());
    return 1;
  }
  const auto gen_t0 = std::chrono::steady_clock::now();
  {
    std::ofstream out(csv_path, std::ios::binary | std::ios::trunc);
    Table chunk;
    CsvOptions write_options;
    while (!gen->done()) {
      if (Status s = gen->NextChunk(16384, &chunk); !s.ok()) {
        std::fprintf(stderr, "generate: %s\n", s.ToString().c_str());
        return 1;
      }
      write_options.write_header = gen->records_generated() == chunk.num_rows();
      if (Status s = WriteCsv(chunk, &out, write_options); !s.ok()) {
        std::fprintf(stderr, "write: %s\n", s.ToString().c_str());
        return 1;
      }
    }
  }
  const double gen_s = Seconds(gen_t0);
  const auto csv_bytes =
      static_cast<uint64_t>(std::filesystem::file_size(csv_path));
  const double csv_mb = static_cast<double>(csv_bytes) / (1024.0 * 1024.0);

  StreamAuditOptions options;
  options.sample_rows = quick ? 20000 : 100000;
  options.csv.num_threads = threads;
  options.auditor.min_error_confidence = 0.8;
  options.auditor.num_threads = threads;
  options.store.memory_budget_bytes = budget;
  options.store.spill_dir = spill_dir;
  // Quick runs shrink segments too, so even the small table produces real
  // eviction traffic instead of one oversized segment.
  if (quick) options.store.segment_rows = 8192;

  // Phase 2: budgeted streaming audit.
  const auto audit_t0 = std::chrono::steady_clock::now();
  auto budgeted = RunStreamingAudit(gen->schema(), csv_path, options);
  const double budgeted_s = Seconds(audit_t0);
  if (!budgeted.ok()) {
    std::fprintf(stderr, "audit: %s\n", budgeted.status().ToString().c_str());
    return 1;
  }

  // Phase 3: unbudgeted control run — must match suspicion for suspicion.
  StreamAuditOptions unbounded = options;
  unbounded.store.memory_budget_bytes = 0;
  const auto ctrl_t0 = std::chrono::steady_clock::now();
  auto control = RunStreamingAudit(gen->schema(), csv_path, unbounded);
  const double control_s = Seconds(ctrl_t0);
  if (!control.ok()) {
    std::fprintf(stderr, "control: %s\n",
                 control.status().ToString().c_str());
    return 1;
  }
  bool identical = control->suspicious.size() == budgeted->suspicious.size();
  for (size_t i = 0; identical && i < control->suspicious.size(); ++i) {
    const Suspicion& a = control->suspicious[i];
    const Suspicion& b = budgeted->suspicious[i];
    identical = a.row == b.row && a.error_confidence == b.error_confidence &&
                a.attr == b.attr && a.observed.StrictEquals(b.observed) &&
                a.suggestion.StrictEquals(b.suggestion) &&
                a.support == b.support;
  }
  std::filesystem::remove(csv_path);
  if (!identical) {
    std::fprintf(stderr,
                 "budgeted and unbudgeted rankings diverge (%zu vs %zu "
                 "suspicious)\n",
                 budgeted->suspicious.size(), control->suspicious.size());
    return 1;
  }

  const SegmentStore::Stats& st = budgeted->store_stats;
  const double rows_per_s =
      static_cast<double>(budgeted->total_rows) / budgeted_s;
  std::printf("# Out-of-core streaming audit (QUIS surrogate)\n");
  std::printf("records:         %zu  (%.1f MB of CSV, generated in %.1f s)\n",
              budgeted->total_rows, csv_mb, gen_s);
  std::printf("memory budget:   %.1f MB  (peak resident %.1f MB)\n",
              static_cast<double>(budget) / (1024.0 * 1024.0),
              static_cast<double>(st.resident_bytes_peak) /
                  (1024.0 * 1024.0));
  std::printf("budgeted audit:  %8.1f s  (%.0f rows/s, sample %zu rows)\n",
              budgeted_s, rows_per_s, budgeted->sampled_rows);
  std::printf("unbudgeted run:  %8.1f s  (ranking identical: yes)\n",
              control_s);
  std::printf("spill traffic:   %llu writes / %llu reads  (%.1f MB out, "
              "%.1f MB back, %llu evictions)\n",
              static_cast<unsigned long long>(st.spill_writes),
              static_cast<unsigned long long>(st.spill_reads),
              static_cast<double>(st.spill_bytes_written) / (1024.0 * 1024.0),
              static_cast<double>(st.spill_bytes_read) / (1024.0 * 1024.0),
              static_cast<unsigned long long>(st.evictions));
  std::printf("suspicious:      %zu records\n", budgeted->suspicious.size());

  dq::bench::BenchJson json("oocore", argc, argv);
  json.manifest()->seed = qcfg.seed;
  json.manifest()->threads_requested = threads;
  json.manifest()->threads_used = budgeted->timings.threads_used;
  json.IncludeMetrics();
  json.Add("quick", quick ? 1 : 0);
  json.Add("records", budgeted->total_rows);
  json.Add("csv_bytes", csv_bytes);
  json.Add("generate_s", gen_s);
  json.Add("memory_budget_bytes", budget);
  json.Add("sample_rows", budgeted->sampled_rows);
  json.Add("budgeted_audit_s", budgeted_s);
  json.Add("unbudgeted_audit_s", control_s);
  json.Add("rows_per_s", rows_per_s);
  json.Add("segments", st.segments_sealed);
  json.Add("spill_writes", st.spill_writes);
  json.Add("spill_reads", st.spill_reads);
  json.Add("spill_bytes_written", st.spill_bytes_written);
  json.Add("spill_bytes_read", st.spill_bytes_read);
  json.Add("evictions", st.evictions);
  json.Add("resident_bytes_peak", st.resident_bytes_peak);
  json.Add("suspicious", budgeted->suspicious.size());
  json.Add("ranking_identical", 1);
  json.WriteFile();
  return 0;
}
