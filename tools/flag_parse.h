// Validated command-line flag value parsing, shared by the dq* tools.
//
// The tools used to funnel flag values through atoi/atof, which silently
// turn typos into zeros ("--threads abc" ran single-threaded, "--top 1e3"
// audited with top=1). These helpers parse strictly — the whole value must
// be a number, in range — and print a usage-grade diagnostic naming the
// flag on failure, so every malformed flag exits nonzero instead of
// running with a garbage configuration.

#ifndef DQ_TOOLS_FLAG_PARSE_H_
#define DQ_TOOLS_FLAG_PARSE_H_

#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>

#include "common/strings.h"
#include "obs/log.h"

namespace dq {

/// \brief Parses an integer flag value into [lo, hi]; prints a diagnostic
/// naming `flag` and returns false on junk or out-of-range input.
inline bool ParseIntFlag(const std::string& flag, const std::string& value,
                         int64_t lo, int64_t hi, int64_t* out) {
  int64_t v = 0;
  if (!ParseInt64(value, &v)) {
    std::fprintf(stderr, "invalid value '%s' for %s: expected an integer\n",
                 value.c_str(), flag.c_str());
    return false;
  }
  if (v < lo || v > hi) {
    std::fprintf(stderr,
                 "value %lld for %s out of range [%lld, %lld]\n",
                 static_cast<long long>(v), flag.c_str(),
                 static_cast<long long>(lo), static_cast<long long>(hi));
    return false;
  }
  *out = v;
  return true;
}

/// \brief Int-typed convenience over ParseIntFlag.
inline bool ParseIntFlag32(const std::string& flag, const std::string& value,
                           int lo, int hi, int* out) {
  int64_t v = 0;
  if (!ParseIntFlag(flag, value, lo, hi, &v)) return false;
  *out = static_cast<int>(v);
  return true;
}

/// \brief size_t-typed convenience (lo/hi as non-negative int64 bounds).
inline bool ParseSizeFlag(const std::string& flag, const std::string& value,
                          int64_t lo, int64_t hi, size_t* out) {
  int64_t v = 0;
  if (!ParseIntFlag(flag, value, lo, hi, &v)) return false;
  *out = static_cast<size_t>(v);
  return true;
}

/// \brief Parses a floating-point flag value into [lo, hi].
inline bool ParseDoubleFlag(const std::string& flag, const std::string& value,
                            double lo, double hi, double* out) {
  double v = 0.0;
  if (!ParseDouble(value, &v)) {
    std::fprintf(stderr, "invalid value '%s' for %s: expected a number\n",
                 value.c_str(), flag.c_str());
    return false;
  }
  if (!(v >= lo && v <= hi)) {  // negated: also rejects NaN
    std::fprintf(stderr, "value %s for %s out of range [%g, %g]\n",
                 value.c_str(), flag.c_str(), lo, hi);
    return false;
  }
  *out = v;
  return true;
}

/// \brief Parses a byte count with optional K/M/G/T suffix ("64M", "2g",
/// "1GiB"); rejects zero when `require_positive`.
inline bool ParseByteSizeFlag(const std::string& flag,
                              const std::string& value, bool require_positive,
                              uint64_t* out) {
  uint64_t v = 0;
  if (!ParseByteSize(value, &v)) {
    std::fprintf(stderr,
                 "invalid value '%s' for %s: expected a byte count like "
                 "65536, 64M or 2G\n",
                 value.c_str(), flag.c_str());
    return false;
  }
  if (require_positive && v == 0) {
    std::fprintf(stderr, "%s must be positive\n", flag.c_str());
    return false;
  }
  *out = v;
  return true;
}

/// \brief Parses a --log-level value ("debug", "info", "warn", "error",
/// "off") and applies it to the process-wide logger. Prints a diagnostic
/// listing the accepted names and returns false on anything else, so a
/// typo exits with usage instead of silently keeping the default level.
inline bool ParseLogLevelFlag(const std::string& flag,
                              const std::string& value) {
  const std::optional<obs::LogLevel> level = obs::ParseLogLevel(value);
  if (!level.has_value()) {
    std::fprintf(stderr,
                 "invalid value '%s' for %s: expected one of debug, info, "
                 "warn, error, off\n",
                 value.c_str(), flag.c_str());
    return false;
  }
  obs::SetLogLevel(*level);
  return true;
}

}  // namespace dq

#endif  // DQ_TOOLS_FLAG_PARSE_H_
