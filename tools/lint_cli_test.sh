#!/usr/bin/env bash
# End-to-end test for the dqlint static analyzer and the --lint pre-passes
# of dqgen / dqaudit: a clean rule file lints clean, a deliberately broken
# file trips every check category with correct locations, and both tools
# reject broken rule files with a non-zero exit code.
set -euo pipefail

DQLINT="$1"
DQGEN="$2"
DQAUDIT="$3"
TESTDATA="$4"

SPEC="$TESTDATA/parts.spec"
GOOD="$TESTDATA/parts.rules"
BAD="$TESTDATA/parts_bad.rules"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# A clean expert rule file has no errors or warnings and exit code 0.
# (A DQ023 note is fine: rule 1's consequent chains into rule 2's premise.)
"$DQLINT" --schema "$SPEC" "$GOOD" > "$WORK/good.out"
grep -q "4 rules checked, 0 errors, 0 warnings" "$WORK/good.out"

# The broken file fails (exit 1) and reports every check category.
if "$DQLINT" --schema "$SPEC" "$BAD" > "$WORK/bad.out"; then
  echo "dqlint accepted a broken rule file" >&2
  exit 1
fi
for id in DQ001 DQ002 DQ003 DQ004 DQ005 DQ010 DQ011 DQ012 DQ013 DQ014 \
          DQ020 DQ021 DQ022; do
  if ! grep -q "\[$id " "$WORK/bad.out"; then
    echo "missing diagnostic $id in:" >&2
    cat "$WORK/bad.out" >&2
    exit 1
  fi
done
# Diagnostics carry file:line:column locations.
grep -q "parts_bad.rules:2:" "$WORK/bad.out"
grep -q "parts_bad.rules:7:1: error: premise is unsatisfiable" "$WORK/bad.out"

# JSON output carries the same findings in machine-readable form.
"$DQLINT" --schema "$SPEC" --format json "$BAD" > "$WORK/bad.json" || true
grep -q '"id": "DQ010"' "$WORK/bad.json"
grep -q '"diagnostics"' "$WORK/bad.json"
grep -q '"severity": "error"' "$WORK/bad.json"

# --disable suppresses checks by ID or name.
"$DQLINT" --schema "$SPEC" --disable DQ022,duplicate-rule "$BAD" \
  > "$WORK/bad2.out" || true
! grep -q "DQ022" "$WORK/bad2.out"
! grep -q "DQ021" "$WORK/bad2.out"

# --list-checks prints the registry.
"$DQLINT" --list-checks | grep -q "DQ020"

# --strict fails on warnings-only files; default passes them.
printf 'WEIGHT > 400 -> WEIGHT > 100\n' > "$WORK/warn.rules"
"$DQLINT" --schema "$SPEC" "$WORK/warn.rules" > /dev/null
if "$DQLINT" --schema "$SPEC" --strict "$WORK/warn.rules" > /dev/null; then
  echo "--strict did not fail on warnings" >&2
  exit 1
fi

# dqgen --lint rejects the broken rule file before generating anything.
if "$DQGEN" --schema "$SPEC" --records 10 --rules-file "$BAD" --lint \
    --clean "$WORK/never.csv" 2> "$WORK/gen.err"; then
  echo "dqgen --lint accepted a broken rule file" >&2
  exit 1
fi
grep -q "rejected by lint" "$WORK/gen.err"
test ! -s "$WORK/never.csv"

# dqgen --lint passes a clean rule file and generates normally.
"$DQGEN" --schema "$SPEC" --records 200 --rules-file "$GOOD" --lint \
  --seed 3 --clean "$WORK/clean.csv" 2> /dev/null
test -s "$WORK/clean.csv"

# dqaudit --lint rejects the broken rule file before auditing.
if "$DQAUDIT" --schema "$SPEC" --data "$WORK/clean.csv" \
    --rules-file "$BAD" --lint > /dev/null 2> "$WORK/audit.err"; then
  echo "dqaudit --lint accepted a broken rule file" >&2
  exit 1
fi
grep -q "rejected by lint" "$WORK/audit.err"

# dqaudit checks expert rules deterministically against the data.
"$DQAUDIT" --schema "$SPEC" --data "$WORK/clean.csv" \
  --rules-file "$GOOD" --lint > "$WORK/audit.out" 2> /dev/null
grep -q "expert rules: 4 rules" "$WORK/audit.out"

echo "lint cli OK"
