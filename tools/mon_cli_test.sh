#!/usr/bin/env bash
# End-to-end smoke test for the monitoring pipeline: dqgen synthesizes two
# QUIS snapshots at different pollution rates, dqaudit appends run-history
# records under a fixed clock (DQ_UTC_OVERRIDE_MS), and dqmon must (a)
# report no drift for two identical-seed runs — whose ledger lines are
# byte-identical — and (b) exit 3 with suspicion-rate drift ranked first
# when the pollution rate rises, identically across thread counts.
set -euo pipefail

DQGEN="$1"
DQAUDIT="$2"
DQMON="$3"
TESTDATA="$4"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

SPEC="$TESTDATA/quis_full.spec"

# Pin the epoch clock: manifests get a fixed timestamp and all recorded
# wall durations collapse to 0, so identical runs serialize identically.
export DQ_UTC_OVERRIDE_MS=1754600000000

"$DQGEN" --quis --records 3000 --seed 7 --clean "$WORK/clean.csv" \
  --dirty "$WORK/dirty_lo.csv" --factor 0.5 > /dev/null
"$DQGEN" --quis --records 3000 --seed 7 --clean "$WORK/clean2.csv" \
  --dirty "$WORK/dirty_hi.csv" --factor 3.0 > /dev/null
cmp "$WORK/clean.csv" "$WORK/clean2.csv"  # same seed -> same clean table

# --- (a) two identical audits: byte-identical records, no drift. --------
"$DQAUDIT" --schema "$SPEC" --data "$WORK/dirty_lo.csv" --threads 2 \
  --history "$WORK/hist_same" > "$WORK/audit1.out"
grep -q "appended history record" "$WORK/audit1.out"
"$DQAUDIT" --schema "$SPEC" --data "$WORK/dirty_lo.csv" --threads 2 \
  --history "$WORK/hist_same" > /dev/null
test "$(wc -l < "$WORK/hist_same/history.jsonl")" -eq 2
sed -n 1p "$WORK/hist_same/history.jsonl" > "$WORK/line1"
sed -n 2p "$WORK/hist_same/history.jsonl" > "$WORK/line2"
cmp "$WORK/line1" "$WORK/line2"

"$DQMON" log --history "$WORK/hist_same" > "$WORK/log.out"
grep -q "2 run(s)" "$WORK/log.out"
"$DQMON" check --history "$WORK/hist_same" > "$WORK/check_same.out"
grep -q "0 drift" "$WORK/check_same.out"

# --- (b) rising pollution: exit 3, suspicion_rate ranked first. ---------
for T in 1 8; do
  "$DQAUDIT" --schema "$SPEC" --data "$WORK/dirty_lo.csv" --threads "$T" \
    --history "$WORK/hist_drift_$T" > /dev/null
  "$DQAUDIT" --schema "$SPEC" --data "$WORK/dirty_hi.csv" --threads "$T" \
    --history "$WORK/hist_drift_$T" > /dev/null
  rc=0
  "$DQMON" check --history "$WORK/hist_drift_$T" \
    > "$WORK/check_drift_$T.out" || rc=$?
  test "$rc" -eq 3
  # The drift-severity finding ranked first must be the suspicion rate.
  grep -m1 '\[drift\]' "$WORK/check_drift_$T.out" | grep -q suspicion_rate
  rc=0
  "$DQMON" check --history "$WORK/hist_drift_$T" --format json \
    > "$WORK/check_drift_$T.json" || rc=$?
  test "$rc" -eq 3
  grep -q '"has_drift": true' "$WORK/check_drift_$T.json"
done
# The ranked findings agree across thread counts (manifest hashes differ
# because the argv differs, so compare the drift line only).
grep suspicion_rate "$WORK/check_drift_1.out" > "$WORK/rate1"
grep suspicion_rate "$WORK/check_drift_8.out" > "$WORK/rate8"
cmp "$WORK/rate1" "$WORK/rate8"

# diff compares two explicit runs and also gates on drift.
rc=0
"$DQMON" diff --history "$WORK/hist_drift_1" --baseline 1 --current 2 \
  > /dev/null || rc=$?
test "$rc" -eq 3
rc=0
"$DQMON" diff --history "$WORK/hist_drift_1" --baseline 1 --current 1 \
  > "$WORK/selfdiff.out" || rc=$?
test "$rc" -eq 0

# A raised threshold silences the gate.
rc=0
"$DQMON" check --history "$WORK/hist_drift_1" --rate-abs 0.5 \
  > /dev/null || rc=$?
test "$rc" -eq 0

# One-run ledgers are trivially clean (a brand-new pipeline must pass CI).
"$DQAUDIT" --schema "$SPEC" --data "$WORK/dirty_lo.csv" --threads 2 \
  --history "$WORK/hist_one" > /dev/null
"$DQMON" check --history "$WORK/hist_one" | grep -q "nothing to compare"

# A torn ledger line is skipped with a warning, not fatal.
printf '{"schema_version":1,"torn' >> "$WORK/hist_same/history.jsonl"
printf '\n' >> "$WORK/hist_same/history.jsonl"
"$DQMON" check --history "$WORK/hist_same" > /dev/null 2> "$WORK/torn.err"
grep -q "damaged line" "$WORK/torn.err"

# --- rules-diff over annotated rule files. ------------------------------
cat > "$WORK/r1.rules" <<'EOF'
# @rule conf=0.9900 support=120 coverage=0.500000 source=c45
BRV = 404 -> GBM = 901
N < 5 -> B = low
EOF
cat > "$WORK/r2.rules" <<'EOF'
# @rule conf=0.9500 support=100 coverage=0.500000 source=c45
BRV = 404 -> GBM = 901
N < 9 -> B = low
KBM = 01 -> BRV = 501
EOF
"$DQMON" rules-diff "$WORK/r1.rules" "$WORK/r2.rules" > "$WORK/rdiff.out"
grep -q "threshold_shift" "$WORK/rdiff.out"
grep -q "annotation_delta" "$WORK/rdiff.out"
grep -q "added" "$WORK/rdiff.out"
rc=0
"$DQMON" rules-diff "$WORK/r1.rules" "$WORK/r2.rules" --fail-on-change \
  > /dev/null || rc=$?
test "$rc" -eq 3
rc=0
"$DQMON" rules-diff "$WORK/r1.rules" "$WORK/r1.rules" --fail-on-change \
  > /dev/null || rc=$?
test "$rc" -eq 0

# Usage errors exit 2.
rc=0
"$DQMON" check > /dev/null 2>&1 || rc=$?
test "$rc" -eq 2
rc=0
"$DQMON" check --history "$WORK/hist_same" --log-level verbose \
  > /dev/null 2>&1 || rc=$?
test "$rc" -eq 2

echo "mon cli test ok"
