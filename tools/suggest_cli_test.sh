#!/usr/bin/env bash
# End-to-end smoke test for the dqsuggest pipeline over the QUIS sample:
# mine -> suggest -> the emitted file lints clean -> dqaudit accepts it as
# an expert rule file with a bitwise-deterministic report across thread
# counts. Also asserts the minimal cover actually reduces the candidate
# set and that the planted mined-vs-expert contradiction surfaces as DQ033.
set -euo pipefail

DQGEN="$1"
DQSUGGEST="$2"
DQLINT="$3"
DQAUDIT="$4"
TESTDATA="$5"

SPEC="$TESTDATA/quis_full.spec"
EXPERT="$TESTDATA/quis_expert.rules"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# A small QUIS sample keeps the smoke fast while preserving the planted
# dependencies (the generator scales segments proportionally).
"$DQGEN" --quis --records 20000 --seed 2003 --clean "$WORK/quis.csv" \
  > "$WORK/gen.out"
grep -q "QUIS engine-composition records" "$WORK/gen.out"

# Mine candidates and reconcile them against the expert file.
"$DQSUGGEST" --schema "$SPEC" --data "$WORK/quis.csv" \
  --expert-rules "$EXPERT" --emit "$WORK/suggested.rules" \
  > "$WORK/suggest.out" 2> "$WORK/suggest.diag"

grep -q "dqsuggest:" "$WORK/suggest.out"
# The planted wrong expert rule (BRV = 404 -> GBM = 911) must be caught.
grep -q "\[DQ033 mined-expert-contradiction\]" "$WORK/suggest.diag"
grep -q "expert rule" "$WORK/suggest.diag"

# The minimal cover reduces the candidate set by at least 30%.
candidates=$(sed -n 's/^dqsuggest: \([0-9]*\) candidates -> .*/\1/p' \
  "$WORK/suggest.out")
accepted=$(sed -n 's/^dqsuggest: [0-9]* candidates -> \([0-9]*\) accepted.*/\1/p' \
  "$WORK/suggest.out")
if [ -z "$candidates" ] || [ -z "$accepted" ]; then
  echo "could not parse dqsuggest summary:" >&2
  cat "$WORK/suggest.out" >&2
  exit 1
fi
if [ "$accepted" -gt $((candidates * 7 / 10)) ]; then
  echo "minimal cover kept $accepted of $candidates (< 30% reduction)" >&2
  exit 1
fi

# The emitted annotated file is accepted unchanged by the linter: zero
# errors, zero warnings (notes are fine).
"$DQLINT" --schema "$SPEC" "$WORK/suggested.rules" > "$WORK/lint.out"
grep -q ", 0 errors, 0 warnings" "$WORK/lint.out"

# The metadata annotations are present.
grep -q "^# @rule conf=" "$WORK/suggested.rules"

# dqaudit accepts the file as an expert rule program and audits
# deterministically: bitwise-identical reports across thread counts.
for threads in 1 8; do
  "$DQAUDIT" --schema "$SPEC" --data "$WORK/quis.csv" \
    --rules-file "$WORK/suggested.rules" --lint --threads "$threads" \
    --report "$WORK/report_$threads.csv" > "$WORK/audit_$threads.out"
done
cmp "$WORK/report_1.csv" "$WORK/report_8.csv"

# dqgen accepts the same file for rule-driven generation.
"$DQGEN" --schema "$SPEC" --records 500 --rules-file "$WORK/suggested.rules" \
  --lint --clean "$WORK/regen.csv" > /dev/null
test -s "$WORK/regen.csv"

# JSON output mode parses as an object with the expected keys.
"$DQSUGGEST" --schema "$SPEC" --data "$WORK/quis.csv" \
  --expert-rules "$EXPERT" --format json --max-rules 5 \
  > "$WORK/suggest.json" 2> /dev/null
grep -q '"accepted"' "$WORK/suggest.json"
grep -q '"diagnostics"' "$WORK/suggest.json"
grep -q '"source"' "$WORK/suggest.json"

# Malformed flag values are rejected with a diagnostic, not atoi'd to 0.
for bad in "--threads abc" "--min-confidence 1.5" "--max-rules -2"; do
  rc=0
  # shellcheck disable=SC2086
  "$DQSUGGEST" --schema "$SPEC" --data "$WORK/quis.csv" $bad \
    > /dev/null 2> "$WORK/flag.err" || rc=$?
  if [ "$rc" -eq 0 ]; then
    echo "dqsuggest accepted malformed flag: $bad" >&2
    exit 1
  fi
  if ! grep -Eq "invalid value|out of range" "$WORK/flag.err"; then
    echo "dqsuggest missing diagnostic for: $bad" >&2
    cat "$WORK/flag.err" >&2
    exit 1
  fi
done

echo "suggest cli test ok ($candidates candidates -> $accepted accepted)"
