// dqlint — static analyzer for TDG-rule programs.
//
// Usage:
//   dqlint --schema spec.txt [options] rules.rules [more.rules ...]
//
// Options:
//   --schema FILE     schema specification (see table/schema_spec.h)
//   --format FMT      text | json (default text)
//   --disable LIST    comma-separated check IDs or names to suppress
//                     (e.g. DQ022 or subsumed-rule)
//   --strict          warnings also fail the run (exit 1)
//   --quiet           suppress diagnostics; exit code only
//   --list-checks     print the check registry and exit
//
// Exit codes: 0 = clean (or warnings without --strict), 1 = findings at the
// failing severity, 2 = usage or I/O error. Designed for CI gating: run it
// over every rule file a deployment ships.

#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.h"
#include "lint/lint.h"
#include "table/schema_spec.h"

using namespace dq;

namespace {

struct Options {
  std::string schema_path;
  std::string format = "text";
  std::vector<std::string> rule_files;
  LintOptions lint;
  bool strict = false;
  bool quiet = false;
  bool list_checks = false;
};

void Usage() {
  std::fprintf(stderr,
               "usage: dqlint --schema spec.txt [--format text|json]\n"
               "  [--disable DQ022,tautological-conclusion] [--strict]\n"
               "  [--quiet] [--list-checks] rules.rules [more.rules ...]\n");
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--schema" && need_value(&opts->schema_path)) continue;
    if (arg == "--format" && need_value(&opts->format)) continue;
    if (arg == "--disable" && need_value(&value)) {
      for (const std::string& item : SplitString(value, ',')) {
        std::string_view trimmed = TrimWhitespace(item);
        if (!trimmed.empty()) opts->lint.disabled.insert(std::string(trimmed));
      }
      continue;
    }
    if (arg == "--strict") {
      opts->strict = true;
      continue;
    }
    if (arg == "--quiet") {
      opts->quiet = true;
      continue;
    }
    if (arg == "--list-checks") {
      opts->list_checks = true;
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown or incomplete argument: %s\n", arg.c_str());
      return false;
    }
    opts->rule_files.push_back(arg);
  }
  if (opts->list_checks) return true;
  if (opts->format != "text" && opts->format != "json") {
    std::fprintf(stderr, "unknown --format '%s'\n", opts->format.c_str());
    return false;
  }
  return !opts->schema_path.empty() && !opts->rule_files.empty();
}

void ListChecks() {
  std::printf("%-7s %-24s %-8s %s\n", "ID", "NAME", "SEVERITY", "SUMMARY");
  for (const LintCheckInfo& check : LintChecks()) {
    std::printf("%-7s %-24s %-8s %s\n", check.id, check.name,
                LintSeverityToString(check.severity), check.summary);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) {
    Usage();
    return 2;
  }
  if (opts.list_checks) {
    ListChecks();
    return 0;
  }

  auto schema = ParseSchemaSpecFile(opts.schema_path);
  if (!schema.ok()) {
    std::fprintf(stderr, "dqlint: %s\n", schema.status().ToString().c_str());
    return 2;
  }

  Linter linter(&*schema, opts.lint);
  bool failed = false;
  for (const std::string& path : opts.rule_files) {
    auto result = linter.LintFileAt(path);
    if (!result.ok()) {
      std::fprintf(stderr, "dqlint: %s\n", result.status().ToString().c_str());
      return 2;
    }
    if (!opts.quiet) {
      const std::string rendered = opts.format == "json"
                                       ? RenderLintJson(*result, path)
                                       : RenderLintText(*result, path);
      std::fputs(rendered.c_str(), stdout);
    }
    if (result->HasErrors() || (opts.strict && result->NumWarnings() > 0)) {
      failed = true;
    }
  }
  return failed ? 1 : 0;
}
