// dqlint — static analyzer for TDG-rule programs.
//
// Usage:
//   dqlint --schema spec.txt [options] rules.rules [more.rules ...]
//
// Options:
//   --schema FILE     schema specification (see table/schema_spec.h)
//   --format FMT      text | json (default text)
//   --disable LIST    comma-separated check IDs or names to suppress
//                     (e.g. DQ022 or subsumed-rule)
//   --strict          warnings also fail the run (exit 1)
//   --quiet           suppress diagnostics; exit code only
//   --list-checks     print the check registry and exit
//   --trace-out FILE  write the span tree of the run as Chrome trace-event
//                     JSON (load in Perfetto / chrome://tracing)
//   --metrics-out FILE write the metrics registry snapshot as JSON
//   --log-level LEVEL debug | info | warn | error | off (default info)
//
// Exit codes: 0 = clean (or warnings without --strict), 1 = findings at the
// failing severity, 2 = usage or I/O error. Designed for CI gating: run it
// over every rule file a deployment ships.

#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.h"
#include "flag_parse.h"
#include "lint/lint.h"
#include "obs/log.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "table/schema_spec.h"

using namespace dq;

namespace {

struct Options {
  std::string schema_path;
  std::string format = "text";
  std::vector<std::string> rule_files;
  LintOptions lint;
  bool strict = false;
  bool quiet = false;
  bool list_checks = false;
  std::string trace_out_path;
  std::string metrics_out_path;
};

void Usage() {
  std::fprintf(stderr,
               "usage: dqlint --schema spec.txt [--format text|json]\n"
               "  [--disable DQ022,tautological-conclusion] [--strict]\n"
               "  [--quiet] [--list-checks] [--trace-out trace.json]\n"
               "  [--metrics-out metrics.json]\n"
               "  [--log-level debug|info|warn|error|off]\n"
               "  rules.rules [more.rules ...]\n");
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--schema" && need_value(&opts->schema_path)) continue;
    if (arg == "--format" && need_value(&opts->format)) continue;
    if (arg == "--disable" && need_value(&value)) {
      for (const std::string& item : SplitString(value, ',')) {
        std::string_view trimmed = TrimWhitespace(item);
        if (!trimmed.empty()) opts->lint.disabled.insert(std::string(trimmed));
      }
      continue;
    }
    if (arg == "--strict") {
      opts->strict = true;
      continue;
    }
    if (arg == "--quiet") {
      opts->quiet = true;
      continue;
    }
    if (arg == "--list-checks") {
      opts->list_checks = true;
      continue;
    }
    if (arg == "--trace-out" && need_value(&opts->trace_out_path)) continue;
    if (arg == "--metrics-out" && need_value(&opts->metrics_out_path)) {
      continue;
    }
    if (arg == "--log-level" && need_value(&value)) {
      if (!ParseLogLevelFlag(arg, value)) return false;
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown or incomplete argument: %s\n", arg.c_str());
      return false;
    }
    opts->rule_files.push_back(arg);
  }
  if (opts->list_checks) return true;
  if (opts->format != "text" && opts->format != "json") {
    std::fprintf(stderr, "unknown --format '%s'\n", opts->format.c_str());
    return false;
  }
  return !opts->schema_path.empty() && !opts->rule_files.empty();
}

void ListChecks() {
  std::printf("%-7s %-24s %-8s %s\n", "ID", "NAME", "SEVERITY", "SUMMARY");
  for (const LintCheckInfo& check : LintChecks()) {
    std::printf("%-7s %-24s %-8s %s\n", check.id, check.name,
                LintSeverityToString(check.severity), check.summary);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) {
    Usage();
    return 2;
  }
  if (opts.list_checks) {
    ListChecks();
    return 0;
  }
  obs::Tracer::Global().SetEnabled(true);

  obs::RunManifest manifest = obs::MakeRunManifest("dqlint", argc, argv);
  (void)obs::AddInputFileHash(&manifest, "schema", opts.schema_path);
  for (const std::string& path : opts.rule_files) {
    (void)obs::AddInputFileHash(&manifest, "rules:" + path, path);
  }

  auto schema = ParseSchemaSpecFile(opts.schema_path);
  if (!schema.ok()) {
    DQ_LOG_ERROR("dqlint", "%s", schema.status().ToString().c_str());
    return 2;
  }

  Linter linter(&*schema, opts.lint);
  bool failed = false;
  size_t errors = 0;
  size_t warnings = 0;
  for (size_t f = 0; f < opts.rule_files.size(); ++f) {
    const std::string& path = opts.rule_files[f];
    obs::Span span("lint.file", static_cast<int64_t>(f));
    auto result = linter.LintFileAt(path);
    if (!result.ok()) {
      DQ_LOG_ERROR("dqlint", "%s", result.status().ToString().c_str());
      return 2;
    }
    if (!opts.quiet) {
      const std::string rendered = opts.format == "json"
                                       ? RenderLintJson(*result, path)
                                       : RenderLintText(*result, path);
      std::fputs(rendered.c_str(), stdout);
    }
    errors += result->NumErrors();
    warnings += result->NumWarnings();
    if (result->HasErrors() || (opts.strict && result->NumWarnings() > 0)) {
      failed = true;
    }
  }
  obs::GetCounter("lint.files_checked")->Add(opts.rule_files.size());
  obs::GetCounter("lint.errors")->Add(errors);
  obs::GetCounter("lint.warnings")->Add(warnings);

  manifest.StampWallClock();
  if (!opts.trace_out_path.empty()) {
    Status written = obs::Tracer::Global().WriteChromeTraceFile(
        opts.trace_out_path, &manifest);
    if (!written.ok()) {
      DQ_LOG_ERROR("dqlint", "%s", written.ToString().c_str());
      return 2;
    }
  }
  if (!opts.metrics_out_path.empty()) {
    obs::SyncPoolMetrics();
    Status written = obs::MetricsRegistry::Global().WriteJsonFile(
        opts.metrics_out_path, &manifest);
    if (!written.ok()) {
      DQ_LOG_ERROR("dqlint", "%s", written.ToString().c_str());
      return 2;
    }
  }
  return failed ? 1 : 0;
}
