#!/usr/bin/env python3
"""Validates observability artifacts against the schemas in
docs/OBSERVABILITY.md and docs/FORMATS.md.

Usage:
  validate_metrics.py METRICS_JSON [TRACE_JSON ...]
  validate_metrics.py --history HISTORY_JSONL [...]
  validate_metrics.py --drift DRIFT_JSON [...]

Positional arguments are checked as a metrics dump followed by trace
files; --history arguments as run-history JSONL ledgers; --drift
arguments as dqmon drift reports. Exits non-zero with a message on the
first violation.
"""

import json
import sys


def fail(msg):
    print(f"validate_metrics: {msg}", file=sys.stderr)
    sys.exit(1)


def check_manifest(manifest, context):
    if not isinstance(manifest, dict):
        fail(f"{context}: manifest is not an object")
    required = {
        "schema_version": int,
        "tool": str,
        "version": str,
        "build_type": str,
        "config_hash": str,
        "seed": int,
        "threads_requested": int,
        "threads_used": int,
        "input_hashes": dict,
    }
    for key, kind in required.items():
        if key not in manifest:
            fail(f"{context}: manifest missing '{key}'")
        if not isinstance(manifest[key], kind):
            fail(f"{context}: manifest '{key}' is not {kind.__name__}")
    version = manifest["schema_version"]
    if version not in (1, 2):
        fail(f"{context}: unknown manifest schema_version {version}")
    if version >= 2:
        # v2 added the wall-clock fields (PR 9).
        for key, kind in (("started_unix_ms", int), ("started_utc", str),
                          ("wall_ms", (int, float))):
            if key not in manifest:
                fail(f"{context}: manifest v2 missing '{key}'")
            if not isinstance(manifest[key], kind):
                fail(f"{context}: manifest '{key}' has wrong type")
        utc = manifest["started_utc"]
        if manifest["started_unix_ms"] > 0 and (
                len(utc) != 24 or utc[4] != "-" or utc[10] != "T"
                or not utc.endswith("Z")):
            fail(f"{context}: started_utc '{utc}' is not ISO-8601 UTC")
    if len(manifest["config_hash"]) != 16:
        fail(f"{context}: config_hash is not a 64-bit hex hash")
    for label, digest in manifest["input_hashes"].items():
        if not isinstance(digest, str) or len(digest) != 16:
            fail(f"{context}: input hash '{label}' is not a 64-bit hex hash")


def check_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema_version") != 1:
        fail(f"{path}: unknown schema_version {doc.get('schema_version')}")
    if "manifest" in doc:
        check_manifest(doc["manifest"], path)
    for section, kind in (("counters", int), ("gauges", (int, float))):
        if section not in doc or not isinstance(doc[section], dict):
            fail(f"{path}: missing '{section}' object")
        for name, value in doc[section].items():
            if not isinstance(value, kind):
                fail(f"{path}: {section}['{name}'] has wrong type")
    if "histograms" not in doc or not isinstance(doc["histograms"], dict):
        fail(f"{path}: missing 'histograms' object")
    for name, h in doc["histograms"].items():
        for key in ("count", "sum", "buckets"):
            if key not in h:
                fail(f"{path}: histogram '{name}' missing '{key}'")
        total = 0
        for bucket in h["buckets"]:
            if "le" not in bucket or "count" not in bucket:
                fail(f"{path}: histogram '{name}' bucket malformed")
            total += bucket["count"]
        if total != h["count"]:
            fail(f"{path}: histogram '{name}' bucket counts do not sum "
                 f"to count ({total} != {h['count']})")
    print(f"{path}: ok ({len(doc['counters'])} counters, "
          f"{len(doc['gauges'])} gauges, {len(doc['histograms'])} histograms)")


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: missing or empty traceEvents")
    spans = [e for e in events if e.get("ph") == "X"]
    if not spans:
        fail(f"{path}: no complete ('X') span events")
    ids = set()
    for e in spans:
        args = e.get("args", {})
        if "span_id" not in args or "parent_id" not in args:
            fail(f"{path}: span '{e.get('name')}' missing span_id/parent_id")
        ids.add(args["span_id"])
    for e in spans:
        parent = e["args"]["parent_id"]
        if parent != 0 and parent not in ids:
            fail(f"{path}: span '{e.get('name')}' has dangling parent_id "
                 f"{parent}")
    if "manifest" in doc:
        check_manifest(doc["manifest"], path)
    print(f"{path}: ok ({len(spans)} spans)")


def check_history_record(record, context):
    if record.get("schema_version") != 1:
        fail(f"{context}: unknown history schema_version "
             f"{record.get('schema_version')}")
    if "manifest" not in record:
        fail(f"{context}: missing manifest")
    check_manifest(record["manifest"], context)
    summary = record.get("summary")
    if not isinstance(summary, dict):
        fail(f"{context}: missing summary object")
    for key, kind in (("records", int), ("suspicious", int),
                      ("suspicion_rate", (int, float)),
                      ("rule_violations", dict), ("top_confidences", list),
                      ("timings_ms", dict)):
        if key not in summary:
            fail(f"{context}: summary missing '{key}'")
        if not isinstance(summary[key], kind):
            fail(f"{context}: summary '{key}' has wrong type")
    if summary["suspicious"] > summary["records"]:
        fail(f"{context}: suspicious exceeds records")
    if not 0.0 <= summary["suspicion_rate"] <= 1.0:
        fail(f"{context}: suspicion_rate outside [0, 1]")
    confidences = summary["top_confidences"]
    if any(confidences[i] < confidences[i + 1]
           for i in range(len(confidences) - 1)):
        fail(f"{context}: top_confidences not descending")
    metrics = record.get("metrics")
    if not isinstance(metrics, dict):
        fail(f"{context}: missing metrics object")
    for section in ("counters", "gauges"):
        if not isinstance(metrics.get(section), dict):
            fail(f"{context}: metrics missing '{section}' object")


def check_history(path):
    records = 0
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{path}:{lineno}: not valid JSON ({e})")
            check_history_record(record, f"{path}:{lineno}")
            records += 1
    if records == 0:
        fail(f"{path}: no history records")
    print(f"{path}: ok ({records} history records)")


def check_drift(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema_version") != 1:
        fail(f"{path}: unknown drift schema_version "
             f"{doc.get('schema_version')}")
    for key, kind in (("baseline", str), ("current", str),
                      ("baseline_runs", int), ("has_drift", bool),
                      ("severity_counts", dict), ("findings", list)):
        if key not in doc:
            fail(f"{path}: missing '{key}'")
        if not isinstance(doc[key], kind):
            fail(f"{path}: '{key}' has wrong type")
    severities = {"info", "warn", "drift"}
    drift_found = 0
    for i, finding in enumerate(doc["findings"]):
        for key, kind in (("kind", str), ("severity", str), ("subject", str),
                          ("baseline", (int, float)),
                          ("current", (int, float)),
                          ("delta_abs", (int, float)),
                          ("delta_rel", (int, float)), ("message", str)):
            if key not in finding:
                fail(f"{path}: finding {i} missing '{key}'")
            if not isinstance(finding[key], kind):
                fail(f"{path}: finding {i} '{key}' has wrong type")
        if finding["severity"] not in severities:
            fail(f"{path}: finding {i} has unknown severity "
                 f"'{finding['severity']}'")
        if finding["severity"] == "drift":
            drift_found += 1
    counts = doc["severity_counts"]
    if counts.get("drift") != drift_found:
        fail(f"{path}: severity_counts.drift ({counts.get('drift')}) "
             f"disagrees with findings ({drift_found})")
    if doc["has_drift"] != (drift_found > 0):
        fail(f"{path}: has_drift disagrees with findings")
    print(f"{path}: ok ({len(doc['findings'])} findings, "
          f"{drift_found} at drift severity)")


def main():
    argv = sys.argv[1:]
    if not argv:
        fail("usage: validate_metrics.py METRICS_JSON [TRACE_JSON ...] | "
             "--history LEDGER... | --drift REPORT...")
    if argv[0] == "--history":
        if len(argv) < 2:
            fail("--history needs at least one ledger path")
        for path in argv[1:]:
            check_history(path)
        return
    if argv[0] == "--drift":
        if len(argv) < 2:
            fail("--drift needs at least one report path")
        for path in argv[1:]:
            check_drift(path)
        return
    check_metrics(argv[0])
    for trace in argv[1:]:
        check_trace(trace)


if __name__ == "__main__":
    main()
