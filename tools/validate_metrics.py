#!/usr/bin/env python3
"""Validates a --metrics-out dump against the schema in docs/OBSERVABILITY.md.

Usage: validate_metrics.py METRICS_JSON [TRACE_JSON ...]

Extra arguments are checked as trace files (traceEvents array + manifest).
Exits non-zero with a message on the first violation.
"""

import json
import sys


def fail(msg):
    print(f"validate_metrics: {msg}", file=sys.stderr)
    sys.exit(1)


def check_manifest(manifest, context):
    if not isinstance(manifest, dict):
        fail(f"{context}: manifest is not an object")
    required = {
        "schema_version": int,
        "tool": str,
        "version": str,
        "build_type": str,
        "config_hash": str,
        "seed": int,
        "threads_requested": int,
        "threads_used": int,
        "input_hashes": dict,
    }
    for key, kind in required.items():
        if key not in manifest:
            fail(f"{context}: manifest missing '{key}'")
        if not isinstance(manifest[key], kind):
            fail(f"{context}: manifest '{key}' is not {kind.__name__}")
    if manifest["schema_version"] != 1:
        fail(f"{context}: unknown manifest schema_version "
             f"{manifest['schema_version']}")
    if len(manifest["config_hash"]) != 16:
        fail(f"{context}: config_hash is not a 64-bit hex hash")
    for label, digest in manifest["input_hashes"].items():
        if not isinstance(digest, str) or len(digest) != 16:
            fail(f"{context}: input hash '{label}' is not a 64-bit hex hash")


def check_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema_version") != 1:
        fail(f"{path}: unknown schema_version {doc.get('schema_version')}")
    if "manifest" in doc:
        check_manifest(doc["manifest"], path)
    for section, kind in (("counters", int), ("gauges", (int, float))):
        if section not in doc or not isinstance(doc[section], dict):
            fail(f"{path}: missing '{section}' object")
        for name, value in doc[section].items():
            if not isinstance(value, kind):
                fail(f"{path}: {section}['{name}'] has wrong type")
    if "histograms" not in doc or not isinstance(doc["histograms"], dict):
        fail(f"{path}: missing 'histograms' object")
    for name, h in doc["histograms"].items():
        for key in ("count", "sum", "buckets"):
            if key not in h:
                fail(f"{path}: histogram '{name}' missing '{key}'")
        total = 0
        for bucket in h["buckets"]:
            if "le" not in bucket or "count" not in bucket:
                fail(f"{path}: histogram '{name}' bucket malformed")
            total += bucket["count"]
        if total != h["count"]:
            fail(f"{path}: histogram '{name}' bucket counts do not sum "
                 f"to count ({total} != {h['count']})")
    print(f"{path}: ok ({len(doc['counters'])} counters, "
          f"{len(doc['gauges'])} gauges, {len(doc['histograms'])} histograms)")


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: missing or empty traceEvents")
    spans = [e for e in events if e.get("ph") == "X"]
    if not spans:
        fail(f"{path}: no complete ('X') span events")
    ids = set()
    for e in spans:
        args = e.get("args", {})
        if "span_id" not in args or "parent_id" not in args:
            fail(f"{path}: span '{e.get('name')}' missing span_id/parent_id")
        ids.add(args["span_id"])
    for e in spans:
        parent = e["args"]["parent_id"]
        if parent != 0 and parent not in ids:
            fail(f"{path}: span '{e.get('name')}' has dangling parent_id "
                 f"{parent}")
    if "manifest" in doc:
        check_manifest(doc["manifest"], path)
    print(f"{path}: ok ({len(spans)} spans)")


def main():
    if len(sys.argv) < 2:
        fail("usage: validate_metrics.py METRICS_JSON [TRACE_JSON ...]")
    check_metrics(sys.argv[1])
    for trace in sys.argv[2:]:
        check_trace(trace)


if __name__ == "__main__":
    main()
