// dqmon: continuous-monitoring companion to dqaudit.
//
// The survey literature separates deployed data-quality tooling from
// prototypes at monitoring: re-audit the same table over time and notice
// when the quality profile moves. dqaudit --history DIR appends one
// JSONL record per run (manifest + audit summary + metrics snapshot);
// dqmon reads that ledger back and answers the operational questions:
//
//   dqmon log        --history DIR        list the recorded runs
//   dqmon diff       --history DIR        compare two runs (default: last two)
//   dqmon check      --history DIR        newest run vs rolling baseline
//   dqmon rules-diff BEFORE AFTER         diff two annotated rule files
//
// Shared flags:
//   --format text|json   output format (default text)
//   --log-level LEVEL    debug | info | warn | error | off (default info)
// diff / check:
//   --baseline I / --current J   1-based run indices (diff only)
//   --window N           baseline size for check (default 5)
//   --rate-abs X / --rate-rel X          suspicion-rate drift gates
//   --rule-abs X / --rule-rel X          per-rule violation drift gates
//   --record-rel X                       record-count warn gate
//   --timing-abs-ms X / --timing-rel X   timing warn gates
// rules-diff:
//   --fail-on-change     exit 3 when the rule sets differ
//
// Exit codes: 0 = no drift / no gated change, 1 = runtime error,
// 2 = usage error, 3 = drift past threshold (diff/check) or rule-set
// changes under --fail-on-change.

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "flag_parse.h"
#include "obs/drift.h"
#include "obs/history.h"
#include "obs/log.h"
#include "obs/rule_diff.h"

namespace dq {
namespace {

struct Options {
  std::string command;
  std::string history_dir;
  std::string format = "text";
  std::string before_rules_path;
  std::string after_rules_path;
  size_t baseline_index = 0;  // 1-based; 0 = auto
  size_t current_index = 0;   // 1-based; 0 = auto
  size_t window = 5;
  size_t last = 0;  // log: show only the last N records (0 = all)
  bool fail_on_change = false;
  obs::DriftThresholds thresholds;
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: dqmon COMMAND [flags]\n"
      "  dqmon log   --history DIR [--last N]\n"
      "  dqmon diff  --history DIR [--baseline I] [--current J]\n"
      "  dqmon check --history DIR [--window 5]\n"
      "  dqmon rules-diff BEFORE.rules AFTER.rules [--fail-on-change]\n"
      "shared: [--format text|json] [--log-level debug|info|warn|error|off]\n"
      "thresholds (diff/check): [--rate-abs 0.002] [--rate-rel 0.1]\n"
      "  [--rule-abs 5] [--rule-rel 0.25] [--record-rel 0.1]\n"
      "  [--timing-abs-ms 100] [--timing-rel 0.5]\n"
      "exit: 0 = clean, 1 = error, 2 = usage, 3 = drift past threshold\n");
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  if (argc < 2) {
    std::fprintf(stderr, "missing command\n");
    return false;
  }
  opts->command = argv[1];
  if (opts->command != "log" && opts->command != "diff" &&
      opts->command != "check" && opts->command != "rules-diff") {
    std::fprintf(stderr, "unknown command: %s\n", opts->command.c_str());
    return false;
  }
  std::vector<std::string> positional;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    auto need_value = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    if (arg == "--history" && need_value(&opts->history_dir)) continue;
    if (arg == "--format" && need_value(&opts->format)) continue;
    if (arg == "--log-level" && need_value(&value)) {
      if (!ParseLogLevelFlag(arg, value)) return false;
      continue;
    }
    if (arg == "--baseline" && need_value(&value)) {
      if (!ParseSizeFlag(arg, value, 1, 1'000'000'000,
                         &opts->baseline_index)) {
        return false;
      }
      continue;
    }
    if (arg == "--current" && need_value(&value)) {
      if (!ParseSizeFlag(arg, value, 1, 1'000'000'000, &opts->current_index)) {
        return false;
      }
      continue;
    }
    if (arg == "--window" && need_value(&value)) {
      if (!ParseSizeFlag(arg, value, 1, 1'000'000, &opts->window)) {
        return false;
      }
      continue;
    }
    if (arg == "--last" && need_value(&value)) {
      if (!ParseSizeFlag(arg, value, 1, 1'000'000'000, &opts->last)) {
        return false;
      }
      continue;
    }
    if (arg == "--rate-abs" && need_value(&value)) {
      if (!ParseDoubleFlag(arg, value, 0.0, 1.0,
                           &opts->thresholds.suspicion_rate_abs)) {
        return false;
      }
      continue;
    }
    if (arg == "--rate-rel" && need_value(&value)) {
      if (!ParseDoubleFlag(arg, value, 0.0, 1e9,
                           &opts->thresholds.suspicion_rate_rel)) {
        return false;
      }
      continue;
    }
    if (arg == "--rule-abs" && need_value(&value)) {
      if (!ParseDoubleFlag(arg, value, 0.0, 1e18,
                           &opts->thresholds.rule_violations_abs)) {
        return false;
      }
      continue;
    }
    if (arg == "--rule-rel" && need_value(&value)) {
      if (!ParseDoubleFlag(arg, value, 0.0, 1e9,
                           &opts->thresholds.rule_violations_rel)) {
        return false;
      }
      continue;
    }
    if (arg == "--record-rel" && need_value(&value)) {
      if (!ParseDoubleFlag(arg, value, 0.0, 1e9,
                           &opts->thresholds.record_count_rel)) {
        return false;
      }
      continue;
    }
    if (arg == "--timing-abs-ms" && need_value(&value)) {
      if (!ParseDoubleFlag(arg, value, 0.0, 1e12,
                           &opts->thresholds.timing_abs_ms)) {
        return false;
      }
      continue;
    }
    if (arg == "--timing-rel" && need_value(&value)) {
      if (!ParseDoubleFlag(arg, value, 0.0, 1e9,
                           &opts->thresholds.timing_rel)) {
        return false;
      }
      continue;
    }
    if (arg == "--fail-on-change") {
      opts->fail_on_change = true;
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown or incomplete argument: %s\n",
                   arg.c_str());
      return false;
    }
    positional.push_back(arg);
  }
  if (opts->format != "text" && opts->format != "json") {
    std::fprintf(stderr, "--format must be 'text' or 'json'\n");
    return false;
  }
  if (opts->command == "rules-diff") {
    if (positional.size() != 2) {
      std::fprintf(stderr,
                   "rules-diff needs exactly two rule files "
                   "(BEFORE.rules AFTER.rules)\n");
      return false;
    }
    opts->before_rules_path = positional[0];
    opts->after_rules_path = positional[1];
    return true;
  }
  if (!positional.empty()) {
    std::fprintf(stderr, "unexpected argument: %s\n", positional[0].c_str());
    return false;
  }
  if (opts->history_dir.empty()) {
    std::fprintf(stderr, "%s needs --history DIR\n", opts->command.c_str());
    return false;
  }
  if (opts->command == "diff" &&
      (opts->baseline_index != 0) != (opts->current_index != 0)) {
    std::fprintf(stderr,
                 "--baseline and --current must be given together\n");
    return false;
  }
  return true;
}

/// Reads the ledger, logging a warning for torn lines.
bool LoadLedger(const Options& opts, std::vector<obs::HistoryRecord>* records) {
  obs::HistoryStore store(opts.history_dir);
  size_t damaged = 0;
  auto read = store.ReadAll(&damaged);
  if (!read.ok()) {
    std::fprintf(stderr, "dqmon: %s\n", read.status().message().c_str());
    return false;
  }
  if (damaged > 0) {
    DQ_LOG_WARN("dqmon", "%zu damaged line(s) skipped in %s", damaged,
                store.ledger_path().c_str());
  }
  *records = std::move(*read);
  return true;
}

int RunLog(const Options& opts) {
  std::vector<obs::HistoryRecord> records;
  if (!LoadLedger(opts, &records)) return 1;
  size_t first = 0;
  if (opts.last > 0 && opts.last < records.size()) {
    first = records.size() - opts.last;
  }
  if (opts.format == "json") {
    std::string out = "[";
    for (size_t i = first; i < records.size(); ++i) {
      if (i > first) out += ",";
      out += records[i].ToJsonLine();
    }
    out += "]\n";
    std::fputs(out.c_str(), stdout);
    return 0;
  }
  std::printf("%zu run(s) in %s\n", records.size(), opts.history_dir.c_str());
  std::printf("%5s  %-24s  %-10s  %12s  %10s  %9s\n", "run", "started",
              "tool", "records", "suspicious", "rate");
  for (size_t i = first; i < records.size(); ++i) {
    const obs::HistoryRecord& r = records[i];
    std::printf("%5zu  %-24s  %-10s  %12llu  %10llu  %9.6f\n", i + 1,
                r.manifest.started_utc.c_str(), r.manifest.tool.c_str(),
                static_cast<unsigned long long>(r.summary.records),
                static_cast<unsigned long long>(r.summary.suspicious),
                r.summary.suspicion_rate);
  }
  return 0;
}

int EmitDriftReport(const Options& opts, const obs::DriftReport& report) {
  if (opts.format == "json") {
    std::fputs(report.ToJson().c_str(), stdout);
  } else {
    std::fputs(report.RenderText().c_str(), stdout);
  }
  return report.HasDrift() ? 3 : 0;
}

int RunDiff(const Options& opts) {
  std::vector<obs::HistoryRecord> records;
  if (!LoadLedger(opts, &records)) return 1;
  if (records.size() < 2) {
    std::fprintf(stderr,
                 "dqmon: diff needs at least 2 history records, have %zu\n",
                 records.size());
    return 1;
  }
  size_t baseline = opts.baseline_index != 0 ? opts.baseline_index
                                             : records.size() - 1;
  size_t current = opts.current_index != 0 ? opts.current_index
                                           : records.size();
  if (baseline > records.size() || current > records.size()) {
    std::fprintf(stderr, "dqmon: run index out of range (ledger has %zu)\n",
                 records.size());
    return 1;
  }
  std::vector<obs::HistoryRecord> window = {records[baseline - 1]};
  obs::DriftReport report =
      DetectDrift(window, records[current - 1], opts.thresholds);
  report.baseline_desc = "run " + std::to_string(baseline) + " (" +
                         records[baseline - 1].manifest.started_utc + ")";
  report.current_desc = "run " + std::to_string(current) + " (" +
                        records[current - 1].manifest.started_utc + ")";
  return EmitDriftReport(opts, report);
}

int RunCheck(const Options& opts) {
  std::vector<obs::HistoryRecord> records;
  if (!LoadLedger(opts, &records)) return 1;
  if (records.size() < 2) {
    // One run (or none) is a trivially clean baseline — nothing to
    // compare against yet, and a brand-new pipeline must not fail CI.
    if (opts.format == "json") {
      std::fputs(obs::DriftReport{}.ToJson().c_str(), stdout);
    } else {
      std::printf("%zu run(s) in ledger: nothing to compare yet\n",
                  records.size());
    }
    return 0;
  }
  const size_t window_size = std::min(opts.window, records.size() - 1);
  const std::vector<obs::HistoryRecord> window(
      records.end() - 1 - static_cast<ptrdiff_t>(window_size),
      records.end() - 1);
  obs::DriftReport report =
      DetectDrift(window, records.back(), opts.thresholds);
  report.baseline_desc =
      "runs " + std::to_string(records.size() - window_size) + ".." +
      std::to_string(records.size() - 1) + " (mean of " +
      std::to_string(window_size) + ")";
  report.current_desc = "run " + std::to_string(records.size()) + " (" +
                        records.back().manifest.started_utc + ")";
  return EmitDriftReport(opts, report);
}

int RunRulesDiff(const Options& opts) {
  auto before = obs::LoadAnnotatedRuleFile(opts.before_rules_path);
  if (!before.ok()) {
    std::fprintf(stderr, "dqmon: %s\n", before.status().message().c_str());
    return 1;
  }
  auto after = obs::LoadAnnotatedRuleFile(opts.after_rules_path);
  if (!after.ok()) {
    std::fprintf(stderr, "dqmon: %s\n", after.status().message().c_str());
    return 1;
  }
  const obs::RuleSetDiff diff = DiffRuleSets(*before, *after);
  if (opts.format == "json") {
    std::fputs(diff.ToJson().c_str(), stdout);
  } else {
    std::fputs(diff.RenderText().c_str(), stdout);
  }
  return opts.fail_on_change && diff.HasChanges() ? 3 : 0;
}

}  // namespace
}  // namespace dq

int main(int argc, char** argv) {
  dq::Options opts;
  if (!dq::ParseArgs(argc, argv, &opts)) {
    dq::Usage();
    return 2;
  }
  if (opts.command == "log") return dq::RunLog(opts);
  if (opts.command == "diff") return dq::RunDiff(opts);
  if (opts.command == "check") return dq::RunCheck(opts);
  return dq::RunRulesDiff(opts);
}
