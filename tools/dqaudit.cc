// dqaudit — command-line data auditing for CSV files.
//
// Usage:
//   dqaudit --schema spec.txt --data table.csv [options]
//
// Options:
//   --schema FILE      schema specification (see table/schema_spec.h)
//   --data FILE        data to audit (CSV needs a header row)
//   --train FILE       data to induce on (default: the audit data;
//                      sec. 2.2's asynchronous regime)
//   --format FMT       on-disk format of --data and --train: csv or dqcol
//                      (default: infer from the extension — '.dqcol' means
//                      dqcol, anything else CSV). The audit report is byte
//                      identical across formats for a faithfully converted
//                      file (see dqconvert)
//   --min-conf X       minimal error confidence (default 0.8)
//   --level X          confidence level for the bounds (default 0.95)
//   --inducer NAME     c45 | naive-bayes | knn | oner (default c45)
//   --split-mode MODE  c4.5 split evaluator: histogram (default; binned
//                      scans, sibling subtraction, intra-tree parallelism)
//                      or exact (the reference SLIQ row sweep)
//   --save-model FILE  persist the induced structure model (rule sets)
//   --load-model FILE  skip induction, check against a persisted model
//   --top N            print the N strongest suspicions (default 20)
//   --explain N        print review sheets for the top N suspicions
//   --rules            print the induced structure model
//   --corrected FILE   write the auto-corrected table as CSV
//   --report FILE      write the ranked suspicions as CSV
//   --summary          print the per-attribute flag summary (including
//                      per-attribute induction times)
//   --threads N        worker threads for induction/checking
//                      (default 0 = hardware concurrency; any non-positive
//                      value means the hardware default; results are
//                      identical for every thread count)
//   --memory-budget N  out-of-core mode: stream the audit with at most N
//                      bytes of resident table data (suffixes K/M/G/T,
//                      e.g. 64M). Induction trains on a reservoir sample
//                      (--sample-rows); segments past the budget spill to
//                      --spill-dir. The ranked report is identical for
//                      every budget. Incompatible with --train,
//                      --load-model, --corrected, --explain, --summary and
//                      --rules-file (they need the whole table in RAM)
//   --sample-rows N    reservoir sample size for streaming induction
//                      (default 200000; >= the row count trains on the
//                      full table and reproduces the in-memory audit
//                      exactly)
//   --spill-dir DIR    where streaming segments spill (default:
//                      <data>.spill, removed after the run)
//   --segment-rows N   rows per streaming segment (default 65536; the
//                      paging granularity — smaller segments spill sooner.
//                      Results are identical for every value)
//   --rules-file FILE  expert-written TDG rules (sec. 3.2) checked
//                      deterministically against the data: per-rule
//                      violation counts plus example rows
//   --lint             run the dqlint check battery over --rules-file
//                      before auditing; lint errors abort with exit code 1
//   --on-error MODE    fail (default): abort on the first malformed CSV
//                      record; skip: quarantine malformed records into an
//                      ingest report and audit the survivors
//   --ingest-report F  write the ingest quarantine report as JSON
//   --trace-out FILE   write the span tree of the run as Chrome trace-event
//                      JSON (load in Perfetto / chrome://tracing); the tree
//                      is identical for every --threads value
//   --metrics-out FILE write the metrics registry snapshot (counters,
//                      gauges, histograms) as JSON, with the run manifest
//   --history DIR      append one run-history record (manifest + audit
//                      summary + metrics snapshot) to DIR/history.jsonl;
//                      dqmon reads the ledger back for drift detection
//   --history-max-runs N
//                      compact the ledger after appending: keep only the
//                      newest N records (kept lines stay byte-identical;
//                      damaged lines are dropped). Requires --history
//   --log-level LEVEL  debug | info | warn | error | off (default info)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "audit/review.h"
#include "audit/rule_export.h"
#include "audit/stream_audit.h"
#include "audit/summary.h"
#include "audit/structure_model.h"
#include "common/parallel.h"
#include "eval/report_io.h"
#include "lint/lint.h"
#include "logic/rule_parser.h"
#include "obs/history.h"
#include "obs/log.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "table/csv.h"
#include "table/ingest_backend.h"
#include "table/schema_spec.h"
#include "flag_parse.h"

using namespace dq;

namespace {

struct Options {
  std::string schema_path;
  std::string data_path;
  std::string train_path;
  std::string save_model_path;
  std::string load_model_path;
  std::string corrected_path;
  std::string report_path;
  std::string rules_path;
  std::string on_error = "fail";
  std::string ingest_report_path;
  std::string trace_out_path;
  std::string metrics_out_path;
  std::string history_dir;
  std::string format;  ///< "", "csv" or "dqcol"; "" = infer from extension
  size_t history_max_runs = 0;  ///< 0 = never compact
  double min_conf = 0.8;
  double level = 0.95;
  std::string inducer = "c45";
  std::string split_mode = "histogram";
  int top = 20;
  int explain = 0;
  int threads = 0;
  uint64_t memory_budget = 0;  ///< 0 = classic in-memory audit
  size_t sample_rows = 200000;
  size_t segment_rows = 65536;
  std::string spill_dir;
  bool print_rules = false;
  bool print_summary = false;
  bool lint = false;
};

void Usage() {
  std::fprintf(stderr,
               "usage: dqaudit --schema spec.txt --data table.csv\n"
               "  [--train t.csv] [--format csv|dqcol]\n"
               "  [--min-conf 0.8] [--level 0.95]\n"
               "  [--inducer c45|naive-bayes|knn|oner]\n"
               "  [--split-mode histogram|exact] [--save-model m]\n"
               "  [--load-model m] [--top 20] [--explain 5] [--rules]\n"
               "  [--corrected out.csv] [--report report.csv]\n"
               "  [--summary] [--threads 0] [--rules-file r.rules] [--lint]\n"
               "  [--memory-budget 64M] [--sample-rows 200000]\n"
               "  [--spill-dir DIR] [--segment-rows 65536]\n"
               "  [--on-error fail|skip] [--ingest-report report.json]\n"
               "  [--trace-out trace.json] [--metrics-out metrics.json]\n"
               "  [--history DIR] [--history-max-runs N]\n"
               "  [--log-level debug|info|warn|error|off]\n");
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--schema" && need_value(&opts->schema_path)) continue;
    if (arg == "--data" && need_value(&opts->data_path)) continue;
    if (arg == "--train" && need_value(&opts->train_path)) continue;
    if (arg == "--save-model" && need_value(&opts->save_model_path)) continue;
    if (arg == "--load-model" && need_value(&opts->load_model_path)) continue;
    if (arg == "--corrected" && need_value(&opts->corrected_path)) continue;
    if (arg == "--report" && need_value(&opts->report_path)) continue;
    if (arg == "--rules-file" && need_value(&opts->rules_path)) continue;
    if (arg == "--inducer" && need_value(&opts->inducer)) continue;
    if (arg == "--split-mode" && need_value(&opts->split_mode)) continue;
    if (arg == "--on-error" && need_value(&opts->on_error)) continue;
    if (arg == "--ingest-report" && need_value(&opts->ingest_report_path)) {
      continue;
    }
    if (arg == "--trace-out" && need_value(&opts->trace_out_path)) continue;
    if (arg == "--metrics-out" && need_value(&opts->metrics_out_path)) {
      continue;
    }
    if (arg == "--history" && need_value(&opts->history_dir)) continue;
    if (arg == "--history-max-runs" && need_value(&value)) {
      if (!ParseSizeFlag(arg, value, 1,
                         std::numeric_limits<int64_t>::max(),
                         &opts->history_max_runs)) {
        return false;
      }
      continue;
    }
    if (arg == "--format" && need_value(&opts->format)) continue;
    if (arg == "--log-level" && need_value(&value)) {
      if (!ParseLogLevelFlag(arg, value)) return false;
      continue;
    }
    if (arg == "--min-conf" && need_value(&value)) {
      if (!ParseDoubleFlag(arg, value, 0.0, 1.0, &opts->min_conf)) {
        return false;
      }
      continue;
    }
    if (arg == "--level" && need_value(&value)) {
      if (!ParseDoubleFlag(arg, value, 0.0, 1.0, &opts->level)) return false;
      continue;
    }
    if (arg == "--top" && need_value(&value)) {
      if (!ParseIntFlag32(arg, value, 0, std::numeric_limits<int>::max(),
                          &opts->top)) {
        return false;
      }
      continue;
    }
    if (arg == "--explain" && need_value(&value)) {
      if (!ParseIntFlag32(arg, value, 0, std::numeric_limits<int>::max(),
                          &opts->explain)) {
        return false;
      }
      continue;
    }
    if (arg == "--threads" && need_value(&value)) {
      // Any non-positive value is normalized to the hardware default by
      // ResolveThreadCount; the parse only rejects non-numbers.
      if (!ParseIntFlag32(arg, value, std::numeric_limits<int>::min(),
                          std::numeric_limits<int>::max(), &opts->threads)) {
        return false;
      }
      continue;
    }
    if (arg == "--memory-budget" && need_value(&value)) {
      if (!ParseByteSizeFlag(arg, value, /*require_positive=*/true,
                             &opts->memory_budget)) {
        return false;
      }
      continue;
    }
    if (arg == "--sample-rows" && need_value(&value)) {
      if (!ParseSizeFlag(arg, value, 1,
                         std::numeric_limits<int64_t>::max(),
                         &opts->sample_rows)) {
        return false;
      }
      continue;
    }
    if (arg == "--spill-dir" && need_value(&opts->spill_dir)) continue;
    if (arg == "--segment-rows" && need_value(&value)) {
      if (!ParseSizeFlag(arg, value, 1,
                         std::numeric_limits<int64_t>::max(),
                         &opts->segment_rows)) {
        return false;
      }
      continue;
    }
    if (arg == "--rules") {
      opts->print_rules = true;
      continue;
    }
    if (arg == "--summary") {
      opts->print_summary = true;
      continue;
    }
    if (arg == "--lint") {
      opts->lint = true;
      continue;
    }
    std::fprintf(stderr, "unknown or incomplete argument: %s\n", arg.c_str());
    return false;
  }
  if (opts->schema_path.empty() || opts->data_path.empty()) {
    return false;
  }
  if (opts->lint && opts->rules_path.empty()) {
    std::fprintf(stderr, "--lint requires --rules-file\n");
    return false;
  }
  if (opts->on_error != "fail" && opts->on_error != "skip") {
    std::fprintf(stderr, "--on-error must be 'fail' or 'skip'\n");
    return false;
  }
  if (opts->history_max_runs > 0 && opts->history_dir.empty()) {
    std::fprintf(stderr, "--history-max-runs requires --history\n");
    return false;
  }
  if (opts->split_mode != "histogram" && opts->split_mode != "exact") {
    std::fprintf(stderr, "--split-mode must be 'histogram' or 'exact'\n");
    return false;
  }
  if (opts->memory_budget > 0) {
    // The streaming audit never holds the whole table, so every feature
    // that random-accesses it is off the table too.
    if (!opts->train_path.empty() || !opts->load_model_path.empty() ||
        !opts->corrected_path.empty() || !opts->rules_path.empty() ||
        opts->explain > 0 || opts->print_summary) {
      std::fprintf(stderr,
                   "--memory-budget is incompatible with --train, "
                   "--load-model, --corrected, --rules-file, --explain and "
                   "--summary\n");
      return false;
    }
  }
  return true;
}

Result<InducerKind> InducerFromName(const std::string& name) {
  if (name == "c45") return InducerKind::kC45;
  if (name == "naive-bayes") return InducerKind::kNaiveBayes;
  if (name == "knn") return InducerKind::kKnn;
  if (name == "oner") return InducerKind::kOneR;
  return Status::InvalidArgument("unknown inducer '" + name + "'");
}

int Fail(const Status& status) {
  DQ_LOG_ERROR("dqaudit", "%s", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) {
    Usage();
    return 2;
  }
  // Recording a handful of phase spans costs nothing measurable, and an
  // always-on tracer lets the timings line below report ingest through the
  // same span tree the exported trace shows.
  obs::Tracer::Global().SetEnabled(true);

  obs::RunManifest manifest = obs::MakeRunManifest("dqaudit", argc, argv);
  manifest.threads_requested = opts.threads;
  manifest.threads_used = ResolveThreadCount(opts.threads);
  (void)obs::AddInputFileHash(&manifest, "schema", opts.schema_path);
  (void)obs::AddInputFileHash(&manifest, "data", opts.data_path);
  if (!opts.train_path.empty()) {
    (void)obs::AddInputFileHash(&manifest, "train", opts.train_path);
  }
  if (!opts.rules_path.empty()) {
    (void)obs::AddInputFileHash(&manifest, "rules", opts.rules_path);
  }
  if (!opts.load_model_path.empty()) {
    (void)obs::AddInputFileHash(&manifest, "model", opts.load_model_path);
  }
  auto export_observability = [&opts, &manifest]() -> Status {
    manifest.StampWallClock();
    if (!opts.trace_out_path.empty()) {
      Status written = obs::Tracer::Global().WriteChromeTraceFile(
          opts.trace_out_path, &manifest);
      if (!written.ok()) return written;
      std::printf("wrote trace to %s\n", opts.trace_out_path.c_str());
    }
    if (!opts.metrics_out_path.empty()) {
      obs::SyncPoolMetrics();
      Status written = obs::MetricsRegistry::Global().WriteJsonFile(
          opts.metrics_out_path, &manifest);
      if (!written.ok()) return written;
      std::printf("wrote metrics to %s\n", opts.metrics_out_path.c_str());
    }
    return Status::OK();
  };

  // Run-history append (--history): one compact JSONL record per run for
  // dqmon's drift detection. Appended before the metrics/trace export so
  // the embedded metrics snapshot never depends on which export flags were
  // also given. Timing phases are recorded as 0 under a fixed test clock
  // (DQ_UTC_OVERRIDE_MS) so two identical runs yield byte-identical lines.
  auto append_history =
      [&opts, &manifest](
          uint64_t audited_records, const std::vector<Suspicion>& suspicious,
          std::vector<std::pair<std::string, uint64_t>> rule_violations,
          const AuditTimings& timings) -> Status {
    if (opts.history_dir.empty()) return Status::OK();
    manifest.StampWallClock();
    obs::HistoryRecord record;
    record.manifest = manifest;
    record.summary.records = audited_records;
    record.summary.suspicious = suspicious.size();
    record.summary.suspicion_rate =
        audited_records > 0
            ? static_cast<double>(suspicious.size()) /
                  static_cast<double>(audited_records)
            : 0.0;
    record.summary.rule_violations = std::move(rule_violations);
    const size_t top_k =
        std::min(suspicious.size(), obs::AuditSummary::kTopK);
    for (size_t i = 0; i < top_k; ++i) {
      record.summary.top_confidences.push_back(
          suspicious[i].error_confidence);
    }
    const bool fixed_clock = obs::EpochClockOverridden();
    record.summary.timings_ms = {
        {"ingest", fixed_clock ? 0.0 : timings.ingest_ms},
        {"induce", fixed_clock ? 0.0 : timings.induce_ms},
        {"audit", fixed_clock ? 0.0 : timings.audit_ms},
    };
    record.metrics = obs::MetricsRegistry::Global().Snapshot();
    obs::HistoryStore store(opts.history_dir);
    Status appended = store.Append(record);
    if (!appended.ok()) return appended;
    std::printf("appended history record to %s\n",
                store.ledger_path().c_str());
    if (opts.history_max_runs > 0) {
      size_t dropped_runs = 0;
      size_t dropped_damaged = 0;
      Status compacted = store.Compact(opts.history_max_runs, &dropped_runs,
                                       &dropped_damaged);
      if (!compacted.ok()) return compacted;
      if (dropped_runs > 0 || dropped_damaged > 0) {
        std::printf("compacted history ledger to newest %zu runs "
                    "(%zu old records, %zu damaged lines dropped)\n",
                    opts.history_max_runs, dropped_runs, dropped_damaged);
      }
    }
    return Status::OK();
  };

  auto schema = ParseSchemaSpecFile(opts.schema_path);
  if (!schema.ok()) return Fail(schema.status());
  // --format pins both inputs; otherwise each path's extension decides.
  IngestFormat data_format = InferIngestFormat(opts.data_path);
  IngestFormat train_format = InferIngestFormat(opts.train_path);
  if (!opts.format.empty()) {
    auto parsed_format = IngestFormatFromName(opts.format);
    if (!parsed_format.ok()) return Fail(parsed_format.status());
    data_format = *parsed_format;
    train_format = *parsed_format;
  }
  CsvOptions csv_options;
  csv_options.on_error = opts.on_error == "skip"
                             ? CsvErrorPolicy::kSkipAndReport
                             : CsvErrorPolicy::kFail;
  csv_options.num_threads = opts.threads;

  AuditorConfig config;
  config.min_error_confidence = opts.min_conf;
  config.confidence_level = opts.level;
  config.num_threads = opts.threads;
  auto kind = InducerFromName(opts.inducer);
  if (!kind.ok()) return Fail(kind.status());
  config.inducer = *kind;
  config.c45.split_mode = opts.split_mode == "exact" ? SplitMode::kExact
                                                     : SplitMode::kHistogram;

  // Out-of-core mode: one CSV pass feeds a spillable segment store and a
  // reservoir sample; induction runs on the sample, detection runs segment
  // by segment (audit/stream_audit.h). The ranked report is identical for
  // every budget value.
  if (opts.memory_budget > 0) {
    StreamAuditOptions stream;
    stream.sample_rows = opts.sample_rows;
    stream.store.segment_rows = opts.segment_rows;
    stream.store.memory_budget_bytes = opts.memory_budget;
    stream.store.spill_dir =
        opts.spill_dir.empty() ? opts.data_path + ".spill" : opts.spill_dir;
    stream.csv = csv_options;
    stream.format = data_format;
    stream.auditor = config;
    auto result = RunStreamingAudit(*schema, opts.data_path, stream);
    if (!result.ok()) return Fail(result.status());
    std::printf("streamed %zu records x %zu attributes from %s\n",
                result->total_rows, schema->num_attributes(),
                opts.data_path.c_str());
    std::printf("memory budget %llu bytes: %llu segments sealed, "
                "%llu spill writes (%llu bytes), %llu spill reads, "
                "peak resident %llu bytes\n",
                static_cast<unsigned long long>(opts.memory_budget),
                static_cast<unsigned long long>(
                    result->store_stats.segments_sealed),
                static_cast<unsigned long long>(
                    result->store_stats.spill_writes),
                static_cast<unsigned long long>(
                    result->store_stats.spill_bytes_written),
                static_cast<unsigned long long>(
                    result->store_stats.spill_reads),
                static_cast<unsigned long long>(
                    result->store_stats.resident_bytes_peak));
    if (result->ingest.HasErrors()) {
      std::printf("ingest: %s\n", result->ingest.Summary().c_str());
      std::fputs(result->ingest.RenderText().c_str(), stderr);
    }
    if (!opts.ingest_report_path.empty()) {
      Status written = result->ingest.WriteJsonFile(opts.ingest_report_path);
      if (!written.ok()) return Fail(written);
      std::printf("wrote ingest report to %s\n",
                  opts.ingest_report_path.c_str());
    }
    std::printf("induced on %zu sampled records (reservoir capacity %zu)\n",
                result->sampled_rows, opts.sample_rows);
    if (opts.print_rules) {
      std::printf("%s", RenderStructureModel(result->model, *schema).c_str());
    }
    if (!opts.save_model_path.empty()) {
      StructureModel structure =
          StructureModel::FromAuditModel(result->model, *schema);
      Status saved = structure.SaveToFile(opts.save_model_path);
      if (!saved.ok()) return Fail(saved);
      std::printf("persisted %zu rules to %s\n", structure.TotalRules(),
                  opts.save_model_path.c_str());
    }
    const AuditTimings& timings = result->timings;
    std::printf("timings (threads=%d): ingest %.1f ms, induce %.1f ms "
                "(encode %.1f ms, c4.5 presort %.1f ms, tree build %.1f ms), "
                "audit %.1f ms\n",
                timings.threads_used, timings.ingest_ms, timings.induce_ms,
                timings.encode_ms, timings.presort_ms, timings.tree_build_ms,
                timings.audit_ms);
    std::printf("%zu of %zu records suspicious at minimal error confidence "
                "%.2f\n",
                result->suspicious.size(), result->total_rows, opts.min_conf);
    const size_t limit = std::min<size_t>(result->suspicious.size(),
                                          static_cast<size_t>(opts.top));
    for (size_t i = 0; i < limit; ++i) {
      const Suspicion& s = result->suspicious[i];
      std::printf("  row %6zu  conf %.4f  %s = %s -> suggest %s (support "
                  "%.0f)\n",
                  s.row, s.error_confidence,
                  schema->attribute(static_cast<size_t>(s.attr)).name.c_str(),
                  schema->ValueToString(s.attr, s.observed).c_str(),
                  schema->ValueToString(s.attr, s.suggestion).c_str(),
                  s.support);
    }
    if (!opts.report_path.empty()) {
      Status written = WriteStreamAuditReportCsvFile(result->suspicious,
                                                     *schema,
                                                     opts.report_path);
      if (!written.ok()) return Fail(written);
      std::printf("wrote ranked report to %s\n", opts.report_path.c_str());
    }
    manifest.threads_used = timings.threads_used;
    Status history_appended = append_history(result->total_rows,
                                             result->suspicious, {}, timings);
    if (!history_appended.ok()) return Fail(history_appended);
    Status exported = export_observability();
    if (!exported.ok()) return Fail(exported);
    return 0;
  }

  IngestReport ingest;
  auto data = ReadTableFile(data_format, *schema, opts.data_path, csv_options,
                            &ingest);
  if (!data.ok()) {
    if (!opts.ingest_report_path.empty()) {
      (void)ingest.WriteJsonFile(opts.ingest_report_path);
    }
    return Fail(data.status());
  }
  std::printf("loaded %zu records x %zu attributes from %s\n",
              data->num_rows(), schema->num_attributes(),
              opts.data_path.c_str());
  if (ingest.HasErrors()) {
    std::printf("ingest: %s\n", ingest.Summary().c_str());
    std::fputs(ingest.RenderText().c_str(), stderr);
  }
  if (!opts.ingest_report_path.empty()) {
    Status written = ingest.WriteJsonFile(opts.ingest_report_path);
    if (!written.ok()) return Fail(written);
    std::printf("wrote ingest report to %s\n",
                opts.ingest_report_path.c_str());
  }

  // Expert-rule deviation check: deterministic violations of the
  // domain-expert dependencies, complementing the induced structure model.
  std::vector<std::pair<std::string, uint64_t>> rule_violation_counts;
  if (!opts.rules_path.empty()) {
    if (opts.lint) {
      Linter linter(&*schema);
      auto lint_result = linter.LintFileAt(opts.rules_path);
      if (!lint_result.ok()) return Fail(lint_result.status());
      std::fputs(RenderLintText(*lint_result, opts.rules_path).c_str(),
                 stderr);
      if (lint_result->HasErrors()) {
        DQ_LOG_ERROR("dqaudit",
                     "rule file rejected by lint; fix the errors above or "
                     "rerun without --lint");
        return 1;
      }
    }
    auto expert_rules = ParseRuleFileAt(*schema, opts.rules_path);
    if (!expert_rules.ok()) return Fail(expert_rules.status());
    size_t total_violations = 0;
    for (size_t ri = 0; ri < expert_rules->size(); ++ri) {
      const Rule& rule = (*expert_rules)[ri];
      size_t count = 0;
      size_t first = 0;
      for (size_t r = 0; r < data->num_rows(); ++r) {
        if (rule.Violates(data->row(r))) {
          if (count == 0) first = r;
          ++count;
        }
      }
      total_violations += count;
      rule_violation_counts.emplace_back(rule.ToString(*schema),
                                         static_cast<uint64_t>(count));
      if (count > 0) {
        std::printf("expert rule %zu violated by %zu rows (first: row %zu): "
                    "%s\n",
                    ri + 1, count, first, rule.ToString(*schema).c_str());
      }
    }
    std::printf("expert rules: %zu rules, %zu violating row/rule pairs\n",
                expert_rules->size(), total_violations);
  }

  Auditor auditor(config);

  // Checking via a persisted structure model needs no induction.
  if (!opts.load_model_path.empty()) {
    auto model = StructureModel::LoadFromFile(*schema, opts.load_model_path);
    if (!model.ok()) return Fail(model.status());
    auto report = model->Check(*data, config);
    if (!report.ok()) return Fail(report.status());
    std::printf("checked against %zu persisted rules: %zu suspicious "
                "records\n",
                model->TotalRules(), report->NumFlagged());
    const size_t limit = std::min<size_t>(report->suspicious.size(),
                                          static_cast<size_t>(opts.top));
    for (size_t i = 0; i < limit; ++i) {
      const Suspicion& s = report->suspicious[i];
      std::printf("  row %6zu  conf %.4f  %s = %s -> suggest %s\n", s.row,
                  s.error_confidence,
                  schema->attribute(static_cast<size_t>(s.attr)).name.c_str(),
                  schema->ValueToString(s.attr, s.observed).c_str(),
                  schema->ValueToString(s.attr, s.suggestion).c_str());
    }
    AuditTimings check_timings;
    check_timings.threads_used = manifest.threads_used;
    check_timings.ingest_ms = obs::Tracer::Global().AggregateMs("ingest");
    Status history_appended =
        append_history(data->num_rows(), report->suspicious,
                       std::move(rule_violation_counts), check_timings);
    if (!history_appended.ok()) return Fail(history_appended);
    Status exported = export_observability();
    if (!exported.ok()) return Fail(exported);
    return 0;
  }

  // Structure induction (on --train if given, else on the audit data).
  const Table* train = &*data;
  std::optional<Table> train_storage;
  IngestReport train_ingest;
  if (!opts.train_path.empty()) {
    auto loaded = ReadTableFile(train_format, *schema, opts.train_path,
                                csv_options, &train_ingest);
    if (!loaded.ok()) return Fail(loaded.status());
    if (train_ingest.HasErrors()) {
      std::printf("ingest (train): %s\n", train_ingest.Summary().c_str());
      std::fputs(train_ingest.RenderText().c_str(), stderr);
    }
    train_storage = std::move(*loaded);
    train = &*train_storage;
  }
  AuditTimings timings;
  // Every CSV read recorded an "ingest" span; summing the closed spans
  // makes the timings line agree with the exported trace (and covers the
  // --train read, which the old hand-added parse_ms pair got wrong when
  // either report was reused).
  timings.ingest_ms = obs::Tracer::Global().AggregateMs("ingest");
  auto model = auditor.Induce(*train, &timings);
  if (!model.ok()) return Fail(model.status());

  if (opts.print_rules) {
    std::printf("%s", RenderStructureModel(*model, *schema).c_str());
  }
  if (!opts.save_model_path.empty()) {
    StructureModel structure = StructureModel::FromAuditModel(*model, *schema);
    Status saved = structure.SaveToFile(opts.save_model_path);
    if (!saved.ok()) return Fail(saved);
    std::printf("persisted %zu rules to %s\n", structure.TotalRules(),
                opts.save_model_path.c_str());
  }

  auto report = auditor.Audit(*model, *data, &timings);
  if (!report.ok()) return Fail(report.status());
  std::printf("timings (threads=%d): ingest %.1f ms, induce %.1f ms "
              "(encode %.1f ms, c4.5 presort %.1f ms, tree build %.1f ms), "
              "audit %.1f ms\n",
              timings.threads_used, timings.ingest_ms, timings.induce_ms,
              timings.encode_ms, timings.presort_ms, timings.tree_build_ms,
              timings.audit_ms);
  std::printf("%zu of %zu records suspicious at minimal error confidence "
              "%.2f\n",
              report->NumFlagged(), data->num_rows(), opts.min_conf);
  const size_t limit = std::min<size_t>(report->suspicious.size(),
                                        static_cast<size_t>(opts.top));
  for (size_t i = 0; i < limit; ++i) {
    const Suspicion& s = report->suspicious[i];
    std::printf("  row %6zu  conf %.4f  %s = %s -> suggest %s (support "
                "%.0f)\n",
                s.row, s.error_confidence,
                schema->attribute(static_cast<size_t>(s.attr)).name.c_str(),
                schema->ValueToString(s.attr, s.observed).c_str(),
                schema->ValueToString(s.attr, s.suggestion).c_str(),
                s.support);
  }

  for (int i = 0; i < opts.explain &&
                  static_cast<size_t>(i) < report->suspicious.size();
       ++i) {
    auto detail =
        ExplainRecord(*model, *data, report->suspicious[static_cast<size_t>(i)].row,
                      config);
    if (detail.ok()) {
      std::printf("\n%s", RenderSuspicionDetail(*detail, *model, *data).c_str());
    }
  }

  if (opts.print_summary) {
    const AuditSummary summary = SummarizeReport(*report, *data);
    std::printf("\n%s\n", RenderAuditSummary(summary, *schema).c_str());
    std::printf("\ninduction time per attribute:\n");
    for (const auto& [attr, ms] : timings.induce_attr_ms) {
      std::printf("  %-12s %8.1f ms\n",
                  schema->attribute(static_cast<size_t>(attr)).name.c_str(),
                  ms);
    }
  }

  if (!opts.report_path.empty()) {
    Status written = WriteAuditReportCsvFile(*report, *data, opts.report_path);
    if (!written.ok()) return Fail(written);
    std::printf("wrote ranked report to %s\n", opts.report_path.c_str());
  }

  if (!opts.corrected_path.empty()) {
    auto corrected = auditor.ApplyCorrections(*report, *data);
    if (!corrected.ok()) return Fail(corrected.status());
    Status written = WriteCsvFile(*corrected, opts.corrected_path);
    if (!written.ok()) return Fail(written);
    std::printf("\nwrote corrected table to %s\n", opts.corrected_path.c_str());
  }

  manifest.threads_used = timings.threads_used;
  Status history_appended =
      append_history(data->num_rows(), report->suspicious,
                     std::move(rule_violation_counts), timings);
  if (!history_appended.ok()) return Fail(history_appended);
  Status exported = export_observability();
  if (!exported.ok()) return Fail(exported);
  return 0;
}
