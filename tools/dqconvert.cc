// dqconvert — converts tables between the CSV text format and the dqcol
// binary columnar format (docs/FORMATS.md), in either direction.
//
// Usage:
//   dqconvert --schema spec.txt --in table.csv --out table.dqcol
//
// Options:
//   --schema FILE      schema specification (see table/schema_spec.h)
//   --in FILE          input table
//   --out FILE         output table
//   --in-format FMT    csv | dqcol (default: infer from the --in extension)
//   --out-format FMT   csv | dqcol (default: infer from the --out extension)
//   --on-error MODE    fail (default): abort on the first malformed CSV
//                      record; skip: quarantine malformed records and
//                      convert the survivors
//   --threads N        decode threads for the CSV reader (default 0 =
//                      hardware concurrency; output is identical for every
//                      value)
//   --log-level LEVEL  debug | info | warn | error | off (default info)
//
// Conversion is lossless for kept records: a dqcol file stores exactly the
// decoded column values (doubles, category codes, day numbers, null
// bitmap), so csv -> dqcol -> csv reproduces the CSV writer's output and
// auditing either file yields a byte-identical report.

#include <cstdio>
#include <string>

#include "obs/log.h"
#include "table/csv.h"
#include "table/ingest_backend.h"
#include "table/schema_spec.h"
#include "flag_parse.h"

using namespace dq;

namespace {

struct Options {
  std::string schema_path;
  std::string in_path;
  std::string out_path;
  std::string in_format;   ///< "", "csv" or "dqcol"
  std::string out_format;  ///< "", "csv" or "dqcol"
  std::string on_error = "fail";
  int threads = 0;
};

void Usage() {
  std::fprintf(stderr,
               "usage: dqconvert --schema spec.txt --in in.csv --out "
               "out.dqcol\n"
               "  [--in-format csv|dqcol] [--out-format csv|dqcol]\n"
               "  [--on-error fail|skip] [--threads 0]\n"
               "  [--log-level debug|info|warn|error|off]\n");
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--schema" && need_value(&opts->schema_path)) continue;
    if (arg == "--in" && need_value(&opts->in_path)) continue;
    if (arg == "--out" && need_value(&opts->out_path)) continue;
    if (arg == "--in-format" && need_value(&opts->in_format)) continue;
    if (arg == "--out-format" && need_value(&opts->out_format)) continue;
    if (arg == "--on-error" && need_value(&opts->on_error)) continue;
    if (arg == "--threads" && need_value(&value)) {
      if (!ParseIntFlag32(arg, value, std::numeric_limits<int>::min(),
                          std::numeric_limits<int>::max(), &opts->threads)) {
        return false;
      }
      continue;
    }
    if (arg == "--log-level" && need_value(&value)) {
      if (!ParseLogLevelFlag(arg, value)) return false;
      continue;
    }
    std::fprintf(stderr, "unknown or incomplete argument: %s\n", arg.c_str());
    return false;
  }
  if (opts->schema_path.empty() || opts->in_path.empty() ||
      opts->out_path.empty()) {
    return false;
  }
  if (opts->on_error != "fail" && opts->on_error != "skip") {
    std::fprintf(stderr, "--on-error must be 'fail' or 'skip'\n");
    return false;
  }
  return true;
}

int Fail(const Status& status) {
  DQ_LOG_ERROR("dqconvert", "%s", status.ToString().c_str());
  return 1;
}

Result<IngestFormat> ResolveFormat(const std::string& flag,
                                   const std::string& path) {
  if (flag.empty()) return InferIngestFormat(path);
  return IngestFormatFromName(flag);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) {
    Usage();
    return 2;
  }

  auto schema = ParseSchemaSpecFile(opts.schema_path);
  if (!schema.ok()) return Fail(schema.status());
  auto in_format = ResolveFormat(opts.in_format, opts.in_path);
  if (!in_format.ok()) return Fail(in_format.status());
  auto out_format = ResolveFormat(opts.out_format, opts.out_path);
  if (!out_format.ok()) return Fail(out_format.status());

  CsvOptions csv_options;
  csv_options.on_error = opts.on_error == "skip"
                             ? CsvErrorPolicy::kSkipAndReport
                             : CsvErrorPolicy::kFail;
  csv_options.num_threads = opts.threads;

  IngestReport ingest;
  auto table =
      ReadTableFile(*in_format, *schema, opts.in_path, csv_options, &ingest);
  if (!table.ok()) return Fail(table.status());
  if (ingest.HasErrors()) {
    std::printf("ingest: %s\n", ingest.Summary().c_str());
    std::fputs(ingest.RenderText().c_str(), stderr);
  }

  Status written =
      WriteTableFile(*table, *out_format, opts.out_path, csv_options);
  if (!written.ok()) return Fail(written);
  std::printf("converted %zu records x %zu attributes: %s (%s) -> %s (%s)\n",
              table->num_rows(), schema->num_attributes(),
              opts.in_path.c_str(), IngestFormatToString(*in_format),
              opts.out_path.c_str(), IngestFormatToString(*out_format));
  return 0;
}
