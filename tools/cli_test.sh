#!/usr/bin/env bash
# End-to-end smoke test for the dqgen / dqaudit command-line tools:
# generate a benchmark database, pollute it, audit it, persist the structure
# model, and re-check against the persisted model.
set -euo pipefail

DQGEN="$1"
DQAUDIT="$2"
SPEC="$3"
TESTDATA="${4:-$(dirname "$SPEC")}"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$DQGEN" --schema "$SPEC" --records 3000 --rules 12 --seed 5 \
  --clean "$WORK/clean.csv" --dirty "$WORK/dirty.csv" \
  --log "$WORK/corruption.log" --truth "$WORK/truth.csv" --print-rules \
  > "$WORK/gen.out"
grep -q "generated 3000 records" "$WORK/gen.out"
grep -q "polluted" "$WORK/gen.out"
grep -q "rule: " "$WORK/gen.out"
test -s "$WORK/clean.csv"
test -s "$WORK/dirty.csv"
test -s "$WORK/corruption.log"
head -1 "$WORK/truth.csv" | grep -q "row,corrupted,origin"

"$DQAUDIT" --schema "$SPEC" --data "$WORK/dirty.csv" \
  --min-conf 0.8 --top 5 --explain 1 --rules --summary --threads 2 \
  --save-model "$WORK/model.dqmodel" --corrected "$WORK/corrected.csv" \
  --report "$WORK/report.csv" \
  > "$WORK/audit.out"
grep -q "audited [0-9]* records" "$WORK/audit.out"
grep -q "timings (threads=" "$WORK/audit.out"
grep -q "induction time per attribute" "$WORK/audit.out"
head -1 "$WORK/report.csv" | grep -q "rank,row,error_confidence"
grep -q "loaded [0-9]* records" "$WORK/audit.out"
grep -q "suspicious at minimal error confidence" "$WORK/audit.out"
grep -q "persisted" "$WORK/audit.out"
test -s "$WORK/model.dqmodel"
head -1 "$WORK/model.dqmodel" | grep -q "dqmodel v1"
test -s "$WORK/corrected.csv"

"$DQAUDIT" --schema "$SPEC" --data "$WORK/dirty.csv" \
  --load-model "$WORK/model.dqmodel" --min-conf 0.8 --top 3 --threads 2 \
  > "$WORK/check.out"
grep -q "checked against" "$WORK/check.out"

# Rule-set checking flags a subset of the tree audit: records with null
# path attributes match no exported rule (tree predictions blend branches
# instead). Allow that small gap, but never more flags than the audit.
AUDIT_N=$(grep -o "^[0-9]* of [0-9]* records suspicious" "$WORK/audit.out" | cut -d' ' -f1)
CHECK_N=$(grep -o "[0-9]* suspicious records" "$WORK/check.out" | cut -d' ' -f1)
if [ "$CHECK_N" -gt "$AUDIT_N" ]; then
  echo "model check flagged more ($CHECK_N) than the audit ($AUDIT_N)" >&2
  exit 1
fi
GAP=$((AUDIT_N - CHECK_N))
LIMIT=$((AUDIT_N / 4 + 3))
if [ "$GAP" -gt "$LIMIT" ]; then
  echo "model check lost too many flags: audit $AUDIT_N vs check $CHECK_N" >&2
  exit 1
fi

# Expert-written rule files drive the generator directly.
RULES="$(dirname "$SPEC")/parts.rules"
"$DQGEN" --schema "$SPEC" --records 2000 --rules-file "$RULES" --seed 8 \
  --clean "$WORK/expert_clean.csv" --print-rules > "$WORK/expert.out"
grep -q "rule: GROUP = G1 -> FAMILY = F2" "$WORK/expert.out"
grep -q "generated 2000 records following 4 rules" "$WORK/expert.out"

# The generator can verify its own output round-trips bitwise through the
# streaming reader.
"$DQGEN" --schema "$SPEC" --records 1500 --rules 8 --seed 9 \
  --clean "$WORK/rt_clean.csv" --dirty "$WORK/rt_dirty.csv" \
  --verify-roundtrip --ingest-report "$WORK/rt_ingest.json" \
  > "$WORK/rt.out"
grep -c "round-trip verified" "$WORK/rt.out" | grep -qx 2
grep -q '"records_quarantined": 0' "$WORK/rt_ingest.json"

# Dirty ingestion: strict mode refuses the shipped malformed extract ...
DIRTY_SPEC="$TESTDATA/quis.spec"
DIRTY_CSV="$TESTDATA/quis_dirty.csv"
if "$DQAUDIT" --schema "$DIRTY_SPEC" --data "$DIRTY_CSV" --top 3 \
    > /dev/null 2>&1; then
  echo "strict mode accepted the malformed extract" >&2
  exit 1
fi
# ... while quarantine-and-continue audits the survivors and reports
# exactly the injected records.
"$DQAUDIT" --schema "$DIRTY_SPEC" --data "$DIRTY_CSV" --on-error skip \
  --ingest-report "$WORK/ingest.json" --top 3 > "$WORK/dirty.out" \
  2> "$WORK/dirty.err"
grep -q "loaded 30 records" "$WORK/dirty.out"
grep -q "quarantined 4 of 34 records" "$WORK/dirty.out"
grep -q "suspicious at minimal error confidence" "$WORK/dirty.out"
grep -q "ingest [0-9.]* ms" "$WORK/dirty.out"
grep -q '"records_quarantined": 4' "$WORK/ingest.json"
grep -q '"arity-mismatch": 1' "$WORK/ingest.json"
grep -q '"stray-quote": 1' "$WORK/ingest.json"
grep -q '"bad-value": 1' "$WORK/ingest.json"
grep -q '"unterminated-quote": 1' "$WORK/ingest.json"

# The quarantine report is identical for every thread count (timings and
# thread counts aside).
"$DQAUDIT" --schema "$DIRTY_SPEC" --data "$DIRTY_CSV" --on-error skip \
  --ingest-report "$WORK/ingest_t4.json" --threads 4 --top 3 > /dev/null 2>&1
grep -v -e parse_ms -e threads_used "$WORK/ingest.json" > "$WORK/i1"
grep -v -e parse_ms -e threads_used "$WORK/ingest_t4.json" > "$WORK/i4"
diff "$WORK/i1" "$WORK/i4"

# --- Flag validation: malformed values are rejected with a diagnostic ---
# (not silently parsed as 0 the way atoi would).
expect_flag_error() {
  local needle="$1"; shift
  local rc=0
  "$@" > /dev/null 2> "$WORK/flag.err" || rc=$?
  if [ "$rc" -eq 0 ]; then
    echo "accepted malformed flag: $*" >&2
    exit 1
  fi
  if ! grep -q "$needle" "$WORK/flag.err"; then
    echo "missing diagnostic '$needle' for: $*" >&2
    cat "$WORK/flag.err" >&2
    exit 1
  fi
}

expect_flag_error "invalid value 'abc' for --threads" \
  "$DQAUDIT" --schema "$SPEC" --data "$WORK/dirty.csv" --threads abc
expect_flag_error "out of range" \
  "$DQAUDIT" --schema "$SPEC" --data "$WORK/dirty.csv" --min-conf 1.5
expect_flag_error "expected a byte count" \
  "$DQAUDIT" --schema "$SPEC" --data "$WORK/dirty.csv" --memory-budget 64Q
expect_flag_error "expected a byte count" \
  "$DQAUDIT" --schema "$SPEC" --data "$WORK/dirty.csv" --memory-budget -5
expect_flag_error "invalid value '10x' for --records" \
  "$DQGEN" --schema "$SPEC" --records 10x --clean "$WORK/x.csv"
expect_flag_error "invalid value 'junk' for --seed" \
  "$DQGEN" --schema "$SPEC" --records 100 --seed junk --clean "$WORK/x.csv"
# Zero and negative thread counts are normalized to the hardware default,
# not rejected.
"$DQAUDIT" --schema "$SPEC" --data "$WORK/dirty.csv" --threads -3 --top 1 \
  > "$WORK/tneg.out"
grep -q "records suspicious at minimal error confidence" "$WORK/tneg.out"

# --- Out-of-core path: chunked generation + memory-budgeted audit ---
QUIS_SPEC="$(dirname "$SPEC")/quis_full.spec"
"$DQGEN" --quis --records 6000 --seed 11 --clean "$WORK/quis.csv" \
  > /dev/null
"$DQGEN" --quis --records 6000 --seed 11 --chunk-rows 700 \
  --clean "$WORK/quis_chunked.csv" > "$WORK/chunkgen.out"
grep -q "generated 6000 QUIS engine-composition records in chunks of 700" \
  "$WORK/chunkgen.out"
# Chunked emission is bitwise identical to the one-shot table.
cmp "$WORK/quis.csv" "$WORK/quis_chunked.csv"

"$DQAUDIT" --schema "$QUIS_SPEC" --data "$WORK/quis.csv" --min-conf 0.8 \
  --top 3 --report "$WORK/quis_classic.csv" > /dev/null
# Tiny budget + small segments: the audit must spill and still produce an
# identical ranked report.
"$DQAUDIT" --schema "$QUIS_SPEC" --data "$WORK/quis.csv" --min-conf 0.8 \
  --top 3 --memory-budget 64K --segment-rows 500 \
  --spill-dir "$WORK/quis.spill" --report "$WORK/quis_stream.csv" \
  > "$WORK/stream.out"
grep -q "streamed 6000 records" "$WORK/stream.out"
grep -q "memory budget" "$WORK/stream.out"
cmp "$WORK/quis_classic.csv" "$WORK/quis_stream.csv"
# Spill files are scratch: gone once the audit exits.
if [ -e "$WORK/quis.spill" ]; then
  echo "spill dir survived the audit" >&2
  exit 1
fi

echo "cli round trip OK ($AUDIT_N suspicious records)"
