// dqgen — standalone benchmark-database generator (the test data generator
// of sec. 4 as a command-line tool).
//
// Usage:
//   dqgen --schema spec.txt --records 10000 --clean clean.csv [options]
//
// Options:
//   --schema FILE     schema specification (see table/schema_spec.h)
//   --records N       number of records to generate
//   --rules K         number of random natural rules (default 25)
//   --rules-file FILE use expert-written rules instead of random ones
//                     (one "premise -> consequent" per line, # comments)
//   --seed S          random seed (default 1)
//   --clean FILE      write the clean database
//   --dirty FILE      additionally pollute and write the dirty database
//   --format FMT      on-disk format of --clean/--dirty: csv or dqcol
//                     (default: infer from each path's extension — '.dqcol'
//                     means dqcol, anything else CSV). dqcol is the binary
//                     columnar format (docs/FORMATS.md); auditing a dqcol
//                     file yields a byte-identical report to its CSV twin.
//                     dqcol is write-once whole-table, so it is
//                     incompatible with --chunk-rows streaming
//   --factor F        pollution factor (default 1.0)
//   --log FILE        write the corruption log
//   --truth FILE      write per-dirty-row ground truth (row,corrupted,origin)
//   --quis            generate the synthetic QUIS engine-composition sample
//                     (sec. 6.2 surrogate) instead of a rule-driven
//                     database; --schema/--rules are ignored, the 8
//                     attributes come from MakeQuisSchema
//   --chunk-rows N    stream the QUIS sample to --clean N records at a
//                     time instead of building it in memory first — the
//                     multi-GB path for out-of-core audit experiments. The
//                     file is bitwise identical to the one-shot --quis
//                     output. Requires --quis; incompatible with --dirty,
//                     --truth, --log and --verify-roundtrip (they need the
//                     whole table in RAM)
//   --print-rules     print the generated rule set
//   --lint            run the dqlint check battery over the rule set before
//                     generating; lint errors abort with exit code 1
//   --verify-roundtrip  re-read every written file with the strict reader
//                     for its format and assert it is bitwise-identical to
//                     the in-memory table (guards the writer/reader pair)
//   --ingest-report F write the verification reader's ingest report as JSON
//   --trace-out FILE  write the span tree of the run as Chrome trace-event
//                     JSON (load in Perfetto / chrome://tracing)
//   --metrics-out FILE write the metrics registry snapshot as JSON
//   --log-level LEVEL debug | info | warn | error | off (default info)

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "flag_parse.h"

#include "lint/lint.h"
#include "logic/natural.h"
#include "logic/rule_parser.h"
#include "obs/log.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pollution/pipeline.h"
#include "quis/quis_sample.h"
#include "table/csv.h"
#include "table/ingest_backend.h"
#include "table/schema_spec.h"
#include "tdg/data_generator.h"
#include "tdg/rule_generator.h"

using namespace dq;

namespace {

struct Options {
  std::string schema_path;
  std::string rules_path;
  std::string clean_path;
  std::string dirty_path;
  std::string log_path;
  std::string truth_path;
  size_t records = 0;
  int rules = 25;
  uint64_t seed = 1;
  double factor = 1.0;
  size_t chunk_rows = 0;  ///< 0 = one-shot generation
  std::string format;     ///< "", "csv" or "dqcol"; "" = infer per path
  bool quis = false;
  bool print_rules = false;
  bool lint = false;
  bool verify_roundtrip = false;
  std::string ingest_report_path;
  std::string trace_out_path;
  std::string metrics_out_path;
};

void Usage() {
  std::fprintf(stderr,
               "usage: dqgen --schema spec.txt --records N --clean out.csv\n"
               "  [--quis] [--chunk-rows N] [--rules 25] [--seed 1]\n"
               "  [--dirty out.csv] [--format csv|dqcol] [--factor 1.0]\n"
               "  [--log corruption.log] [--truth truth.csv] [--print-rules]\n"
               "  [--rules-file rules.txt] [--lint] [--verify-roundtrip]\n"
               "  [--ingest-report report.json] [--trace-out trace.json]\n"
               "  [--metrics-out metrics.json]\n"
               "  [--log-level debug|info|warn|error|off]\n");
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--schema" && need_value(&opts->schema_path)) continue;
    if (arg == "--rules-file" && need_value(&opts->rules_path)) continue;
    if (arg == "--clean" && need_value(&opts->clean_path)) continue;
    if (arg == "--dirty" && need_value(&opts->dirty_path)) continue;
    if (arg == "--log" && need_value(&opts->log_path)) continue;
    if (arg == "--truth" && need_value(&opts->truth_path)) continue;
    if (arg == "--records" && need_value(&value)) {
      if (!ParseSizeFlag(arg, value, 1,
                         std::numeric_limits<int64_t>::max(),
                         &opts->records)) {
        return false;
      }
      continue;
    }
    if (arg == "--rules" && need_value(&value)) {
      if (!ParseIntFlag32(arg, value, 0, std::numeric_limits<int>::max(),
                          &opts->rules)) {
        return false;
      }
      continue;
    }
    if (arg == "--seed" && need_value(&value)) {
      int64_t seed = 0;
      if (!ParseIntFlag(arg, value, std::numeric_limits<int64_t>::min(),
                        std::numeric_limits<int64_t>::max(), &seed)) {
        return false;
      }
      opts->seed = static_cast<uint64_t>(seed);
      continue;
    }
    if (arg == "--factor" && need_value(&value)) {
      if (!ParseDoubleFlag(arg, value, 0.0, 1e6, &opts->factor)) {
        return false;
      }
      continue;
    }
    if (arg == "--chunk-rows" && need_value(&value)) {
      if (!ParseSizeFlag(arg, value, 1,
                         std::numeric_limits<int64_t>::max(),
                         &opts->chunk_rows)) {
        return false;
      }
      continue;
    }
    if (arg == "--format" && need_value(&opts->format)) continue;
    if (arg == "--quis") {
      opts->quis = true;
      continue;
    }
    if (arg == "--print-rules") {
      opts->print_rules = true;
      continue;
    }
    if (arg == "--lint") {
      opts->lint = true;
      continue;
    }
    if (arg == "--verify-roundtrip") {
      opts->verify_roundtrip = true;
      continue;
    }
    if (arg == "--ingest-report" && need_value(&opts->ingest_report_path)) {
      continue;
    }
    if (arg == "--trace-out" && need_value(&opts->trace_out_path)) continue;
    if (arg == "--metrics-out" && need_value(&opts->metrics_out_path)) {
      continue;
    }
    if (arg == "--log-level" && need_value(&value)) {
      if (!ParseLogLevelFlag(arg, value)) return false;
      continue;
    }
    std::fprintf(stderr, "unknown or incomplete argument: %s\n", arg.c_str());
    return false;
  }
  if (!opts->format.empty() && opts->format != "csv" &&
      opts->format != "dqcol") {
    std::fprintf(stderr, "--format must be 'csv' or 'dqcol'\n");
    return false;
  }
  if (opts->chunk_rows > 0) {
    if (!opts->quis) {
      std::fprintf(stderr, "--chunk-rows requires --quis\n");
      return false;
    }
    if (!opts->dirty_path.empty() || !opts->truth_path.empty() ||
        !opts->log_path.empty() || opts->verify_roundtrip) {
      std::fprintf(stderr,
                   "--chunk-rows is incompatible with --dirty, --truth, "
                   "--log and --verify-roundtrip\n");
      return false;
    }
    if (opts->format == "dqcol" ||
        (opts->format.empty() &&
         InferIngestFormat(opts->clean_path) == IngestFormat::kDqcol)) {
      std::fprintf(stderr,
                   "--chunk-rows streams CSV; dqcol is a write-once "
                   "whole-table format (generate CSV, then dqconvert)\n");
      return false;
    }
  }
  return (opts->quis || !opts->schema_path.empty()) && opts->records > 0 &&
         !opts->clean_path.empty();
}

int Fail(const Status& status) {
  DQ_LOG_ERROR("dqgen", "%s", status.ToString().c_str());
  return 1;
}

/// Re-reads `path` with the strict reader for its format and checks it
/// decodes bitwise-identically to the table that was just written there.
Status VerifyRoundTrip(const Schema& schema, const Table& original,
                       IngestFormat format, const std::string& path,
                       IngestReport* report) {
  auto back = ReadTableFile(format, schema, path, CsvOptions(), report);
  if (!back.ok()) return back.status();
  if (back->num_rows() != original.num_rows()) {
    return Status::Internal("round-trip of " + path + " read back " +
                            std::to_string(back->num_rows()) + " of " +
                            std::to_string(original.num_rows()) + " records");
  }
  for (size_t r = 0; r < original.num_rows(); ++r) {
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      if (!back->cell(r, a).StrictEquals(original.cell(r, a))) {
        return Status::Internal(
            "round-trip of " + path + " differs at row " + std::to_string(r) +
            ", attribute '" + schema.attribute(a).name + "'");
      }
    }
  }
  std::printf("round-trip verified: %s (%zu records bitwise-identical)\n",
              path.c_str(), original.num_rows());
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) {
    Usage();
    return 2;
  }
  obs::Tracer::Global().SetEnabled(true);

  obs::RunManifest manifest = obs::MakeRunManifest("dqgen", argc, argv);
  manifest.seed = opts.seed;
  (void)obs::AddInputFileHash(&manifest, "schema", opts.schema_path);
  if (!opts.rules_path.empty()) {
    (void)obs::AddInputFileHash(&manifest, "rules", opts.rules_path);
  }

  // --format pins both outputs; otherwise each path's extension decides.
  IngestFormat clean_format = InferIngestFormat(opts.clean_path);
  IngestFormat dirty_format = InferIngestFormat(opts.dirty_path);
  if (!opts.format.empty()) {
    auto parsed_format = IngestFormatFromName(opts.format);
    if (!parsed_format.ok()) return Fail(parsed_format.status());
    clean_format = *parsed_format;
    dirty_format = *parsed_format;
  }

  Schema schema;
  if (opts.quis) {
    schema = MakeQuisSchema();
  } else {
    auto parsed_schema = ParseSchemaSpecFile(opts.schema_path);
    if (!parsed_schema.ok()) return Fail(parsed_schema.status());
    schema = std::move(*parsed_schema);
  }

  IngestReport verify_report;
  auto finish = [&]() -> int {
    if (!opts.ingest_report_path.empty()) {
      Status dumped = verify_report.WriteJsonFile(opts.ingest_report_path);
      if (!dumped.ok()) return Fail(dumped);
      std::printf("wrote ingest report to %s\n",
                  opts.ingest_report_path.c_str());
    }
    manifest.StampWallClock();
    if (!opts.trace_out_path.empty()) {
      Status traced = obs::Tracer::Global().WriteChromeTraceFile(
          opts.trace_out_path, &manifest);
      if (!traced.ok()) return Fail(traced);
      std::printf("wrote trace to %s\n", opts.trace_out_path.c_str());
    }
    if (!opts.metrics_out_path.empty()) {
      obs::SyncPoolMetrics();
      Status dumped = obs::MetricsRegistry::Global().WriteJsonFile(
          opts.metrics_out_path, &manifest);
      if (!dumped.ok()) return Fail(dumped);
      std::printf("wrote metrics to %s\n", opts.metrics_out_path.c_str());
    }
    return 0;
  };

  std::vector<Rule> rules;
  Table clean;
  if (opts.quis && opts.chunk_rows > 0) {
    // Streaming QUIS synthesis: one RNG stream, chunk_rows records per
    // chunk, header written once — the file is bitwise identical to the
    // one-shot path, but peak memory is one chunk instead of the dataset.
    QuisConfig qcfg;
    qcfg.num_records = opts.records;
    qcfg.seed = opts.seed;
    auto gen = QuisStreamGenerator::Create(qcfg);
    if (!gen.ok()) return Fail(gen.status());
    std::ofstream out(opts.clean_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Fail(Status::IOError("cannot open '" + opts.clean_path +
                                  "' for writing"));
    }
    obs::Span span("quis.generate");
    CsvOptions write_options;
    Table chunk;
    size_t written_rows = 0;
    while (!gen->done()) {
      Status generated = gen->NextChunk(opts.chunk_rows, &chunk);
      if (!generated.ok()) return Fail(generated);
      write_options.write_header = written_rows == 0;
      Status written = WriteCsv(chunk, &out, write_options);
      if (!written.ok()) return Fail(written);
      written_rows += chunk.num_rows();
    }
    out.flush();
    if (!out) {
      return Fail(Status::IOError("short write to '" + opts.clean_path +
                                  "'"));
    }
    obs::GetCounter("tdg.records_generated")->Add(written_rows);
    std::printf("generated %zu QUIS engine-composition records in chunks of "
                "%zu (planted deviation at row %zu) -> %s\n",
                written_rows, opts.chunk_rows, gen->planted_deviation_row(),
                opts.clean_path.c_str());
    return finish();
  }
  if (opts.quis) {
    QuisConfig qcfg;
    qcfg.num_records = opts.records;
    qcfg.seed = opts.seed;
    auto sample = [&] {
      obs::Span span("quis.generate");
      return GenerateQuisSample(qcfg);
    }();
    if (!sample.ok()) return Fail(sample.status());
    clean = std::move(sample->table);
    obs::GetCounter("tdg.records_generated")->Add(clean.num_rows());
    Status written =
        WriteTableFile(clean, clean_format, opts.clean_path, CsvOptions());
    if (!written.ok()) return Fail(written);
    std::printf("generated %zu QUIS engine-composition records (planted "
                "deviation at row %zu) -> %s\n",
                clean.num_rows(), sample->planted_deviation_row,
                opts.clean_path.c_str());
  } else if (!opts.rules_path.empty()) {
    // The lint pre-pass rejects malformed rule files with actionable,
    // position-annotated diagnostics instead of silently generating
    // garbage data.
    if (opts.lint) {
      Linter linter(&schema);
      auto lint_result = linter.LintFileAt(opts.rules_path);
      if (!lint_result.ok()) return Fail(lint_result.status());
      std::fputs(RenderLintText(*lint_result, opts.rules_path).c_str(),
                 stderr);
      if (lint_result->HasErrors()) {
        DQ_LOG_ERROR("dqgen",
                     "rule file rejected by lint; fix the errors above or "
                     "rerun without --lint");
        return 1;
      }
    }
    auto parsed = ParseRuleFileAt(schema, opts.rules_path);
    if (!parsed.ok()) return Fail(parsed.status());
    rules = std::move(*parsed);
    // Expert-written rules are advisory-checked against the naturalness
    // conditions; contradictions would make generation impossible.
    NaturalnessChecker checker(&schema);
    auto natural = checker.IsNaturalRuleSet(rules);
    if (natural.ok() && !*natural) {
      DQ_LOG_WARN("dqgen",
                  "the rule set violates the naturalness conditions "
                  "(Definitions 4-6); generation may leave unresolved "
                  "records");
    }
  } else {
    RuleGenConfig rcfg;
    rcfg.num_rules = opts.rules;
    rcfg.seed = opts.seed;
    RuleGenerator rule_gen(&schema, rcfg);
    auto generated = [&] {
      obs::Span span("tdg.rules");
      return rule_gen.Generate();
    }();
    if (!generated.ok()) return Fail(generated.status());
    rules = std::move(*generated);
    if (opts.lint) {
      Linter linter(&schema);
      const LintResult lint_result = linter.LintRules(rules);
      std::fputs(RenderLintText(lint_result, "<generated>").c_str(), stderr);
      if (lint_result.HasErrors()) {
        DQ_LOG_ERROR("dqgen", "generated rule set failed lint");
        return 1;
      }
    }
  }
  if (opts.print_rules) {
    for (const Rule& r : rules) {
      std::printf("rule: %s\n", r.ToString(schema).c_str());
    }
  }

  if (!opts.quis) {
    std::vector<DistributionSpec> specs(schema.num_attributes(),
                                        DistributionSpec::Uniform());
    DataGenerator data_gen(&schema, specs, nullptr, rules);
    DataGenConfig dcfg;
    dcfg.num_records = opts.records;
    dcfg.seed = opts.seed ^ 0x9e3779b9ULL;
    auto data = [&] {
      obs::Span span("tdg.generate");
      return data_gen.Generate(dcfg);
    }();
    if (!data.ok()) return Fail(data.status());
    clean = std::move(data->table);
    obs::GetCounter("tdg.records_generated")->Add(clean.num_rows());
    Status written =
        WriteTableFile(clean, clean_format, opts.clean_path, CsvOptions());
    if (!written.ok()) return Fail(written);
    std::printf("generated %zu records following %zu rules -> %s\n",
                clean.num_rows(), rules.size(), opts.clean_path.c_str());
  }

  if (opts.verify_roundtrip) {
    Status verified = VerifyRoundTrip(schema, clean, clean_format,
                                      opts.clean_path, &verify_report);
    if (!verified.ok()) return Fail(verified);
  }

  if (opts.dirty_path.empty()) return finish();

  PollutionPipeline pipeline(DefaultPolluterMix(), opts.seed ^ 0x51ULL,
                             opts.factor);
  auto polluted = [&] {
    obs::Span span("pollute");
    return pipeline.Apply(clean);
  }();
  if (!polluted.ok()) return Fail(polluted.status());
  obs::GetCounter("pollute.records_corrupted")->Add(polluted->CorruptedCount());
  Status written = WriteTableFile(polluted->dirty, dirty_format,
                                  opts.dirty_path, CsvOptions());
  if (!written.ok()) return Fail(written);
  std::printf("polluted %zu of %zu records (factor %.2f) -> %s\n",
              polluted->CorruptedCount(), polluted->dirty.num_rows(),
              opts.factor, opts.dirty_path.c_str());
  if (opts.verify_roundtrip) {
    Status verified = VerifyRoundTrip(schema, polluted->dirty, dirty_format,
                                      opts.dirty_path, &verify_report);
    if (!verified.ok()) return Fail(verified);
  }

  if (!opts.log_path.empty()) {
    std::ofstream log(opts.log_path);
    if (!log) return Fail(Status::IOError("cannot open " + opts.log_path));
    for (const CorruptionEvent& ev : polluted->log) {
      log << ev.ToString(schema) << '\n';
    }
  }
  if (!opts.truth_path.empty()) {
    std::ofstream truth(opts.truth_path);
    if (!truth) return Fail(Status::IOError("cannot open " + opts.truth_path));
    truth << "row,corrupted,origin\n";
    for (size_t r = 0; r < polluted->dirty.num_rows(); ++r) {
      truth << r << ',' << (polluted->is_corrupted[r] ? 1 : 0) << ','
            << polluted->origin[r] << '\n';
    }
  }
  return finish();
}
