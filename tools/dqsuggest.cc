// dqsuggest — mined-rule static analysis: turns induced models into
// candidate TDG-rules, lints them, reconciles them against an expert rule
// program and reduces the survivors to a greedy confidence-ranked minimal
// cover. Every dropped candidate is justified by a DQ03x diagnostic.
//
// Usage:
//   dqsuggest --schema spec.txt --data table.csv [options]
//
// Options:
//   --schema FILE       schema specification (see table/schema_spec.h)
//   --data FILE         CSV training data (header row required)
//   --source KIND       candidate sources: c45 | assoc | both (default both)
//   --expert-rules FILE expert TDG-rule program; candidates contradicting it
//                       are dropped with DQ033, candidates it already
//                       implies with DQ040
//   --min-confidence X  confidence floor, DQ037 below (default 0.85)
//   --min-support N     premise+consequent support-count floor, DQ035 below
//                       (default 2)
//   --max-rules N       cap on accepted rules, DQ039 beyond (0 = unlimited)
//   --emit FILE         write the accepted cover as an annotated rule file
//                       that dqlint, dqaudit --rules-file and dqgen accept
//                       unchanged
//   --format MODE       text (default) or json
//   --assoc-min-support X     absolute itemset-support floor for the
//                             association miner (default 50)
//   --assoc-min-confidence X  confidence floor for the association miner
//                             (default 0.9)
//   --threads N         worker threads for induction (default 0 = hardware
//                       concurrency; any non-positive value means the
//                       hardware default; results are identical for every
//                       count)
//   --on-error MODE     fail (default) or skip malformed CSV records
//   --trace-out FILE    write the span tree as Chrome trace-event JSON
//   --metrics-out FILE  write the metrics registry snapshot as JSON
//   --log-level LEVEL   debug | info | warn | error | off (default info)

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "audit/auditor.h"
#include "audit/rule_export.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "lint/suggest.h"
#include "logic/rule_parser.h"
#include "mining/assoc_rules.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "table/csv.h"
#include "table/schema_spec.h"
#include "flag_parse.h"

using namespace dq;

namespace {

struct Options {
  std::string schema_path;
  std::string data_path;
  std::string expert_path;
  std::string emit_path;
  std::string source = "both";
  std::string format = "text";
  std::string on_error = "fail";
  std::string trace_out_path;
  std::string metrics_out_path;
  double min_confidence = 0.85;
  size_t min_support = 2;
  size_t max_rules = 0;
  double assoc_min_support = 50.0;
  double assoc_min_confidence = 0.9;
  int threads = 0;
};

void Usage() {
  std::fprintf(stderr,
               "usage: dqsuggest --schema spec.txt --data table.csv\n"
               "  [--source c45|assoc|both] [--expert-rules r.rules]\n"
               "  [--min-confidence 0.85] [--min-support 2] [--max-rules 0]\n"
               "  [--emit suggested.rules] [--format text|json]\n"
               "  [--assoc-min-support 50] [--assoc-min-confidence 0.9]\n"
               "  [--threads 0] [--on-error fail|skip]\n"
               "  [--trace-out trace.json] [--metrics-out metrics.json]\n"
               "  [--log-level debug|info|warn|error|off]\n");
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--schema" && need_value(&opts->schema_path)) continue;
    if (arg == "--data" && need_value(&opts->data_path)) continue;
    if (arg == "--expert-rules" && need_value(&opts->expert_path)) continue;
    if (arg == "--emit" && need_value(&opts->emit_path)) continue;
    if (arg == "--source" && need_value(&opts->source)) continue;
    if (arg == "--format" && need_value(&opts->format)) continue;
    if (arg == "--on-error" && need_value(&opts->on_error)) continue;
    if (arg == "--trace-out" && need_value(&opts->trace_out_path)) continue;
    if (arg == "--metrics-out" && need_value(&opts->metrics_out_path)) {
      continue;
    }
    if (arg == "--log-level" && need_value(&value)) {
      if (!ParseLogLevelFlag(arg, value)) return false;
      continue;
    }
    if (arg == "--min-confidence" && need_value(&value)) {
      if (!ParseDoubleFlag(arg, value, 0.0, 1.0, &opts->min_confidence)) {
        return false;
      }
      continue;
    }
    if (arg == "--min-support" && need_value(&value)) {
      if (!ParseSizeFlag(arg, value, 0,
                         std::numeric_limits<int64_t>::max(),
                         &opts->min_support)) {
        return false;
      }
      continue;
    }
    if (arg == "--max-rules" && need_value(&value)) {
      if (!ParseSizeFlag(arg, value, 0,
                         std::numeric_limits<int64_t>::max(),
                         &opts->max_rules)) {
        return false;
      }
      continue;
    }
    if (arg == "--assoc-min-support" && need_value(&value)) {
      if (!ParseDoubleFlag(arg, value, 0.0, 1.0,
                           &opts->assoc_min_support)) {
        return false;
      }
      continue;
    }
    if (arg == "--assoc-min-confidence" && need_value(&value)) {
      if (!ParseDoubleFlag(arg, value, 0.0, 1.0,
                           &opts->assoc_min_confidence)) {
        return false;
      }
      continue;
    }
    if (arg == "--threads" && need_value(&value)) {
      // Non-positive values mean the hardware default (ResolveThreadCount).
      if (!ParseIntFlag32(arg, value, std::numeric_limits<int>::min(),
                          std::numeric_limits<int>::max(), &opts->threads)) {
        return false;
      }
      continue;
    }
    std::fprintf(stderr, "unknown or incomplete argument: %s\n", arg.c_str());
    return false;
  }
  if (opts->schema_path.empty() || opts->data_path.empty()) return false;
  if (opts->source != "c45" && opts->source != "assoc" &&
      opts->source != "both") {
    std::fprintf(stderr, "--source must be c45, assoc or both\n");
    return false;
  }
  if (opts->format != "text" && opts->format != "json") {
    std::fprintf(stderr, "--format must be text or json\n");
    return false;
  }
  if (opts->on_error != "fail" && opts->on_error != "skip") {
    std::fprintf(stderr, "--on-error must be 'fail' or 'skip'\n");
    return false;
  }
  return true;
}

int Fail(const Status& status) {
  DQ_LOG_ERROR("dqsuggest", "%s", status.ToString().c_str());
  return 1;
}

std::string RenderSuggestJson(const Options& opts, const SuggestResult& result,
                              const Schema& schema) {
  std::string out = "{\n";
  out += "  \"tool\": \"dqsuggest\",\n";
  out += "  \"data\": \"" + obs::JsonEscape(opts.data_path) + "\",\n";
  out += "  \"num_candidates\": " + std::to_string(result.num_candidates) +
         ",\n";
  out += "  \"num_accepted\": " + std::to_string(result.accepted.size()) +
         ",\n";
  out += "  \"num_filtered\": " + std::to_string(result.num_filtered) + ",\n";
  out += "  \"num_invalid\": " + std::to_string(result.num_invalid) + ",\n";
  out += "  \"num_conflicts\": " + std::to_string(result.num_conflicts) +
         ",\n";
  out += "  \"num_subsumed\": " + std::to_string(result.num_subsumed) + ",\n";
  out += "  \"num_truncated\": " + std::to_string(result.num_truncated) +
         ",\n";
  out += "  \"accepted\": [\n";
  for (size_t i = 0; i < result.accepted.size(); ++i) {
    const CandidateRule& c = result.accepted[i];
    out += "    {\"rule\": \"" +
           obs::JsonEscape(RenderRuleSource(c.rule, schema)) +
           "\", \"confidence\": " + FormatDouble(c.confidence, 6) +
           ", \"support_count\": " + std::to_string(c.support_count) +
           ", \"coverage\": " + FormatDouble(c.coverage, 6) +
           ", \"source\": \"" + obs::JsonEscape(c.source) + "\"}";
    out += i + 1 < result.accepted.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  out += "  \"diagnostics\": " +
         RenderLintJson(result.diagnostics, "<candidates>") + "\n";
  out += "}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) {
    Usage();
    return 2;
  }
  obs::Tracer::Global().SetEnabled(true);

  obs::RunManifest manifest = obs::MakeRunManifest("dqsuggest", argc, argv);
  manifest.threads_requested = opts.threads;
  manifest.threads_used = ResolveThreadCount(opts.threads);
  (void)obs::AddInputFileHash(&manifest, "schema", opts.schema_path);
  (void)obs::AddInputFileHash(&manifest, "data", opts.data_path);
  if (!opts.expert_path.empty()) {
    (void)obs::AddInputFileHash(&manifest, "expert-rules", opts.expert_path);
  }

  auto schema = ParseSchemaSpecFile(opts.schema_path);
  if (!schema.ok()) return Fail(schema.status());
  CsvOptions csv_options;
  csv_options.on_error = opts.on_error == "skip"
                             ? CsvErrorPolicy::kSkipAndReport
                             : CsvErrorPolicy::kFail;
  csv_options.num_threads = opts.threads;
  IngestReport ingest;
  auto data = ReadCsvFile(*schema, opts.data_path, csv_options, &ingest);
  if (!data.ok()) return Fail(data.status());
  if (ingest.HasErrors()) {
    std::fputs(ingest.RenderText().c_str(), stderr);
  }
  std::fprintf(stderr, "loaded %zu records x %zu attributes from %s\n",
               data->num_rows(), schema->num_attributes(),
               opts.data_path.c_str());
  const double total_rows = static_cast<double>(data->num_rows());

  // Candidate extraction: C4.5 path rules and/or association rules.
  std::vector<CandidateRule> candidates;
  if (opts.source == "c45" || opts.source == "both") {
    obs::Span span("suggest.extract_c45");
    AuditorConfig config;
    config.inducer = InducerKind::kC45;
    config.num_threads = opts.threads;
    Auditor auditor(config);
    auto model = auditor.Induce(*data, nullptr);
    if (!model.ok()) return Fail(model.status());
    std::vector<CandidateRule> extracted =
        ExtractCandidateRules(*model, *schema, total_rows);
    std::fprintf(stderr, "c45: %zu convertible path rules\n",
                 extracted.size());
    for (CandidateRule& c : extracted) candidates.push_back(std::move(c));
  }
  if (opts.source == "assoc" || opts.source == "both") {
    obs::Span span("suggest.extract_assoc");
    AssocMinerConfig config;
    config.min_support = opts.assoc_min_support;
    config.min_confidence = opts.assoc_min_confidence;
    AssociationRuleAuditor miner(config);
    Status mined = miner.Mine(*data);
    if (!mined.ok()) return Fail(mined);
    std::vector<CandidateRule> extracted =
        AssociationCandidates(miner.rules(), *schema, total_rows);
    std::fprintf(stderr, "assoc: %zu mined rules\n", extracted.size());
    for (CandidateRule& c : extracted) candidates.push_back(std::move(c));
  }

  // Expert rule program (lenient parse; malformed lines become DQ001-level
  // parse errors of *that* file and abort — a broken expert file must not
  // silently weaken the conflict check).
  std::vector<ParsedRule> expert;
  if (!opts.expert_path.empty()) {
    auto parse = ParseRuleFileLenientAt(*schema, opts.expert_path);
    if (!parse.ok()) return Fail(parse.status());
    if (!parse->errors.empty()) {
      for (const ParseError& e : parse->errors) {
        std::fprintf(stderr, "%s: %s\n", opts.expert_path.c_str(),
                     e.Render().c_str());
      }
      return Fail(Status::InvalidArgument(
          "expert rule file has " + std::to_string(parse->errors.size()) +
          " parse error(s)"));
    }
    expert = std::move(parse->rules);
    std::fprintf(stderr, "expert: %zu rules from %s\n", expert.size(),
                 opts.expert_path.c_str());
  }

  SuggestOptions suggest_options;
  suggest_options.min_confidence = opts.min_confidence;
  suggest_options.min_support_count = opts.min_support;
  suggest_options.max_rules = opts.max_rules;
  SuggestEngine engine(&*schema, suggest_options);
  const SuggestResult result = engine.Analyze(candidates, expert);

  if (opts.format == "json") {
    std::fputs(RenderSuggestJson(opts, result, *schema).c_str(), stdout);
  } else {
    std::fputs(RenderLintText(result.diagnostics, "<candidates>").c_str(),
               stderr);
    std::printf("dqsuggest: %zu candidates -> %zu accepted "
                "(%zu filtered, %zu invalid, %zu conflicts, %zu subsumed, "
                "%zu truncated)\n",
                result.num_candidates, result.accepted.size(),
                result.num_filtered, result.num_invalid, result.num_conflicts,
                result.num_subsumed, result.num_truncated);
    for (const CandidateRule& c : result.accepted) {
      std::printf("  [conf %s, support %zu] %s\n",
                  FormatDouble(c.confidence, 3).c_str(), c.support_count,
                  RenderRuleSource(c.rule, *schema).c_str());
    }
  }

  if (!opts.emit_path.empty()) {
    const std::string header =
        "suggested rules mined from " + opts.data_path +
        (opts.expert_path.empty() ? std::string()
                                  : " (reconciled against " +
                                        opts.expert_path + ")");
    const std::string text =
        RenderSuggestedRuleFile(result.accepted, *schema, header);
    std::ofstream out(opts.emit_path);
    if (!out || !(out << text)) {
      return Fail(Status::IOError("cannot write " + opts.emit_path));
    }
    out.close();
    std::fprintf(stderr, "emitted %zu rules to %s\n", result.accepted.size(),
                 opts.emit_path.c_str());
  }

  manifest.StampWallClock();
  if (!opts.trace_out_path.empty()) {
    Status traced = obs::Tracer::Global().WriteChromeTraceFile(
        opts.trace_out_path, &manifest);
    if (!traced.ok()) return Fail(traced);
  }
  if (!opts.metrics_out_path.empty()) {
    obs::SyncPoolMetrics();
    Status dumped = obs::MetricsRegistry::Global().WriteJsonFile(
        opts.metrics_out_path, &manifest);
    if (!dumped.ok()) return Fail(dumped);
  }
  return 0;
}
