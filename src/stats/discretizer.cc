#include "stats/discretizer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/strings.h"
#include "stats/descriptive.h"

namespace dq {

Result<EqualFrequencyDiscretizer> EqualFrequencyDiscretizer::Fit(
    std::vector<double> sample, int max_bins) {
  if (sample.empty()) {
    return Status::InvalidArgument("cannot fit discretizer on empty sample");
  }
  if (max_bins < 1) {
    return Status::InvalidArgument("max_bins must be >= 1");
  }
  std::sort(sample.begin(), sample.end());

  EqualFrequencyDiscretizer d;
  const size_t n = sample.size();
  const size_t bins = std::min<size_t>(static_cast<size_t>(max_bins), n);

  // Candidate cut points at equal-frequency quantiles, skipping duplicates
  // (a cut must fall strictly between two distinct sample values, so equal
  // values always share a bin).
  for (size_t b = 1; b < bins; ++b) {
    const size_t idx = b * n / bins;
    if (idx == 0 || idx >= n) continue;
    const double lo = sample[idx - 1];
    const double hi = sample[idx];
    if (hi > lo) {
      const double cut = (lo + hi) / 2.0;
      if (d.cuts_.empty() || cut > d.cuts_.back()) d.cuts_.push_back(cut);
    }
  }

  // Representatives: median of each bin's members.
  std::vector<double> members;
  size_t i = 0;
  for (size_t b = 0; b <= d.cuts_.size(); ++b) {
    members.clear();
    const double upper =
        b < d.cuts_.size() ? d.cuts_[b] : std::numeric_limits<double>::infinity();
    while (i < n && sample[i] <= upper) {
      members.push_back(sample[i]);
      ++i;
    }
    d.representatives_.push_back(members.empty() ? upper : Median(members));
  }
  return d;
}

Result<EqualFrequencyDiscretizer> EqualFrequencyDiscretizer::FromParts(
    std::vector<double> cuts, std::vector<double> representatives) {
  if (representatives.empty()) {
    return Status::InvalidArgument("discretizer needs at least one bin");
  }
  if (cuts.size() + 1 != representatives.size()) {
    return Status::InvalidArgument(
        "cut count must be one less than representative count");
  }
  for (size_t i = 1; i < cuts.size(); ++i) {
    if (!(cuts[i - 1] < cuts[i])) {
      return Status::InvalidArgument("cut points must be strictly ascending");
    }
  }
  EqualFrequencyDiscretizer d;
  d.cuts_ = std::move(cuts);
  d.representatives_ = std::move(representatives);
  return d;
}

int EqualFrequencyDiscretizer::BinOf(double x) const {
  // First bin whose upper cut is >= x.
  auto it = std::lower_bound(cuts_.begin(), cuts_.end(), x);
  return static_cast<int>(it - cuts_.begin());
}

std::string EqualFrequencyDiscretizer::BinLabel(int bin) const {
  std::string lo = bin == 0 ? "-inf" : FormatDouble(cuts_[bin - 1], 4);
  std::string hi = bin == static_cast<int>(cuts_.size())
                       ? "+inf"
                       : FormatDouble(cuts_[bin], 4);
  return "(" + lo + ", " + hi + "]";
}

}  // namespace dq
