#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

namespace dq {

namespace {

// x * log2(x) for the integers [0, kXLog2TableSize). Entry i is computed
// with the exact expression the slow path uses, so table hits and misses
// are bitwise-identical.
constexpr size_t kXLog2TableSize = 1 << 16;

const double* XLog2Table() {
  static const std::vector<double> table = [] {
    std::vector<double> t(kXLog2TableSize, 0.0);
    for (size_t i = 2; i < kXLog2TableSize; ++i) {
      const double x = static_cast<double>(i);
      t[i] = x * std::log2(x);
    }
    return t;
  }();
  return table.data();
}

}  // namespace

double XLog2X(double x) {
  if (x <= 1.0) {
    // 0 and 1 both map to 0; fractions fall through to the slow path.
    if (x <= 0.0 || x == 1.0) return 0.0;
    return x * std::log2(x);
  }
  if (x < static_cast<double>(kXLog2TableSize)) {
    const size_t i = static_cast<size_t>(x);
    if (static_cast<double>(i) == x) return XLog2Table()[i];
  }
  return x * std::log2(x);
}

double EntropyBits(const double* counts, size_t n) {
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (counts[i] > 0.0) total += counts[i];
  }
  if (total <= 0.0) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (counts[i] > 0.0) sum += XLog2X(counts[i]);
  }
  const double h = (XLog2X(total) - sum) / total;
  return h > 0.0 ? h : 0.0;
}

double EntropyFromCounts(const std::vector<double>& counts) {
  return EntropyBits(counts.data(), counts.size());
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double SampleStdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double Median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<long>(mid), xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  double lo = *std::max_element(xs.begin(), xs.begin() + static_cast<long>(mid));
  return (lo + hi) / 2.0;
}

}  // namespace dq
