#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

namespace dq {

double EntropyFromCounts(const std::vector<double>& counts) {
  double total = 0.0;
  for (double c : counts) {
    if (c > 0.0) total += c;
  }
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double c : counts) {
    if (c > 0.0) {
      const double p = c / total;
      h -= p * std::log2(p);
    }
  }
  return h;
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double SampleStdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double Median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<long>(mid), xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  double lo = *std::max_element(xs.begin(), xs.begin() + static_cast<long>(mid));
  return (lo + hi) / 2.0;
}

}  // namespace dq
