#include "stats/distribution.h"

#include <algorithm>
#include <cmath>

namespace dq {

const char* DistributionKindToString(DistributionKind k) {
  switch (k) {
    case DistributionKind::kUniform:
      return "uniform";
    case DistributionKind::kCategorical:
      return "categorical";
    case DistributionKind::kNormal:
      return "normal";
    case DistributionKind::kExponential:
      return "exponential";
  }
  return "unknown";
}

Status ValidateDistribution(const DistributionSpec& spec,
                            const AttributeDef& attr) {
  if (spec.null_prob < 0.0 || spec.null_prob > 1.0) {
    return Status::InvalidArgument("null_prob outside [0,1]");
  }
  switch (spec.kind) {
    case DistributionKind::kUniform:
      return Status::OK();
    case DistributionKind::kCategorical: {
      if (attr.type != DataType::kNominal) {
        return Status::InvalidArgument(
            "categorical distribution requires nominal attribute '" +
            attr.name + "'");
      }
      if (spec.weights.size() != attr.categories.size()) {
        return Status::InvalidArgument(
            "weight count " + std::to_string(spec.weights.size()) +
            " != category count " + std::to_string(attr.categories.size()) +
            " for '" + attr.name + "'");
      }
      double total = 0.0;
      for (double w : spec.weights) {
        if (w < 0.0) {
          return Status::InvalidArgument("negative categorical weight");
        }
        total += w;
      }
      if (total <= 0.0) {
        return Status::InvalidArgument("all-zero categorical weights");
      }
      return Status::OK();
    }
    case DistributionKind::kNormal:
      if (spec.stddev_fraction <= 0.0) {
        return Status::InvalidArgument("normal stddev_fraction must be > 0");
      }
      return Status::OK();
    case DistributionKind::kExponential:
      if (spec.rate <= 0.0) {
        return Status::InvalidArgument("exponential rate must be > 0");
      }
      return Status::OK();
  }
  return Status::Internal("unreachable distribution kind");
}

namespace {

/// Width of the ordered axis for an attribute (category count for nominal).
double DomainWidth(const AttributeDef& attr) {
  switch (attr.type) {
    case DataType::kNominal:
      return static_cast<double>(attr.categories.size());
    case DataType::kNumeric:
      return attr.numeric_max - attr.numeric_min;
    case DataType::kDate:
      return static_cast<double>(attr.date_max - attr.date_min);
  }
  return 0.0;
}

double DomainMin(const AttributeDef& attr) {
  switch (attr.type) {
    case DataType::kNominal:
      return 0.0;
    case DataType::kNumeric:
      return attr.numeric_min;
    case DataType::kDate:
      return static_cast<double>(attr.date_min);
  }
  return 0.0;
}

/// Converts a point on the ordered axis into an in-domain Value.
Value AxisToValue(double x, const AttributeDef& attr) {
  switch (attr.type) {
    case DataType::kNominal: {
      const double max_code = static_cast<double>(attr.categories.size()) - 1.0;
      double code = std::clamp(std::floor(x), 0.0, max_code);
      return Value::Nominal(static_cast<int32_t>(code));
    }
    case DataType::kNumeric:
      return Value::Numeric(std::clamp(x, attr.numeric_min, attr.numeric_max));
    case DataType::kDate: {
      double days = std::clamp(std::round(x), static_cast<double>(attr.date_min),
                               static_cast<double>(attr.date_max));
      return Value::Date(static_cast<int32_t>(days));
    }
  }
  return Value::Null();
}

Value SampleUniform(const AttributeDef& attr, Rng* rng) {
  switch (attr.type) {
    case DataType::kNominal:
      return Value::Nominal(static_cast<int32_t>(rng->UniformInt(
          0, static_cast<int64_t>(attr.categories.size()) - 1)));
    case DataType::kNumeric:
      return Value::Numeric(rng->UniformReal(attr.numeric_min, attr.numeric_max));
    case DataType::kDate:
      return Value::Date(
          static_cast<int32_t>(rng->UniformInt(attr.date_min, attr.date_max)));
  }
  return Value::Null();
}

}  // namespace

Value SampleValue(const DistributionSpec& spec, const AttributeDef& attr,
                  Rng* rng) {
  if (spec.null_prob > 0.0 && rng->Bernoulli(spec.null_prob)) {
    return Value::Null();
  }
  switch (spec.kind) {
    case DistributionKind::kUniform:
      return SampleUniform(attr, rng);
    case DistributionKind::kCategorical: {
      if (attr.type != DataType::kNominal ||
          spec.weights.size() != attr.categories.size()) {
        return SampleUniform(attr, rng);  // defensive fallback
      }
      return Value::Nominal(static_cast<int32_t>(rng->WeightedIndex(spec.weights)));
    }
    case DistributionKind::kNormal: {
      const double width = DomainWidth(attr);
      const double mean = DomainMin(attr) + spec.mean_fraction * width;
      const double sd = std::max(spec.stddev_fraction * width, 1e-12);
      return AxisToValue(rng->Normal(mean, sd), attr);
    }
    case DistributionKind::kExponential: {
      const double width = DomainWidth(attr);
      const double lambda = spec.rate / std::max(width, 1e-12);
      return AxisToValue(DomainMin(attr) + rng->Exponential(lambda), attr);
    }
  }
  return Value::Null();
}

}  // namespace dq
