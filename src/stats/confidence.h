// Confidence bounds for Bernoulli proportions.
//
// The paper's error confidence (Def. 7), expected error confidence (Def. 9)
// and pessimistic classification error (sec. 5.1.2) are all built on
// leftBound(p, n) / rightBound(p, n): the bounds of the confidence interval
// for a true occurrence probability given an observed relative frequency p
// over a sample of size n. We use Wilson score intervals, which behave
// sensibly at p = 0 / p = 1 and small n; the classic C4.5 pruning bound
// (Quinlan's "AddErrs") is provided separately for the unadjusted-C4.5
// baseline.

#ifndef DQ_STATS_CONFIDENCE_H_
#define DQ_STATS_CONFIDENCE_H_

#include <cstddef>

namespace dq {

/// \brief Two-sided z quantile for a confidence level in (0, 1); e.g.
/// 0.95 -> 1.95996.
double ZForConfidence(double level);

/// \brief Quantile (inverse CDF) of the standard normal distribution.
/// `p` must lie in (0, 1).
double NormalQuantile(double p);

struct Interval {
  double left = 0.0;
  double right = 1.0;
};

/// \brief Wilson score interval for observed proportion p over n trials at
/// two-sided confidence `level`. n == 0 yields the vacuous [0, 1].
Interval WilsonInterval(double p, double n, double level);

/// \brief leftBound(p, n): lower Wilson bound (Def. 7 / Def. 9).
double LeftBound(double p, double n, double level);

/// \brief rightBound(p, n): upper Wilson bound (Def. 7 / sec. 5.1.2).
double RightBound(double p, double n, double level);

/// \brief C4.5's pessimistic upper bound on the error *count*: given
/// `errors` misclassified out of `n` training instances at a leaf and a
/// pruning confidence CF (C4.5 default 0.25), returns the number of
/// additional errors to charge. Mirrors Quinlan's AddErrs.
double C45AddErrs(double n, double errors, double cf);

/// \brief Pessimistic error *rate* at a leaf per classic C4.5:
/// (errors + AddErrs) / n.
double C45PessimisticErrorRate(double n, double errors, double cf);

}  // namespace dq

#endif  // DQ_STATS_CONFIDENCE_H_
