// Parameterizable univariate start distributions (sec. 4.1.4).
//
// "Our system offers uniform, normal and exponential distributions that can
// be parameterized by the user." A DistributionSpec describes how initial
// values for one attribute are drawn before rule repair; SampleValue draws
// a domain-respecting Value. Values outside the attribute domain are
// resampled/clamped so generated tables always validate. Multivariate
// start distributions live in src/bayes.

#ifndef DQ_STATS_DISTRIBUTION_H_
#define DQ_STATS_DISTRIBUTION_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "table/schema.h"

namespace dq {

enum class DistributionKind {
  kUniform,      ///< Uniform over the attribute domain.
  kCategorical,  ///< Explicit weights per nominal category.
  kNormal,       ///< Gaussian over the ordered domain axis (clamped).
  kExponential,  ///< Exponential decay from the domain minimum (clamped).
};

const char* DistributionKindToString(DistributionKind k);

/// \brief Declarative description of a univariate start distribution.
///
/// For nominal attributes kNormal/kExponential act on the category index
/// axis (useful to skew towards early categories); for numeric/date
/// attributes they act on the value axis. `mean`/`stddev` are expressed as
/// fractions of the domain width so specs stay valid across domains.
struct DistributionSpec {
  DistributionKind kind = DistributionKind::kUniform;

  /// kCategorical: unnormalized weights, size must equal the category count.
  std::vector<double> weights;

  /// kNormal: mean/stddev as fraction of domain width (mean 0.5 = centre).
  double mean_fraction = 0.5;
  double stddev_fraction = 0.15;

  /// kExponential: rate expressed as "decay lengths per domain width";
  /// larger = more mass near the domain minimum.
  double rate = 3.0;

  /// Probability that a sampled cell is null (missing at random).
  double null_prob = 0.0;

  static DistributionSpec Uniform(double null_prob = 0.0) {
    DistributionSpec s;
    s.kind = DistributionKind::kUniform;
    s.null_prob = null_prob;
    return s;
  }
  static DistributionSpec Categorical(std::vector<double> weights,
                                      double null_prob = 0.0) {
    DistributionSpec s;
    s.kind = DistributionKind::kCategorical;
    s.weights = std::move(weights);
    s.null_prob = null_prob;
    return s;
  }
  static DistributionSpec Normal(double mean_fraction, double stddev_fraction,
                                 double null_prob = 0.0) {
    DistributionSpec s;
    s.kind = DistributionKind::kNormal;
    s.mean_fraction = mean_fraction;
    s.stddev_fraction = stddev_fraction;
    s.null_prob = null_prob;
    return s;
  }
  static DistributionSpec Exponential(double rate, double null_prob = 0.0) {
    DistributionSpec s;
    s.kind = DistributionKind::kExponential;
    s.rate = rate;
    s.null_prob = null_prob;
    return s;
  }
};

/// \brief Checks that `spec` is applicable to `attr` (weight arity, positive
/// stddev/rate, probabilities in range).
Status ValidateDistribution(const DistributionSpec& spec,
                            const AttributeDef& attr);

/// \brief Draws one value for `attr` according to `spec`. The result is null
/// or inside the attribute's domain.
Value SampleValue(const DistributionSpec& spec, const AttributeDef& attr,
                  Rng* rng);

}  // namespace dq

#endif  // DQ_STATS_DISTRIBUTION_H_
