// Descriptive statistics shared by the mining and evaluation layers.

#ifndef DQ_STATS_DESCRIPTIVE_H_
#define DQ_STATS_DESCRIPTIVE_H_

#include <vector>

namespace dq {

/// \brief Shannon entropy (bits) of an unnormalized non-negative count
/// vector; zero-total input yields 0.
double EntropyFromCounts(const std::vector<double>& counts);

/// \brief Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& xs);

/// \brief Sample standard deviation (n-1 denominator); 0 for n < 2.
double SampleStdDev(const std::vector<double>& xs);

/// \brief Pearson correlation of two equal-length series; 0 when either
/// series is constant or inputs are shorter than 2.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// \brief Median of a series (averaged middle pair for even n); 0 for empty.
double Median(std::vector<double> xs);

}  // namespace dq

#endif  // DQ_STATS_DESCRIPTIVE_H_
