// Descriptive statistics shared by the mining and evaluation layers.

#ifndef DQ_STATS_DESCRIPTIVE_H_
#define DQ_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <vector>

namespace dq {

/// \brief x * log2(x) with XLog2X(x) = 0 for x <= 0. Small integral x
/// (the overwhelmingly common case: class counts of unit-weight training
/// instances) resolve through a precomputed table instead of calling
/// std::log2; the table entries are computed with std::log2 itself, so the
/// fast path is bitwise-identical to the slow one.
double XLog2X(double x);

/// \brief Shannon entropy (bits) of an unnormalized non-negative count
/// array via the identity H = (XLog2X(total) - sum_c XLog2X(c)) / total;
/// zero-total input yields 0. One log2 per *distinct count value* is served
/// from the XLog2X cache, which is what makes the C4.5 threshold sweep and
/// histogram scans cheap.
double EntropyBits(const double* counts, size_t n);

/// \brief Shannon entropy (bits) of an unnormalized non-negative count
/// vector; zero-total input yields 0. Convenience wrapper over EntropyBits.
double EntropyFromCounts(const std::vector<double>& counts);

/// \brief Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& xs);

/// \brief Sample standard deviation (n-1 denominator); 0 for n < 2.
double SampleStdDev(const std::vector<double>& xs);

/// \brief Pearson correlation of two equal-length series; 0 when either
/// series is constant or inputs are shorter than 2.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// \brief Median of a series (averaged middle pair for even n); 0 for empty.
double Median(std::vector<double> xs);

}  // namespace dq

#endif  // DQ_STATS_DESCRIPTIVE_H_
