// Equal-frequency discretization (sec. 5): "To allow for the induction of
// decision trees for numerical class attributes, these attributes are
// discretized into equal frequency bins before the induction process."
//
// A fitted discretizer maps an ordered value to a bin index and provides a
// representative value per bin (the median of the training values that fell
// into it) for correction proposals.

#ifndef DQ_STATS_DISCRETIZER_H_
#define DQ_STATS_DISCRETIZER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace dq {

/// \brief Equal-frequency binning over a 1-D ordered axis.
class EqualFrequencyDiscretizer {
 public:
  /// \brief Fits up to `max_bins` bins over the given (unsorted) sample.
  /// Duplicate-heavy samples may produce fewer bins; at least one bin always
  /// results from a non-empty sample.
  static Result<EqualFrequencyDiscretizer> Fit(std::vector<double> sample,
                                               int max_bins);

  /// \brief Reconstructs a discretizer from its parts (deserialization).
  /// `cuts` must be strictly ascending and one shorter than `reps`.
  static Result<EqualFrequencyDiscretizer> FromParts(
      std::vector<double> cuts, std::vector<double> representatives);

  /// \brief Bin index for a value (0-based; values beyond the outermost cut
  /// points fall into the first/last bin).
  int BinOf(double x) const;

  int num_bins() const { return static_cast<int>(representatives_.size()); }

  /// \brief Representative value (median of training members) of a bin.
  double Representative(int bin) const { return representatives_.at(bin); }

  /// \brief Upper cut points; bin i covers (cuts[i-1], cuts[i]].
  const std::vector<double>& cut_points() const { return cuts_; }

  /// \brief Human-readable label, e.g. "(3.5, 7.25]".
  std::string BinLabel(int bin) const;

 private:
  std::vector<double> cuts_;             // ascending, size = num_bins - 1
  std::vector<double> representatives_;  // size = num_bins
};

}  // namespace dq

#endif  // DQ_STATS_DISCRETIZER_H_
