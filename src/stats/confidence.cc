#include "stats/confidence.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dq {

double NormalQuantile(double p) {
  assert(p > 0.0 && p < 1.0);
  // Acklam's rational approximation; |relative error| < 1.15e-9.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  const double phigh = 1 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p <= phigh) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  }
  q = std::sqrt(-2 * std::log(1 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

double ZForConfidence(double level) {
  assert(level > 0.0 && level < 1.0);
  return NormalQuantile(0.5 + level / 2.0);
}

Interval WilsonInterval(double p, double n, double level) {
  Interval out;
  if (n <= 0.0) return out;  // vacuous [0, 1]
  p = std::clamp(p, 0.0, 1.0);
  const double z = ZForConfidence(level);
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  out.left = std::max(0.0, center - half);
  out.right = std::min(1.0, center + half);
  return out;
}

double LeftBound(double p, double n, double level) {
  return WilsonInterval(p, n, level).left;
}

double RightBound(double p, double n, double level) {
  return WilsonInterval(p, n, level).right;
}

double C45AddErrs(double n, double errors, double cf) {
  // Port of the classic C4.5 / Weka Stats.addErrs logic.
  if (cf > 0.5) cf = 0.5;
  if (n <= 0.0) return 0.0;
  if (errors < 1.0) {
    // Base case: upper bound from CF^(1/n), interpolated below one error.
    double base = n * (1.0 - std::pow(cf, 1.0 / n));
    if (errors == 0.0) return base;
    return base + errors * (C45AddErrs(n, 1.0, cf) - base);
  }
  if (errors + 0.5 >= n) {
    return std::max(n - errors, 0.0);
  }
  // Normal approximation with continuity correction.
  const double z = NormalQuantile(1.0 - cf);
  const double f = (errors + 0.5) / n;
  const double z2 = z * z;
  const double r =
      (f + z2 / (2.0 * n) +
       z * std::sqrt(f / n - f * f / n + z2 / (4.0 * n * n))) /
      (1.0 + z2 / n);
  return r * n - errors;
}

double C45PessimisticErrorRate(double n, double errors, double cf) {
  if (n <= 0.0) return 1.0;
  return std::min(1.0, (errors + C45AddErrs(n, errors, cf)) / n);
}

}  // namespace dq
