#include "obs/history.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/json.h"

namespace dq::obs {

namespace {

/// Renders (name, value) pairs as one compact JSON object.
template <typename T>
std::string PairsToJson(const std::vector<std::pair<std::string, T>>& pairs) {
  JsonObjectWriter out;
  for (const auto& [name, value] : pairs) {
    out.Add(name, value);
  }
  return out.Render(0);
}

}  // namespace

std::string HistoryRecord::ToJsonLine() const {
  JsonObjectWriter out;
  out.Add("schema_version", kSchemaVersion);
  out.AddRaw("manifest", manifest.ToJson(0));

  JsonObjectWriter sum;
  sum.Add("records", summary.records);
  sum.Add("suspicious", summary.suspicious);
  sum.Add("suspicion_rate", summary.suspicion_rate);
  sum.AddRaw("rule_violations", PairsToJson(summary.rule_violations));
  std::string confidences = "[";
  for (size_t i = 0; i < summary.top_confidences.size(); ++i) {
    if (i > 0) confidences += ",";
    confidences += JsonDouble(summary.top_confidences[i]);
  }
  confidences += "]";
  sum.AddRaw("top_confidences", std::move(confidences));
  sum.AddRaw("timings_ms", PairsToJson(summary.timings_ms));
  out.AddRaw("summary", sum.Render(0));

  JsonObjectWriter metrics_obj;
  metrics_obj.AddRaw("counters", PairsToJson(metrics.counters));
  metrics_obj.AddRaw("gauges", PairsToJson(metrics.gauges));
  out.AddRaw("metrics", metrics_obj.Render(0));
  return out.Render(0);
}

Result<HistoryRecord> HistoryRecord::FromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("history record is not a JSON object");
  }
  const JsonValue* version = json.Find("schema_version");
  if (version == nullptr || !version->is_number()) {
    return Status::InvalidArgument("history record missing schema_version");
  }
  if (version->AsInt64() != kSchemaVersion) {
    return Status::InvalidArgument("unsupported history schema_version " +
                                   version->number_raw);
  }
  HistoryRecord record;
  const JsonValue* manifest = json.Find("manifest");
  if (manifest == nullptr) {
    return Status::InvalidArgument("history record missing manifest");
  }
  Status parsed = RunManifestFromJson(*manifest, &record.manifest);
  if (!parsed.ok()) return parsed;

  const JsonValue* sum = json.Find("summary");
  if (sum == nullptr || !sum->is_object()) {
    return Status::InvalidArgument("history record missing summary");
  }
  if (const JsonValue* v = sum->Find("records")) {
    record.summary.records = v->AsUint64();
  }
  if (const JsonValue* v = sum->Find("suspicious")) {
    record.summary.suspicious = v->AsUint64();
  }
  if (const JsonValue* v = sum->Find("suspicion_rate")) {
    record.summary.suspicion_rate = v->AsDouble();
  }
  if (const JsonValue* v = sum->Find("rule_violations");
      v != nullptr && v->is_object()) {
    for (const auto& [name, count] : v->members) {
      record.summary.rule_violations.emplace_back(name, count.AsUint64());
    }
  }
  if (const JsonValue* v = sum->Find("top_confidences");
      v != nullptr && v->is_array()) {
    for (const JsonValue& item : v->items) {
      record.summary.top_confidences.push_back(item.AsDouble());
    }
  }
  if (const JsonValue* v = sum->Find("timings_ms");
      v != nullptr && v->is_object()) {
    for (const auto& [phase, ms] : v->members) {
      record.summary.timings_ms.emplace_back(phase, ms.AsDouble());
    }
  }

  if (const JsonValue* metrics = json.Find("metrics");
      metrics != nullptr && metrics->is_object()) {
    if (const JsonValue* counters = metrics->Find("counters");
        counters != nullptr && counters->is_object()) {
      for (const auto& [name, value] : counters->members) {
        record.metrics.counters.emplace_back(name, value.AsUint64());
      }
    }
    if (const JsonValue* gauges = metrics->Find("gauges");
        gauges != nullptr && gauges->is_object()) {
      for (const auto& [name, value] : gauges->members) {
        record.metrics.gauges.emplace_back(name, value.AsDouble());
      }
    }
  }
  return record;
}

std::string HistoryStore::ledger_path() const {
  return dir_ + "/" + kLedgerName;
}

Status HistoryStore::Append(const HistoryRecord& record) const {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return Status::IOError("cannot create history directory '" + dir_ +
                           "': " + ec.message());
  }
  const std::string path = ledger_path();
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) {
    return Status::IOError("cannot open history ledger '" + path +
                           "' for appending");
  }
  out << record.ToJsonLine() << '\n';
  out.flush();
  if (!out) {
    return Status::IOError("short write to history ledger '" + path + "'");
  }
  return Status::OK();
}

Status HistoryStore::Compact(size_t max_runs, size_t* dropped_runs,
                             size_t* dropped_damaged) const {
  if (dropped_runs != nullptr) *dropped_runs = 0;
  if (dropped_damaged != nullptr) *dropped_damaged = 0;
  if (max_runs == 0) {
    return Status::InvalidArgument("max_runs must be positive");
  }
  const std::string path = ledger_path();
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::OK();  // nothing to compact yet

  // Keep the original bytes of every valid line: compaction must never
  // rewrite a record (ToJsonLine drift would silently corrupt history
  // diffs), only drop whole lines.
  std::vector<std::string> valid;
  size_t damaged = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    JsonValue json;
    if (!ParseJson(line, &json) || !HistoryRecord::FromJson(json).ok()) {
      ++damaged;
      continue;
    }
    valid.push_back(line);
  }
  in.close();

  const size_t keep = std::min(valid.size(), max_runs);
  const size_t dropped = valid.size() - keep;
  if (dropped == 0 && damaged == 0) return Status::OK();

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IOError("cannot open '" + tmp + "' for compaction");
    }
    for (size_t i = valid.size() - keep; i < valid.size(); ++i) {
      out << valid[i] << '\n';
    }
    out.flush();
    if (!out) {
      return Status::IOError("short write to '" + tmp + "'");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return Status::IOError("cannot replace history ledger '" + path + "'");
  }
  if (dropped_runs != nullptr) *dropped_runs = dropped;
  if (dropped_damaged != nullptr) *dropped_damaged = damaged;
  return Status::OK();
}

Result<std::vector<HistoryRecord>> HistoryStore::ReadAll(
    size_t* damaged_lines) const {
  const std::string path = ledger_path();
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot read history ledger '" + path + "'");
  }
  std::vector<HistoryRecord> records;
  size_t damaged = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    JsonValue json;
    if (!ParseJson(line, &json)) {
      ++damaged;
      continue;
    }
    auto record = HistoryRecord::FromJson(json);
    if (!record.ok()) {
      ++damaged;
      continue;
    }
    records.push_back(std::move(*record));
  }
  if (damaged_lines != nullptr) *damaged_lines = damaged;
  return records;
}

}  // namespace dq::obs
