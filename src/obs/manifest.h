// RunManifest: the reproducibility record attached to every trace file,
// metrics dump and BENCH_*.json. A reported number is only evidence if the
// run that produced it can be reconstructed — the manifest pins the tool,
// seed, thread count, build type, the exact CLI configuration (hashed) and
// the content hashes of every input file (schema, rule files, data).

#ifndef DQ_OBS_MANIFEST_H_
#define DQ_OBS_MANIFEST_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

namespace dq::obs {

/// \brief 64-bit FNV-1a over `data`; stable across platforms and runs.
uint64_t Fnv1a64(std::string_view data);

/// \brief Fixed-width lowercase hex rendering of a 64-bit hash.
std::string HashHex(uint64_t hash);

struct RunManifest {
  /// Bumped whenever the manifest JSON layout changes.
  static constexpr int kSchemaVersion = 1;

  std::string tool;               ///< binary name, e.g. "dqaudit"
  std::string version;            ///< project version (defaults below)
  std::string build_type;         ///< CMAKE_BUILD_TYPE the binary was built as
  std::string config_hash;        ///< FNV-1a over the full argv vector
  uint64_t seed = 0;              ///< RNG seed driving the run (0 = none)
  int threads_requested = 0;      ///< --threads as given (0 = auto)
  int threads_used = 1;           ///< resolved worker count

  /// Content hashes of the input files the run depends on, as
  /// (label, hex-hash) in insertion order — e.g. ("schema", "1f..."),
  /// ("rules", "ab...").
  std::vector<std::pair<std::string, std::string>> input_hashes;

  /// \brief Renders the manifest as one JSON object (schema in
  /// docs/OBSERVABILITY.md).
  std::string ToJson(int indent = 2) const;

  /// \brief Adds the manifest as a nested "manifest" member of `out`.
  void AppendTo(JsonObjectWriter* out, int indent = 2) const;
};

/// \brief Builds a manifest for this process: tool name, project version,
/// build type and the hash of the full command line. Seed/threads stay at
/// their defaults for the caller to fill in.
RunManifest MakeRunManifest(std::string tool, int argc,
                            const char* const* argv);

/// \brief Hashes the contents of `path` and records it under `label`.
/// Unreadable files fail with IOError and leave the manifest unchanged.
Status AddInputFileHash(RunManifest* manifest, const std::string& label,
                        const std::string& path);

}  // namespace dq::obs

#endif  // DQ_OBS_MANIFEST_H_
