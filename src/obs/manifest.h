// RunManifest: the reproducibility record attached to every trace file,
// metrics dump and BENCH_*.json. A reported number is only evidence if the
// run that produced it can be reconstructed — the manifest pins the tool,
// seed, thread count, build type, the exact CLI configuration (hashed) and
// the content hashes of every input file (schema, rule files, data).

#ifndef DQ_OBS_MANIFEST_H_
#define DQ_OBS_MANIFEST_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

namespace dq::obs {

/// \brief 64-bit FNV-1a over `data`; stable across platforms and runs.
uint64_t Fnv1a64(std::string_view data);

/// \brief Fixed-width lowercase hex rendering of a 64-bit hash.
std::string HashHex(uint64_t hash);

/// \brief Clock seam for run timestamps. `EpochMillisNow` returns wall
/// milliseconds since the Unix epoch; tests (and the CLI shell tests, via
/// the DQ_UTC_OVERRIDE_MS environment variable read on first use) inject a
/// fixed value so stamped manifests and history records stay byte-stable.
int64_t EpochMillisNow();

/// \brief Overrides the epoch clock (<0 restores the real clock, taking
/// precedence over DQ_UTC_OVERRIDE_MS).
void SetEpochMillisForTesting(int64_t fixed_ms);

/// \brief True when a fixed clock is active (setter or environment). Wall
/// durations are recorded as 0 under a fixed clock so that two runs of the
/// same configuration produce byte-identical records.
bool EpochClockOverridden();

/// \brief "YYYY-MM-DDThh:mm:ss.mmmZ" for a Unix-epoch millisecond count.
std::string FormatUtcTimestamp(int64_t epoch_ms);

struct RunManifest {
  /// Bumped whenever the manifest JSON layout changes.
  /// v2: added started_utc / started_unix_ms / wall_ms (PR 9).
  static constexpr int kSchemaVersion = 2;

  std::string tool;               ///< binary name, e.g. "dqaudit"
  std::string version;            ///< project version (defaults below)
  std::string build_type;         ///< CMAKE_BUILD_TYPE the binary was built as
  std::string config_hash;        ///< FNV-1a over the full argv vector
  uint64_t seed = 0;              ///< RNG seed driving the run (0 = none)
  int threads_requested = 0;      ///< --threads as given (0 = auto)
  int threads_used = 1;           ///< resolved worker count
  int64_t started_unix_ms = 0;    ///< run start, Unix epoch milliseconds
  std::string started_utc;        ///< run start as an ISO-8601 UTC string
  double wall_ms = 0.0;           ///< wall-clock duration stamped at export

  /// Content hashes of the input files the run depends on, as
  /// (label, hex-hash) in insertion order — e.g. ("schema", "1f..."),
  /// ("rules", "ab...").
  std::vector<std::pair<std::string, std::string>> input_hashes;

  /// \brief Stamps wall_ms with the elapsed time since started_unix_ms.
  /// Call once, immediately before exporting. Under a fixed test clock the
  /// duration is 0 by construction.
  void StampWallClock();

  /// \brief Renders the manifest as one JSON object (schema in
  /// docs/OBSERVABILITY.md).
  std::string ToJson(int indent = 2) const;

  /// \brief Adds the manifest as a nested "manifest" member of `out`.
  void AppendTo(JsonObjectWriter* out, int indent = 2) const;
};

/// \brief Rebuilds a manifest from its parsed JSON rendering (the inverse
/// of ToJson, used by the run-history reader). Unknown members are
/// ignored; missing members keep their defaults.
Status RunManifestFromJson(const JsonValue& json, RunManifest* out);

/// \brief Builds a manifest for this process: tool name, project version,
/// build type and the hash of the full command line. Seed/threads stay at
/// their defaults for the caller to fill in.
RunManifest MakeRunManifest(std::string tool, int argc,
                            const char* const* argv);

/// \brief Hashes the contents of `path` and records it under `label`.
/// Unreadable files fail with IOError and leave the manifest unchanged.
Status AddInputFileHash(RunManifest* manifest, const std::string& label,
                        const std::string& path);

}  // namespace dq::obs

#endif  // DQ_OBS_MANIFEST_H_
