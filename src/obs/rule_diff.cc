#include "obs/rule_diff.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/json.h"

namespace dq::obs {

namespace {

std::string Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return std::string(s.substr(begin, end - begin));
}

/// Parses "key=value key=value ..." from an "# @rule" comment body.
void ParseAnnotationFields(const std::string& body, AnnotatedRule* rule) {
  std::istringstream in(body);
  std::string token;
  while (in >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "conf") {
      rule->confidence = std::strtod(value.c_str(), nullptr);
    } else if (key == "support") {
      rule->support = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "coverage") {
      rule->coverage = std::strtod(value.c_str(), nullptr);
    } else if (key == "source") {
      rule->source = value;
    }
    // Unknown keys: ignored for forward compatibility.
  }
}

bool IsNumericToken(const std::string& token) {
  if (token.empty()) return false;
  size_t i = (token[0] == '-' || token[0] == '+') ? 1 : 0;
  if (i == token.size()) return false;
  bool digits = false;
  for (; i < token.size(); ++i) {
    const char c = token[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digits = true;
    } else if (c != '.') {
      return false;
    }
  }
  return digits;
}

/// Masks numeric operands that follow '<' or '>' so two rules differing
/// only in a comparison threshold compare equal. Operands of '=' / '!='
/// are identity tests, not thresholds, and stay verbatim — categorical
/// codes like "404" must not be masked away.
std::string MaskThresholds(const std::string& text) {
  std::istringstream in(text);
  std::string token;
  std::string out;
  bool after_ordering_op = false;
  while (in >> token) {
    if (!out.empty()) out += ' ';
    if (after_ordering_op && IsNumericToken(token)) {
      out += '#';
    } else {
      out += token;
    }
    after_ordering_op = token == "<" || token == ">";
  }
  return out;
}

std::string FormatSigned(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.6g", v);
  return buf;
}

std::string DescribeAnnotationDelta(const AnnotatedRule& before,
                                    const AnnotatedRule& after,
                                    RuleChange* change) {
  change->has_annotation_delta = true;
  change->confidence_delta = after.confidence - before.confidence;
  change->support_delta = static_cast<int64_t>(after.support) -
                          static_cast<int64_t>(before.support);
  change->coverage_delta = after.coverage - before.coverage;
  std::string desc;
  if (change->confidence_delta != 0.0) {
    desc += "conf " + FormatSigned(change->confidence_delta);
  }
  if (change->support_delta != 0) {
    if (!desc.empty()) desc += ", ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "support %+lld",
                  static_cast<long long>(change->support_delta));
    desc += buf;
  }
  if (change->coverage_delta != 0.0) {
    if (!desc.empty()) desc += ", ";
    desc += "coverage " + FormatSigned(change->coverage_delta);
  }
  return desc;
}

bool AnnotationsDiffer(const AnnotatedRule& a, const AnnotatedRule& b) {
  return a.annotated && b.annotated &&
         (a.confidence != b.confidence || a.support != b.support ||
          a.coverage != b.coverage);
}

}  // namespace

Result<std::vector<AnnotatedRule>> ParseAnnotatedRuleFile(
    const std::string& text) {
  std::vector<AnnotatedRule> rules;
  AnnotatedRule pending;
  bool has_pending = false;
  size_t line_no = 0;
  std::istringstream in(text);
  std::string raw;
  while (std::getline(in, raw)) {
    ++line_no;
    if (!raw.empty() && raw.back() == '\r') raw.pop_back();
    const std::string line = Trim(raw);
    if (line.empty()) continue;
    if (line[0] == '#') {
      const std::string body = Trim(line.substr(1));
      if (body.rfind("@rule", 0) == 0) {
        if (has_pending) {
          return Status::InvalidArgument(
              "line " + std::to_string(line_no) +
              ": '# @rule' annotation with no rule line before the next "
              "annotation");
        }
        pending = AnnotatedRule{};
        pending.annotated = true;
        ParseAnnotationFields(body.substr(5), &pending);
        has_pending = true;
      }
      continue;
    }
    AnnotatedRule rule = has_pending ? pending : AnnotatedRule{};
    rule.text = line;
    rule.line = line_no;
    rules.push_back(std::move(rule));
    has_pending = false;
  }
  if (has_pending) {
    return Status::InvalidArgument(
        "trailing '# @rule' annotation with no rule line");
  }
  return rules;
}

Result<std::vector<AnnotatedRule>> LoadAnnotatedRuleFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot read rule file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto parsed = ParseAnnotatedRuleFile(buffer.str());
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " + parsed.status().message());
  }
  return parsed;
}

RuleSetDiff DiffRuleSets(const std::vector<AnnotatedRule>& before,
                         const std::vector<AnnotatedRule>& after) {
  RuleSetDiff diff;
  diff.before_rules = before.size();
  diff.after_rules = after.size();

  std::vector<bool> before_used(before.size(), false);
  std::vector<bool> after_used(after.size(), false);
  std::vector<RuleChange> annotation_deltas;
  std::vector<RuleChange> threshold_shifts;

  // Phase 1: exact text match (first unused occurrence pairs up, so
  // duplicated rules match multiset-style).
  for (size_t i = 0; i < before.size(); ++i) {
    for (size_t j = 0; j < after.size(); ++j) {
      if (after_used[j] || after[j].text != before[i].text) continue;
      before_used[i] = true;
      after_used[j] = true;
      if (AnnotationsDiffer(before[i], after[j])) {
        RuleChange change;
        change.kind = "annotation_delta";
        change.before = before[i].text;
        change.after = after[j].text;
        const std::string desc =
            DescribeAnnotationDelta(before[i], after[j], &change);
        change.message = "evidence moved (" + desc + "): " + after[j].text;
        annotation_deltas.push_back(std::move(change));
      } else {
        ++diff.unchanged;
      }
      break;
    }
  }

  // Phase 2: masked match — same shape, shifted </> threshold.
  std::vector<std::string> after_masked(after.size());
  for (size_t j = 0; j < after.size(); ++j) {
    if (!after_used[j]) after_masked[j] = MaskThresholds(after[j].text);
  }
  for (size_t i = 0; i < before.size(); ++i) {
    if (before_used[i]) continue;
    const std::string masked = MaskThresholds(before[i].text);
    for (size_t j = 0; j < after.size(); ++j) {
      if (after_used[j] || after_masked[j] != masked) continue;
      before_used[i] = true;
      after_used[j] = true;
      RuleChange change;
      change.kind = "threshold_shift";
      change.before = before[i].text;
      change.after = after[j].text;
      if (AnnotationsDiffer(before[i], after[j])) {
        DescribeAnnotationDelta(before[i], after[j], &change);
      }
      change.message =
          "'" + before[i].text + "' -> '" + after[j].text + "'";
      threshold_shifts.push_back(std::move(change));
      break;
    }
  }

  // Phase 3: the rest is removed / added.
  std::vector<RuleChange>& changes = diff.changes;
  changes.insert(changes.end(), threshold_shifts.begin(),
                 threshold_shifts.end());
  changes.insert(changes.end(), annotation_deltas.begin(),
                 annotation_deltas.end());
  for (size_t i = 0; i < before.size(); ++i) {
    if (before_used[i]) continue;
    RuleChange change;
    change.kind = "removed";
    change.before = before[i].text;
    change.message = before[i].text;
    changes.push_back(std::move(change));
  }
  for (size_t j = 0; j < after.size(); ++j) {
    if (after_used[j]) continue;
    RuleChange change;
    change.kind = "added";
    change.after = after[j].text;
    change.message = after[j].text;
    changes.push_back(std::move(change));
  }
  return diff;
}

std::string RuleSetDiff::RenderText() const {
  std::string out;
  char head[160];
  std::snprintf(head, sizeof(head),
                "%zu rule(s) before, %zu after: %zu unchanged, %zu change(s)\n",
                before_rules, after_rules, unchanged, changes.size());
  out += head;
  for (const RuleChange& change : changes) {
    char line[512];
    std::snprintf(line, sizeof(line), "  [%-16s] %s\n", change.kind.c_str(),
                  change.message.c_str());
    out += line;
  }
  return out;
}

std::string RuleSetDiff::ToJson(int indent) const {
  JsonObjectWriter out;
  out.Add("schema_version", kSchemaVersion);
  out.Add("before_rules", static_cast<unsigned long long>(before_rules));
  out.Add("after_rules", static_cast<unsigned long long>(after_rules));
  out.Add("unchanged", static_cast<unsigned long long>(unchanged));
  std::string rendered = "[";
  for (size_t i = 0; i < changes.size(); ++i) {
    const RuleChange& change = changes[i];
    JsonObjectWriter obj;
    obj.Add("kind", change.kind);
    obj.Add("before", change.before);
    obj.Add("after", change.after);
    if (change.has_annotation_delta) {
      obj.Add("confidence_delta", change.confidence_delta);
      obj.AddRaw("support_delta", std::to_string(change.support_delta));
      obj.Add("coverage_delta", change.coverage_delta);
    }
    if (i > 0) rendered += ",";
    rendered += obj.Render(0);
  }
  rendered += "]";
  out.AddRaw("changes", std::move(rendered));
  return out.Render(indent) + "\n";
}

}  // namespace dq::obs
