#include "obs/drift.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/json.h"

namespace dq::obs {

namespace {

/// Floor for relative-delta denominators; keeps a zero baseline from
/// producing infinities (which JSON cannot carry).
constexpr double kTinyBase = 1e-9;
/// Relative deltas are clamped here so a zero baseline stays finite.
constexpr double kRelClamp = 1e6;

double RelativeDelta(double baseline, double delta) {
  const double rel = delta / std::max(std::fabs(baseline), kTinyBase);
  return std::clamp(rel, -kRelClamp, kRelClamp);
}

/// Lower value = earlier in the ranked report. Suspicion rate is the
/// headline monitoring signal and always outranks everything else at the
/// same severity.
int KindPriority(const std::string& kind) {
  if (kind == "suspicion_rate") return 0;
  if (kind == "rule_violation") return 1;
  if (kind == "rule_set") return 2;
  if (kind == "record_count") return 3;
  if (kind == "schema_change") return 4;
  if (kind == "input_change") return 5;
  if (kind == "config_change") return 6;
  if (kind == "timing") return 7;
  return 8;
}

std::string FormatSigned(double v, const char* format = "%+.6g") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

std::string FormatPercent(double rel) {
  char buf[64];
  if (std::fabs(rel) >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%+.3gx", rel);
  } else {
    std::snprintf(buf, sizeof(buf), "%+.1f%%", rel * 100.0);
  }
  return buf;
}

std::string FormatValue(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Mean of `values`; 0 for an empty vector.
double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

/// Looks up a (name, value) pair; returns whether it exists.
template <typename T>
bool FindPair(const std::vector<std::pair<std::string, T>>& pairs,
              const std::string& name, T* out) {
  for (const auto& [key, value] : pairs) {
    if (key == name) {
      *out = value;
      return true;
    }
  }
  return false;
}

DriftFinding MakeFinding(std::string kind, DriftSeverity severity,
                         std::string subject, double baseline, double current,
                         std::string message) {
  DriftFinding finding;
  finding.kind = std::move(kind);
  finding.severity = severity;
  finding.subject = std::move(subject);
  finding.baseline = baseline;
  finding.current = current;
  finding.delta_abs = current - baseline;
  finding.delta_rel = RelativeDelta(baseline, finding.delta_abs);
  finding.message = std::move(message);
  return finding;
}

}  // namespace

const char* DriftSeverityName(DriftSeverity severity) {
  switch (severity) {
    case DriftSeverity::kInfo:
      return "info";
    case DriftSeverity::kWarn:
      return "warn";
    case DriftSeverity::kDrift:
      return "drift";
  }
  return "unknown";
}

bool DriftReport::HasDrift() const {
  return CountAtLeast(DriftSeverity::kDrift) > 0;
}

size_t DriftReport::CountAtLeast(DriftSeverity severity) const {
  size_t n = 0;
  for (const DriftFinding& f : findings) {
    if (static_cast<int>(f.severity) >= static_cast<int>(severity)) ++n;
  }
  return n;
}

std::string DriftReport::RenderText() const {
  std::string out;
  out += "baseline: " + baseline_desc + "\n";
  out += "current:  " + current_desc + "\n";
  if (findings.empty()) {
    out += "no differences detected\n";
    return out;
  }
  const size_t drifts = CountAtLeast(DriftSeverity::kDrift);
  const size_t warns = CountAtLeast(DriftSeverity::kWarn) - drifts;
  const size_t infos = findings.size() - drifts - warns;
  char head[128];
  std::snprintf(head, sizeof(head),
                "%zu finding(s): %zu drift, %zu warn, %zu info\n",
                findings.size(), drifts, warns, infos);
  out += head;
  for (const DriftFinding& f : findings) {
    char line[512];
    std::snprintf(line, sizeof(line), "  [%-5s] %-16s %s\n",
                  DriftSeverityName(f.severity), f.kind.c_str(),
                  f.message.c_str());
    out += line;
  }
  return out;
}

std::string DriftReport::ToJson(int indent) const {
  JsonObjectWriter out;
  out.Add("schema_version", kSchemaVersion);
  out.Add("baseline", baseline_desc);
  out.Add("current", current_desc);
  out.Add("baseline_runs", static_cast<unsigned long long>(baseline_runs));
  out.Add("has_drift", HasDrift());
  const size_t drifts = CountAtLeast(DriftSeverity::kDrift);
  const size_t warns = CountAtLeast(DriftSeverity::kWarn) - drifts;
  JsonObjectWriter counts;
  counts.Add("drift", static_cast<unsigned long long>(drifts));
  counts.Add("warn", static_cast<unsigned long long>(warns));
  counts.Add("info", static_cast<unsigned long long>(findings.size() -
                                                     drifts - warns));
  out.AddRaw("severity_counts", counts.Render(indent));
  std::string rendered_findings = "[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const DriftFinding& f = findings[i];
    JsonObjectWriter obj;
    obj.Add("kind", f.kind);
    obj.Add("severity", DriftSeverityName(f.severity));
    obj.Add("subject", f.subject);
    obj.Add("baseline", f.baseline);
    obj.Add("current", f.current);
    obj.Add("delta_abs", f.delta_abs);
    obj.Add("delta_rel", f.delta_rel);
    obj.Add("message", f.message);
    if (i > 0) rendered_findings += ",";
    rendered_findings += obj.Render(0);
  }
  rendered_findings += "]";
  out.AddRaw("findings", std::move(rendered_findings));
  return out.Render(indent) + "\n";
}

DriftReport DetectDrift(const std::vector<HistoryRecord>& baseline,
                        const HistoryRecord& current,
                        const DriftThresholds& thresholds) {
  DriftReport report;
  report.baseline_runs = baseline.size();
  if (baseline.empty()) {
    report.baseline_desc = "(empty)";
    report.current_desc = current.manifest.started_utc;
    return report;
  }
  const HistoryRecord& newest = baseline.back();
  report.baseline_desc =
      baseline.size() == 1
          ? newest.manifest.started_utc
          : "mean of " + std::to_string(baseline.size()) +
                " runs ending " + newest.manifest.started_utc;
  report.current_desc = current.manifest.started_utc;
  std::vector<DriftFinding>& findings = report.findings;

  // --- suspicion rate: always reported (the headline signal). -----------
  {
    std::vector<double> rates;
    rates.reserve(baseline.size());
    for (const HistoryRecord& r : baseline) {
      rates.push_back(r.summary.suspicion_rate);
    }
    const double base = Mean(rates);
    const double cur = current.summary.suspicion_rate;
    const double delta = cur - base;
    const bool past = std::fabs(delta) >= thresholds.suspicion_rate_abs &&
                      std::fabs(RelativeDelta(base, delta)) >=
                          thresholds.suspicion_rate_rel;
    findings.push_back(MakeFinding(
        "suspicion_rate",
        past ? DriftSeverity::kDrift : DriftSeverity::kInfo, "", base, cur,
        "suspicion rate " + FormatValue(base) + " -> " + FormatValue(cur) +
            " (" + FormatSigned(delta) + ", " +
            FormatPercent(RelativeDelta(base, delta)) + ")"));
  }

  // --- record count shift (warn at most). --------------------------------
  {
    std::vector<double> counts;
    counts.reserve(baseline.size());
    for (const HistoryRecord& r : baseline) {
      counts.push_back(static_cast<double>(r.summary.records));
    }
    const double base = Mean(counts);
    const double cur = static_cast<double>(current.summary.records);
    const double delta = cur - base;
    if (delta != 0.0) {
      const bool past = std::fabs(RelativeDelta(base, delta)) >=
                        thresholds.record_count_rel;
      findings.push_back(MakeFinding(
          "record_count", past ? DriftSeverity::kWarn : DriftSeverity::kInfo,
          "", base, cur,
          "record count " + FormatValue(base) + " -> " + FormatValue(cur) +
              " (" + FormatSigned(delta) + ")"));
    }
  }

  // --- per-rule violation counts + rule-set membership. -------------------
  {
    // Union of rule names: newest-baseline order first, then rules that
    // only the current run knows.
    std::vector<std::string> names;
    for (const auto& [name, value] : newest.summary.rule_violations) {
      (void)value;
      names.push_back(name);
    }
    for (const auto& [name, value] : current.summary.rule_violations) {
      (void)value;
      if (std::find(names.begin(), names.end(), name) == names.end()) {
        names.push_back(name);
      }
    }
    for (const std::string& name : names) {
      uint64_t cur_count = 0;
      const bool in_current =
          FindPair(current.summary.rule_violations, name, &cur_count);
      std::vector<double> base_values;
      for (const HistoryRecord& r : baseline) {
        uint64_t value = 0;
        if (FindPair(r.summary.rule_violations, name, &value)) {
          base_values.push_back(static_cast<double>(value));
        }
      }
      if (base_values.empty() || !in_current) {
        // Membership changed: the checked rule set itself differs.
        findings.push_back(MakeFinding(
            "rule_set", DriftSeverity::kWarn, name,
            base_values.empty() ? 0.0 : Mean(base_values),
            static_cast<double>(cur_count),
            std::string("rule '") + name + "' " +
                (in_current ? "added to" : "removed from") +
                " the checked rule set"));
        continue;
      }
      const double base = Mean(base_values);
      const double cur = static_cast<double>(cur_count);
      const double delta = cur - base;
      if (delta == 0.0) continue;
      const bool past = std::fabs(delta) >= thresholds.rule_violations_abs &&
                        std::fabs(RelativeDelta(base, delta)) >=
                            thresholds.rule_violations_rel;
      findings.push_back(MakeFinding(
          "rule_violation",
          past ? DriftSeverity::kDrift : DriftSeverity::kInfo, name, base,
          cur,
          "rule '" + name + "' violations " + FormatValue(base) + " -> " +
              FormatValue(cur) + " (" + FormatSigned(delta) + ", " +
              FormatPercent(RelativeDelta(base, delta)) + ")"));
    }
  }

  // --- manifest: schema / input / configuration changes. ------------------
  {
    auto hash_of = [](const RunManifest& m,
                      const std::string& label) -> std::string {
      std::string hash;
      FindPair(m.input_hashes, label, &hash);
      return hash;
    };
    // Union of labels, newest-baseline order first.
    std::vector<std::string> labels;
    for (const auto& [label, hash] : newest.manifest.input_hashes) {
      (void)hash;
      labels.push_back(label);
    }
    for (const auto& [label, hash] : current.manifest.input_hashes) {
      (void)hash;
      if (std::find(labels.begin(), labels.end(), label) == labels.end()) {
        labels.push_back(label);
      }
    }
    for (const std::string& label : labels) {
      const std::string before = hash_of(newest.manifest, label);
      const std::string after = hash_of(current.manifest, label);
      if (before == after) continue;
      const bool is_schema = label == "schema";
      std::string what = before.empty()   ? "appeared"
                         : after.empty()  ? "disappeared"
                                          : "changed content";
      findings.push_back(MakeFinding(
          is_schema ? "schema_change" : "input_change",
          is_schema ? DriftSeverity::kWarn : DriftSeverity::kInfo, label,
          0.0, 0.0,
          "input '" + label + "' " + what +
              (before.empty() || after.empty()
                   ? ""
                   : " (" + before + " -> " + after + ")")));
    }
    if (newest.manifest.config_hash != current.manifest.config_hash) {
      findings.push_back(MakeFinding(
          "config_change", DriftSeverity::kInfo, "config_hash", 0.0, 0.0,
          "CLI configuration changed (" + newest.manifest.config_hash +
              " -> " + current.manifest.config_hash + ")"));
    }
    if (newest.manifest.tool != current.manifest.tool ||
        newest.manifest.version != current.manifest.version) {
      findings.push_back(MakeFinding(
          "config_change", DriftSeverity::kWarn, "tool", 0.0, 0.0,
          "producing tool changed (" + newest.manifest.tool + " " +
              newest.manifest.version + " -> " + current.manifest.tool + " " +
              current.manifest.version + ")"));
    }
  }

  // --- timing regressions (never past warn: wall clock is noisy). ---------
  for (const auto& [phase, cur_ms] : current.summary.timings_ms) {
    std::vector<double> base_values;
    for (const HistoryRecord& r : baseline) {
      double value = 0.0;
      if (FindPair(r.summary.timings_ms, phase, &value)) {
        base_values.push_back(value);
      }
    }
    if (base_values.empty()) continue;
    const double base = Mean(base_values);
    const double delta = cur_ms - base;
    if (delta < thresholds.timing_abs_ms ||
        RelativeDelta(base, delta) < thresholds.timing_rel) {
      continue;
    }
    findings.push_back(MakeFinding(
        "timing", DriftSeverity::kWarn, phase, base, cur_ms,
        phase + " " + FormatValue(base) + " ms -> " + FormatValue(cur_ms) +
            " ms (" + FormatSigned(delta) + " ms, " +
            FormatPercent(RelativeDelta(base, delta)) + ")"));
  }

  // Deterministic total order: severity desc, kind priority asc,
  // |delta| desc, subject asc, message asc.
  std::stable_sort(findings.begin(), findings.end(),
                   [](const DriftFinding& a, const DriftFinding& b) {
                     if (a.severity != b.severity) {
                       return static_cast<int>(a.severity) >
                              static_cast<int>(b.severity);
                     }
                     const int pa = KindPriority(a.kind);
                     const int pb = KindPriority(b.kind);
                     if (pa != pb) return pa < pb;
                     const double da = std::fabs(a.delta_abs);
                     const double db = std::fabs(b.delta_abs);
                     if (da != db) return da > db;
                     if (a.subject != b.subject) return a.subject < b.subject;
                     return a.message < b.message;
                   });
  return report;
}

}  // namespace dq::obs
