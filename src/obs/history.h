// Run-history store: an append-only, schema-versioned JSONL ledger of
// audit runs. Each line is one self-contained record — the run manifest
// (tool, seed, input hashes, UTC start), a compact audit summary (record
// and suspicion counts, per-rule violation counts, top-k confidences,
// timing phases) and the metrics snapshot — so any two runs of the same
// pipeline can be compared long after the processes exited. The drift
// engine (obs/drift.h) and the dqmon CLI consume this ledger; dqaudit
// appends to it under --history.
//
// The ledger is deliberately JSONL, not one growing JSON document:
// appends are O(line), a crashed writer corrupts at most its own line
// (damaged lines are reported and skipped on read), and standard text
// tools (tail, grep, jq) work on it directly.

#ifndef DQ_OBS_HISTORY_H_
#define DQ_OBS_HISTORY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "obs/manifest.h"
#include "obs/metrics.h"

namespace dq::obs {

/// \brief Compact whole-run audit aggregates embedded in every history
/// record. Everything here is derived from the ranked report — small
/// enough to keep forever, complete enough to detect drift without the
/// report files themselves.
struct AuditSummary {
  uint64_t records = 0;     ///< rows audited
  uint64_t suspicious = 0;  ///< rows at or above the confidence limit
  double suspicion_rate = 0.0;  ///< suspicious / records (0 when empty)

  /// Expert-rule violation counts, (rule name, violating rows) in rule
  /// order; empty when the run had no --rules-file.
  std::vector<std::pair<std::string, uint64_t>> rule_violations;

  /// Strongest suspicion confidences, descending (at most kTopK).
  std::vector<double> top_confidences;

  /// Wall-clock phase breakdown, (phase, ms) in pipeline order. Recorded
  /// as 0 under a fixed test clock (EpochClockOverridden) so records stay
  /// byte-stable.
  std::vector<std::pair<std::string, double>> timings_ms;

  static constexpr size_t kTopK = 10;
};

/// \brief One line of the ledger.
struct HistoryRecord {
  /// Bumped whenever the record JSON layout changes.
  static constexpr int kSchemaVersion = 1;

  RunManifest manifest;
  AuditSummary summary;
  MetricsSnapshot metrics;

  /// \brief Renders the record as one compact JSON line (no trailing
  /// newline). Deterministic for a fixed input.
  std::string ToJsonLine() const;

  /// \brief Rebuilds a record from a parsed ledger line.
  static Result<HistoryRecord> FromJson(const JsonValue& json);
};

/// \brief Append/read access to one history directory. The ledger lives
/// at <dir>/history.jsonl; Append creates the directory on first use.
class HistoryStore {
 public:
  static constexpr const char* kLedgerName = "history.jsonl";

  explicit HistoryStore(std::string dir) : dir_(std::move(dir)) {}

  const std::string& dir() const { return dir_; }
  std::string ledger_path() const;

  /// \brief Appends one record as a JSONL line (creating the directory
  /// and ledger as needed) and flushes before returning.
  Status Append(const HistoryRecord& record) const;

  /// \brief Reads every parseable record, oldest first. Lines that fail
  /// to parse (a crashed writer's torn tail) are skipped; the count of
  /// skipped lines is returned through `damaged_lines` when non-null.
  /// A missing ledger file is an error; an empty one yields no records.
  Result<std::vector<HistoryRecord>> ReadAll(
      size_t* damaged_lines = nullptr) const;

  /// \brief Bounds the ledger to the newest `max_runs` valid records.
  /// Valid lines are kept byte-for-byte (records are never re-rendered);
  /// damaged lines are dropped — exactly the lines ReadAll would have
  /// skipped anyway, so read semantics are unchanged. The rewrite goes
  /// through a temp file in the same directory plus an atomic rename, so
  /// a crash mid-compaction leaves either the old or the new ledger, never
  /// a torn one. A missing ledger is a no-op. `dropped_runs` /
  /// `dropped_damaged` (when non-null) report how many old records and
  /// damaged lines were removed.
  Status Compact(size_t max_runs, size_t* dropped_runs = nullptr,
                 size_t* dropped_damaged = nullptr) const;

 private:
  std::string dir_;
};

}  // namespace dq::obs

#endif  // DQ_OBS_HISTORY_H_
