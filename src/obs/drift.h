// Snapshot drift detection over the run-history ledger (obs/history.h).
//
// Monitoring surveys (Ehrlinger et al.) draw the line between deployed DQ
// tools and prototypes at exactly this capability: re-audit snapshots of
// the same table over time and report when quality metrics move. The
// drift engine compares the newest history record against either one
// older record or a rolling baseline of the last N runs, and emits a
// deterministic, severity-ranked list of findings:
//
//   * suspicion-rate drift (the paper's "about 6000 suspicious records"
//     as a fraction of the table — the headline quality signal),
//   * per-expert-rule violation-count drift,
//   * rule-set changes (rules appearing in / vanishing from the check),
//   * record-count shifts,
//   * schema / input / configuration changes (manifest hash diffs),
//   * ingest / phase timing regressions (capped at warn severity — wall
//     clock noise must never gate a CI pipeline by itself).
//
// Severity is three-valued: info (reported, never gates), warn
// (suspicious, never gates), drift (past both the absolute and relative
// thresholds — dqmon check exits 3). Findings are ranked by a total
// order (severity, kind priority, |delta|, subject) so the same pair of
// records always renders the same report, byte for byte.

#ifndef DQ_OBS_DRIFT_H_
#define DQ_OBS_DRIFT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/history.h"

namespace dq::obs {

enum class DriftSeverity : int { kInfo = 0, kWarn = 1, kDrift = 2 };

const char* DriftSeverityName(DriftSeverity severity);

/// \brief Absolute + relative gates. A signal reaches drift severity only
/// when BOTH its absolute and relative deltas exceed the configured
/// values, so tiny tables cannot alarm on one flipped record and huge
/// tables cannot alarm on proportionally-invisible absolute moves.
struct DriftThresholds {
  /// Suspicion-rate drift (fraction of audited rows).
  double suspicion_rate_abs = 0.002;
  double suspicion_rate_rel = 0.10;

  /// Per-expert-rule violation-count drift.
  double rule_violations_abs = 5.0;
  double rule_violations_rel = 0.25;

  /// Record-count shift (relative only; reaches warn, never drift — a
  /// growing table is normal, but worth seeing).
  double record_count_rel = 0.10;

  /// Phase timing regression (current vs baseline mean; increase only;
  /// capped at warn severity).
  double timing_abs_ms = 100.0;
  double timing_rel = 0.50;
};

/// \brief One detected difference between baseline and current.
struct DriftFinding {
  /// "suspicion_rate", "rule_violation", "rule_set", "record_count",
  /// "schema_change", "input_change", "config_change", "timing".
  std::string kind;
  DriftSeverity severity = DriftSeverity::kInfo;
  /// What moved: a rule name, a timing phase, an input label, or "" for
  /// whole-run signals.
  std::string subject;
  double baseline = 0.0;
  double current = 0.0;
  double delta_abs = 0.0;  ///< current - baseline (signed)
  double delta_rel = 0.0;  ///< delta_abs / max(|baseline|, tiny) (signed)
  std::string message;     ///< one human-readable line
};

/// \brief The full comparison result.
struct DriftReport {
  /// Bumped whenever the drift-report JSON layout changes.
  static constexpr int kSchemaVersion = 1;

  std::string baseline_desc;  ///< e.g. "runs 1..5 (mean of 5)"
  std::string current_desc;   ///< e.g. "run 6 (2026-08-08T...)"
  size_t baseline_runs = 0;
  /// Ranked most-severe first by the deterministic total order.
  std::vector<DriftFinding> findings;

  /// \brief True when any finding reached drift severity (exit code 3).
  bool HasDrift() const;

  size_t CountAtLeast(DriftSeverity severity) const;

  /// \brief Aligned text rendering, one line per finding.
  std::string RenderText() const;

  /// \brief Pretty JSON rendering (schema in docs/OBSERVABILITY.md).
  std::string ToJson(int indent = 2) const;
};

/// \brief Compares `current` against a baseline window of earlier runs
/// (newest last). Numeric baselines are the arithmetic means across the
/// window; manifest comparisons use the newest baseline record. At least
/// one baseline record is required.
DriftReport DetectDrift(const std::vector<HistoryRecord>& baseline,
                        const HistoryRecord& current,
                        const DriftThresholds& thresholds = {});

}  // namespace dq::obs

#endif  // DQ_OBS_DRIFT_H_
