// Schema-versioned BENCH_<name>.json emitter — the single writer behind
// every benchmark binary (bench/bench_util.h wraps it). Each report carries
// a schema version, the run manifest when attached, the failed-seed count,
// and optionally the full metrics snapshot, so a benchmark number can be
// traced back to the exact configuration that produced it.

#ifndef DQ_OBS_BENCH_REPORT_H_
#define DQ_OBS_BENCH_REPORT_H_

#include <optional>
#include <string>
#include <utility>

#include "obs/json.h"
#include "obs/manifest.h"

namespace dq::obs {

class BenchReport {
 public:
  /// Bumped whenever the BENCH_*.json layout changes.
  static constexpr int kSchemaVersion = 2;

  explicit BenchReport(std::string name) : name_(std::move(name)) {
    fields_.Add("schema_version", kSchemaVersion);
    fields_.Add("bench", name_);
  }

  /// \brief Builds the run manifest from the command line and attaches it.
  BenchReport(std::string name, int argc, const char* const* argv)
      : BenchReport(std::move(name)) {
    manifest_ = MakeRunManifest(name_, argc, argv);
  }

  template <typename T>
  void Add(const std::string& key, T value) {
    fields_.Add(key, value);
  }

  void AttachManifest(RunManifest manifest) {
    manifest_ = std::move(manifest);
  }
  RunManifest* manifest() {
    return manifest_.has_value() ? &*manifest_ : nullptr;
  }

  /// \brief Also embed the global metrics registry snapshot under
  /// "metrics" when the report is written.
  void IncludeMetrics(bool include = true) { include_metrics_ = include; }

  /// \brief Count of seeds whose pipeline run failed (surfaced in the JSON
  /// instead of only on stderr).
  void SetFailedSeeds(int failed) { failed_seeds_ = failed; }

  /// \brief Renders the full report (see docs/OBSERVABILITY.md).
  std::string ToJson() const;

  /// \brief Writes `BENCH_<name>.json` into the working directory.
  bool WriteFile() const;

 private:
  std::string name_;
  JsonObjectWriter fields_;
  std::optional<RunManifest> manifest_;
  bool include_metrics_ = false;
  int failed_seeds_ = 0;
};

}  // namespace dq::obs

#endif  // DQ_OBS_BENCH_REPORT_H_
