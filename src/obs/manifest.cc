#include "obs/manifest.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <sstream>

namespace dq::obs {

namespace {

constexpr int64_t kNoOverride = -1;

/// Fixed-clock override: set by SetEpochMillisForTesting, or read once
/// from DQ_UTC_OVERRIDE_MS (the seam the deterministic CLI tests use).
std::atomic<int64_t>& OverrideMillis() {
  static std::atomic<int64_t> value{kNoOverride};
  return value;
}

int64_t EnvOverrideMillis() {
  static const int64_t from_env = [] {
    const char* env = std::getenv("DQ_UTC_OVERRIDE_MS");
    if (env == nullptr || *env == '\0') return kNoOverride;
    char* end = nullptr;
    const long long parsed = std::strtoll(env, &end, 10);
    if (end == env || *end != '\0' || parsed < 0) return kNoOverride;
    return static_cast<int64_t>(parsed);
  }();
  return from_env;
}

}  // namespace

int64_t EpochMillisNow() {
  const int64_t fixed = OverrideMillis().load(std::memory_order_relaxed);
  if (fixed >= 0) return fixed;
  const int64_t env = EnvOverrideMillis();
  if (env >= 0) return env;
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void SetEpochMillisForTesting(int64_t fixed_ms) {
  OverrideMillis().store(fixed_ms < 0 ? kNoOverride : fixed_ms,
                         std::memory_order_relaxed);
}

bool EpochClockOverridden() {
  if (OverrideMillis().load(std::memory_order_relaxed) >= 0) return true;
  return EnvOverrideMillis() >= 0;
}

std::string FormatUtcTimestamp(int64_t epoch_ms) {
  const std::time_t seconds = static_cast<std::time_t>(epoch_ms / 1000);
  const int millis = static_cast<int>(epoch_ms % 1000);
  std::tm utc{};
#if defined(_WIN32)
  gmtime_s(&utc, &seconds);
#else
  gmtime_r(&seconds, &utc);
#endif
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, millis);
  return buf;
}

uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string HashHex(uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

void RunManifest::StampWallClock() {
  const int64_t now = EpochMillisNow();
  wall_ms = started_unix_ms > 0 && now >= started_unix_ms
                ? static_cast<double>(now - started_unix_ms)
                : 0.0;
}

std::string RunManifest::ToJson(int indent) const {
  JsonObjectWriter out;
  out.Add("schema_version", kSchemaVersion);
  out.Add("tool", tool);
  out.Add("version", version);
  out.Add("build_type", build_type);
  out.Add("config_hash", config_hash);
  out.Add("seed", seed);
  out.Add("threads_requested", threads_requested);
  out.Add("threads_used", threads_used);
  out.AddRaw("started_unix_ms", std::to_string(started_unix_ms));
  out.Add("started_utc", started_utc);
  out.Add("wall_ms", wall_ms);
  JsonObjectWriter inputs;
  for (const auto& [label, hash] : input_hashes) {
    inputs.Add(label, hash);
  }
  out.AddRaw("input_hashes", inputs.Render(indent));
  return out.Render(indent);
}

void RunManifest::AppendTo(JsonObjectWriter* out, int indent) const {
  out->AddRaw("manifest", ToJson(indent));
}

RunManifest MakeRunManifest(std::string tool, int argc,
                            const char* const* argv) {
  RunManifest manifest;
  manifest.tool = std::move(tool);
  manifest.version = "1.0.0";
#ifdef DQ_BUILD_TYPE
  manifest.build_type = DQ_BUILD_TYPE;
#elif defined(NDEBUG)
  manifest.build_type = "Release";
#else
  manifest.build_type = "Debug";
#endif
  // Hash every argv element with a separator that cannot occur inside one,
  // so ["--a", "bc"] and ["--ab", "c"] hash differently.
  std::string joined;
  for (int i = 0; i < argc; ++i) {
    joined += argv[i];
    joined += '\0';
  }
  manifest.config_hash = HashHex(Fnv1a64(joined));
  manifest.started_unix_ms = EpochMillisNow();
  manifest.started_utc = FormatUtcTimestamp(manifest.started_unix_ms);
  return manifest;
}

Status RunManifestFromJson(const JsonValue& json, RunManifest* out) {
  if (!json.is_object()) {
    return Status::InvalidArgument("manifest JSON is not an object");
  }
  *out = RunManifest();
  if (const JsonValue* v = json.Find("tool")) out->tool = v->AsString();
  if (const JsonValue* v = json.Find("version")) out->version = v->AsString();
  if (const JsonValue* v = json.Find("build_type")) {
    out->build_type = v->AsString();
  }
  if (const JsonValue* v = json.Find("config_hash")) {
    out->config_hash = v->AsString();
  }
  if (const JsonValue* v = json.Find("seed")) out->seed = v->AsUint64();
  if (const JsonValue* v = json.Find("threads_requested")) {
    out->threads_requested = static_cast<int>(v->AsInt64());
  }
  if (const JsonValue* v = json.Find("threads_used")) {
    out->threads_used = static_cast<int>(v->AsInt64());
  }
  if (const JsonValue* v = json.Find("started_unix_ms")) {
    out->started_unix_ms = v->AsInt64();
  }
  if (const JsonValue* v = json.Find("started_utc")) {
    out->started_utc = v->AsString();
  }
  if (const JsonValue* v = json.Find("wall_ms")) out->wall_ms = v->AsDouble();
  if (const JsonValue* inputs = json.Find("input_hashes");
      inputs != nullptr && inputs->is_object()) {
    for (const auto& [label, hash] : inputs->members) {
      out->input_hashes.emplace_back(label, hash.AsString());
    }
  }
  return Status::OK();
}

Status AddInputFileHash(RunManifest* manifest, const std::string& label,
                        const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot read " + path + " for manifest hashing");
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  manifest->input_hashes.emplace_back(label,
                                      HashHex(Fnv1a64(contents.str())));
  return Status::OK();
}

}  // namespace dq::obs
