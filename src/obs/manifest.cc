#include "obs/manifest.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace dq::obs {

uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string HashHex(uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

std::string RunManifest::ToJson(int indent) const {
  JsonObjectWriter out;
  out.Add("schema_version", kSchemaVersion);
  out.Add("tool", tool);
  out.Add("version", version);
  out.Add("build_type", build_type);
  out.Add("config_hash", config_hash);
  out.Add("seed", seed);
  out.Add("threads_requested", threads_requested);
  out.Add("threads_used", threads_used);
  JsonObjectWriter inputs;
  for (const auto& [label, hash] : input_hashes) {
    inputs.Add(label, hash);
  }
  out.AddRaw("input_hashes", inputs.Render(indent));
  return out.Render(indent);
}

void RunManifest::AppendTo(JsonObjectWriter* out, int indent) const {
  out->AddRaw("manifest", ToJson(indent));
}

RunManifest MakeRunManifest(std::string tool, int argc,
                            const char* const* argv) {
  RunManifest manifest;
  manifest.tool = std::move(tool);
  manifest.version = "1.0.0";
#ifdef DQ_BUILD_TYPE
  manifest.build_type = DQ_BUILD_TYPE;
#elif defined(NDEBUG)
  manifest.build_type = "Release";
#else
  manifest.build_type = "Debug";
#endif
  // Hash every argv element with a separator that cannot occur inside one,
  // so ["--a", "bc"] and ["--ab", "c"] hash differently.
  std::string joined;
  for (int i = 0; i < argc; ++i) {
    joined += argv[i];
    joined += '\0';
  }
  manifest.config_hash = HashHex(Fnv1a64(joined));
  return manifest;
}

Status AddInputFileHash(RunManifest* manifest, const std::string& label,
                        const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot read " + path + " for manifest hashing");
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  manifest->input_hashes.emplace_back(label,
                                      HashHex(Fnv1a64(contents.str())));
  return Status::OK();
}

}  // namespace dq::obs
