#include "obs/trace.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <map>

namespace dq::obs {

namespace {

/// One thread_local slot is enough: only the process-global tracer records.
thread_local void* t_buffer = nullptr;

}  // namespace

Tracer& Tracer::Global() {
  // Leaked singleton: worker threads may record until process exit, so the
  // buffers must never be destroyed.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::ThreadBuffer* Tracer::LocalBuffer() {
  auto* buffer = static_cast<ThreadBuffer*>(t_buffer);
  if (buffer != nullptr) return buffer;
  std::lock_guard<std::mutex> lock(registry_mu_);
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  buffer = buffers_.back().get();
  buffer->slot = static_cast<uint32_t>(buffers_.size() - 1);
  t_buffer = buffer;
  return buffer;
}

SpanRecord* Tracer::BeginSpan(const char* name, int64_t key) {
  if (!enabled()) return nullptr;
  ThreadBuffer* buffer = LocalBuffer();
  buffer->records.emplace_back();
  SpanRecord* span = &buffer->records.back();
  span->name = name;
  span->key = key;
  span->start_ns = NowNs();
  span->parent =
      buffer->stack.empty() ? buffer->task_parent : buffer->stack.back();
  span->thread_slot = buffer->slot;
  buffer->stack.push_back(span);
  return span;
}

void Tracer::EndSpan(SpanRecord* span) {
  span->end_ns = NowNs();
  auto* buffer = static_cast<ThreadBuffer*>(t_buffer);
  if (buffer == nullptr) return;
  // Spans end LIFO on their own thread; tolerate a mismatch rather than
  // corrupting the stack.
  auto it = std::find(buffer->stack.rbegin(), buffer->stack.rend(), span);
  if (it != buffer->stack.rend()) {
    buffer->stack.erase(std::next(it).base());
  }
}

TaskContext Tracer::CurrentContext() {
  if (!enabled()) return {};
  ThreadBuffer* buffer = LocalBuffer();
  return {buffer->stack.empty() ? buffer->task_parent
                                : buffer->stack.back()};
}

size_t Tracer::NumSpans() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  size_t n = 0;
  for (const auto& buffer : buffers_) n += buffer->records.size();
  return n;
}

double Tracer::AggregateMs(std::string_view name) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  double total = 0.0;
  for (const auto& buffer : buffers_) {
    for (const SpanRecord& span : buffer->records) {
      if (span.end_ns != 0 && name == span.name) total += span.DurationMs();
    }
  }
  return total;
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const auto& buffer : buffers_) {
    buffer->records.clear();
    buffer->stack.clear();
    buffer->task_parent = nullptr;
  }
}

TaskScope::TaskScope(const TaskContext& context) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled() && context.parent == nullptr) return;
  buffer_ = tracer.LocalBuffer();
  saved_ = buffer_->task_parent;
  buffer_->task_parent = context.parent;
}

TaskScope::~TaskScope() {
  if (buffer_ != nullptr) buffer_->task_parent = saved_;
}

namespace {

/// Flush-side views over the recorded spans. Children are grouped under
/// their parent; sibling order is (name, key, start) so walks are
/// deterministic wherever (name, key) pairs are unique — which the
/// instrumentation guarantees for parallel siblings.
struct FlushIndex {
  std::map<const SpanRecord*, std::vector<const SpanRecord*>> children;
};

bool SpanOrder(const SpanRecord* a, const SpanRecord* b) {
  const int names = std::strcmp(a->name, b->name);
  if (names != 0) return names < 0;
  if (a->key != b->key) return a->key < b->key;
  return a->start_ns < b->start_ns;
}

}  // namespace

std::string Tracer::TreeSummary() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  FlushIndex index;
  for (const auto& buffer : buffers_) {
    for (const SpanRecord& span : buffer->records) {
      if (span.end_ns == 0) continue;
      index.children[span.parent].push_back(&span);
    }
  }

  // Aggregate siblings by (name, key): identical twins collapse into one
  // line with a count and merged child lists, so the summary depends on
  // nothing but names, keys, hierarchy and counts.
  std::string out;
  struct Group {
    std::vector<const SpanRecord*> spans;
  };
  auto render = [&](auto&& self, const std::vector<const SpanRecord*>& nodes,
                    int depth) -> void {
    std::map<std::pair<std::string, int64_t>, Group> groups;
    for (const SpanRecord* span : nodes) {
      groups[{span->name, span->key}].spans.push_back(span);
    }
    for (const auto& [id, group] : groups) {
      out.append(static_cast<size_t>(depth) * 2, ' ');
      out += id.first;
      if (id.second >= 0) {
        out += '[';
        out += std::to_string(id.second);
        out += ']';
      }
      if (group.spans.size() > 1) {
        out += " x";
        out += std::to_string(group.spans.size());
      }
      out += '\n';
      std::vector<const SpanRecord*> merged;
      for (const SpanRecord* span : group.spans) {
        auto it = index.children.find(span);
        if (it == index.children.end()) continue;
        merged.insert(merged.end(), it->second.begin(), it->second.end());
      }
      if (!merged.empty()) self(self, merged, depth + 1);
    }
  };
  auto roots = index.children.find(nullptr);
  if (roots != index.children.end()) render(render, roots->second, 0);
  return out;
}

std::string Tracer::ToChromeTraceJson(const RunManifest* manifest) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  FlushIndex index;
  uint32_t max_slot = 0;
  for (const auto& buffer : buffers_) {
    for (const SpanRecord& span : buffer->records) {
      if (span.end_ns == 0) continue;
      index.children[span.parent].push_back(&span);
      max_slot = std::max(max_slot, span.thread_slot);
    }
  }
  for (auto& [parent, kids] : index.children) {
    std::sort(kids.begin(), kids.end(), SpanOrder);
  }

  // Deterministic span ids: preorder over the sorted tree, root-first.
  std::map<const SpanRecord*, uint64_t> ids;
  uint64_t next_id = 0;
  auto assign = [&](auto&& self, const SpanRecord* parent) -> void {
    auto it = index.children.find(parent);
    if (it == index.children.end()) return;
    for (const SpanRecord* span : it->second) {
      ids[span] = ++next_id;
      self(self, span);
    }
  };
  assign(assign, nullptr);

  std::string events;
  auto append_event = [&events](const std::string& event) {
    if (!events.empty()) events += ",\n    ";
    events += event;
  };

  const char* process_name =
      manifest != nullptr && !manifest->tool.empty() ? manifest->tool.c_str()
                                                     : "dqtools";
  {
    JsonObjectWriter meta;
    meta.Add("ph", "M");
    meta.Add("pid", 1);
    meta.Add("name", "process_name");
    JsonObjectWriter args;
    args.Add("name", process_name);
    meta.AddRaw("args", args.Render(0));
    append_event(meta.Render(0));
  }
  for (uint32_t slot = 0; slot <= max_slot; ++slot) {
    JsonObjectWriter meta;
    meta.Add("ph", "M");
    meta.Add("pid", 1);
    meta.Add("tid", static_cast<int>(slot + 1));
    meta.Add("name", "thread_name");
    JsonObjectWriter args;
    args.Add("name", slot == 0 ? std::string("main")
                               : "worker-" + std::to_string(slot));
    meta.AddRaw("args", args.Render(0));
    append_event(meta.Render(0));
  }

  auto emit = [&](auto&& self, const SpanRecord* parent) -> void {
    auto it = index.children.find(parent);
    if (it == index.children.end()) return;
    for (const SpanRecord* span : it->second) {
      JsonObjectWriter event;
      event.Add("ph", "X");
      event.Add("pid", 1);
      event.Add("tid", static_cast<int>(span->thread_slot + 1));
      event.Add("name", span->name);
      event.Add("cat", "dq");
      event.Add("ts", static_cast<double>(span->start_ns) / 1000.0);
      event.Add("dur",
                static_cast<double>(span->end_ns - span->start_ns) / 1000.0);
      JsonObjectWriter args;
      args.Add("span_id", ids[span]);
      args.Add("parent_id", parent == nullptr ? uint64_t{0} : ids[parent]);
      if (span->key >= 0) args.Add("key", static_cast<uint64_t>(span->key));
      event.AddRaw("args", args.Render(0));
      append_event(event.Render(0));
      self(self, span);
    }
  };
  emit(emit, nullptr);

  JsonObjectWriter out;
  out.AddRaw("traceEvents", "[\n    " + events + "\n  ]");
  out.Add("displayTimeUnit", "ms");
  if (manifest != nullptr) manifest->AppendTo(&out);
  return out.Render() + "\n";
}

Status Tracer::WriteChromeTraceFile(const std::string& path,
                                    const RunManifest* manifest) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot write " + path);
  out << ToChromeTraceJson(manifest);
  if (!out) return Status::IOError("failed writing " + path);
  return Status::OK();
}

}  // namespace dq::obs
