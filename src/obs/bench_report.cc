#include "obs/bench_report.h"

#include <cstdio>
#include <fstream>

#include "obs/metrics.h"

namespace dq::obs {

std::string BenchReport::ToJson() const {
  JsonObjectWriter out = fields_;
  out.Add("failed_seeds", failed_seeds_);
  if (manifest_.has_value()) manifest_->AppendTo(&out);
  if (include_metrics_) {
    std::string metrics = MetricsRegistry::Global().ToJson();
    // Drop the trailing newline the standalone dump carries.
    while (!metrics.empty() && metrics.back() == '\n') metrics.pop_back();
    out.AddRaw("metrics", std::move(metrics));
  }
  return out.Render() + "\n";
}

bool BenchReport::WriteFile() const {
  const std::string path = "BENCH_" + name_ + ".json";
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << ToJson();
  if (!out) {
    std::fprintf(stderr, "failed writing %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace dq::obs
