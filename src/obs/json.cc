#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace dq::obs {

std::string JsonEscape(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string JsonObjectWriter::Render(int indent) const {
  if (fields_.empty()) return "{}";
  const std::string pad(indent > 0 ? static_cast<size_t>(indent) : 0, ' ');
  std::string out = indent > 0 ? "{\n" : "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (indent > 0) out += pad;
    out += '"';
    out += JsonEscape(fields_[i].first);
    out += indent > 0 ? "\": " : "\":";
    if (indent > 0) {
      // Re-indent nested pretty-printed values so the result stays readable.
      const std::string& value = fields_[i].second;
      for (char c : value) {
        out.push_back(c);
        if (c == '\n') out += pad;
      }
    } else {
      out += fields_[i].second;
    }
    if (i + 1 < fields_.size()) out += ',';
    if (indent > 0) out += '\n';
  }
  out += '}';
  return out;
}

namespace {

/// Recursive-descent JSON scanner; validates without building a DOM.
class JsonScanner {
 public:
  explicit JsonScanner(std::string_view text) : text_(text) {}

  bool Validate(std::string* error) {
    SkipWs();
    if (!Value()) return Fail(error);
    SkipWs();
    if (pos_ != text_.size()) {
      reason_ = "trailing characters after JSON value";
      return Fail(error);
    }
    return true;
  }

 private:
  bool Fail(std::string* error) {
    if (error != nullptr) {
      *error = "offset " + std::to_string(pos_) + ": " +
               (reason_.empty() ? "malformed JSON" : reason_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      reason_ = "invalid literal";
      return false;
    }
    pos_ += lit.size();
    return true;
  }

  bool String() {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      reason_ = "expected string";
      return false;
    }
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        reason_ = "unescaped control character in string";
        return false;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + static_cast<size_t>(i) >= text_.size() ||
                std::isxdigit(static_cast<unsigned char>(
                    text_[pos_ + static_cast<size_t>(i)])) == 0) {
              reason_ = "invalid \\u escape";
              return false;
            }
          }
          pos_ += 4;
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          reason_ = "invalid escape character";
          return false;
        }
      }
      ++pos_;
    }
    reason_ = "unterminated string";
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
      reason_ = "expected digit";
      return false;
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
        reason_ = "expected fraction digits";
        return false;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
        reason_ = "expected exponent digits";
        return false;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  bool Value() {
    if (++depth_ > kMaxDepth) {
      reason_ = "nesting too deep";
      return false;
    }
    SkipWs();
    bool ok = false;
    if (pos_ >= text_.size()) {
      reason_ = "unexpected end of input";
    } else {
      switch (text_[pos_]) {
        case '{':
          ok = Object();
          break;
        case '[':
          ok = Array();
          break;
        case '"':
          ok = String();
          break;
        case 't':
          ok = Literal("true");
          break;
        case 'f':
          ok = Literal("false");
          break;
        case 'n':
          ok = Literal("null");
          break;
        default:
          ok = Number();
      }
    }
    --depth_;
    return ok;
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        reason_ = "expected ':' in object";
        return false;
      }
      ++pos_;
      if (!Value()) return false;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      reason_ = "expected ',' or '}' in object";
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      if (!Value()) return false;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      reason_ = "expected ',' or ']' in array";
      return false;
    }
  }

  static constexpr int kMaxDepth = 64;
  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
  std::string reason_;
};

}  // namespace

bool ValidateJson(std::string_view text, std::string* error) {
  return JsonScanner(text).Validate(error);
}

}  // namespace dq::obs
