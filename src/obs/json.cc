#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace dq::obs {

std::string JsonEscape(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string JsonObjectWriter::Render(int indent) const {
  if (fields_.empty()) return "{}";
  const std::string pad(indent > 0 ? static_cast<size_t>(indent) : 0, ' ');
  std::string out = indent > 0 ? "{\n" : "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (indent > 0) out += pad;
    out += '"';
    out += JsonEscape(fields_[i].first);
    out += indent > 0 ? "\": " : "\":";
    if (indent > 0) {
      // Re-indent nested pretty-printed values so the result stays readable.
      const std::string& value = fields_[i].second;
      for (char c : value) {
        out.push_back(c);
        if (c == '\n') out += pad;
      }
    } else {
      out += fields_[i].second;
    }
    if (i + 1 < fields_.size()) out += ',';
    if (indent > 0) out += '\n';
  }
  out += '}';
  return out;
}

namespace {

/// Appends `code_point` to `out` as UTF-8.
void AppendUtf8(uint32_t code_point, std::string* out) {
  if (code_point < 0x80) {
    out->push_back(static_cast<char>(code_point));
  } else if (code_point < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (code_point >> 6)));
    out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  } else if (code_point < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (code_point >> 12)));
    out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (code_point >> 18)));
    out->push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  }
}

/// Recursive-descent JSON scanner; validates, and optionally builds a
/// JsonValue DOM when the entry point receives a non-null sink.
class JsonScanner {
 public:
  explicit JsonScanner(std::string_view text) : text_(text) {}

  bool Validate(std::string* error) { return Run(nullptr, error); }

  bool Parse(JsonValue* out, std::string* error) { return Run(out, error); }

 private:
  bool Run(JsonValue* out, std::string* error) {
    SkipWs();
    if (!Value(out)) return Fail(error);
    SkipWs();
    if (pos_ != text_.size()) {
      reason_ = "trailing characters after JSON value";
      return Fail(error);
    }
    return true;
  }

  bool Fail(std::string* error) {
    if (error != nullptr) {
      *error = "offset " + std::to_string(pos_) + ": " +
               (reason_.empty() ? "malformed JSON" : reason_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      reason_ = "invalid literal";
      return false;
    }
    pos_ += lit.size();
    return true;
  }

  /// Parses the 4 hex digits after "\u"; `pos_` is on the 'u'.
  bool HexEscape(uint32_t* code_unit) {
    uint32_t value = 0;
    for (int i = 1; i <= 4; ++i) {
      if (pos_ + static_cast<size_t>(i) >= text_.size()) {
        reason_ = "invalid \\u escape";
        return false;
      }
      const char h = text_[pos_ + static_cast<size_t>(i)];
      if (std::isxdigit(static_cast<unsigned char>(h)) == 0) {
        reason_ = "invalid \\u escape";
        return false;
      }
      uint32_t digit = 0;
      if (h >= '0' && h <= '9') {
        digit = static_cast<uint32_t>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        digit = static_cast<uint32_t>(h - 'a') + 10;
      } else {
        digit = static_cast<uint32_t>(h - 'A') + 10;
      }
      value = (value << 4) | digit;
    }
    pos_ += 4;
    *code_unit = value;
    return true;
  }

  bool String(std::string* decoded) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      reason_ = "expected string";
      return false;
    }
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        reason_ = "unescaped control character in string";
        return false;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_];
        if (esc == 'u') {
          uint32_t unit = 0;
          if (!HexEscape(&unit)) return false;
          // Combine a surrogate pair when a low surrogate follows; an
          // unpaired surrogate decodes to U+FFFD rather than failing (the
          // emitters never produce one, but ledgers are long-lived files).
          if (unit >= 0xD800 && unit <= 0xDBFF &&
              pos_ + 2 < text_.size() && text_[pos_ + 1] == '\\' &&
              text_[pos_ + 2] == 'u') {
            pos_ += 2;
            uint32_t low = 0;
            if (!HexEscape(&low)) return false;
            if (low >= 0xDC00 && low <= 0xDFFF) {
              unit = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
            } else {
              if (decoded != nullptr) AppendUtf8(0xFFFD, decoded);
              unit = low >= 0xD800 && low <= 0xDFFF ? 0xFFFD : low;
            }
          } else if (unit >= 0xD800 && unit <= 0xDFFF) {
            unit = 0xFFFD;
          }
          if (decoded != nullptr) AppendUtf8(unit, decoded);
        } else if (esc == '"' || esc == '\\' || esc == '/') {
          if (decoded != nullptr) decoded->push_back(esc);
        } else if (esc == 'b') {
          if (decoded != nullptr) decoded->push_back('\b');
        } else if (esc == 'f') {
          if (decoded != nullptr) decoded->push_back('\f');
        } else if (esc == 'n') {
          if (decoded != nullptr) decoded->push_back('\n');
        } else if (esc == 'r') {
          if (decoded != nullptr) decoded->push_back('\r');
        } else if (esc == 't') {
          if (decoded != nullptr) decoded->push_back('\t');
        } else {
          reason_ = "invalid escape character";
          return false;
        }
        ++pos_;
        continue;
      }
      if (decoded != nullptr) decoded->push_back(c);
      ++pos_;
    }
    reason_ = "unterminated string";
    return false;
  }

  bool Number(std::string* raw) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
      reason_ = "expected digit";
      return false;
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
        reason_ = "expected fraction digits";
        return false;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
        reason_ = "expected exponent digits";
        return false;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (pos_ > start && raw != nullptr) {
      raw->assign(text_.substr(start, pos_ - start));
    }
    return pos_ > start;
  }

  bool Value(JsonValue* out) {
    if (++depth_ > kMaxDepth) {
      reason_ = "nesting too deep";
      return false;
    }
    SkipWs();
    bool ok = false;
    if (pos_ >= text_.size()) {
      reason_ = "unexpected end of input";
    } else {
      switch (text_[pos_]) {
        case '{':
          if (out != nullptr) out->kind = JsonValue::Kind::kObject;
          ok = Object(out);
          break;
        case '[':
          if (out != nullptr) out->kind = JsonValue::Kind::kArray;
          ok = Array(out);
          break;
        case '"':
          if (out != nullptr) out->kind = JsonValue::Kind::kString;
          ok = String(out != nullptr ? &out->string_value : nullptr);
          break;
        case 't':
          ok = Literal("true");
          if (ok && out != nullptr) {
            out->kind = JsonValue::Kind::kBool;
            out->bool_value = true;
          }
          break;
        case 'f':
          ok = Literal("false");
          if (ok && out != nullptr) {
            out->kind = JsonValue::Kind::kBool;
            out->bool_value = false;
          }
          break;
        case 'n':
          ok = Literal("null");
          if (ok && out != nullptr) out->kind = JsonValue::Kind::kNull;
          break;
        default:
          if (out != nullptr) out->kind = JsonValue::Kind::kNumber;
          ok = Number(out != nullptr ? &out->number_raw : nullptr);
      }
    }
    --depth_;
    return ok;
  }

  bool Object(JsonValue* out) {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (!String(out != nullptr ? &key : nullptr)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        reason_ = "expected ':' in object";
        return false;
      }
      ++pos_;
      JsonValue* member = nullptr;
      if (out != nullptr) {
        out->members.emplace_back(std::move(key), JsonValue());
        member = &out->members.back().second;
      }
      if (!Value(member)) return false;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      reason_ = "expected ',' or '}' in object";
      return false;
    }
  }

  bool Array(JsonValue* out) {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue* item = nullptr;
      if (out != nullptr) {
        out->items.emplace_back();
        item = &out->items.back();
      }
      if (!Value(item)) return false;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      reason_ = "expected ',' or ']' in array";
      return false;
    }
  }

  static constexpr int kMaxDepth = 64;
  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
  std::string reason_;
};

}  // namespace

bool ValidateJson(std::string_view text, std::string* error) {
  return JsonScanner(text).Validate(error);
}

double JsonValue::AsDouble(double fallback) const {
  if (kind != Kind::kNumber) return fallback;
  return std::strtod(number_raw.c_str(), nullptr);
}

int64_t JsonValue::AsInt64(int64_t fallback) const {
  if (kind != Kind::kNumber) return fallback;
  // Fractional/exponent spellings fall back to the double path so "3.0"
  // still reads as 3.
  if (number_raw.find_first_of(".eE") != std::string::npos) {
    return static_cast<int64_t>(AsDouble(static_cast<double>(fallback)));
  }
  return static_cast<int64_t>(std::strtoll(number_raw.c_str(), nullptr, 10));
}

uint64_t JsonValue::AsUint64(uint64_t fallback) const {
  if (kind != Kind::kNumber) return fallback;
  if (!number_raw.empty() && number_raw[0] == '-') return fallback;
  if (number_raw.find_first_of(".eE") != std::string::npos) {
    return static_cast<uint64_t>(AsDouble(static_cast<double>(fallback)));
  }
  return static_cast<uint64_t>(
      std::strtoull(number_raw.c_str(), nullptr, 10));
}

std::string JsonValue::AsString(std::string fallback) const {
  return kind == Kind::kString ? string_value : std::move(fallback);
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

bool ParseJson(std::string_view text, JsonValue* out, std::string* error) {
  *out = JsonValue();
  return JsonScanner(text).Parse(out, error);
}

}  // namespace dq::obs
