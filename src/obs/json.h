// Minimal JSON building blocks shared by every observability emitter
// (trace files, metrics dumps, run manifests, BENCH_*.json) plus a strict
// syntax checker so tests and CI can validate what the emitters produce
// without a third-party JSON dependency.

#ifndef DQ_OBS_JSON_H_
#define DQ_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dq::obs {

/// \brief Escapes `in` for use inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(std::string_view in);

/// \brief Renders a double as a JSON number. Finite values use up to six
/// significant digits (the historical BENCH_*.json precision); NaN and
/// infinities — which JSON cannot represent — render as 0.
std::string JsonDouble(double v);

/// \brief Ordered key/value accumulator for one JSON object. Values are
/// rendered on insertion; AddRaw accepts pre-rendered JSON (nested objects
/// or arrays). Duplicate keys are the caller's responsibility.
class JsonObjectWriter {
 public:
  void Add(const std::string& key, std::string_view value) {
    fields_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
  }
  void Add(const std::string& key, const char* value) {
    Add(key, std::string_view(value));
  }
  void Add(const std::string& key, const std::string& value) {
    Add(key, std::string_view(value));
  }
  void Add(const std::string& key, double value) {
    fields_.emplace_back(key, JsonDouble(value));
  }
  void Add(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
  }
  void Add(const std::string& key, int value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  /// Catches uint64_t and size_t (the same type on LP64).
  void Add(const std::string& key, unsigned long long value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void Add(const std::string& key, unsigned long value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void Add(const std::string& key, unsigned value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  /// \brief Inserts `rendered` verbatim as the value (must be valid JSON).
  void AddRaw(const std::string& key, std::string rendered) {
    fields_.emplace_back(key, std::move(rendered));
  }

  bool empty() const { return fields_.empty(); }

  /// \brief Renders the object. `indent` > 0 pretty-prints with that many
  /// spaces per level (nested raw values are re-indented line by line);
  /// 0 renders compactly on one line.
  std::string Render(int indent = 2) const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// \brief Strict JSON well-formedness check (objects, arrays, strings,
/// numbers, booleans, null; no trailing garbage). On failure returns false
/// and, when `error` is non-null, a byte offset + reason message.
bool ValidateJson(std::string_view text, std::string* error = nullptr);

/// \brief Parsed JSON value. The monitoring layer reads its own history
/// records and metrics snapshots back; a tiny DOM keeps that in-tree
/// instead of pulling in a third-party JSON dependency. Object members
/// preserve insertion order (duplicate keys keep every occurrence; Find
/// returns the first).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  /// Numbers keep their source spelling so 64-bit counters survive a
  /// round trip that a double would truncate.
  std::string number_raw;
  std::string string_value;  ///< unescaped content
  std::vector<std::pair<std::string, JsonValue>> members;  ///< objects
  std::vector<JsonValue> items;                            ///< arrays

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  double AsDouble(double fallback = 0.0) const;
  int64_t AsInt64(int64_t fallback = 0) const;
  uint64_t AsUint64(uint64_t fallback = 0) const;
  /// String value, or `fallback` for non-strings.
  std::string AsString(std::string fallback = {}) const;

  /// \brief First member named `key` of an object; null otherwise.
  const JsonValue* Find(std::string_view key) const;
};

/// \brief Parses `text` (one complete JSON value, no trailing garbage)
/// into `out`. Escape sequences are decoded (\uXXXX becomes UTF-8, with
/// surrogate pairs combined). On failure returns false and, when `error`
/// is non-null, a byte offset + reason message.
bool ParseJson(std::string_view text, JsonValue* out,
               std::string* error = nullptr);

}  // namespace dq::obs

#endif  // DQ_OBS_JSON_H_
