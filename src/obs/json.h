// Minimal JSON building blocks shared by every observability emitter
// (trace files, metrics dumps, run manifests, BENCH_*.json) plus a strict
// syntax checker so tests and CI can validate what the emitters produce
// without a third-party JSON dependency.

#ifndef DQ_OBS_JSON_H_
#define DQ_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dq::obs {

/// \brief Escapes `in` for use inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(std::string_view in);

/// \brief Renders a double as a JSON number. Finite values use up to six
/// significant digits (the historical BENCH_*.json precision); NaN and
/// infinities — which JSON cannot represent — render as 0.
std::string JsonDouble(double v);

/// \brief Ordered key/value accumulator for one JSON object. Values are
/// rendered on insertion; AddRaw accepts pre-rendered JSON (nested objects
/// or arrays). Duplicate keys are the caller's responsibility.
class JsonObjectWriter {
 public:
  void Add(const std::string& key, std::string_view value) {
    fields_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
  }
  void Add(const std::string& key, const char* value) {
    Add(key, std::string_view(value));
  }
  void Add(const std::string& key, const std::string& value) {
    Add(key, std::string_view(value));
  }
  void Add(const std::string& key, double value) {
    fields_.emplace_back(key, JsonDouble(value));
  }
  void Add(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
  }
  void Add(const std::string& key, int value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  /// Catches uint64_t and size_t (the same type on LP64).
  void Add(const std::string& key, unsigned long long value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void Add(const std::string& key, unsigned long value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void Add(const std::string& key, unsigned value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  /// \brief Inserts `rendered` verbatim as the value (must be valid JSON).
  void AddRaw(const std::string& key, std::string rendered) {
    fields_.emplace_back(key, std::move(rendered));
  }

  bool empty() const { return fields_.empty(); }

  /// \brief Renders the object. `indent` > 0 pretty-prints with that many
  /// spaces per level (nested raw values are re-indented line by line);
  /// 0 renders compactly on one line.
  std::string Render(int indent = 2) const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// \brief Strict JSON well-formedness check (objects, arrays, strings,
/// numbers, booleans, null; no trailing garbage). On failure returns false
/// and, when `error` is non-null, a byte offset + reason message.
bool ValidateJson(std::string_view text, std::string* error = nullptr);

}  // namespace dq::obs

#endif  // DQ_OBS_JSON_H_
