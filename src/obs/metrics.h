// Process-wide metrics registry: named counters, gauges and histograms the
// pipeline increments as it works (rows ingested, records quarantined,
// splits evaluated, tree nodes, suspicions flagged, pool queue depth, ...).
// Updates are lock-free atomics so instrumentation is safe from the thread
// pool; the registry exports one deterministic JSON snapshot (--metrics-out
// on the tools, merged into BENCH_*.json by the benches).
//
// Pure work counters (records, splits, nodes, flags) are identical for
// every thread count — the metrics dump is diffable evidence that a
// parallel run did exactly the serial run's work.

#ifndef DQ_OBS_METRICS_H_
#define DQ_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/manifest.h"

namespace dq::obs {

/// \brief Monotonic event count. Relaxed atomics: totals are exact, there
/// is no cross-metric ordering guarantee.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-write-wins point-in-time value.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Fixed-bucket histogram. Bucket upper bounds are set at
/// registration (an implicit +inf bucket catches the rest); Observe is a
/// branchless-ish linear scan over typically < 16 bounds plus two atomics.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  size_t NumBuckets() const { return bounds_.size() + 1; }
  void Reset();

 private:
  std::vector<double> bounds_;  ///< ascending upper bounds
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  ///< bounds + overflow
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// \brief Point-in-time copy of every counter and gauge, sorted by name
/// (histograms are omitted — the history ledger keeps records compact).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
};

/// \brief Name -> metric registry. Registration takes a mutex once per
/// call site (cache the returned pointer in a static); updates through the
/// returned objects are lock-free. Metric objects live until process exit.
class MetricsRegistry {
 public:
  /// Bumped whenever the metrics JSON layout changes.
  static constexpr int kSchemaVersion = 1;

  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// Re-registration with different bounds keeps the first registration.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds);

  /// \brief Zeroes every metric value (registrations survive). For tests
  /// and for tools that run several pipelines in one process.
  void Reset();

  /// \brief Copies the current counter and gauge values, sorted by name.
  MetricsSnapshot Snapshot() const;

  /// \brief Deterministic snapshot: metrics sorted by name, schema in
  /// docs/OBSERVABILITY.md. `manifest` (optional) is embedded.
  std::string ToJson(const RunManifest* manifest = nullptr) const;

  Status WriteJsonFile(const std::string& path,
                       const RunManifest* manifest = nullptr) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// \brief Convenience accessors against the global registry.
inline Counter* GetCounter(const std::string& name) {
  return MetricsRegistry::Global().GetCounter(name);
}
inline Gauge* GetGauge(const std::string& name) {
  return MetricsRegistry::Global().GetGauge(name);
}
inline Histogram* GetHistogram(const std::string& name,
                               std::vector<double> bounds) {
  return MetricsRegistry::Global().GetHistogram(name, std::move(bounds));
}

/// \brief Copies the process-wide thread-pool activity counters
/// (dq::GlobalPoolStats) into the pool.* gauges. Call before exporting.
void SyncPoolMetrics();

}  // namespace dq::obs

#endif  // DQ_OBS_METRICS_H_
