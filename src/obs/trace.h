// Hierarchical scoped tracing across the pipeline and the PR-1 thread
// pool.
//
// Every phase opens a Span; spans nest through a per-thread stack, and a
// parallel region stitches its workers' spans under the caller's span by
// capturing a TaskContext before dispatch and installing it (TaskScope)
// inside the worker lambda. Recording appends to a per-thread buffer with
// no locking on the hot path — the registry mutex is taken once per thread
// lifetime, and the flush reads the buffers only after the parallel work
// has joined (the pool's future synchronization orders those accesses).
//
// The stitched tree is deterministic by construction: spans are emitted at
// fixed pipeline points (phases, per-attribute jobs keyed by attribute
// index — never per row chunk), and the flush orders siblings by
// (name, key), so the tree's names, hierarchy and counts are identical for
// every --threads value. Wall-clock numbers are whatever the run measured.
//
// Span always measures its elapsed time (two steady_clock reads — the same
// cost as the ScopedTimer it replaces) and can sink the duration into a
// double, which is how AuditTimings / TestEnvironment phase fields are now
// views of the span measurements. Buffer recording happens only while the
// tracer is enabled, so the disabled path adds nothing beyond the clock
// reads the timing fields always paid.
//
// Export is Chrome trace-event JSON ("traceEvents"), loadable in Perfetto
// (ui.perfetto.dev) and chrome://tracing; see docs/OBSERVABILITY.md.

#ifndef DQ_OBS_TRACE_H_
#define DQ_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/manifest.h"

namespace dq::obs {

/// \brief One recorded span. Stable address (deque storage); parent links
/// may cross thread buffers.
struct SpanRecord {
  const char* name = nullptr;  ///< static string literal
  int64_t key = -1;            ///< deterministic sibling key (-1 = none)
  uint64_t start_ns = 0;       ///< since tracer epoch
  uint64_t end_ns = 0;         ///< 0 while open
  const SpanRecord* parent = nullptr;
  uint32_t thread_slot = 0;  ///< registration order, for trace tids only

  double DurationMs() const {
    return static_cast<double>(end_ns - start_ns) / 1e6;
  }
};

/// \brief Capturable parent pointer for stitching worker spans under the
/// dispatching span. Capture on the dispatching thread, install via
/// TaskScope inside the task.
struct TaskContext {
  const SpanRecord* parent = nullptr;
};

class Tracer {
 public:
  static Tracer& Global();

  /// \brief Recording switch (measurement is unconditional in Span).
  /// Disabled by default; the CLI tools enable it at startup, the benches
  /// only when exporting a trace.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// \brief Starts a span on the calling thread (nullptr when disabled).
  SpanRecord* BeginSpan(const char* name, int64_t key);
  void EndSpan(SpanRecord* span);

  /// \brief The calling thread's innermost open span (or its installed
  /// task parent), for handing to TaskScope across the pool boundary.
  TaskContext CurrentContext();

  /// \brief Total recorded spans (open + closed) across all threads. Call
  /// only when no spans are being recorded concurrently.
  size_t NumSpans() const;

  /// \brief Summed duration of every closed span named `name`, in ms.
  double AggregateMs(std::string_view name) const;

  /// \brief Deterministic textual rendering of the stitched span tree —
  /// one "name[key] xN"-style line per distinct (name, key) child path,
  /// siblings sorted by (name, key). Identical for every thread count;
  /// contains no timing data. Used by the determinism tests.
  std::string TreeSummary() const;

  /// \brief Chrome trace-event JSON: {"traceEvents": [...], ...} with
  /// complete ("X") events carrying deterministic span ids, plus process /
  /// thread metadata and the run manifest when given.
  std::string ToChromeTraceJson(const RunManifest* manifest = nullptr) const;

  Status WriteChromeTraceFile(const std::string& path,
                              const RunManifest* manifest = nullptr) const;

  /// \brief Drops all recorded spans (thread registrations survive). Call
  /// only between runs, with no spans open.
  void Reset();

 private:
  struct ThreadBuffer {
    std::deque<SpanRecord> records;
    std::vector<SpanRecord*> stack;          ///< open spans, innermost last
    const SpanRecord* task_parent = nullptr; ///< installed by TaskScope
    uint32_t slot = 0;
  };

  friend class TaskScope;

  Tracer() : epoch_(std::chrono::steady_clock::now()) {}

  ThreadBuffer* LocalBuffer();
  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// \brief Installs a captured TaskContext as the calling thread's span
/// parent for the scope's lifetime (restores the previous one after).
class TaskScope {
 public:
  explicit TaskScope(const TaskContext& context);
  ~TaskScope();

  TaskScope(const TaskScope&) = delete;
  TaskScope& operator=(const TaskScope&) = delete;

 private:
  Tracer::ThreadBuffer* buffer_ = nullptr;
  const SpanRecord* saved_ = nullptr;
};

/// \brief RAII span: begins on construction, ends on destruction. Always
/// measures; records into the tracer only while it is enabled; optionally
/// accumulates its duration into *target_ms (the ScopedTimer contract).
class Span {
 public:
  explicit Span(const char* name, int64_t key = -1,
                double* target_ms = nullptr)
      : start_(std::chrono::steady_clock::now()),
        record_(Tracer::Global().BeginSpan(name, key)),
        target_ms_(target_ms) {}

  ~Span() {
    if (record_ != nullptr) Tracer::Global().EndSpan(record_);
    if (target_ms_ != nullptr) *target_ms_ += ElapsedMs();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
  SpanRecord* record_;
  double* target_ms_;
};

}  // namespace dq::obs

#endif  // DQ_OBS_TRACE_H_
