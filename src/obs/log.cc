#include "obs/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

namespace dq::obs {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

std::optional<LogLevel> ParseLogLevel(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off" || name == "none") return LogLevel::kOff;
  return std::nullopt;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "unknown";
}

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >= g_level.load(std::memory_order_relaxed) &&
         level != LogLevel::kOff;
}

void LogMessage(LogLevel level, const char* component, const char* format,
                ...) {
  if (!LogEnabled(level)) return;

  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm_buf{};
#if defined(_WIN32)
  localtime_s(&tm_buf, &secs);
#else
  localtime_r(&secs, &tm_buf);
#endif

  char message[2048];
  std::va_list args;
  va_start(args, format);
  std::vsnprintf(message, sizeof(message), format, args);
  va_end(args);

  // One fprintf so concurrent loggers interleave per line, not per token.
  std::fprintf(stderr, "[%02d:%02d:%02d.%03d %s %s] %s\n", tm_buf.tm_hour,
               tm_buf.tm_min, tm_buf.tm_sec, static_cast<int>(ms),
               LogLevelName(level), component, message);
}

}  // namespace dq::obs
