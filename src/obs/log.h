// Leveled diagnostic logging for the tools and benches, replacing scattered
// bare fprintf(stderr, ...) calls with one format: a timestamp, a severity,
// a component tag and the message. The level is a process-wide atomic so
// --log-level on any tool silences or amplifies every subsystem at once.

#ifndef DQ_OBS_LOG_H_
#define DQ_OBS_LOG_H_

#include <cstdarg>
#include <optional>
#include <string_view>

namespace dq::obs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// \brief Process-wide minimum level; messages below it are dropped before
/// formatting. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// \brief Parses "debug" / "info" / "warn" / "error" / "off".
std::optional<LogLevel> ParseLogLevel(std::string_view name);

const char* LogLevelName(LogLevel level);

/// \brief True when a message at `level` would be emitted.
bool LogEnabled(LogLevel level);

/// \brief printf-style message to stderr:
/// `[hh:mm:ss.mmm level component] message`. Appends the newline itself.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 3, 4)))
#endif
void LogMessage(LogLevel level, const char* component, const char* format,
                ...);

}  // namespace dq::obs

/// Call-site macros: arguments are not evaluated when the level is off.
#define DQ_LOG_DEBUG(component, ...)                                  \
  (::dq::obs::LogEnabled(::dq::obs::LogLevel::kDebug)                 \
       ? ::dq::obs::LogMessage(::dq::obs::LogLevel::kDebug, component, \
                               __VA_ARGS__)                           \
       : (void)0)
#define DQ_LOG_INFO(component, ...)                                  \
  (::dq::obs::LogEnabled(::dq::obs::LogLevel::kInfo)                 \
       ? ::dq::obs::LogMessage(::dq::obs::LogLevel::kInfo, component, \
                               __VA_ARGS__)                          \
       : (void)0)
#define DQ_LOG_WARN(component, ...)                                  \
  (::dq::obs::LogEnabled(::dq::obs::LogLevel::kWarn)                 \
       ? ::dq::obs::LogMessage(::dq::obs::LogLevel::kWarn, component, \
                               __VA_ARGS__)                          \
       : (void)0)
#define DQ_LOG_ERROR(component, ...)                                  \
  (::dq::obs::LogEnabled(::dq::obs::LogLevel::kError)                 \
       ? ::dq::obs::LogMessage(::dq::obs::LogLevel::kError, component, \
                               __VA_ARGS__)                           \
       : (void)0)

#endif  // DQ_OBS_LOG_H_
