#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/parallel.h"

namespace dq::obs {

void SyncPoolMetrics() {
  const PoolStats stats = GlobalPoolStats();
  GetGauge("pool.pools_created")->Set(static_cast<double>(stats.pools_created));
  GetGauge("pool.tasks_executed")
      ->Set(static_cast<double>(stats.tasks_executed));
  GetGauge("pool.peak_queue_depth")
      ->Set(static_cast<double>(stats.peak_queue_depth));
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double v) {
  size_t bucket = bounds_.size();  // +inf overflow bucket
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // atomic<double> has no fetch_add before C++20 library support is
  // universal; a CAS loop is portable and contention here is negligible.
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + v,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  return snapshot;
}

std::string MetricsRegistry::ToJson(const RunManifest* manifest) const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonObjectWriter out;
  out.Add("schema_version", kSchemaVersion);
  if (manifest != nullptr) manifest->AppendTo(&out);

  JsonObjectWriter counters;
  for (const auto& [name, counter] : counters_) {
    counters.Add(name, counter->Value());
  }
  out.AddRaw("counters", counters.Render());

  JsonObjectWriter gauges;
  for (const auto& [name, gauge] : gauges_) {
    gauges.Add(name, gauge->Value());
  }
  out.AddRaw("gauges", gauges.Render());

  JsonObjectWriter histograms;
  for (const auto& [name, histogram] : histograms_) {
    JsonObjectWriter h;
    h.Add("count", histogram->Count());
    h.Add("sum", histogram->Sum());
    std::string buckets = "[";
    for (size_t i = 0; i < histogram->NumBuckets(); ++i) {
      if (i > 0) buckets += ", ";
      JsonObjectWriter bucket;
      if (i < histogram->bounds().size()) {
        bucket.Add("le", histogram->bounds()[i]);
      } else {
        bucket.Add("le", "inf");
      }
      bucket.Add("count", histogram->BucketCount(i));
      buckets += bucket.Render(0);
    }
    buckets += "]";
    h.AddRaw("buckets", std::move(buckets));
    histograms.AddRaw(name, h.Render());
  }
  out.AddRaw("histograms", histograms.Render());
  return out.Render() + "\n";
}

Status MetricsRegistry::WriteJsonFile(const std::string& path,
                                      const RunManifest* manifest) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot write " + path);
  out << ToJson(manifest);
  if (!out) return Status::IOError("failed writing " + path);
  return Status::OK();
}

}  // namespace dq::obs
