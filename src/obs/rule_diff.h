// Rule-set diffing over annotated rule files.
//
// dqsuggest emits mined expert-rule candidates as annotated rule files:
// each rule line is preceded by a "# @rule conf=... support=...
// coverage=... source=..." comment carrying the evidence behind it. Two
// such files from different snapshots of the same table tell a
// monitoring story of their own — rules appearing, vanishing, or keeping
// their shape while a numeric threshold slides as the data distribution
// moves. The differ is purely textual (no schema needed) so it can live
// in the obs layer and run on any rule file, annotated or not.
//
// Matching is three-phase and deterministic:
//   1. exact rule-text match: unchanged, or an annotation delta when the
//      @rule evidence (confidence / support / coverage) moved;
//   2. masked match: numeric operands following '<' or '>' are masked
//      out, so "N < 5 -> ..." pairs with "N < 7 -> ..." as a
//      threshold shift (only </> operands are masked — '=' operands are
//      identity, not thresholds, even when they look numeric);
//   3. the remainder is reported as added / removed.

#ifndef DQ_OBS_RULE_DIFF_H_
#define DQ_OBS_RULE_DIFF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace dq::obs {

/// \brief One rule line plus its optional "# @rule" annotation.
struct AnnotatedRule {
  std::string text;      ///< the rule line, trimmed
  size_t line = 0;       ///< 1-based line number of the rule text
  bool annotated = false;
  double confidence = 0.0;
  uint64_t support = 0;
  double coverage = 0.0;
  std::string source;
};

/// \brief Parses the annotated rule-file format: '#' lines are comments,
/// a "# @rule key=value ..." comment annotates the next rule line, blank
/// lines separate. Unknown "# @rule" keys are ignored (forward
/// compatibility); a trailing annotation with no rule line is an error.
Result<std::vector<AnnotatedRule>> ParseAnnotatedRuleFile(
    const std::string& text);

/// \brief Reads and parses a rule file from disk.
Result<std::vector<AnnotatedRule>> LoadAnnotatedRuleFile(
    const std::string& path);

/// \brief One difference between the two rule sets.
struct RuleChange {
  /// "added", "removed", "threshold_shift", "annotation_delta".
  std::string kind;
  std::string before;  ///< old rule text ("" for added)
  std::string after;   ///< new rule text ("" for removed)
  /// Annotation deltas (after - before); meaningful when both sides are
  /// annotated.
  bool has_annotation_delta = false;
  double confidence_delta = 0.0;
  int64_t support_delta = 0;
  double coverage_delta = 0.0;
  std::string message;  ///< one human-readable line
};

/// \brief The full diff between two rule files.
struct RuleSetDiff {
  /// Bumped whenever the JSON layout changes.
  static constexpr int kSchemaVersion = 1;

  size_t before_rules = 0;
  size_t after_rules = 0;
  size_t unchanged = 0;
  /// Ordered: threshold shifts, annotation deltas, removed, added; each
  /// group in first-file line order.
  std::vector<RuleChange> changes;

  bool HasChanges() const { return !changes.empty(); }

  /// \brief Aligned text rendering, one line per change.
  std::string RenderText() const;

  /// \brief Pretty JSON rendering.
  std::string ToJson(int indent = 2) const;
};

/// \brief Diffs two parsed rule sets (before -> after).
RuleSetDiff DiffRuleSets(const std::vector<AnnotatedRule>& before,
                         const std::vector<AnnotatedRule>& after);

}  // namespace dq::obs

#endif  // DQ_OBS_RULE_DIFF_H_
