// Rule-conformant data generation (sec. 4.1.4).
//
// "Given a schema for the target table and a rule set, a number of records
// has to be created that follow this rule set. This is done by selecting
// values for each attribute according to independent probability
// distributions and successively adjusting these guesses by rules that are
// violated." Initial values come from univariate DistributionSpecs or from
// a multivariate Bayesian-network start distribution; violated rules are
// repaired by solving a satisfiable DNF disjunct of the consequent with
// minimal deviation from the current guess.

#ifndef DQ_TDG_DATA_GENERATOR_H_
#define DQ_TDG_DATA_GENERATOR_H_

#include <optional>
#include <vector>

#include "bayes/bayes_net.h"
#include "logic/sat.h"
#include "stats/distribution.h"
#include "table/table.h"

namespace dq {

struct DataGenConfig {
  size_t num_records = 10000;

  /// Repair sweeps over the rule set per record before resampling.
  int max_repair_passes = 8;

  /// Full resamples of a record before accepting a (logged) violation.
  int max_record_attempts = 8;

  uint64_t seed = 7;
};

/// \brief Outcome of a generation run.
struct GeneratedData {
  Table table;
  /// Total number of rule repairs applied across all records.
  size_t repair_count = 0;
  /// Records that still violate some rule after the retry budget (these are
  /// appended regardless and counted here; with natural rule sets this is
  /// rare).
  size_t unresolved_records = 0;
};

/// \brief Generates records following a rule set.
class DataGenerator {
 public:
  /// \param schema target relation schema (must outlive the generator)
  /// \param univariate one DistributionSpec per attribute
  /// \param bayes_net optional multivariate start distribution covering a
  ///        subset of attributes (overrides their univariate spec)
  /// \param rules the natural rule set the data must follow
  DataGenerator(const Schema* schema, std::vector<DistributionSpec> univariate,
                const BayesianNetwork* bayes_net, std::vector<Rule> rules);

  /// \brief Validates configuration (spec arity, spec/attribute fit,
  /// rule/DNF feasibility, network completeness).
  Status Validate() const;

  /// \brief Runs generation.
  Result<GeneratedData> Generate(const DataGenConfig& config);

  const std::vector<Rule>& rules() const { return rules_; }

 private:
  /// Draws the initial independent/multivariate guess for one record.
  Result<Row> SampleInitial(Rng* rng) const;

  /// Repairs `row` in place; returns number of repairs applied, or an
  /// error when a violated consequent cannot be solved.
  Result<size_t> RepairRecord(Row* row, int max_passes, Rng* rng) const;

  const Schema* schema_;
  std::vector<DistributionSpec> univariate_;
  const BayesianNetwork* bayes_net_;  // may be nullptr
  std::vector<Rule> rules_;
  std::vector<std::vector<std::vector<Atom>>> consequent_dnfs_;
  SatChecker sat_;
};

}  // namespace dq

#endif  // DQ_TDG_DATA_GENERATOR_H_
