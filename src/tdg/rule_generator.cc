#include "tdg/rule_generator.h"

#include <algorithm>

namespace dq {

RuleGenerator::RuleGenerator(const Schema* schema, RuleGenConfig config)
    : schema_(schema),
      config_(config),
      checker_(schema),
      rng_(config.seed) {}

Value RuleGenerator::RandomConstant(const AttributeDef& attr) {
  switch (attr.type) {
    case DataType::kNominal:
      return Value::Nominal(static_cast<int32_t>(rng_.UniformInt(
          0, static_cast<int64_t>(attr.categories.size()) - 1)));
    case DataType::kNumeric:
      return Value::Numeric(rng_.UniformReal(attr.numeric_min, attr.numeric_max));
    case DataType::kDate:
      return Value::Date(
          static_cast<int32_t>(rng_.UniformInt(attr.date_min, attr.date_max)));
  }
  return Value::Null();
}

Atom RuleGenerator::RandomAtom(const std::vector<int>& candidate_attrs) {
  const int attr = candidate_attrs[static_cast<size_t>(rng_.UniformInt(
      0, static_cast<int64_t>(candidate_attrs.size()) - 1))];
  const AttributeDef& def = schema_->attribute(static_cast<size_t>(attr));

  if (rng_.Bernoulli(config_.null_test_prob)) {
    return Atom::Prop(attr, rng_.Bernoulli(0.5) ? AtomOp::kIsNull
                                                : AtomOp::kIsNotNull);
  }

  // Relational atom when a compatible partner exists among the candidates.
  if (rng_.Bernoulli(config_.relational_atom_prob)) {
    std::vector<int> partners;
    for (int other : candidate_attrs) {
      if (other == attr) continue;
      const AttributeDef& odef = schema_->attribute(static_cast<size_t>(other));
      if (odef.type != def.type) continue;
      if (def.type == DataType::kNominal && odef.categories != def.categories) {
        continue;
      }
      partners.push_back(other);
    }
    if (!partners.empty()) {
      const int partner = partners[static_cast<size_t>(rng_.UniformInt(
          0, static_cast<int64_t>(partners.size()) - 1))];
      AtomOp op;
      if (rng_.Bernoulli(config_.neq_prob)) {
        op = AtomOp::kNeq;
      } else if (IsOrdered(def.type) && rng_.Bernoulli(config_.ordered_cmp_prob)) {
        op = rng_.Bernoulli(0.5) ? AtomOp::kLt : AtomOp::kGt;
      } else {
        op = AtomOp::kEq;
      }
      return Atom::Rel(attr, op, partner);
    }
  }

  // Propositional comparison against a random in-domain constant.
  AtomOp op;
  if (rng_.Bernoulli(config_.neq_prob)) {
    op = AtomOp::kNeq;
  } else if (IsOrdered(def.type) && rng_.Bernoulli(config_.ordered_cmp_prob)) {
    op = rng_.Bernoulli(0.5) ? AtomOp::kLt : AtomOp::kGt;
  } else {
    op = AtomOp::kEq;
  }
  return Atom::Prop(attr, op, RandomConstant(def));
}

Formula RuleGenerator::RandomFormula(int max_atoms, int depth,
                                     const std::vector<int>& candidate_attrs) {
  const int atoms =
      static_cast<int>(rng_.UniformInt(1, std::max(1, max_atoms)));
  if (atoms == 1 || depth <= 1) {
    return Formula::MakeAtom(RandomAtom(candidate_attrs));
  }
  const bool disjunction = rng_.Bernoulli(config_.disjunction_prob);
  // Split the atom budget over 2..atoms children.
  const int num_children =
      static_cast<int>(rng_.UniformInt(2, std::max(2, atoms)));
  std::vector<Formula> children;
  int remaining = atoms;
  for (int c = 0; c < num_children; ++c) {
    const int share = std::max(1, remaining / (num_children - c));
    children.push_back(RandomFormula(share, depth - 1, candidate_attrs));
    remaining -= share;
  }
  return disjunction ? Formula::Or(std::move(children))
                     : Formula::And(std::move(children));
}

double RuleGenerator::EstimateSelectivity(const Formula& f) {
  if (selectivity_sample_.empty()) {
    const int n = std::max(config_.selectivity_samples, 1);
    selectivity_sample_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      Row row(schema_->num_attributes());
      for (size_t a = 0; a < schema_->num_attributes(); ++a) {
        if (rng_.Bernoulli(0.02)) continue;  // sparse nulls
        row[a] = RandomConstant(schema_->attribute(a));
      }
      selectivity_sample_.push_back(std::move(row));
    }
  }
  size_t hits = 0;
  for (const Row& row : selectivity_sample_) {
    if (f.Evaluate(row)) ++hits;
  }
  return static_cast<double>(hits) /
         static_cast<double>(selectivity_sample_.size());
}

Result<Rule> RuleGenerator::GenerateRule(const std::vector<Rule>& existing) {
  std::vector<int> all_attrs;
  for (size_t i = 0; i < schema_->num_attributes(); ++i) {
    all_attrs.push_back(static_cast<int>(i));
  }
  if (all_attrs.size() < 2) {
    return Status::FailedPrecondition(
        "rule generation needs at least two attributes");
  }

  for (int attempt = 0; attempt < config_.max_attempts_per_rule; ++attempt) {
    Rule rule;
    rule.premise =
        RandomFormula(config_.max_premise_atoms, config_.max_depth, all_attrs);

    const double selectivity = EstimateSelectivity(rule.premise);
    if (selectivity < config_.min_premise_selectivity ||
        selectivity > config_.max_premise_selectivity) {
      continue;
    }

    std::vector<int> consequent_attrs = all_attrs;
    if (!config_.allow_shared_attributes) {
      std::vector<int> premise_attrs = rule.premise.Attributes();
      consequent_attrs.clear();
      for (int a : all_attrs) {
        if (std::find(premise_attrs.begin(), premise_attrs.end(), a) ==
            premise_attrs.end()) {
          consequent_attrs.push_back(a);
        }
      }
      if (consequent_attrs.empty()) continue;
    }
    rule.consequent = RandomFormula(config_.max_consequent_atoms,
                                    config_.max_depth, consequent_attrs);

    auto natural = checker_.IsNaturalRule(rule);
    if (!natural.ok() || !*natural) continue;
    auto addable = checker_.CanAdd(existing, rule);
    if (!addable.ok() || !*addable) continue;
    return rule;
  }
  return Status::Exhausted("rule attempt budget exhausted after " +
                           std::to_string(config_.max_attempts_per_rule) +
                           " tries");
}

Result<std::vector<Rule>> RuleGenerator::Generate() {
  std::vector<Rule> rules;
  rules.reserve(static_cast<size_t>(config_.num_rules));
  for (int i = 0; i < config_.num_rules; ++i) {
    DQ_ASSIGN_OR_RETURN(Rule rule, GenerateRule(rules));
    rules.push_back(std::move(rule));
  }
  return rules;
}

}  // namespace dq
