#include "tdg/data_generator.h"

#include <algorithm>
#include <numeric>

namespace dq {

DataGenerator::DataGenerator(const Schema* schema,
                             std::vector<DistributionSpec> univariate,
                             const BayesianNetwork* bayes_net,
                             std::vector<Rule> rules)
    : schema_(schema),
      univariate_(std::move(univariate)),
      bayes_net_(bayes_net),
      rules_(std::move(rules)),
      sat_(schema) {
  consequent_dnfs_.reserve(rules_.size());
  for (const Rule& rule : rules_) {
    auto dnf = ToDnf(rule.consequent);
    consequent_dnfs_.push_back(dnf.ok() ? *dnf
                                        : std::vector<std::vector<Atom>>{});
  }
}

Status DataGenerator::Validate() const {
  if (univariate_.size() != schema_->num_attributes()) {
    return Status::InvalidArgument(
        "need one DistributionSpec per attribute: got " +
        std::to_string(univariate_.size()) + " for " +
        std::to_string(schema_->num_attributes()) + " attributes");
  }
  for (size_t i = 0; i < univariate_.size(); ++i) {
    DQ_RETURN_NOT_OK(
        ValidateDistribution(univariate_[i], schema_->attribute(i)));
  }
  if (bayes_net_ != nullptr) {
    DQ_RETURN_NOT_OK(bayes_net_->Validate());
  }
  for (size_t r = 0; r < rules_.size(); ++r) {
    DQ_RETURN_NOT_OK(ValidateFormula(rules_[r].premise, *schema_));
    DQ_RETURN_NOT_OK(ValidateFormula(rules_[r].consequent, *schema_));
    if (consequent_dnfs_[r].empty()) {
      return Status::InvalidArgument("rule " + std::to_string(r) +
                                     " has an empty/unexpandable consequent");
    }
    bool any_sat = false;
    for (const auto& disjunct : consequent_dnfs_[r]) {
      if (sat_.ConjunctionSatisfiable(disjunct)) {
        any_sat = true;
        break;
      }
    }
    if (!any_sat) {
      return Status::Unsatisfiable("consequent of rule " + std::to_string(r) +
                                   " is unsatisfiable");
    }
  }
  return Status::OK();
}

Result<Row> DataGenerator::SampleInitial(Rng* rng) const {
  Row row(schema_->num_attributes());
  for (size_t a = 0; a < schema_->num_attributes(); ++a) {
    if (bayes_net_ != nullptr && bayes_net_->Covers(static_cast<int>(a))) {
      continue;  // filled below by the network
    }
    row[a] = SampleValue(univariate_[a], schema_->attribute(a), rng);
  }
  if (bayes_net_ != nullptr) {
    DQ_RETURN_NOT_OK(bayes_net_->SampleInto(&row, rng));
  }
  return row;
}

Result<size_t> DataGenerator::RepairRecord(Row* row, int max_passes,
                                           Rng* rng) const {
  size_t repairs = 0;
  for (int pass = 0; pass < max_passes; ++pass) {
    bool violated_any = false;
    for (size_t r = 0; r < rules_.size(); ++r) {
      if (!rules_[r].Violates(*row)) continue;
      violated_any = true;
      // Make the consequent true: try DNF disjuncts in random order and
      // keep the first solvable one (SolveConjunction prefers current
      // values, so the adjustment is minimal).
      std::vector<size_t> order(consequent_dnfs_[r].size());
      std::iota(order.begin(), order.end(), 0);
      rng->Shuffle(&order);
      bool repaired = false;
      for (size_t d : order) {
        auto solved = sat_.SolveConjunction(consequent_dnfs_[r][d], *row, rng);
        if (solved.ok()) {
          *row = std::move(*solved);
          ++repairs;
          repaired = true;
          break;
        }
      }
      if (!repaired) {
        return Status::Exhausted("cannot repair violated rule " +
                                 std::to_string(r));
      }
    }
    if (!violated_any) return repairs;
  }
  // Converged only if the last sweep found no violations; check once more.
  for (const Rule& rule : rules_) {
    if (rule.Violates(*row)) {
      return Status::Exhausted("repair did not converge");
    }
  }
  return repairs;
}

Result<GeneratedData> DataGenerator::Generate(const DataGenConfig& config) {
  DQ_RETURN_NOT_OK(Validate());
  GeneratedData out;
  out.table = Table(*schema_);
  out.table.Reserve(config.num_records);
  Rng rng(config.seed);

  for (size_t i = 0; i < config.num_records; ++i) {
    Row accepted;
    bool resolved = false;
    for (int attempt = 0; attempt < config.max_record_attempts; ++attempt) {
      DQ_ASSIGN_OR_RETURN(Row row, SampleInitial(&rng));
      auto repairs = RepairRecord(&row, config.max_repair_passes, &rng);
      if (repairs.ok()) {
        out.repair_count += *repairs;
        accepted = std::move(row);
        resolved = true;
        break;
      }
      if (attempt == config.max_record_attempts - 1) {
        accepted = std::move(row);  // keep the last attempt, flagged below
      }
    }
    if (!resolved) ++out.unresolved_records;
    out.table.AppendRowUnchecked(std::move(accepted));
  }
  return out;
}

}  // namespace dq
