// Random generation of natural TDG-rule sets (sec. 4.1.1-4.1.2).
//
// "After defining a schema for the target relation with domain ranges for
// each attribute, the test data generator creates instances of rule
// patterns randomly according to some user-defined parameters." Candidate
// rules are drawn from parameterizable shape distributions and filtered
// through the naturalness conditions (Definitions 4-6) so that the number
// of generated rules reflects the structural strength of the data.

#ifndef DQ_TDG_RULE_GENERATOR_H_
#define DQ_TDG_RULE_GENERATOR_H_

#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "logic/natural.h"

namespace dq {

/// \brief Shape parameters governing rule complexity ("the rule generation
/// process can be further parameterized to govern the complexity of a rule,
/// e.g. nesting depth or number of atomic subformulae").
struct RuleGenConfig {
  int num_rules = 100;

  /// Maximum atomic subformulae per premise / consequent.
  int max_premise_atoms = 3;
  int max_consequent_atoms = 1;

  /// Maximum nesting depth of compound formulae (1 = single atom or one
  /// flat conjunction/disjunction level above atoms counts as 2).
  int max_depth = 2;

  /// Probability that a compound node is a disjunction (else conjunction).
  double disjunction_prob = 0.15;

  /// Probability that an atom is relational (A op B) when a compatible
  /// partner attribute exists.
  double relational_atom_prob = 0.10;

  /// Probability of isnull / isnotnull atoms.
  double null_test_prob = 0.05;

  /// Probability of `!=` for a comparison atom (else `=`, `<`, `>`).
  double neq_prob = 0.10;

  /// For ordered attributes: probability that a comparison uses < or >
  /// rather than =.
  double ordered_cmp_prob = 0.60;

  /// When true, the consequent may mention premise attributes (the natural
  /// conditions still exclude tautologies/contradictions). When false
  /// (default), consequent attributes are disjoint from premise attributes,
  /// matching the dependency shape of the QUIS domain rules.
  bool allow_shared_attributes = false;

  /// Premise selectivity window, estimated by Monte Carlo over uniform
  /// in-domain rows. Premises that are almost always true would force their
  /// consequent attribute to a near-constant (a degenerate marginal no
  /// human rule set exhibits); premises that are almost never true make
  /// the rule invisible in the generated data. Candidates outside
  /// [min, max] are rejected.
  double min_premise_selectivity = 0.01;
  double max_premise_selectivity = 0.05;
  int selectivity_samples = 400;

  /// Rejection-sampling budget per accepted rule.
  int max_attempts_per_rule = 400;

  uint64_t seed = 42;
};

/// \brief Draws natural rule sets over a schema.
class RuleGenerator {
 public:
  RuleGenerator(const Schema* schema, RuleGenConfig config);

  /// \brief Generates a natural rule set of config.num_rules rules.
  /// Fails with Exhausted if the attempt budget runs out (e.g. tiny
  /// domains cannot host many mutually natural rules).
  Result<std::vector<Rule>> Generate();

  /// \brief Generates one natural rule compatible with `existing`.
  Result<Rule> GenerateRule(const std::vector<Rule>& existing);

 private:
  Formula RandomFormula(int max_atoms, int depth,
                        const std::vector<int>& candidate_attrs);
  Atom RandomAtom(const std::vector<int>& candidate_attrs);
  Value RandomConstant(const AttributeDef& attr);
  /// Fraction of the (lazily built) uniform row sample satisfying `f`.
  double EstimateSelectivity(const Formula& f);

  const Schema* schema_;
  RuleGenConfig config_;
  NaturalnessChecker checker_;
  Rng rng_;
  std::vector<Row> selectivity_sample_;
};

}  // namespace dq

#endif  // DQ_TDG_RULE_GENERATOR_H_
