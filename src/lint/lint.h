// dqlint: static analysis for TDG-rule programs.
//
// The paper defines the pragmatic satisfiability test by domain-range
// propagation (sec. 4.1.3) and the implication test precisely so that
// contradictory or redundant rules can be detected *before* data is
// generated or audited. This module packages those tests — together with
// the schema validation the parser performs — as a configurable battery of
// lint checks over a rule file, each with a stable check ID, a severity and
// a source location, suitable for CI gating.
//
// Check registry (IDs are stable; never renumber):
//   DQ001 syntax-error             error    line fails to parse
//   DQ002 unknown-attribute        error    name not in the schema
//   DQ003 type-mismatch           error    operator/operand types clash
//   DQ004 bad-constant            error    constant unparseable / outside
//                                          the attribute domain
//   DQ005 impossible-atom         warning  a comparison that can never hold
//                                          given the attribute's domain range
//   DQ010 unsat-premise           error    premise unsatisfiable: the rule
//                                          can never fire (sec. 4.1.3)
//   DQ011 unsat-consequent        error    consequent unsatisfiable: every
//                                          firing row violates the rule
//   DQ012 contradictory-rule      error    sides satisfiable but jointly
//                                          unsatisfiable (Definition 5)
//   DQ013 tautological-conclusion warning  consequent always holds; the rule
//                                          constrains nothing
//   DQ014 self-evident-rule       warning  premise already implies the
//                                          consequent (Definition 5)
//   DQ020 contradictory-pair      error    one premise implies the other
//                                          but the conclusions conflict: no
//                                          record can comply with both
//                                          rules where the stronger premise
//                                          fires (Definition 6)
//   DQ021 duplicate-rule          warning  logically equivalent to an
//                                          earlier rule
//   DQ022 subsumed-rule           warning  implied by a stronger rule
//                                          (premise implies the other
//                                          premise, its consequent implies
//                                          ours) — adds no information
//   DQ023 conflicting-overlap     note     premises overlap but the
//                                          conclusions conflict there; the
//                                          pair rules out the overlap
//                                          region (normal in rule chains,
//                                          worth knowing about)
//   DQ030 check-skipped           note     a satisfiability/implication
//                                          test exhausted its DNF budget
//   DQ031 dead-disjunct           warning  a branch of the rule's DNF is
//                                          unsatisfiable and can never fire
//                                          while the rest of the rule can
//   DQ032 unreachable-threshold   note     a threshold in a conjunction is
//                                          never reached: sibling
//                                          conditions already enforce it
//   DQ033 mined-expert-contradiction warning a mined candidate conflicts
//                                          with the expert rule set or an
//                                          accepted higher-ranked candidate
//                                          (Definition 6 over the union)
//   DQ034 redundant-in-cover      note     a mined candidate is subsumed by
//                                          a stronger mined sibling and
//                                          dropped by the minimal cover
//   DQ035 low-support-candidate   note     a mined candidate falls below
//                                          the support floor
//   DQ036 interval-widening       note     the abstract summary lost
//                                          precision (join hull over a gap,
//                                          or widening to domain bounds)
//   DQ037 low-confidence-candidate note    a mined candidate falls below
//                                          the confidence floor
//   DQ038 duplicate-candidate     note     a mined candidate is logically
//                                          equivalent to an earlier one
//   DQ039 candidate-budget-exceeded note   --max-rules truncated the
//                                          emitted suggestion list
//   DQ040 expert-implied-candidate note    a mined candidate is already
//                                          implied by the expert rule set
//
// DQ031–DQ040 are produced by the dqsuggest static analysis over mined
// rule programs (src/lint/suggest.h); DQ031/DQ032/DQ036 also fire in the
// regular per-rule battery.

#ifndef DQ_LINT_LINT_H_
#define DQ_LINT_LINT_H_

#include <iosfwd>
#include <set>
#include <string>
#include <vector>

#include "logic/natural.h"
#include "logic/rule_parser.h"

namespace dq {

enum class LintSeverity : uint8_t { kError = 0, kWarning = 1, kNote = 2 };

const char* LintSeverityToString(LintSeverity severity);

/// \brief Registry entry for one lint check.
struct LintCheckInfo {
  const char* id;        ///< "DQ010"
  const char* name;      ///< "unsat-premise"
  LintSeverity severity;
  const char* summary;   ///< one-line description
};

/// \brief All known checks, in ID order.
const std::vector<LintCheckInfo>& LintChecks();

/// \brief Registry entry by stable ID ("DQ034"). Aborts on unknown IDs —
/// callers pass literals.
const LintCheckInfo& LintCheckById(const char* id);

/// \brief One finding of the analyzer.
struct LintDiagnostic {
  std::string check_id;    ///< stable ID, e.g. "DQ010"
  std::string check_name;  ///< slug, e.g. "unsat-premise"
  LintSeverity severity = LintSeverity::kError;
  SourceLocation loc;
  std::string message;
  /// Index into the linted rule list (-1 for parse-level diagnostics that
  /// have no surviving rule).
  int rule_index = -1;
  /// Partner rule for pairwise checks (-1 otherwise).
  int other_rule_index = -1;
  SourceLocation other_loc;
};

/// \brief Analyzer configuration.
struct LintOptions {
  /// Check IDs ("DQ022") or names ("subsumed-rule") to suppress.
  std::set<std::string> disabled;
  /// DNF budget handed to the satisfiability test.
  size_t max_dnf_disjuncts = 4096;
  /// Pairwise checks are O(n^2) satisfiability tests; beyond this many
  /// rules they are skipped with a DQ030 note.
  size_t max_pairwise_rules = 256;
};

/// \brief Result of one lint run.
struct LintResult {
  std::vector<LintDiagnostic> diagnostics;
  size_t rules_checked = 0;

  size_t CountSeverity(LintSeverity severity) const;
  size_t NumErrors() const { return CountSeverity(LintSeverity::kError); }
  size_t NumWarnings() const { return CountSeverity(LintSeverity::kWarning); }
  size_t NumNotes() const { return CountSeverity(LintSeverity::kNote); }
  bool HasErrors() const { return NumErrors() > 0; }
};

/// \brief Static analyzer for TDG-rule programs over a fixed schema.
class Linter {
 public:
  explicit Linter(const Schema* schema, LintOptions options = {});

  /// \brief Lints a rule file (lenient parse + full check battery).
  LintResult LintFile(std::istream* in) const;

  /// \brief Lints a rule file on disk; fails only on I/O errors.
  Result<LintResult> LintFileAt(const std::string& path) const;

  /// \brief Lints an already-parsed rule file.
  LintResult LintParse(const RuleFileParse& parse) const;

  /// \brief Lints an in-memory rule set (locations are synthesized as one
  /// rule per line, in order). Used for generated rule sets.
  LintResult LintRules(const std::vector<Rule>& rules) const;

  const Schema& schema() const { return *schema_; }
  const LintOptions& options() const { return options_; }

 private:
  bool Enabled(const LintCheckInfo& check) const;
  void Emit(const LintCheckInfo& check, SourceLocation loc, std::string message,
            int rule_index, LintResult* out) const;
  void CheckAtoms(const ParsedRule& rule, int index, LintResult* out) const;
  /// DQ032: thresholds inside a pure conjunction that the sibling
  /// conditions already enforce (the decision boundary is never reached).
  void CheckThresholds(const ParsedRule& rule, int index,
                       LintResult* out) const;
  /// Abstract-interpretation pass over one side of a rule: dead-disjunct
  /// (DQ031) and precision-loss (DQ036) findings. Returns the summary's
  /// reachability (true on budget exhaustion, mirroring the sat fallback).
  bool CheckAbstract(const ParsedRule& rule, int index, bool premise_side,
                     LintResult* out) const;
  void CheckRule(const ParsedRule& rule, int index, LintResult* out) const;
  void CheckPair(const ParsedRule& a, int ia, const ParsedRule& b, int ib,
                 LintResult* out) const;
  /// Wraps a fallible sat/implication call: on failure emits DQ030 and
  /// returns `fallback`.
  bool Try(const Result<bool>& result, SourceLocation loc, int rule_index,
           const char* what, bool fallback, LintResult* out) const;

  const Schema* schema_;
  LintOptions options_;
  SatChecker sat_;
};

/// \brief Renders diagnostics in compiler style:
/// "name:line:col: severity: message [DQ010 unsat-premise]".
std::string RenderLintText(const LintResult& result,
                           const std::string& source_name);

/// \brief Renders diagnostics as a JSON object (stable schema, see
/// docs/FORMATS.md).
std::string RenderLintJson(const LintResult& result,
                           const std::string& source_name);

}  // namespace dq

#endif  // DQ_LINT_LINT_H_
