// Abstract interpretation of TDG-formulae over the per-attribute domain.
//
// The satisfiability test of sec. 4.1.3 already interprets one conjunction
// in the domain-range lattice; this layer lifts that interpretation to
// whole formulae and whole rule programs. A formula is summarized by the
// per-attribute *join* of its satisfiable DNF disjuncts: a product region
// ("box") that over-approximates the formula's model set. The summary is
// exact — the region *is* the model set — precisely when one satisfiable
// disjunct remains and it contains no relational atoms, which is the shape
// of every C4.5 path rule and association rule dqsuggest mines. Between
// exact summaries region containment decides implication without a SAT
// call, and disjoint regions soundly preclude two premises from co-firing
// regardless of exactness — the pre-filters that make the O(n^2)
// implication closure over mined rule sets affordable.
//
// Joins over many disjuncts can accumulate precision slowly (exclusion
// points from `!=`, creeping interval hulls), so after `widen_after` live
// disjuncts the accumulator is widened against its previous iterate
// (DomainRange::WidenAgainst): any still-moving bound jumps to the schema
// domain limit, bounding the chain. Both precision-loss events (a join
// hull covering a gap, widening applied) are recorded so the linter can
// surface them as DQ036 interval-widening notes.

#ifndef DQ_LINT_RULE_ABSTRACTION_H_
#define DQ_LINT_RULE_ABSTRACTION_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "logic/sat.h"

namespace dq {

/// \brief Abstract summary of one TDG-formula: a per-attribute box that
/// over-approximates the formula's model set.
struct FormulaSummary {
  /// At least one DNF disjunct is satisfiable.
  bool reachable = false;
  /// The region equals the model set (single live propositional disjunct).
  bool exact = false;
  /// A join had to cover a gap between disjoint intervals (over-approx).
  bool joined_gap = false;
  /// Widening jumped a bound to the schema domain limit (over-approx).
  bool widen_applied = false;
  /// The formula contains relational (attribute vs attribute) atoms.
  bool has_relational = false;
  /// Total DNF disjuncts inspected.
  size_t num_disjuncts = 0;
  /// Indices (into the DNF expansion) of unsatisfiable disjuncts.
  std::vector<size_t> dead_disjuncts;
  /// One range per schema attribute (empty vector when !reachable).
  std::vector<DomainRange> ranges;
  /// Per schema attribute: mentioned by the formula.
  std::vector<bool> constrained;

  /// \brief True when the summaries admit no common row: some attribute's
  /// regions are disjoint. Sound for any pair (exact or not).
  bool DisjointWith(const FormulaSummary& other) const;
};

/// \brief Three-valued answer of an abstract test.
enum class AbstractTri : uint8_t { kYes, kNo, kUnknown };

/// \brief DNF-based satisfiability with an explicit disjunct budget (fails
/// with Exhausted beyond it).
Result<bool> SatisfiableWithBudget(const SatChecker& sat, const Formula& f,
                                   size_t budget);

/// \brief Validity of alpha => beta, decided as unsat(alpha AND ~beta)
/// under the same budget.
Result<bool> ImpliesWithBudget(const SatChecker& sat, const Formula& alpha,
                               const Formula& beta, size_t budget);

/// \brief Abstract interpreter for TDG-formulae over a fixed schema.
class RuleAbstraction {
 public:
  struct Options {
    /// DNF budget (same meaning as the satisfiability test's).
    size_t max_disjuncts = 4096;
    /// Join accumulator is widened once this many live disjuncts merged.
    size_t widen_after = 64;
  };

  explicit RuleAbstraction(const SatChecker* sat) : sat_(sat) {}

  /// \brief Summarizes `f`: DNF expansion, domain-range propagation per
  /// disjunct, per-attribute join (with widening) across the live ones.
  /// Fails with Exhausted when the DNF budget is blown.
  Result<FormulaSummary> Summarize(const Formula& f,
                                   const Options& options) const;

  /// \brief Does every model of `inner` satisfy `outer`? Decided purely in
  /// the abstract domain: kYes when inner's region fits inside an *exact*
  /// outer region; kNo when both are exact and containment fails; kUnknown
  /// otherwise (caller falls back to the exact implication test).
  static AbstractTri CoversSummary(const FormulaSummary& outer,
                                   const FormulaSummary& inner);

  const SatChecker& sat() const { return *sat_; }

 private:
  const SatChecker* sat_;
};

}  // namespace dq

#endif  // DQ_LINT_RULE_ABSTRACTION_H_
