// dqsuggest: static analysis over *mined* rule programs.
//
// The paper's workflow assumes experts author the TDG-rules the auditor
// checks, but the mining side (C4.5 path rules, association rules) already
// produces rule-shaped knowledge. This engine closes the loop: it takes
// mined candidate rules (with model provenance and confidence/support
// annotations), lints each one through the regular battery, reconciles the
// set against an expert rule file, and reduces it to a greedy
// confidence-ranked minimal cover. Every rule it drops is justified by a
// DQ03x diagnostic:
//
//   DQ033  candidate contradicts an expert rule or an accepted
//          higher-ranked candidate (Definition 6 over the union of both
//          programs) — excluded, flagged for human review
//   DQ034  candidate subsumed by a stronger accepted mined sibling
//   DQ035  candidate below the support floor
//   DQ037  candidate below the confidence floor
//   DQ038  candidate logically equivalent to an accepted sibling
//   DQ039  candidate beyond the --max-rules budget
//   DQ040  candidate already implied by the expert rule set
//
// The O(n^2) subsumption/conflict closure is made affordable by the
// abstract-interpretation layer (rule_abstraction.h): mined rules are
// conjunctions of per-attribute constraints, so their abstract summaries
// are *exact* and region containment decides premise implication without a
// SAT call; disjoint summaries prune pairs that can never co-fire. The
// exact DNF implication test is the fallback for the rest (expert rules
// with ORs or relational atoms).
//
// Diagnostic locations are synthesized from candidate order (line == the
// candidate's 1-based index in the input list, the provenance string is
// embedded in the message); expert-rule locations are real file positions.

#ifndef DQ_LINT_SUGGEST_H_
#define DQ_LINT_SUGGEST_H_

#include <string>
#include <vector>

#include "lint/lint.h"
#include "lint/rule_abstraction.h"

namespace dq {

/// \brief One mined candidate rule plus model provenance.
struct CandidateRule {
  Rule rule;
  /// Provenance, e.g. "c45:GBM:path#3" or "assoc#12".
  std::string source;
  /// Estimated P(consequent | premise) — pessimistic leaf confidence for
  /// tree paths, rule confidence for association rules.
  double confidence = 0.0;
  /// Fraction of training rows matching premise AND consequent.
  double support = 0.0;
  /// Absolute number of training rows matching premise AND consequent.
  size_t support_count = 0;
  /// Fraction of training rows matching the premise.
  double coverage = 0.0;
};

/// \brief Engine configuration.
struct SuggestOptions {
  /// Candidates below this confidence are dropped with DQ037.
  double min_confidence = 0.85;
  /// Candidates below this premise-support count are dropped with DQ035.
  size_t min_support_count = 2;
  /// Hard cap on accepted rules (0 = unlimited); overflow drops with DQ039.
  size_t max_rules = 0;
  /// Budgets and disabled checks for the per-candidate lint battery.
  LintOptions lint;
};

/// \brief Outcome of one suggestion run.
struct SuggestResult {
  /// Surviving candidates, ranked by (confidence desc, support desc,
  /// input order). This is the minimal cover that gets emitted.
  std::vector<CandidateRule> accepted;
  /// All findings: per-candidate lint diagnostics plus the DQ03x drop
  /// justifications, sorted by synthesized location.
  LintResult diagnostics;

  size_t num_candidates = 0;   ///< candidates considered
  size_t num_filtered = 0;     ///< DQ035 + DQ037 drops
  size_t num_invalid = 0;      ///< dropped by error-level lint findings
  size_t num_conflicts = 0;    ///< DQ033 drops
  size_t num_subsumed = 0;     ///< DQ034 + DQ038 + DQ040 drops
  size_t num_truncated = 0;    ///< DQ039 drops
};

/// \brief Minimal-cover reduction and conflict checking for mined rules.
class SuggestEngine {
 public:
  SuggestEngine(const Schema* schema, SuggestOptions options = {});

  /// \brief Runs the full pipeline: filter -> per-candidate lint ->
  /// expert-conflict check -> greedy minimal cover -> budget cap.
  /// `expert` holds the parsed expert rule program (may be empty).
  SuggestResult Analyze(const std::vector<CandidateRule>& candidates,
                        const std::vector<ParsedRule>& expert) const;

  const Schema& schema() const { return *schema_; }
  const SuggestOptions& options() const { return options_; }

 private:
  const Schema* schema_;
  SuggestOptions options_;
};

}  // namespace dq

#endif  // DQ_LINT_SUGGEST_H_
