#include "lint/rule_abstraction.h"

#include <utility>

namespace dq {

Result<bool> SatisfiableWithBudget(const SatChecker& sat, const Formula& f,
                                   size_t budget) {
  DQ_ASSIGN_OR_RETURN(std::vector<std::vector<Atom>> dnf, ToDnf(f, budget));
  for (const std::vector<Atom>& conj : dnf) {
    if (sat.ConjunctionSatisfiable(conj)) return true;
  }
  return false;
}

Result<bool> ImpliesWithBudget(const SatChecker& sat, const Formula& alpha,
                               const Formula& beta, size_t budget) {
  Formula counterexample = Formula::And({alpha, Negate(beta)});
  DQ_ASSIGN_OR_RETURN(bool sat_counter,
                      SatisfiableWithBudget(sat, counterexample, budget));
  return !sat_counter;
}

bool FormulaSummary::DisjointWith(const FormulaSummary& other) const {
  if (!reachable || !other.reachable) return true;
  const size_t n = std::min(ranges.size(), other.ranges.size());
  for (size_t a = 0; a < n; ++a) {
    if (!constrained[a] || !other.constrained[a]) continue;
    DomainRange meet = ranges[a];
    meet.IntersectWith(other.ranges[a]);
    if (meet.Empty()) return true;
  }
  return false;
}

Result<FormulaSummary> RuleAbstraction::Summarize(
    const Formula& f, const Options& options) const {
  DQ_ASSIGN_OR_RETURN(std::vector<std::vector<Atom>> dnf,
                      ToDnf(f, options.max_disjuncts));
  const Schema& schema = sat_->schema();
  const size_t num_attrs = schema.attributes().size();

  FormulaSummary s;
  s.num_disjuncts = dnf.size();
  s.constrained.assign(num_attrs, false);
  for (int a : f.Attributes()) s.constrained[static_cast<size_t>(a)] = true;

  size_t live = 0;
  bool live_exact = true;
  std::vector<DomainRange> previous;  // iterate before the latest join
  for (size_t i = 0; i < dnf.size(); ++i) {
    const Propagation prop = sat_->Propagate(dnf[i]);
    if (!prop.satisfiable) {
      s.dead_disjuncts.push_back(i);
      continue;
    }
    for (const Atom& atom : dnf[i]) {
      if (atom.rhs_is_attr) s.has_relational = true;
    }
    // Relational links constrain attribute *pairs*; the per-attribute
    // projection then over-approximates even a single disjunct.
    if (s.has_relational || !prop.lt_links.empty() || !prop.neq_links.empty()) {
      live_exact = false;
    }
    if (live == 0) {
      s.ranges = prop.ranges;
    } else {
      const bool widen = live >= options.widen_after;
      if (widen) previous = s.ranges;
      for (size_t a = 0; a < num_attrs; ++a) {
        if (s.ranges[a].JoinWith(prop.ranges[a])) s.joined_gap = true;
        if (widen &&
            s.ranges[a].WidenAgainst(previous[a], schema.attribute(a))) {
          s.widen_applied = true;
        }
      }
    }
    ++live;
  }

  s.reachable = live > 0;
  s.exact = s.reachable && live == 1 && live_exact;
  if (!s.reachable) s.ranges.clear();
  return s;
}

AbstractTri RuleAbstraction::CoversSummary(const FormulaSummary& outer,
                                           const FormulaSummary& inner) {
  // An unreachable inner formula is vacuously covered; an unreachable
  // outer one covers nothing that exists.
  if (!inner.reachable) return AbstractTri::kYes;
  if (!outer.reachable) return AbstractTri::kNo;
  const size_t n = std::min(outer.ranges.size(), inner.ranges.size());
  bool contained = true;
  for (size_t a = 0; a < n && contained; ++a) {
    if (!outer.ranges[a].Covers(inner.ranges[a])) contained = false;
  }
  if (contained) {
    // models(inner) <= region(inner) <= region(outer); when outer is exact
    // the last region *is* models(outer), so the implication holds.
    return outer.exact ? AbstractTri::kYes : AbstractTri::kUnknown;
  }
  // Containment failed. Only when both regions are their model sets does
  // that refute the implication.
  return outer.exact && inner.exact ? AbstractTri::kNo : AbstractTri::kUnknown;
}

}  // namespace dq
