#include "lint/suggest.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dq {

namespace {

/// Candidate plus its rank-order bookkeeping and abstract summaries.
struct Working {
  CandidateRule cand;
  size_t input_index = 0;  ///< 0-based position in the input list
  FormulaSummary premise;
  FormulaSummary consequent;
};

SourceLocation CandLoc(const Working& w) {
  return SourceLocation{w.input_index + 1, 1};
}

std::string Describe(const CandidateRule& c) {
  return "mined candidate " + c.source + " (confidence " +
         FormatDouble(c.confidence, 3) + ", support " +
         std::to_string(c.support_count) + ")";
}

void CountRun() { obs::GetCounter("lint.checks_run")->Add(1); }
void CountSkip() { obs::GetCounter("lint.checks_skipped")->Add(1); }

}  // namespace

SuggestEngine::SuggestEngine(const Schema* schema, SuggestOptions options)
    : schema_(schema), options_(std::move(options)) {}

SuggestResult SuggestEngine::Analyze(
    const std::vector<CandidateRule>& candidates,
    const std::vector<ParsedRule>& expert) const {
  obs::Span span("suggest.analyze");
  SuggestResult out;
  out.num_candidates = candidates.size();
  out.diagnostics.rules_checked = candidates.size();
  obs::GetCounter("suggest.candidates")->Add(candidates.size());

  SatChecker sat(schema_);
  const RuleAbstraction abstraction(&sat);
  RuleAbstraction::Options abs_options;
  abs_options.max_disjuncts = options_.lint.max_dnf_disjuncts;
  const size_t budget = options_.lint.max_dnf_disjuncts;
  const Linter linter(schema_, options_.lint);

  auto enabled = [&](const char* id) {
    const LintCheckInfo& check = LintCheckById(id);
    return options_.lint.disabled.count(check.id) == 0 &&
           options_.lint.disabled.count(check.name) == 0;
  };
  auto emit = [&](const char* id, SourceLocation loc, std::string message,
                  int rule_index, int other_index = -1,
                  SourceLocation other_loc = SourceLocation{}) {
    const LintCheckInfo& check = LintCheckById(id);
    LintDiagnostic d;
    d.check_id = check.id;
    d.check_name = check.name;
    d.severity = check.severity;
    d.loc = loc;
    d.message = std::move(message);
    d.rule_index = rule_index;
    d.other_rule_index = other_index;
    d.other_loc = other_loc;
    out.diagnostics.diagnostics.push_back(std::move(d));
  };

  // Budget-blown summaries degrade to the unconstrained box: nothing is
  // pruned abstractly and every test falls back to the exact path.
  auto summarize = [&](const Formula& f) {
    Result<FormulaSummary> s = abstraction.Summarize(f, abs_options);
    if (s.ok()) return *s;
    FormulaSummary top;
    top.reachable = true;
    const size_t n = schema_->attributes().size();
    top.constrained.assign(n, false);
    top.ranges.reserve(n);
    for (size_t a = 0; a < n; ++a) {
      top.ranges.push_back(DomainRange::FullDomain(schema_->attribute(a)));
    }
    return top;
  };

  // alpha => beta, abstract domain first, exact DNF test as fallback. On
  // budget exhaustion the implication is conservatively unproven (the
  // candidate is kept / the conflict not raised) and a DQ030 note records
  // the skip.
  auto implies = [&](const Formula& alpha, const FormulaSummary& alpha_sum,
                     const Formula& beta, const FormulaSummary& beta_sum,
                     SourceLocation loc, int rule_index) {
    switch (RuleAbstraction::CoversSummary(beta_sum, alpha_sum)) {
      case AbstractTri::kYes:
        return true;
      case AbstractTri::kNo:
        return false;
      case AbstractTri::kUnknown:
        break;
    }
    Result<bool> r = ImpliesWithBudget(sat, alpha, beta, budget);
    if (r.ok()) {
      CountRun();
      return *r;
    }
    CountSkip();
    emit("DQ030", loc, "implication test skipped: " + r.status().message(),
         rule_index);
    return false;
  };

  struct ExpertInfo {
    const ParsedRule* rule;
    FormulaSummary premise;
    FormulaSummary consequent;
  };
  std::vector<ExpertInfo> experts;
  experts.reserve(expert.size());
  for (const ParsedRule& e : expert) {
    experts.push_back(
        {&e, summarize(e.rule.premise), summarize(e.rule.consequent)});
  }

  // Rank: confidence desc, support desc, then input order — the order in
  // which the greedy cover considers (and therefore prefers) candidates.
  std::vector<Working> ranked;
  ranked.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    Working w;
    w.cand = candidates[i];
    w.input_index = i;
    ranked.push_back(std::move(w));
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const Working& x, const Working& y) {
                     if (x.cand.confidence != y.cand.confidence) {
                       return x.cand.confidence > y.cand.confidence;
                     }
                     if (x.cand.support_count != y.cand.support_count) {
                       return x.cand.support_count > y.cand.support_count;
                     }
                     return x.input_index < y.input_index;
                   });

  // Phase 1: threshold filters and the per-candidate lint battery.
  std::vector<Working> live;
  live.reserve(ranked.size());
  for (Working& w : ranked) {
    const int index = static_cast<int>(w.input_index);
    const SourceLocation loc = CandLoc(w);
    if (enabled("DQ037") && w.cand.confidence < options_.min_confidence) {
      ++out.num_filtered;
      emit("DQ037", loc,
           Describe(w.cand) + " falls below the confidence floor of " +
               FormatDouble(options_.min_confidence, 3),
           index);
      continue;
    }
    if (enabled("DQ035") &&
        w.cand.support_count < options_.min_support_count) {
      ++out.num_filtered;
      emit("DQ035", loc,
           Describe(w.cand) + " falls below the support floor of " +
               std::to_string(options_.min_support_count) + " rows",
           index);
      continue;
    }

    RuleFileParse parse;
    ParsedRule p;
    p.rule = w.cand.rule;
    p.loc = loc;
    p.text = w.cand.rule.ToString(*schema_);
    parse.rules.push_back(std::move(p));
    LintResult lint = linter.LintParse(parse);
    bool invalid = lint.HasErrors();
    for (LintDiagnostic& d : lint.diagnostics) {
      d.rule_index = index;
      out.diagnostics.diagnostics.push_back(std::move(d));
    }
    if (invalid) {
      ++out.num_invalid;
      continue;
    }

    w.premise = summarize(w.cand.rule.premise);
    w.consequent = summarize(w.cand.rule.consequent);
    live.push_back(std::move(w));
  }

  // Phase 2: Definition-6 conflict check against the expert program. A
  // contradicting candidate is excluded from the cover and flagged for
  // human review; the expert rule always wins.
  std::vector<Working> compatible;
  compatible.reserve(live.size());
  for (Working& w : live) {
    const int index = static_cast<int>(w.input_index);
    const SourceLocation loc = CandLoc(w);
    bool conflicting = false;
    if (enabled("DQ033")) {
      for (const ExpertInfo& e : experts) {
        if (w.premise.DisjointWith(e.premise)) continue;  // never co-fire
        // Definition 6 needs one premise to imply the other (either way).
        const bool premises_linked =
            implies(w.cand.rule.premise, w.premise, e.rule->rule.premise,
                    e.premise, loc, index) ||
            implies(e.rule->rule.premise, e.premise, w.cand.rule.premise,
                    w.premise, loc, index);
        if (!premises_linked) continue;
        Result<bool> all_sat = SatisfiableWithBudget(
            sat,
            Formula::And({w.cand.rule.premise, e.rule->rule.premise,
                          w.cand.rule.consequent, e.rule->rule.consequent}),
            budget);
        if (!all_sat.ok()) {
          CountSkip();
          emit("DQ030", loc,
               "mined-vs-expert contradiction test skipped: " +
                   all_sat.status().message(),
               index, -1, e.rule->loc);
          continue;
        }
        CountRun();
        if (*all_sat) continue;
        ++out.num_conflicts;
        emit("DQ033", loc,
             Describe(w.cand) +
                 " contradicts the expert rule at line " +
                 std::to_string(e.rule->loc.line) +
                 ": no record matching the stronger premise can comply with "
                 "both; the candidate is excluded and needs human review",
             index, -1, e.rule->loc);
        conflicting = true;
        break;
      }
    }
    if (!conflicting) compatible.push_back(std::move(w));
  }

  // Phase 3: greedy confidence-ranked minimal cover. A candidate enters
  // the cover unless the expert program or an already-accepted (stronger-
  // ranked) sibling subsumes it.
  std::vector<Working> accepted;
  accepted.reserve(compatible.size());
  for (Working& w : compatible) {
    const int index = static_cast<int>(w.input_index);
    const SourceLocation loc = CandLoc(w);
    bool dropped = false;

    if (enabled("DQ040")) {
      for (const ExpertInfo& e : experts) {
        if (w.premise.DisjointWith(e.premise)) continue;
        if (!implies(w.cand.rule.premise, w.premise, e.rule->rule.premise,
                     e.premise, loc, index)) {
          continue;
        }
        if (!implies(e.rule->rule.consequent, e.consequent,
                     w.cand.rule.consequent, w.consequent, loc, index)) {
          continue;
        }
        ++out.num_subsumed;
        emit("DQ040", loc,
             Describe(w.cand) + " is already implied by the expert rule at "
                                "line " +
                 std::to_string(e.rule->loc.line) + " and adds no information",
             index, -1, e.rule->loc);
        dropped = true;
        break;
      }
    }

    const bool check_conflict = enabled("DQ033");
    const bool check_subsume = enabled("DQ034") || enabled("DQ038");
    if (!dropped && (check_conflict || check_subsume)) {
      for (const Working& a : accepted) {
        // Disjoint premises never co-fire; with both premises individually
        // satisfiable (lint passed) they also cannot imply each other, so
        // the pair has no interaction at all.
        if (w.premise.DisjointWith(a.premise)) continue;
        const SourceLocation other_loc =
            SourceLocation{a.input_index + 1, 1};
        const bool c_implies_a =
            implies(w.cand.rule.premise, w.premise, a.cand.rule.premise,
                    a.premise, loc, index);
        const bool a_implies_c =
            implies(a.cand.rule.premise, a.premise, w.cand.rule.premise,
                    w.premise, loc, index);

        // Definition 6 among mined siblings (the condition dqlint flags as
        // DQ020 on the emitted file): one premise implies the other, both
        // are satisfiable, and the four-formula conjunction is not — every
        // record matching the stronger premise violates one of the pair.
        // The higher-ranked accepted rule wins.
        if (check_conflict && (c_implies_a || a_implies_c)) {
          bool conflict = false;
          bool decided = true;
          if (w.consequent.DisjointWith(a.consequent)) {
            conflict = true;  // sound without a SAT call
          } else {
            Result<bool> all_sat = SatisfiableWithBudget(
                sat,
                Formula::And({w.cand.rule.premise, a.cand.rule.premise,
                              w.cand.rule.consequent, a.cand.rule.consequent}),
                budget);
            if (all_sat.ok()) {
              CountRun();
              conflict = !*all_sat;
            } else {
              CountSkip();
              decided = false;
              emit("DQ030", loc,
                   "mined-vs-mined contradiction test skipped: " +
                       all_sat.status().message(),
                   index, static_cast<int>(a.input_index), other_loc);
            }
          }
          if (decided && conflict) {
            ++out.num_conflicts;
            emit("DQ033", loc,
                 Describe(w.cand) + " contradicts the accepted " +
                     a.cand.source +
                     ": no record matching the stronger premise can comply "
                     "with both; the candidate is excluded and needs human "
                     "review",
                 index, static_cast<int>(a.input_index), other_loc);
            dropped = true;
            break;
          }
        }

        if (!check_subsume || !c_implies_a) continue;
        const bool subsumed =
            implies(a.cand.rule.consequent, a.consequent,
                    w.cand.rule.consequent, w.consequent, loc, index);
        if (!subsumed) continue;
        const bool equivalent =
            a_implies_c && implies(w.cand.rule.consequent, w.consequent,
                                   a.cand.rule.consequent, a.consequent, loc,
                                   index);
        if (equivalent && enabled("DQ038")) {
          ++out.num_subsumed;
          emit("DQ038", loc,
               Describe(w.cand) + " is logically equivalent to the accepted " +
                   a.cand.source + " and is dropped from the cover",
               index, static_cast<int>(a.input_index), other_loc);
          dropped = true;
        } else if (!equivalent && enabled("DQ034")) {
          ++out.num_subsumed;
          emit("DQ034", loc,
               Describe(w.cand) + " is subsumed by the stronger accepted " +
                   a.cand.source + " and is dropped from the cover",
               index, static_cast<int>(a.input_index), other_loc);
          dropped = true;
        }
        if (dropped) break;
      }
    }
    if (dropped) continue;

    if (options_.max_rules > 0 && accepted.size() >= options_.max_rules) {
      ++out.num_truncated;
      emit("DQ039", loc,
           Describe(w.cand) + " exceeds the rule budget of " +
               std::to_string(options_.max_rules) + " and is dropped",
           index);
      continue;
    }

    // Backward pruning: greedy rank order accepts high-confidence
    // specializations before the general rule that covers them. Once the
    // general rule enters, the specializations are redundant — retire them
    // so the cover stays free of subsumed pairs (dqlint's DQ022).
    if (enabled("DQ034")) {
      for (size_t k = 0; k < accepted.size();) {
        const Working& a = accepted[k];
        if (w.premise.DisjointWith(a.premise)) {
          ++k;
          continue;
        }
        const bool retired =
            implies(a.cand.rule.premise, a.premise, w.cand.rule.premise,
                    w.premise, loc, index) &&
            implies(w.cand.rule.consequent, w.consequent,
                    a.cand.rule.consequent, a.consequent, loc, index);
        if (!retired) {
          ++k;
          continue;
        }
        ++out.num_subsumed;
        emit("DQ034", SourceLocation{a.input_index + 1, 1},
             Describe(a.cand) + " is subsumed by the more general accepted " +
                 w.cand.source + " and is retired from the cover",
             static_cast<int>(a.input_index), index, loc);
        accepted.erase(accepted.begin() + static_cast<long>(k));
      }
    }
    accepted.push_back(std::move(w));
  }

  obs::GetCounter("suggest.dropped_subsumed")->Add(out.num_subsumed);
  obs::GetCounter("suggest.conflicts")->Add(out.num_conflicts);
  obs::GetCounter("suggest.accepted")->Add(accepted.size());

  out.accepted.reserve(accepted.size());
  for (Working& w : accepted) out.accepted.push_back(std::move(w.cand));

  std::stable_sort(out.diagnostics.diagnostics.begin(),
                   out.diagnostics.diagnostics.end(),
                   [](const LintDiagnostic& x, const LintDiagnostic& y) {
                     if (x.loc.line != y.loc.line) return x.loc.line < y.loc.line;
                     if (x.loc.column != y.loc.column) {
                       return x.loc.column < y.loc.column;
                     }
                     return x.check_id < y.check_id;
                   });
  return out;
}

}  // namespace dq
