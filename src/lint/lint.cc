#include "lint/lint.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "lint/rule_abstraction.h"
#include "obs/metrics.h"

namespace dq {

namespace {

// Registry indices; keep in sync with kChecks below.
enum CheckIndex {
  kSyntaxError = 0,
  kUnknownAttribute,
  kTypeMismatch,
  kBadConstant,
  kImpossibleAtom,
  kUnsatPremise,
  kUnsatConsequent,
  kContradictoryRule,
  kTautologicalConclusion,
  kSelfEvidentRule,
  kContradictoryPair,
  kDuplicateRule,
  kSubsumedRule,
  kConflictingOverlap,
  kCheckSkipped,
  kDeadDisjunct,
  kUnreachableThreshold,
  kMinedExpertContradiction,
  kRedundantInCover,
  kLowSupportCandidate,
  kIntervalWidening,
  kLowConfidenceCandidate,
  kDuplicateCandidate,
  kCandidateBudgetExceeded,
  kExpertImpliedCandidate,
};

const std::vector<LintCheckInfo>& Checks() {
  static const std::vector<LintCheckInfo> kChecks = {
      {"DQ001", "syntax-error", LintSeverity::kError,
       "line does not parse as a TDG-rule"},
      {"DQ002", "unknown-attribute", LintSeverity::kError,
       "name does not resolve against the schema"},
      {"DQ003", "type-mismatch", LintSeverity::kError,
       "operator and operand types are incompatible"},
      {"DQ004", "bad-constant", LintSeverity::kError,
       "constant does not parse or lies outside the attribute domain"},
      {"DQ005", "impossible-atom", LintSeverity::kWarning,
       "comparison can never hold given the attribute's domain range"},
      {"DQ010", "unsat-premise", LintSeverity::kError,
       "premise is unsatisfiable; the rule can never fire"},
      {"DQ011", "unsat-consequent", LintSeverity::kError,
       "consequent is unsatisfiable; every firing row violates the rule"},
      {"DQ012", "contradictory-rule", LintSeverity::kError,
       "premise and consequent are jointly unsatisfiable"},
      {"DQ013", "tautological-conclusion", LintSeverity::kWarning,
       "consequent always holds; the rule constrains nothing"},
      {"DQ014", "self-evident-rule", LintSeverity::kWarning,
       "premise already implies the consequent"},
      {"DQ020", "contradictory-pair", LintSeverity::kError,
       "one premise implies the other but the conclusions conflict"},
      {"DQ021", "duplicate-rule", LintSeverity::kWarning,
       "rule is logically equivalent to an earlier rule"},
      {"DQ022", "subsumed-rule", LintSeverity::kWarning,
       "rule is implied by a stronger rule and adds no information"},
      {"DQ023", "conflicting-overlap", LintSeverity::kNote,
       "conclusions conflict where the premises overlap; the pair rules "
       "that region out"},
      {"DQ030", "check-skipped", LintSeverity::kNote,
       "a satisfiability or implication test exhausted its budget"},
      {"DQ031", "dead-disjunct", LintSeverity::kWarning,
       "a branch of the rule's DNF is unsatisfiable and can never fire"},
      {"DQ032", "unreachable-threshold", LintSeverity::kNote,
       "threshold is never reached: sibling conditions in the conjunction "
       "already enforce it"},
      {"DQ033", "mined-expert-contradiction", LintSeverity::kWarning,
       "mined candidate conflicts with the expert rule set or an accepted "
       "higher-ranked candidate"},
      {"DQ034", "redundant-in-cover", LintSeverity::kNote,
       "mined candidate is subsumed by a stronger mined sibling"},
      {"DQ035", "low-support-candidate", LintSeverity::kNote,
       "mined candidate falls below the support floor"},
      {"DQ036", "interval-widening", LintSeverity::kNote,
       "abstract summary lost precision (interval join or widening)"},
      {"DQ037", "low-confidence-candidate", LintSeverity::kNote,
       "mined candidate falls below the confidence floor"},
      {"DQ038", "duplicate-candidate", LintSeverity::kNote,
       "mined candidate is logically equivalent to an earlier candidate"},
      {"DQ039", "candidate-budget-exceeded", LintSeverity::kNote,
       "the --max-rules budget truncated the suggestion list"},
      {"DQ040", "expert-implied-candidate", LintSeverity::kNote,
       "mined candidate is already implied by the expert rule set"},
  };
  return kChecks;
}

const LintCheckInfo& CheckFor(ParseError::Kind kind) {
  switch (kind) {
    case ParseError::Kind::kSyntax:
      return Checks()[kSyntaxError];
    case ParseError::Kind::kUnknownAttribute:
      return Checks()[kUnknownAttribute];
    case ParseError::Kind::kTypeMismatch:
      return Checks()[kTypeMismatch];
    case ParseError::Kind::kBadConstant:
      return Checks()[kBadConstant];
  }
  return Checks()[kSyntaxError];
}

/// Pre-order atom collection; matches the parser's atom-location order.
void CollectAtoms(const Formula& f, std::vector<const Atom*>* out) {
  if (f.is_atom()) {
    out->push_back(&f.atom());
    return;
  }
  for (const Formula& c : f.children()) CollectAtoms(c, out);
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

namespace {

// Satellite observability: suggestion runs over large mined sets execute
// thousands of sat/implication tests; these counters make the volume (and
// the budget-exhausted fraction) visible in --metrics-out dumps.
void CountCheckRun() { obs::GetCounter("lint.checks_run")->Add(1); }
void CountCheckSkipped(uint64_t n = 1) {
  obs::GetCounter("lint.checks_skipped")->Add(n);
}

}  // namespace

const char* LintSeverityToString(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kError:
      return "error";
    case LintSeverity::kWarning:
      return "warning";
    case LintSeverity::kNote:
      return "note";
  }
  return "?";
}

const std::vector<LintCheckInfo>& LintChecks() { return Checks(); }

const LintCheckInfo& LintCheckById(const char* id) {
  for (const LintCheckInfo& check : Checks()) {
    if (std::strcmp(check.id, id) == 0) return check;
  }
  std::abort();  // unknown IDs are programming errors, not inputs
}

size_t LintResult::CountSeverity(LintSeverity severity) const {
  size_t n = 0;
  for (const LintDiagnostic& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

Linter::Linter(const Schema* schema, LintOptions options)
    : schema_(schema), options_(std::move(options)), sat_(schema) {}

bool Linter::Enabled(const LintCheckInfo& check) const {
  return options_.disabled.count(check.id) == 0 &&
         options_.disabled.count(check.name) == 0;
}

void Linter::Emit(const LintCheckInfo& check, SourceLocation loc,
                  std::string message, int rule_index, LintResult* out) const {
  if (!Enabled(check)) return;
  LintDiagnostic d;
  d.check_id = check.id;
  d.check_name = check.name;
  d.severity = check.severity;
  d.loc = loc;
  d.message = std::move(message);
  d.rule_index = rule_index;
  out->diagnostics.push_back(std::move(d));
}

bool Linter::Try(const Result<bool>& result, SourceLocation loc,
                 int rule_index, const char* what, bool fallback,
                 LintResult* out) const {
  if (result.ok()) {
    CountCheckRun();
    return *result;
  }
  CountCheckSkipped();
  Emit(Checks()[kCheckSkipped], loc,
       std::string(what) + " skipped: " + result.status().message(),
       rule_index, out);
  return fallback;
}

void Linter::CheckAtoms(const ParsedRule& rule, int index,
                        LintResult* out) const {
  const bool want_impossible = Enabled(Checks()[kImpossibleAtom]);
  const bool want_threshold = Enabled(Checks()[kUnreachableThreshold]);
  if (!want_impossible && !want_threshold) return;
  const std::pair<const Formula*, const std::vector<SourceLocation>*> sides[] =
      {{&rule.rule.premise, &rule.premise_atom_locs},
       {&rule.rule.consequent, &rule.consequent_atom_locs}};
  for (const auto& [formula, locs] : sides) {
    std::vector<const Atom*> atoms;
    CollectAtoms(*formula, &atoms);
    for (size_t i = 0; i < atoms.size(); ++i) {
      const Atom& atom = *atoms[i];
      if (atom.op == AtomOp::kIsNull || atom.op == AtomOp::kIsNotNull) {
        continue;
      }
      if (!want_impossible) continue;
      CountCheckRun();
      if (!sat_.ConjunctionSatisfiable({atom})) {
        const SourceLocation loc = i < locs->size() ? (*locs)[i] : rule.loc;
        Emit(Checks()[kImpossibleAtom], loc,
             "comparison '" + atom.ToString(*schema_) +
                 "' can never hold given the domain of '" +
                 schema_->attribute(static_cast<size_t>(atom.lhs_attr)).name +
                 "'",
             index, out);
      }
    }
  }
  if (want_threshold) {
    CheckThresholds(rule, index, out);
  }
}

// DQ032: inside a pure conjunction, a threshold that the sibling
// conditions already enforce decides nothing — the boundary is never
// reached. Mined C4.5 path rules produce exactly this shape when an
// ancestor split is looser than a descendant split on the same attribute.
void Linter::CheckThresholds(const ParsedRule& rule, int index,
                             LintResult* out) const {
  const std::pair<const Formula*, const std::vector<SourceLocation>*> sides[] =
      {{&rule.rule.premise, &rule.premise_atom_locs},
       {&rule.rule.consequent, &rule.consequent_atom_locs}};
  for (const auto& [formula, locs] : sides) {
    Result<std::vector<Atom>> conj = formula->AsConjunction();
    if (!conj.ok() || conj->size() < 2) continue;
    for (size_t i = 0; i < conj->size(); ++i) {
      const Atom& atom = (*conj)[i];
      if (atom.rhs_is_attr || atom.rhs_value.is_null()) continue;
      if (atom.op != AtomOp::kLt && atom.op != AtomOp::kGt) continue;
      std::vector<Atom> others;
      others.reserve(conj->size() - 1);
      for (size_t j = 0; j < conj->size(); ++j) {
        if (j != i) others.push_back((*conj)[j]);
      }
      CountCheckRun();
      const Propagation prop = sat_.Propagate(others);
      if (!prop.satisfiable) continue;  // the unsat checks cover this
      const size_t attr_idx = static_cast<size_t>(atom.lhs_attr);
      const DomainRange& before = prop.ranges[attr_idx];
      DomainRange after = before;
      after.ForbidNull();
      if (atom.op == AtomOp::kLt) {
        after.RestrictLt(atom.rhs_value);
      } else {
        after.RestrictGt(atom.rhs_value);
      }
      // Restriction only shrinks; the threshold is dead iff nothing (not
      // even the null permission) was cut away.
      if (after.Covers(before)) {
        const AttributeDef& attr = schema_->attribute(attr_idx);
        const SourceLocation loc = i < locs->size() ? (*locs)[i] : rule.loc;
        Emit(Checks()[kUnreachableThreshold], loc,
             "threshold '" + atom.ToString(*schema_) +
                 "' is never reached: the other conditions already restrict "
                 "'" +
                 attr.name + "' to " + before.ToString(attr),
             index, out);
      }
    }
  }
}

// Abstract interpretation of one rule side: summarizes the formula in the
// per-attribute domain, reporting dead DNF branches (DQ031) and precision
// loss (DQ036). Returns the side's satisfiability (budget exhaustion falls
// back to "satisfiable", mirroring the exact test's fallback, with the
// DQ030 note emitted by the caller-supplied Try pattern inlined here).
bool Linter::CheckAbstract(const ParsedRule& rule, int index,
                           bool premise_side, LintResult* out) const {
  const char* side = premise_side ? "premise" : "consequent";
  const Formula& formula =
      premise_side ? rule.rule.premise : rule.rule.consequent;
  RuleAbstraction::Options abs_options;
  abs_options.max_disjuncts = options_.max_dnf_disjuncts;
  const RuleAbstraction abstraction(&sat_);
  Result<FormulaSummary> summary = abstraction.Summarize(formula, abs_options);
  if (!summary.ok()) {
    CountCheckSkipped();
    Emit(Checks()[kCheckSkipped], rule.loc,
         std::string(side) + " satisfiability test skipped: " +
             summary.status().message(),
         index, out);
    return true;
  }
  CountCheckRun();
  if (!summary->reachable) return false;
  if (!summary->dead_disjuncts.empty()) {
    for (size_t d : summary->dead_disjuncts) {
      Emit(Checks()[kDeadDisjunct], rule.loc,
           "dead branch: disjunct " + std::to_string(d + 1) + " of " +
               std::to_string(summary->num_disjuncts) + " in the " + side +
               " is unsatisfiable and can never fire",
           index, out);
    }
  }
  if (summary->joined_gap || summary->widen_applied) {
    Emit(Checks()[kIntervalWidening], rule.loc,
         std::string("abstract summary of the ") + side +
             (summary->widen_applied
                  ? " was widened to the schema domain bounds"
                  : " covers a gap between disjoint intervals") +
             "; interval precision is reduced for downstream checks",
         index, out);
  }
  return true;
}

void Linter::CheckRule(const ParsedRule& rule, int index,
                       LintResult* out) const {
  CheckAtoms(rule, index, out);

  const size_t budget = options_.max_dnf_disjuncts;
  const bool premise_sat = CheckAbstract(rule, index, /*premise_side=*/true,
                                         out);
  if (!premise_sat) {
    Emit(Checks()[kUnsatPremise], rule.loc,
         "premise is unsatisfiable: the rule can never fire", index, out);
    // Implication against an unsatisfiable premise is vacuous; the
    // remaining rule-level checks would only echo this defect.
    return;
  }

  const bool consequent_sat = CheckAbstract(rule, index,
                                            /*premise_side=*/false, out);
  if (!consequent_sat) {
    Emit(Checks()[kUnsatConsequent], rule.loc,
         "consequent is unsatisfiable: every record matching the premise "
         "violates the rule",
         index, out);
    return;
  }

  const bool joint_sat =
      Try(SatisfiableWithBudget(
              sat_, Formula::And({rule.rule.premise, rule.rule.consequent}),
              budget),
          rule.loc, index, "joint satisfiability test", true, out);
  if (!joint_sat) {
    Emit(Checks()[kContradictoryRule], rule.loc,
         "premise and consequent are jointly unsatisfiable: no record can "
         "comply with the rule",
         index, out);
    return;
  }

  const bool negation_sat =
      Try(SatisfiableWithBudget(sat_, Negate(rule.rule.consequent), budget),
          rule.loc, index, "tautology test", true, out);
  if (!negation_sat) {
    Emit(Checks()[kTautologicalConclusion], rule.loc,
         "consequent holds for every record: the rule constrains nothing",
         index, out);
    return;
  }

  const bool self_evident =
      Try(ImpliesWithBudget(sat_, rule.rule.premise, rule.rule.consequent,
                            budget),
          rule.loc, index, "implication test", false, out);
  if (self_evident) {
    Emit(Checks()[kSelfEvidentRule], rule.loc,
         "premise already implies the consequent: the rule adds no "
         "information",
         index, out);
  }
}

void Linter::CheckPair(const ParsedRule& a, int ia, const ParsedRule& b,
                       int ib, LintResult* out) const {
  const size_t budget = options_.max_dnf_disjuncts;
  auto emit_pair = [&](CheckIndex which, SourceLocation loc, int rule_index,
                       const std::string& message, int other_index,
                       SourceLocation other_loc) {
    if (!Enabled(Checks()[which])) return;
    LintDiagnostic d;
    d.check_id = Checks()[which].id;
    d.check_name = Checks()[which].name;
    d.severity = Checks()[which].severity;
    d.loc = loc;
    d.message = message;
    d.rule_index = rule_index;
    d.other_rule_index = other_index;
    d.other_loc = other_loc;
    out->diagnostics.push_back(std::move(d));
  };

  const bool a_implies_b =
      Try(ImpliesWithBudget(sat_, a.rule.premise, b.rule.premise, budget),
          b.loc, ib, "pairwise implication test", false, out);
  const bool b_implies_a =
      Try(ImpliesWithBudget(sat_, b.rule.premise, a.rule.premise, budget),
          b.loc, ib, "pairwise implication test", false, out);

  const bool premises_joint =
      Try(SatisfiableWithBudget(
              sat_, Formula::And({a.rule.premise, b.rule.premise}), budget),
          b.loc, ib, "pairwise premise satisfiability test", false, out);
  if (premises_joint) {
    const bool all_sat =
        Try(SatisfiableWithBudget(
                sat_,
                Formula::And({a.rule.premise, b.rule.premise,
                              a.rule.consequent, b.rule.consequent}),
                budget),
            b.loc, ib, "pairwise contradiction test", true, out);
    if (!all_sat) {
      if (a_implies_b || b_implies_a) {
        // Definition 6: the stronger premise forces both consequents, and
        // they conflict — every record it matches violates one rule.
        emit_pair(kContradictoryPair, b.loc, ib,
                  "conclusions conflict with the rule at " + a.loc.ToString() +
                      ": no record matching the stronger premise can comply "
                      "with both rules",
                  ia, a.loc);
      } else {
        // The premises merely overlap; the pair jointly rules the overlap
        // region out of compliant data (normal in rule chains).
        emit_pair(kConflictingOverlap, b.loc, ib,
                  "conclusions conflict with the rule at " + a.loc.ToString() +
                      " where the premises overlap; compliant data cannot "
                      "contain records matching both premises",
                  ia, a.loc);
      }
      return;
    }
  }

  if (a_implies_b && b_implies_a) {
    const bool ac_implies_bc = Try(
        ImpliesWithBudget(sat_, a.rule.consequent, b.rule.consequent, budget),
        b.loc, ib, "pairwise implication test", false, out);
    const bool bc_implies_ac = Try(
        ImpliesWithBudget(sat_, b.rule.consequent, a.rule.consequent, budget),
        b.loc, ib, "pairwise implication test", false, out);
    if (ac_implies_bc && bc_implies_ac) {
      emit_pair(kDuplicateRule, b.loc, ib,
                "rule is logically equivalent to the rule at " +
                    a.loc.ToString(),
                ia, a.loc);
      return;
    }
  }

  // Rule Y is subsumed by rule X when Y's premise implies X's premise and
  // X's consequent implies Y's consequent: whenever Y fires, X fires and
  // already demands at least as much.
  if (b_implies_a) {
    const bool stronger = Try(
        ImpliesWithBudget(sat_, a.rule.consequent, b.rule.consequent, budget),
        b.loc, ib, "pairwise implication test", false, out);
    if (stronger) {
      emit_pair(kSubsumedRule, b.loc, ib,
                "rule is subsumed by the stronger rule at " + a.loc.ToString(),
                ia, a.loc);
      return;
    }
  }
  if (a_implies_b) {
    const bool stronger = Try(
        ImpliesWithBudget(sat_, b.rule.consequent, a.rule.consequent, budget),
        a.loc, ia, "pairwise implication test", false, out);
    if (stronger) {
      emit_pair(kSubsumedRule, a.loc, ia,
                "rule is subsumed by the stronger rule at " + b.loc.ToString(),
                ib, b.loc);
    }
  }
}

LintResult Linter::LintParse(const RuleFileParse& parse) const {
  LintResult out;
  out.rules_checked = parse.rules.size();

  for (const ParseError& error : parse.errors) {
    Emit(CheckFor(error.kind), error.loc,
         error.message + " (near '" + error.token + "')", -1, &out);
  }

  // Per-rule checks; rules with error-level findings are excluded from the
  // pairwise phase (their implications are degenerate).
  std::vector<bool> clean(parse.rules.size(), true);
  for (size_t i = 0; i < parse.rules.size(); ++i) {
    const size_t before = out.diagnostics.size();
    CheckRule(parse.rules[i], static_cast<int>(i), &out);
    for (size_t d = before; d < out.diagnostics.size(); ++d) {
      if (out.diagnostics[d].severity == LintSeverity::kError) {
        clean[i] = false;
      }
    }
  }

  if (parse.rules.size() > options_.max_pairwise_rules) {
    const size_t n = parse.rules.size();
    CountCheckSkipped(static_cast<uint64_t>(n) * (n - 1) / 2);
    Emit(Checks()[kCheckSkipped], SourceLocation{1, 1},
         "pairwise checks skipped: " + std::to_string(parse.rules.size()) +
             " rules exceed the limit of " +
             std::to_string(options_.max_pairwise_rules),
         -1, &out);
  } else {
    for (size_t i = 0; i < parse.rules.size(); ++i) {
      if (!clean[i]) continue;
      for (size_t j = i + 1; j < parse.rules.size(); ++j) {
        if (!clean[j]) continue;
        CheckPair(parse.rules[i], static_cast<int>(i), parse.rules[j],
                  static_cast<int>(j), &out);
      }
    }
  }

  std::stable_sort(out.diagnostics.begin(), out.diagnostics.end(),
                   [](const LintDiagnostic& x, const LintDiagnostic& y) {
                     if (x.loc.line != y.loc.line) return x.loc.line < y.loc.line;
                     if (x.loc.column != y.loc.column) {
                       return x.loc.column < y.loc.column;
                     }
                     return x.check_id < y.check_id;
                   });
  return out;
}

LintResult Linter::LintFile(std::istream* in) const {
  return LintParse(ParseRuleFileLenient(*schema_, in));
}

Result<LintResult> Linter::LintFileAt(const std::string& path) const {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot open '" + path + "' for reading");
  return LintFile(&f);
}

LintResult Linter::LintRules(const std::vector<Rule>& rules) const {
  RuleFileParse parse;
  parse.rules.reserve(rules.size());
  for (size_t i = 0; i < rules.size(); ++i) {
    ParsedRule p;
    p.rule = rules[i];
    p.loc = SourceLocation{i + 1, 1};
    p.text = rules[i].ToString(*schema_);
    parse.rules.push_back(std::move(p));
  }
  return LintParse(parse);
}

std::string RenderLintText(const LintResult& result,
                           const std::string& source_name) {
  std::ostringstream out;
  for (const LintDiagnostic& d : result.diagnostics) {
    out << source_name << ':' << d.loc.line << ':' << d.loc.column << ": "
        << LintSeverityToString(d.severity) << ": " << d.message << " ["
        << d.check_id << ' ' << d.check_name << "]\n";
  }
  out << source_name << ": " << result.rules_checked << " rules checked, "
      << result.NumErrors() << " errors, " << result.NumWarnings()
      << " warnings, " << result.NumNotes() << " notes\n";
  return out.str();
}

std::string RenderLintJson(const LintResult& result,
                           const std::string& source_name) {
  std::ostringstream out;
  out << "{\n"
      << "  \"source\": \"" << EscapeJson(source_name) << "\",\n"
      << "  \"rules_checked\": " << result.rules_checked << ",\n"
      << "  \"errors\": " << result.NumErrors() << ",\n"
      << "  \"warnings\": " << result.NumWarnings() << ",\n"
      << "  \"notes\": " << result.NumNotes() << ",\n"
      << "  \"diagnostics\": [";
  for (size_t i = 0; i < result.diagnostics.size(); ++i) {
    const LintDiagnostic& d = result.diagnostics[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"id\": \"" << d.check_id << "\", \"name\": \""
        << d.check_name << "\", \"severity\": \""
        << LintSeverityToString(d.severity) << "\", \"line\": " << d.loc.line
        << ", \"column\": " << d.loc.column << ", \"rule\": " << d.rule_index;
    if (d.other_rule_index >= 0) {
      out << ", \"related_rule\": " << d.other_rule_index
          << ", \"related_line\": " << d.other_loc.line
          << ", \"related_column\": " << d.other_loc.column;
    }
    out << ", \"message\": \"" << EscapeJson(d.message) << "\"}";
  }
  out << (result.diagnostics.empty() ? "]\n" : "\n  ]\n") << "}\n";
  return out.str();
}

}  // namespace dq
