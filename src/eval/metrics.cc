#include "eval/metrics.h"

#include <algorithm>

#include "common/parallel.h"
#include "common/strings.h"

namespace dq {

namespace {

/// Splits [0, n) into one contiguous chunk per worker, lets `fn(chunk,
/// begin, end)` accumulate into a per-chunk partial, and returns the
/// partials for an order-fixed reduction (counts are integers, so the sum
/// is identical for every thread count).
template <typename Partial, typename Fn>
std::vector<Partial> ChunkedPartials(int num_threads, size_t n, Fn fn) {
  const size_t threads = static_cast<size_t>(ResolveThreadCount(num_threads));
  const size_t chunks = n == 0 ? 1 : std::min(threads, n);
  std::vector<Partial> partials(chunks);
  ParallelFor(static_cast<int>(chunks), chunks, [&](size_t c) {
    fn(&partials[c], n * c / chunks, n * (c + 1) / chunks);
  });
  return partials;
}

}  // namespace

std::string DetectionMatrix::ToString() const {
  std::string out;
  out += "                    tool: incorrect   tool: correct\n";
  out += "data incorrect      " + std::to_string(true_positive) + " (TP)" +
         "            " + std::to_string(false_negative) + " (FN)\n";
  out += "data correct        " + std::to_string(false_positive) + " (FP)" +
         "            " + std::to_string(true_negative) + " (TN)\n";
  out += "sensitivity = " + FormatDouble(Sensitivity(), 4) +
         ", specificity = " + FormatDouble(Specificity(), 4);
  return out;
}

std::string CorrectionMatrix::ToString() const {
  std::string out;
  out += "                    after: correct   after: incorrect\n";
  out += "before correct      " + std::to_string(a) + " (a)            " +
         std::to_string(b) + " (b)\n";
  out += "before incorrect    " + std::to_string(c) + " (c)            " +
         std::to_string(d) + " (d)\n";
  out += "improvement = " + FormatDouble(Improvement(), 4);
  return out;
}

DetectionMatrix EvaluateDetection(const PollutionResult& pollution,
                                  const AuditReport& report,
                                  int num_threads) {
  const size_t n = pollution.dirty.num_rows();
  const auto partials = ChunkedPartials<DetectionMatrix>(
      num_threads, n,
      [&](DetectionMatrix* m, size_t begin, size_t end) {
        for (size_t r = begin; r < end; ++r) {
          const bool corrupted = pollution.is_corrupted[r];
          const bool flagged = report.IsFlagged(r);
          if (corrupted && flagged) {
            ++m->true_positive;
          } else if (corrupted && !flagged) {
            ++m->false_negative;
          } else if (!corrupted && flagged) {
            ++m->false_positive;
          } else {
            ++m->true_negative;
          }
        }
      });
  DetectionMatrix m;
  for (const DetectionMatrix& p : partials) {
    m.true_positive += p.true_positive;
    m.false_negative += p.false_negative;
    m.false_positive += p.false_positive;
    m.true_negative += p.true_negative;
  }
  return m;
}

bool RowMatchesClean(const Table& clean, const PollutionResult& pollution,
                     const Table& dirty_or_corrected, size_t dirty_row) {
  const size_t origin = pollution.origin[dirty_row];
  // Cell-by-cell through the compat accessor: no full-row materialization.
  for (size_t a = 0; a < clean.num_attributes(); ++a) {
    if (!clean.cell(origin, a).StrictEquals(
            dirty_or_corrected.cell(dirty_row, a))) {
      return false;
    }
  }
  return true;
}

CorrectionMatrix EvaluateCorrection(const Table& clean,
                                    const PollutionResult& pollution,
                                    const AuditReport& report,
                                    const Table& corrected,
                                    int num_threads) {
  (void)report;
  const auto partials = ChunkedPartials<CorrectionMatrix>(
      num_threads, pollution.dirty.num_rows(),
      [&](CorrectionMatrix* m, size_t begin, size_t end) {
        for (size_t r = begin; r < end; ++r) {
          const bool before_ok =
              RowMatchesClean(clean, pollution, pollution.dirty, r);
          const bool after_ok = RowMatchesClean(clean, pollution, corrected, r);
          if (before_ok && after_ok) {
            ++m->a;
          } else if (before_ok && !after_ok) {
            ++m->b;
          } else if (!before_ok && after_ok) {
            ++m->c;
          } else {
            ++m->d;
          }
        }
      });
  CorrectionMatrix m;
  for (const CorrectionMatrix& p : partials) {
    m.a += p.a;
    m.b += p.b;
    m.c += p.c;
    m.d += p.d;
  }
  return m;
}

}  // namespace dq
