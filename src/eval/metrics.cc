#include "eval/metrics.h"

#include "common/strings.h"

namespace dq {

std::string DetectionMatrix::ToString() const {
  std::string out;
  out += "                    tool: incorrect   tool: correct\n";
  out += "data incorrect      " + std::to_string(true_positive) + " (TP)" +
         "            " + std::to_string(false_negative) + " (FN)\n";
  out += "data correct        " + std::to_string(false_positive) + " (FP)" +
         "            " + std::to_string(true_negative) + " (TN)\n";
  out += "sensitivity = " + FormatDouble(Sensitivity(), 4) +
         ", specificity = " + FormatDouble(Specificity(), 4);
  return out;
}

std::string CorrectionMatrix::ToString() const {
  std::string out;
  out += "                    after: correct   after: incorrect\n";
  out += "before correct      " + std::to_string(a) + " (a)            " +
         std::to_string(b) + " (b)\n";
  out += "before incorrect    " + std::to_string(c) + " (c)            " +
         std::to_string(d) + " (d)\n";
  out += "improvement = " + FormatDouble(Improvement(), 4);
  return out;
}

DetectionMatrix EvaluateDetection(const PollutionResult& pollution,
                                  const AuditReport& report) {
  DetectionMatrix m;
  const size_t n = pollution.dirty.num_rows();
  for (size_t r = 0; r < n; ++r) {
    const bool corrupted = pollution.is_corrupted[r];
    const bool flagged = report.IsFlagged(r);
    if (corrupted && flagged) {
      ++m.true_positive;
    } else if (corrupted && !flagged) {
      ++m.false_negative;
    } else if (!corrupted && flagged) {
      ++m.false_positive;
    } else {
      ++m.true_negative;
    }
  }
  return m;
}

bool RowMatchesClean(const Table& clean, const PollutionResult& pollution,
                     const Table& dirty_or_corrected, size_t dirty_row) {
  const size_t origin = pollution.origin[dirty_row];
  const Row& reference = clean.row(origin);
  const Row& actual = dirty_or_corrected.row(dirty_row);
  for (size_t a = 0; a < reference.size(); ++a) {
    if (!reference[a].StrictEquals(actual[a])) return false;
  }
  return true;
}

CorrectionMatrix EvaluateCorrection(const Table& clean,
                                    const PollutionResult& pollution,
                                    const AuditReport& report,
                                    const Table& corrected) {
  (void)report;
  CorrectionMatrix m;
  for (size_t r = 0; r < pollution.dirty.num_rows(); ++r) {
    const bool before_ok = RowMatchesClean(clean, pollution, pollution.dirty, r);
    const bool after_ok = RowMatchesClean(clean, pollution, corrected, r);
    if (before_ok && after_ok) {
      ++m.a;
    } else if (before_ok && !after_ok) {
      ++m.b;
    } else if (!before_ok && after_ok) {
      ++m.c;
    } else {
      ++m.d;
    }
  }
  return m;
}

}  // namespace dq
