#include "eval/report_io.h"

#include <fstream>
#include <ostream>

#include "audit/stream_audit.h"

namespace dq {

Status WriteAuditReportCsv(const AuditReport& report, const Table& data,
                           std::ostream* out) {
  // Same writer the streaming audit uses (so both paths emit identical
  // bytes); the only in-memory extra is the row bounds check, which the
  // streaming path cannot do (it never holds the full table).
  for (const Suspicion& s : report.suspicious) {
    if (s.row >= data.num_rows()) {
      return Status::InvalidArgument("report does not match the table");
    }
  }
  Status written =
      WriteStreamAuditReportCsv(report.suspicious, data.schema(), out);
  if (!written.ok() && written.IsInvalidArgument()) {
    return Status::InvalidArgument("report does not match the table");
  }
  return written;
}

Status WriteAuditReportCsvFile(const AuditReport& report, const Table& data,
                               const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::IOError("cannot open '" + path + "' for writing");
  return WriteAuditReportCsv(report, data, &f);
}

}  // namespace dq
