#include "eval/report_io.h"

#include <fstream>
#include <ostream>

#include "common/strings.h"
#include "table/csv.h"

namespace dq {

Status WriteAuditReportCsv(const AuditReport& report, const Table& data,
                           std::ostream* out) {
  const Schema& schema = data.schema();
  *out << "rank,row,error_confidence,attribute,observed,suggestion,support\n";
  size_t rank = 1;
  for (const Suspicion& s : report.suspicious) {
    if (s.row >= data.num_rows() || s.attr < 0 ||
        static_cast<size_t>(s.attr) >= schema.num_attributes()) {
      return Status::InvalidArgument("report does not match the table");
    }
    *out << rank++ << ',' << s.row << ','
         << FormatDouble(s.error_confidence, 6) << ','
         << CsvQuote(schema.attribute(static_cast<size_t>(s.attr)).name, ',')
         << ',' << CsvQuote(schema.ValueToString(s.attr, s.observed), ',')
         << ',' << CsvQuote(schema.ValueToString(s.attr, s.suggestion), ',')
         << ',' << FormatDouble(s.support, 1) << '\n';
  }
  if (!*out) return Status::IOError("stream write failed");
  return Status::OK();
}

Status WriteAuditReportCsvFile(const AuditReport& report, const Table& data,
                               const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::IOError("cannot open '" + path + "' for writing");
  return WriteAuditReportCsv(report, data, &f);
}

}  // namespace dq
