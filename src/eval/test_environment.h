// TestEnvironment: the end-to-end benchmarking pipeline of fig. 2.
//
// "It generates artificial data that simulate structural characteristics of
// the application database, pollutes this data in a controlled and logged
// procedure, runs the data auditing tool and evaluates its performance by
// comparing the deviations of the dirty from the clean database with the
// detected errors."
//
// The base parameter configuration mirrors sec. 6.1: "6 nominal attributes
// with different domain sizes, 1 date type and 1 numeric attribute.
// Furthermore, we specify one multivariate nominal and 5 univariate start
// distributions of different kinds. We use the test data generator to
// create 10000 records based on 100 randomly generated rules and apply a
// variety of pollution procedures with different activation probabilities"
// at a fixed minimal error confidence of 80%.

#ifndef DQ_EVAL_TEST_ENVIRONMENT_H_
#define DQ_EVAL_TEST_ENVIRONMENT_H_

#include <memory>

#include "audit/auditor.h"
#include "bayes/bayes_net.h"
#include "eval/metrics.h"
#include "pollution/pipeline.h"
#include "tdg/data_generator.h"
#include "tdg/rule_generator.h"

namespace dq {

/// \brief The sec. 6.1 base schema: six nominal attributes with domain
/// sizes 3/5/8/12/20/40, one date attribute (production date 1995-2003) and
/// one numeric attribute.
Schema MakeBaseSchema();

/// \brief Five univariate start distributions of different kinds for the
/// attributes not covered by the multivariate network.
std::vector<DistributionSpec> MakeBaseDistributions(const Schema& schema,
                                                    uint64_t seed);

/// \brief The multivariate nominal start distribution: a Bayesian network
/// over the first three nominal attributes (N2 and N3 depend on N1) with
/// deterministic pseudo-random CPTs.
Result<std::unique_ptr<BayesianNetwork>> MakeBaseBayesNet(const Schema* schema,
                                                          uint64_t seed);

struct TestEnvironmentConfig {
  size_t num_records = 10000;
  int num_rules = 100;
  double pollution_factor = 1.0;
  uint64_t seed = 1;

  RuleGenConfig rule_gen;  ///< num_rules/seed overridden from above
  DataGenConfig data_gen;  ///< num_records/seed overridden from above
  std::vector<PolluterConfig> polluters;  ///< empty = DefaultPolluterMix()
  AuditorConfig auditor;   ///< minimal error confidence defaults to 0.8
};

/// \brief Everything a benchmark needs from one pipeline run.
struct ExperimentResult {
  Schema schema;
  std::vector<Rule> rules;
  Table clean;
  PollutionResult pollution;
  AuditReport report;
  DetectionMatrix detection;
  CorrectionMatrix correction;

  double sensitivity = 0.0;
  double specificity = 0.0;
  double correction_improvement = 0.0;
  size_t flagged = 0;
  size_t corrupted = 0;

  double generate_ms = 0.0;
  double pollute_ms = 0.0;
  double induce_ms = 0.0;
  double audit_ms = 0.0;

  /// Phase breakdown of the audit (threads used, per-attribute induction
  /// times, C4.5 presort vs. tree-build split).
  AuditTimings timings;
};

/// \brief Runs generation -> pollution -> induction -> audit -> evaluation.
class TestEnvironment {
 public:
  explicit TestEnvironment(TestEnvironmentConfig config)
      : config_(std::move(config)) {}

  Result<ExperimentResult> Run() const;

  const TestEnvironmentConfig& config() const { return config_; }

 private:
  TestEnvironmentConfig config_;
};

}  // namespace dq

#endif  // DQ_EVAL_TEST_ENVIRONMENT_H_
