// Train/test splitting (sec. 8): "a data auditing tool should work both
// when training sets and test data are separate and when there is only a
// single database which serves both for training and data audit."

#ifndef DQ_EVAL_TABLE_SPLIT_H_
#define DQ_EVAL_TABLE_SPLIT_H_

#include "common/random.h"
#include "common/result.h"
#include "table/table.h"

namespace dq {

struct TableSplit {
  Table train;
  Table test;
  /// Original row index of each train/test row.
  std::vector<size_t> train_rows;
  std::vector<size_t> test_rows;
};

/// \brief Randomly partitions `table` into train/test with the given train
/// fraction (in [0, 1]); deterministic for a seed.
Result<TableSplit> SplitTable(const Table& table, double train_fraction,
                              uint64_t seed);

}  // namespace dq

#endif  // DQ_EVAL_TABLE_SPLIT_H_
