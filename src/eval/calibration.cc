#include "eval/calibration.h"

#include <algorithm>

#include "common/strings.h"

namespace dq {

const char* AuditGoalToString(AuditGoal goal) {
  switch (goal) {
    case AuditGoal::kScreening:
      return "screening";
    case AuditGoal::kFiltering:
      return "filtering";
    case AuditGoal::kBalanced:
      return "balanced";
  }
  return "unknown";
}

std::vector<CalibrationCandidate> DefaultCandidateGrid() {
  std::vector<CalibrationCandidate> grid;
  for (InducerKind inducer : {InducerKind::kC45, InducerKind::kNaiveBayes,
                              InducerKind::kOneR}) {
    for (double min_conf : {0.7, 0.8, 0.9}) {
      CalibrationCandidate c;
      c.config.inducer = inducer;
      c.config.min_error_confidence = min_conf;
      c.label = std::string(InducerKindToString(inducer)) + " @" +
                FormatDouble(min_conf, 2);
      grid.push_back(std::move(c));
    }
  }
  // C4.5 pruning-mode variants at the paper's threshold.
  for (PruningMode mode : {PruningMode::kPessimistic, PruningMode::kNone}) {
    CalibrationCandidate c;
    c.config.inducer = InducerKind::kC45;
    c.config.min_error_confidence = 0.8;
    c.config.c45.pruning = mode;
    c.label = std::string("c4.5 @0.8 ") + PruningModeToString(mode);
    grid.push_back(std::move(c));
  }
  return grid;
}

namespace {

double GoalScore(const CalibrationConfig& config,
                 const CalibrationResult& result) {
  switch (config.goal) {
    case AuditGoal::kScreening:
      return result.specificity >= config.min_specificity
                 ? result.sensitivity
                 : 0.0;
    case AuditGoal::kFiltering:
      return result.sensitivity >= config.min_sensitivity
                 ? result.specificity
                 : 0.0;
    case AuditGoal::kBalanced:
      return std::max(0.0, result.sensitivity + result.specificity - 1.0);
  }
  return 0.0;
}

}  // namespace

Result<std::vector<CalibrationResult>> Calibrate(
    const CalibrationConfig& config,
    const std::vector<CalibrationCandidate>& candidates) {
  if (candidates.empty()) {
    return Status::InvalidArgument("no calibration candidates");
  }
  if (config.seeds < 1) {
    return Status::InvalidArgument("seeds must be >= 1");
  }
  std::vector<CalibrationResult> results;
  results.reserve(candidates.size());
  for (const CalibrationCandidate& candidate : candidates) {
    CalibrationResult result;
    result.label = candidate.label;
    result.config = candidate.config;
    int ok_runs = 0;
    for (int s = 0; s < config.seeds; ++s) {
      TestEnvironmentConfig env = config.environment;
      env.auditor = candidate.config;
      env.seed = SplitMix64(config.environment.seed + 31ULL * s);
      auto run = TestEnvironment(env).Run();
      if (!run.ok()) continue;
      ++ok_runs;
      result.sensitivity += run->sensitivity;
      result.specificity += run->specificity;
      result.correction_improvement += run->correction_improvement;
    }
    if (ok_runs == 0) {
      return Status::Internal("all runs failed for candidate '" +
                              candidate.label + "'");
    }
    result.sensitivity /= ok_runs;
    result.specificity /= ok_runs;
    result.correction_improvement /= ok_runs;
    result.score = GoalScore(config, result);
    results.push_back(std::move(result));
  }
  std::stable_sort(results.begin(), results.end(),
                   [](const CalibrationResult& a, const CalibrationResult& b) {
                     return a.score > b.score;
                   });
  return results;
}

std::string RenderCalibration(const std::vector<CalibrationResult>& results) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-28s %12s %12s %12s %10s\n", "candidate",
                "sensitivity", "specificity", "improvement", "score");
  out += line;
  for (const CalibrationResult& r : results) {
    std::snprintf(line, sizeof(line), "%-28s %12.4f %12.4f %12.4f %10.4f\n",
                  r.label.c_str(), r.sensitivity, r.specificity,
                  r.correction_improvement, r.score);
    out += line;
  }
  return out;
}

}  // namespace dq
