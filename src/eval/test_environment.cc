#include "eval/test_environment.h"

#include "obs/trace.h"
#include "table/date.h"

namespace dq {

namespace {

std::vector<std::string> MakeCategories(const std::string& prefix, int n) {
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(prefix + std::to_string(i));
  }
  return out;
}

}  // namespace

Schema MakeBaseSchema() {
  Schema schema;
  // Six nominal attributes with different domain sizes (sec. 6.1).
  (void)schema.AddNominal("N1", MakeCategories("a", 3));
  (void)schema.AddNominal("N2", MakeCategories("b", 5));
  (void)schema.AddNominal("N3", MakeCategories("c", 8));
  (void)schema.AddNominal("N4", MakeCategories("d", 12));
  (void)schema.AddNominal("N5", MakeCategories("e", 20));
  (void)schema.AddNominal("N6", MakeCategories("f", 40));
  (void)schema.AddDate("PROD_DATE", DaysFromCivil({1995, 1, 1}),
                       DaysFromCivil({2003, 12, 31}));
  (void)schema.AddNumeric("MEASURE", 0.0, 1000.0);
  return schema;
}

std::vector<DistributionSpec> MakeBaseDistributions(const Schema& schema,
                                                    uint64_t seed) {
  Rng rng(SplitMix64(seed) ^ 0x5eedd15fULL);
  std::vector<DistributionSpec> specs(schema.num_attributes(),
                                      DistributionSpec::Uniform());
  // The three network-covered attributes keep uniform placeholders (they
  // are ignored); the remaining five get distributions of different kinds.
  // N4: uniform (default).
  // N5: skewed categorical weights.
  {
    const size_t k = schema.attribute(4).categories.size();
    std::vector<double> weights(k);
    for (double& w : weights) w = 0.2 + rng.UniformReal(0.0, 1.0);
    weights[0] = 2.0;  // pronounced but not dominating mode
    specs[4] = DistributionSpec::Categorical(std::move(weights),
                                             /*null_prob=*/0.01);
  }
  // N6: exponential decay over the category index.
  specs[5] = DistributionSpec::Exponential(/*rate=*/2.0, /*null_prob=*/0.01);
  // PROD_DATE: normal around the centre of the production period.
  specs[6] = DistributionSpec::Normal(0.5, 0.2);
  // MEASURE: normal, slightly left of centre.
  specs[7] = DistributionSpec::Normal(0.4, 0.15, /*null_prob=*/0.02);
  return specs;
}

Result<std::unique_ptr<BayesianNetwork>> MakeBaseBayesNet(const Schema* schema,
                                                          uint64_t seed) {
  auto net = std::make_unique<BayesianNetwork>(schema);
  Rng rng(SplitMix64(seed) ^ 0xbae5ULL);
  DQ_RETURN_NOT_OK(net->AddNode(0));
  DQ_RETURN_NOT_OK(net->AddNode(1, {0}));
  DQ_RETURN_NOT_OK(net->AddNode(2, {0}));

  auto random_rows = [&rng](size_t configs, size_t categories) {
    std::vector<std::vector<double>> rows(configs,
                                          std::vector<double>(categories));
    for (auto& row : rows) {
      // Concentrated rows so the joint distribution carries structure.
      const size_t mode = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(categories) - 1));
      for (size_t c = 0; c < categories; ++c) {
        row[c] = c == mode ? 1.5 : 0.3 + rng.UniformReal(0.0, 0.7);
      }
    }
    return rows;
  };

  const size_t k1 = schema->attribute(0).categories.size();
  const size_t k2 = schema->attribute(1).categories.size();
  const size_t k3 = schema->attribute(2).categories.size();
  DQ_RETURN_NOT_OK(net->SetNominalCpt(0, random_rows(1, k1)));
  DQ_RETURN_NOT_OK(net->SetNominalCpt(1, random_rows(k1, k2)));
  DQ_RETURN_NOT_OK(net->SetNominalCpt(2, random_rows(k1, k3)));
  DQ_RETURN_NOT_OK(net->Validate());
  return net;
}

Result<ExperimentResult> TestEnvironment::Run() const {
  obs::Span pipeline_span("pipeline");
  ExperimentResult result;
  result.schema = MakeBaseSchema();

  // 1. Rule generation (fig. 2 "test data generation" inputs).
  {
    obs::Span span("tdg.rules");
    RuleGenConfig rule_cfg = config_.rule_gen;
    rule_cfg.num_rules = config_.num_rules;
    rule_cfg.seed = SplitMix64(config_.seed) ^ 0x01;
    RuleGenerator rule_gen(&result.schema, rule_cfg);
    DQ_ASSIGN_OR_RETURN(result.rules, rule_gen.Generate());
  }

  // 2. Data generation. The phase timing fields (generate_ms, pollute_ms)
  // are sinks of the phase spans, so printed timings and exported traces
  // are the same measurement.
  {
    obs::Span span("tdg.generate", -1, &result.generate_ms);
    DQ_ASSIGN_OR_RETURN(
        std::unique_ptr<BayesianNetwork> net,
        MakeBaseBayesNet(&result.schema, SplitMix64(config_.seed) ^ 0x02));
    DataGenerator data_gen(
        &result.schema,
        MakeBaseDistributions(result.schema, SplitMix64(config_.seed) ^ 0x03),
        net.get(), result.rules);
    DataGenConfig data_cfg = config_.data_gen;
    data_cfg.num_records = config_.num_records;
    data_cfg.seed = SplitMix64(config_.seed) ^ 0x04;
    DQ_ASSIGN_OR_RETURN(GeneratedData generated, data_gen.Generate(data_cfg));
    result.clean = std::move(generated.table);
  }

  // 3. Controlled corruption.
  {
    obs::Span span("pollute", -1, &result.pollute_ms);
    std::vector<PolluterConfig> polluters =
        config_.polluters.empty() ? DefaultPolluterMix() : config_.polluters;
    PollutionPipeline pipeline(polluters, SplitMix64(config_.seed) ^ 0x05,
                               config_.pollution_factor);
    DQ_ASSIGN_OR_RETURN(result.pollution, pipeline.Apply(result.clean));
  }

  // 4. Structure induction + deviation detection on the dirty table (the
  // single-database regime of sec. 8). The auditor opens the "induce" /
  // "audit" spans itself; the phase fields here are views of the same
  // measurements it reports through AuditTimings.
  Auditor auditor(config_.auditor);
  DQ_ASSIGN_OR_RETURN(AuditModel model,
                      auditor.Induce(result.pollution.dirty, &result.timings));
  result.induce_ms = result.timings.induce_ms;
  DQ_ASSIGN_OR_RETURN(result.report, auditor.Audit(model, result.pollution.dirty,
                                                   &result.timings));
  result.audit_ms = result.timings.audit_ms;

  // 5. Evaluation (sec. 4.3). Detection/correction scoring chunks rows
  // across the same worker count the auditor uses.
  {
    obs::Span span("evaluate");
    result.detection = EvaluateDetection(result.pollution, result.report,
                                         config_.auditor.num_threads);
    DQ_ASSIGN_OR_RETURN(
        Table corrected,
        auditor.ApplyCorrections(result.report, result.pollution.dirty));
    result.correction =
        EvaluateCorrection(result.clean, result.pollution, result.report,
                           corrected, config_.auditor.num_threads);
  }
  result.sensitivity = result.detection.Sensitivity();
  result.specificity = result.detection.Specificity();
  result.correction_improvement = result.correction.Improvement();
  result.flagged = result.report.NumFlagged();
  result.corrupted = result.pollution.CorruptedCount();
  return result;
}

}  // namespace dq
