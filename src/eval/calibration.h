// Calibration: the iterative adjustment loop of fig. 1.
//
// "Based on this, different data mining-algorithms for structure induction
// and deviation detection can be tested and, if necessary, adjusted. This
// process can be iterated until satisfactory benchmark results are
// obtained." A calibration run evaluates a set of candidate auditor
// configurations on the artificial benchmark database and ranks them for a
// deployment goal: a *screening* tool wants maximal sensitivity ("marks
// deviations to be controlled manually later"), a *filter* wants maximal
// specificity ("integrate new data very quickly and filter only records
// that are incorrect with a high probability") — sec. 4.3.

#ifndef DQ_EVAL_CALIBRATION_H_
#define DQ_EVAL_CALIBRATION_H_

#include <string>
#include <vector>

#include "eval/test_environment.h"

namespace dq {

/// \brief Intended use of the audited tool (sec. 4.3).
enum class AuditGoal {
  kScreening,  ///< maximize sensitivity subject to a specificity floor
  kFiltering,  ///< maximize specificity subject to a sensitivity floor
  kBalanced,   ///< maximize Youden's J (sensitivity + specificity - 1)
};

const char* AuditGoalToString(AuditGoal goal);

/// \brief One candidate configuration with a label for reports.
struct CalibrationCandidate {
  std::string label;
  AuditorConfig config;
};

/// \brief Measured outcome of one candidate.
struct CalibrationResult {
  std::string label;
  AuditorConfig config;
  double sensitivity = 0.0;
  double specificity = 0.0;
  double correction_improvement = 0.0;
  double score = 0.0;  ///< goal-dependent ranking score
};

struct CalibrationConfig {
  /// Benchmark database parameters (num_records/num_rules/pollution as in
  /// the test environment); the auditor member is ignored.
  TestEnvironmentConfig environment;

  AuditGoal goal = AuditGoal::kBalanced;

  /// Constraint floors for the constrained goals.
  double min_specificity = 0.98;
  double min_sensitivity = 0.05;

  /// Seeds averaged per candidate.
  int seeds = 2;
};

/// \brief The default candidate grid: inducers x minimal error confidences
/// x pruning strategies.
std::vector<CalibrationCandidate> DefaultCandidateGrid();

/// \brief Runs every candidate through the test environment and returns the
/// results ranked by goal score (best first). Candidates violating the
/// goal's floor get score 0 but are still listed.
Result<std::vector<CalibrationResult>> Calibrate(
    const CalibrationConfig& config,
    const std::vector<CalibrationCandidate>& candidates);

/// \brief Renders a ranked calibration table.
std::string RenderCalibration(const std::vector<CalibrationResult>& results);

}  // namespace dq

#endif  // DQ_EVAL_CALIBRATION_H_
