// Performance parameters of the test environment (sec. 4.3).
//
// Detection is summarized by a 2x2 matrix of (data corrupted?) x (tool's
// opinion). The paper's two quality measures:
//   sensitivity = true positives / corrupted records — "the ratio of the
//     truly found errors by the number of records that have been
//     corrupted"; preferred over recall because it is independent of the
//     prevalence;
//   specificity = true negatives / clean records — "how many of the error
//     free records have been marked as such".
// Correction is summarized by a second 2x2 matrix (correct before/after),
// with improvement ((c+d)-(b+d))/(c+d).

#ifndef DQ_EVAL_METRICS_H_
#define DQ_EVAL_METRICS_H_

#include <string>

#include "audit/auditor.h"
#include "pollution/pipeline.h"

namespace dq {

/// \brief Detection 2x2 matrix (sec. 4.3).
struct DetectionMatrix {
  size_t true_positive = 0;   ///< corrupted and flagged
  size_t false_negative = 0;  ///< corrupted, not flagged
  size_t false_positive = 0;  ///< clean but flagged
  size_t true_negative = 0;   ///< clean, not flagged

  double Sensitivity() const {
    const size_t corrupted = true_positive + false_negative;
    return corrupted == 0 ? 0.0
                          : static_cast<double>(true_positive) /
                                static_cast<double>(corrupted);
  }
  double Specificity() const {
    const size_t clean = true_negative + false_positive;
    return clean == 0 ? 1.0
                      : static_cast<double>(true_negative) /
                            static_cast<double>(clean);
  }
  /// Precision (synonymous with specificity in the paper's terminology is
  /// avoided here; this is the IR precision for reference).
  double Precision() const {
    const size_t flagged = true_positive + false_positive;
    return flagged == 0 ? 0.0
                        : static_cast<double>(true_positive) /
                              static_cast<double>(flagged);
  }

  std::string ToString() const;
};

/// \brief Correction 2x2 matrix (sec. 4.3): record correctness before vs
/// after applying proposed corrections.
struct CorrectionMatrix {
  size_t a = 0;  ///< correct before, correct after
  size_t b = 0;  ///< correct before, incorrect after (damage)
  size_t c = 0;  ///< incorrect before, correct after (repair)
  size_t d = 0;  ///< incorrect before, incorrect after

  /// ((c+d) - (b+d)) / (c+d): relative reduction of the error count.
  double Improvement() const {
    const double before = static_cast<double>(c + d);
    if (before == 0.0) return 0.0;
    return (before - static_cast<double>(b + d)) / before;
  }

  std::string ToString() const;
};

/// \brief Builds the detection matrix by comparing the audit report's flags
/// with the pollution ground truth. Rows score independently, so they chunk
/// across `num_threads` workers (0 = hardware concurrency) into per-chunk
/// partial matrices that sum deterministically.
DetectionMatrix EvaluateDetection(const PollutionResult& pollution,
                                  const AuditReport& report,
                                  int num_threads = 1);

/// \brief Builds the correction matrix: a dirty record is "correct" when
/// every cell equals its clean origin; corrections are applied per the
/// report's suggestions. Duplicate rows compare against their origin row.
/// Row comparisons chunk across `num_threads` workers like
/// EvaluateDetection.
CorrectionMatrix EvaluateCorrection(const Table& clean,
                                    const PollutionResult& pollution,
                                    const AuditReport& report,
                                    const Table& corrected,
                                    int num_threads = 1);

/// \brief Convenience: row equality against the clean origin.
bool RowMatchesClean(const Table& clean, const PollutionResult& pollution,
                     const Table& dirty_or_corrected, size_t dirty_row);

}  // namespace dq

#endif  // DQ_EVAL_METRICS_H_
