// Audit report export: the ranked suspicious-record list as CSV, for the
// manual cross-checks of sec. 6.2 ("These records were ranked according to
// their associated error confidence and cross-checked by domain experts
// selectively").

#ifndef DQ_EVAL_REPORT_IO_H_
#define DQ_EVAL_REPORT_IO_H_

#include <iosfwd>
#include <string>

#include "audit/auditor.h"

namespace dq {

/// \brief Writes the ranked suspicions as CSV with columns
/// rank,row,error_confidence,attribute,observed,suggestion,support.
Status WriteAuditReportCsv(const AuditReport& report, const Table& data,
                           std::ostream* out);

Status WriteAuditReportCsvFile(const AuditReport& report, const Table& data,
                               const std::string& path);

}  // namespace dq

#endif  // DQ_EVAL_REPORT_IO_H_
