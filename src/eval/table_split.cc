#include "eval/table_split.h"

#include <numeric>

namespace dq {

Result<TableSplit> SplitTable(const Table& table, double train_fraction,
                              uint64_t seed) {
  if (train_fraction < 0.0 || train_fraction > 1.0) {
    return Status::InvalidArgument("train fraction outside [0, 1]");
  }
  std::vector<size_t> order(table.num_rows());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  rng.Shuffle(&order);

  const size_t train_count = static_cast<size_t>(
      static_cast<double>(table.num_rows()) * train_fraction + 0.5);
  TableSplit split;
  split.train = Table(table.schema());
  split.test = Table(table.schema());
  split.train.Reserve(train_count);
  split.test.Reserve(table.num_rows() - train_count);
  for (size_t i = 0; i < order.size(); ++i) {
    if (i < train_count) {
      split.train.AppendRowFrom(table, order[i]);
      split.train_rows.push_back(order[i]);
    } else {
      split.test.AppendRowFrom(table, order[i]);
      split.test_rows.push_back(order[i]);
    }
  }
  return split;
}

}  // namespace dq
