// TDG-formulae and TDG-rules (sec. 4.1.1, Definitions 1-3) and their
// TDG-negation (Table 1).
//
// Atomic formulae are propositional (attribute vs constant: A = a, A != a,
// N < n, N > n, A isnull, A isnotnull) or relational (attribute vs
// attribute: A = B, A != B, N < M, N > M). Compound formulae are finite
// conjunctions/disjunctions; a rule is an implication between two formulae.
//
// Evaluation uses the paper's null semantics: every comparison atom is
// false when any involved attribute is null (only isnull holds on nulls),
// which is exactly why TDG-negation (Table 1) adds "... or A isnull"
// disjuncts instead of using classical negation.

#ifndef DQ_LOGIC_FORMULA_H_
#define DQ_LOGIC_FORMULA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace dq {

/// \brief Comparison operator of an atomic TDG-formula.
enum class AtomOp : uint8_t {
  kEq,
  kNeq,
  kLt,
  kGt,
  kIsNull,
  kIsNotNull,
};

const char* AtomOpToString(AtomOp op);

/// \brief Atomic TDG-formula (Definition 1).
struct Atom {
  int lhs_attr = -1;
  AtomOp op = AtomOp::kEq;
  bool rhs_is_attr = false;  ///< true for relational atoms (A op B)
  Value rhs_value;           ///< propositional constant
  int rhs_attr = -1;         ///< relational partner attribute

  static Atom Prop(int attr, AtomOp op, Value rhs = Value::Null()) {
    Atom a;
    a.lhs_attr = attr;
    a.op = op;
    a.rhs_value = rhs;
    return a;
  }
  static Atom Rel(int lhs, AtomOp op, int rhs) {
    Atom a;
    a.lhs_attr = lhs;
    a.op = op;
    a.rhs_is_attr = true;
    a.rhs_attr = rhs;
    return a;
  }

  /// \brief Evaluates on a row with TDG null semantics.
  bool Evaluate(const Row& row) const;

  /// \brief Attributes mentioned by this atom.
  std::vector<int> Attributes() const;

  std::string ToString(const Schema& schema) const;

  bool operator==(const Atom& other) const;
};

/// \brief Checks an atom's structural validity against a schema: attribute
/// indices in range, operand types compatible (ordered ops need ordered
/// types; relational atoms need same-typed operands; relational equality on
/// nominal attributes requires identical category lists), propositional
/// constants inside the attribute domain.
Status ValidateAtom(const Atom& atom, const Schema& schema);

/// \brief TDG-formula (Definition 2): an atom, or a conjunction/disjunction
/// of subformulae.
class Formula {
 public:
  enum class Kind : uint8_t { kAtom, kAnd, kOr };

  Formula() : kind_(Kind::kAnd) {}  // empty conjunction == true

  static Formula MakeAtom(Atom atom);
  static Formula And(std::vector<Formula> children);
  static Formula Or(std::vector<Formula> children);

  Kind kind() const { return kind_; }
  bool is_atom() const { return kind_ == Kind::kAtom; }
  const Atom& atom() const { return atom_; }
  const std::vector<Formula>& children() const { return children_; }

  bool Evaluate(const Row& row) const;

  /// \brief All attribute indices mentioned anywhere in the formula
  /// (deduplicated, ascending).
  std::vector<int> Attributes() const;

  size_t CountAtoms() const;
  size_t Depth() const;  ///< an atom has depth 1

  std::string ToString(const Schema& schema) const;

  /// \brief Collects the atoms of a pure conjunction (atom or AND of
  /// atoms/ANDs); fails if a disjunction occurs.
  Result<std::vector<Atom>> AsConjunction() const;

 private:
  Kind kind_;
  Atom atom_;
  std::vector<Formula> children_;
};

/// \brief Validates every atom of a formula against a schema and checks
/// that compound nodes have at least one child.
Status ValidateFormula(const Formula& f, const Schema& schema);

/// \brief TDG-rule alpha -> beta (Definition 3).
struct Rule {
  Formula premise;
  Formula consequent;

  /// \brief A row *violates* the rule when the premise holds but the
  /// consequent does not.
  bool Violates(const Row& row) const {
    return premise.Evaluate(row) && !consequent.Evaluate(row);
  }

  std::string ToString(const Schema& schema) const {
    return premise.ToString(schema) + " -> " + consequent.ToString(schema);
  }
};

/// \brief TDG-negation per Table 1: returns a formula that is true exactly
/// when `f` is false (under TDG null semantics).
Formula Negate(const Formula& f);

/// \brief Disjunctive normal form: a list of conjunctions of atoms whose
/// disjunction is equivalent to `f`. Fails with Exhausted if the expansion
/// would exceed `max_disjuncts`.
Result<std::vector<std::vector<Atom>>> ToDnf(const Formula& f,
                                             size_t max_disjuncts = 4096);

}  // namespace dq

#endif  // DQ_LOGIC_FORMULA_H_
