#include "logic/domain_range.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/strings.h"
#include "table/date.h"

namespace dq {

namespace {

double AxisOf(const Value& v) {
  assert(!v.is_null());
  return v.OrderedValue();
}

}  // namespace

DomainRange DomainRange::FullDomain(const AttributeDef& attr) {
  DomainRange r;
  r.type_ = attr.type;
  switch (attr.type) {
    case DataType::kNominal:
      r.allowed_.assign(attr.categories.size(), true);
      break;
    case DataType::kNumeric:
      r.lo_ = attr.numeric_min;
      r.hi_ = attr.numeric_max;
      break;
    case DataType::kDate:
      r.lo_ = static_cast<double>(attr.date_min);
      r.hi_ = static_cast<double>(attr.date_max);
      break;
  }
  return r;
}

void DomainRange::ForbidValues() {
  if (type_ == DataType::kNominal) {
    std::fill(allowed_.begin(), allowed_.end(), false);
  } else {
    values_forbidden_ = true;
  }
}

void DomainRange::NormalizeIntegerBounds() {
  if (!integer_axis()) return;
  if (lo_open_) {
    lo_ = std::floor(lo_) + 1.0;
    lo_open_ = false;
  } else {
    lo_ = std::ceil(lo_);
  }
  if (hi_open_) {
    hi_ = std::ceil(hi_) - 1.0;
    hi_open_ = false;
  } else {
    hi_ = std::floor(hi_);
  }
}

void DomainRange::RestrictEq(const Value& v) {
  if (type_ == DataType::kNominal) {
    const int32_t code = v.nominal_code();
    for (size_t i = 0; i < allowed_.size(); ++i) {
      if (static_cast<int32_t>(i) != code) allowed_[i] = false;
    }
    if (code < 0 || static_cast<size_t>(code) >= allowed_.size()) ForbidValues();
    return;
  }
  const double x = AxisOf(v);
  if (!Contains(v)) {
    values_forbidden_ = true;
    return;
  }
  lo_ = hi_ = x;
  lo_open_ = hi_open_ = false;
  excluded_.clear();
}

void DomainRange::RestrictNeq(const Value& v) {
  if (type_ == DataType::kNominal) {
    const int32_t code = v.nominal_code();
    if (code >= 0 && static_cast<size_t>(code) < allowed_.size()) {
      allowed_[static_cast<size_t>(code)] = false;
    }
    return;
  }
  excluded_.insert(AxisOf(v));
}

void DomainRange::RestrictLt(const Value& v) {
  assert(type_ != DataType::kNominal);
  const double x = AxisOf(v);
  if (x < hi_ || (x == hi_ && !hi_open_)) {
    hi_ = x;
    hi_open_ = true;
  }
  NormalizeIntegerBounds();
}

void DomainRange::RestrictGt(const Value& v) {
  assert(type_ != DataType::kNominal);
  const double x = AxisOf(v);
  if (x > lo_ || (x == lo_ && !lo_open_)) {
    lo_ = x;
    lo_open_ = true;
  }
  NormalizeIntegerBounds();
}

bool DomainRange::IntersectWith(const DomainRange& other) {
  bool changed = false;
  if (allow_null_ && !other.allow_null_) {
    allow_null_ = false;
    changed = true;
  }
  if (type_ == DataType::kNominal) {
    const size_t n = std::min(allowed_.size(), other.allowed_.size());
    for (size_t i = 0; i < n; ++i) {
      if (allowed_[i] && !other.allowed_[i]) {
        allowed_[i] = false;
        changed = true;
      }
    }
    return changed;
  }
  if (!values_forbidden_ && other.values_forbidden_) {
    values_forbidden_ = true;
    changed = true;
  }
  if (other.lo_ > lo_ || (other.lo_ == lo_ && other.lo_open_ && !lo_open_)) {
    lo_ = other.lo_;
    lo_open_ = other.lo_open_;
    changed = true;
  }
  if (other.hi_ < hi_ || (other.hi_ == hi_ && other.hi_open_ && !hi_open_)) {
    hi_ = other.hi_;
    hi_open_ = other.hi_open_;
    changed = true;
  }
  for (double x : other.excluded_) {
    if (excluded_.insert(x).second) changed = true;
  }
  NormalizeIntegerBounds();
  return changed;
}

bool DomainRange::LimitBelow(const DomainRange& other) {
  assert(type_ != DataType::kNominal);
  // this < other  =>  this strictly below other's upper end.
  double bound = other.hi_;
  bool open = true;
  if (bound < hi_ || (bound == hi_ && open && !hi_open_)) {
    hi_ = bound;
    hi_open_ = open;
    NormalizeIntegerBounds();
    return true;
  }
  return false;
}

bool DomainRange::LimitAbove(const DomainRange& other) {
  assert(type_ != DataType::kNominal);
  double bound = other.lo_;
  bool open = true;
  if (bound > lo_ || (bound == lo_ && open && !lo_open_)) {
    lo_ = bound;
    lo_open_ = open;
    NormalizeIntegerBounds();
    return true;
  }
  return false;
}

bool DomainRange::ContainsAxis(double x) const {
  if (values_forbidden_) return false;
  if (x < lo_ || (x == lo_ && lo_open_)) return false;
  if (x > hi_ || (x == hi_ && hi_open_)) return false;
  return excluded_.count(x) == 0;
}

bool DomainRange::Covers(const DomainRange& other) const {
  if (other.allow_null_ && !allow_null_) return false;
  if (other.ValuesEmpty()) return true;
  if (type_ == DataType::kNominal) {
    const size_t n = std::max(allowed_.size(), other.allowed_.size());
    for (size_t i = 0; i < n; ++i) {
      const bool theirs = i < other.allowed_.size() && other.allowed_[i];
      const bool ours = i < allowed_.size() && allowed_[i];
      if (theirs && !ours) return false;
    }
    return true;
  }
  if (values_forbidden_) return false;
  if (other.lo_ < lo_ || (other.lo_ == lo_ && lo_open_ && !other.lo_open_)) {
    return false;
  }
  if (other.hi_ > hi_ || (other.hi_ == hi_ && hi_open_ && !other.hi_open_)) {
    return false;
  }
  // Every point we exclude must be unreachable for `other` as well.
  for (double x : excluded_) {
    if (other.ContainsAxis(x)) return false;
  }
  return true;
}

bool DomainRange::JoinWith(const DomainRange& other) {
  allow_null_ = allow_null_ || other.allow_null_;
  if (type_ == DataType::kNominal) {
    const size_t n = std::max(allowed_.size(), other.allowed_.size());
    allowed_.resize(n, false);
    for (size_t i = 0; i < n && i < other.allowed_.size(); ++i) {
      if (other.allowed_[i]) allowed_[i] = true;
    }
    return false;  // finite set union is exact
  }
  if (other.ValuesEmpty()) return false;
  if (ValuesEmpty()) {
    const bool null_ok = allow_null_;
    *this = other;
    allow_null_ = null_ok;
    return false;
  }
  // A point stays excluded only when neither side admits it; points outside
  // the partner interval remain excluded exactly.
  std::set<double> merged;
  for (double x : excluded_) {
    if (!other.ContainsAxis(x)) merged.insert(x);
  }
  for (double x : other.excluded_) {
    if (!ContainsAxis(x)) merged.insert(x);
  }
  // Hull gap: the intervals are disjoint with room between them.
  bool gap = false;
  const DomainRange& low = lo_ <= other.lo_ ? *this : other;
  const DomainRange& high = lo_ <= other.lo_ ? other : *this;
  if (high.lo_ > low.hi_) {
    if (integer_axis()) {
      gap = high.lo_ > low.hi_ + 1.0;  // bounds are normalized closed ints
    } else {
      gap = true;  // a continuous gap always drops points
    }
  } else if (high.lo_ == low.hi_ && high.lo_open_ && low.hi_open_) {
    gap = !integer_axis();
  }
  if (other.lo_ < lo_ || (other.lo_ == lo_ && lo_open_ && !other.lo_open_)) {
    lo_ = other.lo_;
    lo_open_ = other.lo_open_;
  }
  if (other.hi_ > hi_ || (other.hi_ == hi_ && hi_open_ && !other.hi_open_)) {
    hi_ = other.hi_;
    hi_open_ = other.hi_open_;
  }
  excluded_ = std::move(merged);
  values_forbidden_ = false;
  return gap;
}

bool DomainRange::WidenAgainst(const DomainRange& previous,
                               const AttributeDef& attr) {
  if (type_ == DataType::kNominal) return false;
  if (ValuesEmpty() || previous.ValuesEmpty()) return false;
  bool widened = false;
  const double dom_lo = type_ == DataType::kDate
                            ? static_cast<double>(attr.date_min)
                            : attr.numeric_min;
  const double dom_hi = type_ == DataType::kDate
                            ? static_cast<double>(attr.date_max)
                            : attr.numeric_max;
  if (lo_ < previous.lo_ ||
      (lo_ == previous.lo_ && !lo_open_ && previous.lo_open_)) {
    if (lo_ > dom_lo || lo_open_) {
      lo_ = dom_lo;
      lo_open_ = false;
      widened = true;
    }
  }
  if (hi_ > previous.hi_ ||
      (hi_ == previous.hi_ && !hi_open_ && previous.hi_open_)) {
    if (hi_ < dom_hi || hi_open_) {
      hi_ = dom_hi;
      hi_open_ = false;
      widened = true;
    }
  }
  return widened;
}

bool DomainRange::ValuesEmpty() const {
  if (type_ == DataType::kNominal) {
    return std::none_of(allowed_.begin(), allowed_.end(),
                        [](bool b) { return b; });
  }
  if (values_forbidden_) return true;
  if (lo_ > hi_) return true;
  if (lo_ == hi_) {
    return lo_open_ || hi_open_ || excluded_.count(lo_) > 0;
  }
  if (integer_axis()) {
    // Bounds are normalized to closed integers here.
    const int64_t count = static_cast<int64_t>(hi_) - static_cast<int64_t>(lo_) + 1;
    if (count <= 0) return true;
    if (static_cast<int64_t>(excluded_.size()) >= count) {
      int64_t remaining = count;
      for (double x : excluded_) {
        if (x >= lo_ && x <= hi_ && x == std::floor(x)) --remaining;
      }
      return remaining <= 0;
    }
  }
  return false;
}

bool DomainRange::SingleValue(Value* out) const {
  if (type_ == DataType::kNominal) {
    int32_t found = -1;
    for (size_t i = 0; i < allowed_.size(); ++i) {
      if (allowed_[i]) {
        if (found >= 0) return false;
        found = static_cast<int32_t>(i);
      }
    }
    if (found < 0) return false;
    *out = Value::Nominal(found);
    return true;
  }
  if (values_forbidden_) return false;
  if (integer_axis()) {
    int32_t single = 0;
    int count = 0;
    for (int64_t x = static_cast<int64_t>(lo_); x <= static_cast<int64_t>(hi_);
         ++x) {
      if (excluded_.count(static_cast<double>(x)) == 0) {
        single = static_cast<int32_t>(x);
        if (++count > 1) return false;
      }
      // Bail out on wide ranges: more than one candidate is certain once
      // the span exceeds the excluded set.
      if (x - static_cast<int64_t>(lo_) >
          static_cast<int64_t>(excluded_.size()) + 1) {
        break;
      }
    }
    if (count != 1) return false;
    *out = Value::Date(single);
    return true;
  }
  if (lo_ == hi_ && !lo_open_ && !hi_open_ && excluded_.count(lo_) == 0) {
    *out = Value::Numeric(lo_);
    return true;
  }
  return false;
}

bool DomainRange::Contains(const Value& v) const {
  if (v.is_null()) return allow_null_;
  if (type_ == DataType::kNominal) {
    const int32_t code = v.nominal_code();
    return code >= 0 && static_cast<size_t>(code) < allowed_.size() &&
           allowed_[static_cast<size_t>(code)];
  }
  if (values_forbidden_) return false;
  const double x = AxisOf(v);
  if (x < lo_ || (x == lo_ && lo_open_)) return false;
  if (x > hi_ || (x == hi_ && hi_open_)) return false;
  return excluded_.count(x) == 0;
}

Value DomainRange::SampleValue(Rng* rng) const {
  assert(!ValuesEmpty());
  if (type_ == DataType::kNominal) {
    std::vector<int32_t> codes;
    for (size_t i = 0; i < allowed_.size(); ++i) {
      if (allowed_[i]) codes.push_back(static_cast<int32_t>(i));
    }
    return Value::Nominal(
        codes[static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(codes.size()) - 1))]);
  }
  if (integer_axis()) {
    const int64_t lo = static_cast<int64_t>(lo_);
    const int64_t hi = static_cast<int64_t>(hi_);
    for (int attempt = 0; attempt < 64; ++attempt) {
      const int64_t x = rng->UniformInt(lo, hi);
      if (excluded_.count(static_cast<double>(x)) == 0) {
        return Value::Date(static_cast<int32_t>(x));
      }
    }
    for (int64_t x = lo; x <= hi; ++x) {  // dense exclusions: scan
      if (excluded_.count(static_cast<double>(x)) == 0) {
        return Value::Date(static_cast<int32_t>(x));
      }
    }
    return Value::Date(static_cast<int32_t>(lo));
  }
  // Continuous axis: nudge open endpoints inward, then rejection-sample
  // around the measure-zero excluded set.
  double lo = lo_;
  double hi = hi_;
  const double width = hi - lo;
  const double eps = std::max(width, 1.0) * 1e-9;
  if (lo_open_) lo += eps;
  if (hi_open_) hi -= eps;
  if (lo >= hi) return Value::Numeric((lo_ + hi_) / 2.0);
  for (int attempt = 0; attempt < 16; ++attempt) {
    const double x = rng->UniformReal(lo, hi);
    if (excluded_.count(x) == 0) return Value::Numeric(x);
  }
  return Value::Numeric((lo + hi) / 2.0);
}

std::string DomainRange::ToString(const AttributeDef& attr) const {
  std::string out = attr.name + ": ";
  if (type_ == DataType::kNominal) {
    out += "{";
    bool first = true;
    for (size_t i = 0; i < allowed_.size(); ++i) {
      if (!allowed_[i]) continue;
      if (!first) out += ", ";
      out += attr.categories[i];
      first = false;
    }
    out += "}";
  } else if (values_forbidden_) {
    out += "{}";
  } else {
    out += lo_open_ ? "(" : "[";
    out += type_ == DataType::kDate ? FormatDate(static_cast<int32_t>(lo_))
                                    : FormatDouble(lo_);
    out += ", ";
    out += type_ == DataType::kDate ? FormatDate(static_cast<int32_t>(hi_))
                                    : FormatDouble(hi_);
    out += hi_open_ ? ")" : "]";
    if (!excluded_.empty()) {
      out += " minus " + std::to_string(excluded_.size()) + " points";
    }
  }
  out += allow_null_ ? " or null" : "";
  return out;
}

}  // namespace dq
