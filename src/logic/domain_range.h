// DomainRange: the current restriction of one attribute's domain during the
// pragmatic satisfiability test (sec. 4.1.3).
//
// "The main idea of the procedure is to initialize the current domain
// ranges of every attribute defined in the schema for the target table with
// their domain ranges and then successively restrict them by integrating
// the constraints of each atomic TDG-formula in the conjunction."

#ifndef DQ_LOGIC_DOMAIN_RANGE_H_
#define DQ_LOGIC_DOMAIN_RANGE_H_

#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "table/schema.h"

namespace dq {

/// \brief Restriction of one attribute's value space: a (possibly empty)
/// set of permitted non-null values plus a null-permission flag.
///
/// Nominal attributes track an explicit allowed-category set; ordered
/// attributes (numeric, date) track an interval with open/closed endpoints
/// and finitely many excluded points (from `!=` constraints). Date axes are
/// integral, which sharpens strict bounds (x < 5 => x <= 4).
///
/// Beyond the meet-style restriction the satisfiability test performs, the
/// range doubles as one element of a per-attribute *abstract domain* (the
/// dqlint abstract-interpretation layer): Covers is the partial order,
/// JoinWith the (over-approximating) least upper bound, and WidenAgainst
/// the classic interval widening that jumps unstable bounds to the schema
/// domain limits so fixpoint iterations terminate.
class DomainRange {
 public:
  DomainRange() = default;

  /// \brief Full domain of `attr`, null allowed.
  static DomainRange FullDomain(const AttributeDef& attr);

  DataType type() const { return type_; }
  bool allow_null() const { return allow_null_; }

  /// \brief Forbids the null value (required by every comparison atom).
  void ForbidNull() { allow_null_ = false; }

  /// \brief Forbids all non-null values (required by `isnull`).
  void ForbidValues();

  /// \brief Intersects with "value == v". v must be non-null.
  void RestrictEq(const Value& v);
  /// \brief Intersects with "value != v".
  void RestrictNeq(const Value& v);
  /// \brief Intersects with "value < v" (ordered types only).
  void RestrictLt(const Value& v);
  /// \brief Intersects with "value > v" (ordered types only).
  void RestrictGt(const Value& v);

  /// \brief Intersects this range with another range of the same attribute
  /// (used when `=` links merge attribute classes). Null permissions are
  /// intersected as well. Returns true if this range changed.
  bool IntersectWith(const DomainRange& other);

  /// \brief Tightens the upper end to lie strictly below other's upper end
  /// (for links `this < other`); returns true on change.
  bool LimitBelow(const DomainRange& other);
  /// \brief Tightens the lower end to lie strictly above other's lower end.
  bool LimitAbove(const DomainRange& other);

  // --- Abstract-domain operations (dqlint) -------------------------------

  /// \brief Partial order: true when every value (and null, if permitted)
  /// allowed by `other` is also allowed by this range. Exact for same-typed
  /// ranges of the same attribute.
  bool Covers(const DomainRange& other) const;

  /// \brief Least upper bound: widens this range to admit everything
  /// `other` admits. Excluded points are kept exactly (a point stays
  /// excluded iff neither input admits it), so the only precision loss is
  /// the ordered interval hull covering a gap between disjoint inputs.
  /// Returns true when that happened (the join over-approximates the
  /// union).
  bool JoinWith(const DomainRange& other);

  /// \brief Interval widening against the previous iterate: any bound that
  /// moved outward relative to `previous` jumps to the domain limit of
  /// `attr`, guaranteeing termination of ascending chains. Nominal ranges
  /// are finite lattices and need no widening (no-op). Returns true when a
  /// bound was widened.
  bool WidenAgainst(const DomainRange& previous, const AttributeDef& attr);

  /// \brief True if no non-null value remains.
  bool ValuesEmpty() const;
  /// \brief True if neither null nor any value remains (contradiction).
  bool Empty() const { return !allow_null_ && ValuesEmpty(); }

  /// \brief True if exactly one non-null value remains; outputs it.
  bool SingleValue(Value* out) const;

  /// \brief True if `v` (non-null) is inside the current restriction.
  bool Contains(const Value& v) const;

  /// \brief Draws a uniform value from the remaining non-null values.
  /// Requires !ValuesEmpty().
  Value SampleValue(Rng* rng) const;

  // Ordered-range accessors (numeric/date only).
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  bool lo_open() const { return lo_open_; }
  bool hi_open() const { return hi_open_; }

  std::string ToString(const AttributeDef& attr) const;

 private:
  bool integer_axis() const { return type_ == DataType::kDate; }
  /// True if ordered axis point `x` lies inside the interval and is not
  /// excluded (ordered types only; ignores the null flag).
  bool ContainsAxis(double x) const;
  /// Normalizes open integer bounds to closed ones (x > 3 -> x >= 4).
  void NormalizeIntegerBounds();

  DataType type_ = DataType::kNominal;
  bool allow_null_ = true;

  // Nominal state.
  std::vector<bool> allowed_;  // size = category count

  // Ordered state.
  double lo_ = 0.0;
  double hi_ = 0.0;
  bool lo_open_ = false;
  bool hi_open_ = false;
  std::set<double> excluded_;
  bool values_forbidden_ = false;
};

}  // namespace dq

#endif  // DQ_LOGIC_DOMAIN_RANGE_H_
