// Textual TDG-formula and TDG-rule parsing.
//
// The paper's generator is driven by expert knowledge: "Domain experts had
// defined some characteristic domain dependencies over the QUIS schema"
// (sec. 3.2). This parser lets such dependencies be written down directly:
//
//   BRV = 404 -> GBM = 901
//   KBM = 01 AND GBM = 901 -> BRV = 501
//   (N < 5 OR N > 95) AND A != x -> B isnotnull
//   N < M -> C = high
//
// Grammar (AND binds tighter than OR; parentheses group):
//   rule    := formula '->' formula
//   formula := conj ('OR' conj)*
//   conj    := unit ('AND' unit)*
//   unit    := atom | '(' formula ')'
//   atom    := NAME ('='|'!='|'<'|'>') OPERAND
//            | NAME 'isnull' | NAME 'isnotnull'
// An OPERAND that names a schema attribute yields a relational atom;
// otherwise it is parsed as a constant of the left attribute's type.
// Quote it ('404') to force a constant even when it collides with an
// attribute name. Keywords are case-insensitive; names/values are not.

#ifndef DQ_LOGIC_RULE_PARSER_H_
#define DQ_LOGIC_RULE_PARSER_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "logic/formula.h"

namespace dq {

/// \brief Parses a TDG-formula; fails with a position-annotated message.
Result<Formula> ParseFormula(const Schema& schema, const std::string& text);

/// \brief Parses one TDG-rule "premise -> consequent".
Result<Rule> ParseRule(const Schema& schema, const std::string& text);

/// \brief Parses a rule file: one rule per non-empty line, '#' comments.
Result<std::vector<Rule>> ParseRuleFile(const Schema& schema,
                                        std::istream* in);

Result<std::vector<Rule>> ParseRuleFileAt(const Schema& schema,
                                          const std::string& path);

}  // namespace dq

#endif  // DQ_LOGIC_RULE_PARSER_H_
