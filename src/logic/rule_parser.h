// Textual TDG-formula and TDG-rule parsing.
//
// The paper's generator is driven by expert knowledge: "Domain experts had
// defined some characteristic domain dependencies over the QUIS schema"
// (sec. 3.2). This parser lets such dependencies be written down directly:
//
//   BRV = 404 -> GBM = 901
//   KBM = 01 AND GBM = 901 -> BRV = 501
//   (N < 5 OR N > 95) AND A != x -> B isnotnull
//   N < M -> C = high
//
// Grammar (AND binds tighter than OR; parentheses group):
//   rule    := formula '->' formula
//   formula := conj ('OR' conj)*
//   conj    := unit ('AND' unit)*
//   unit    := atom | '(' formula ')'
//   atom    := NAME ('='|'!='|'<'|'>') OPERAND
//            | NAME 'isnull' | NAME 'isnotnull'
// An OPERAND that names a schema attribute yields a relational atom;
// otherwise it is parsed as a constant of the left attribute's type.
// Quote it ('404') to force a constant even when it collides with an
// attribute name. Keywords are case-insensitive; names/values are not.
//
// Every parse failure carries a structured ParseError with a 1-based
// line/column location, the offending token and an error category; the
// Status-based entry points render it into the error message. The lenient
// file entry point collects one error per bad line instead of stopping at
// the first, which is what the dqlint static analyzer builds on.

#ifndef DQ_LOGIC_RULE_PARSER_H_
#define DQ_LOGIC_RULE_PARSER_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "logic/formula.h"

namespace dq {

/// \brief 1-based position inside a rule string or rule file.
struct SourceLocation {
  size_t line = 1;
  size_t column = 1;

  /// \brief "line L, column C".
  std::string ToString() const;

  bool operator==(const SourceLocation& other) const {
    return line == other.line && column == other.column;
  }
};

/// \brief Structured description of one parse failure.
struct ParseError {
  enum class Kind : uint8_t {
    kSyntax,            ///< malformed token stream or grammar violation
    kUnknownAttribute,  ///< a name does not resolve against the schema
    kTypeMismatch,      ///< operator/operand types are incompatible
    kBadConstant,       ///< a constant fails to parse or lies outside domain
  };

  Kind kind = Kind::kSyntax;
  SourceLocation loc;
  std::string token;    ///< offending token text ("<end>" at end of input)
  std::string message;  ///< description without a position prefix

  /// \brief "line L, column C ('token'): message".
  std::string Render() const;

  Status ToStatus() const { return Status::InvalidArgument(Render()); }
};

const char* ParseErrorKindToString(ParseError::Kind kind);

/// \brief One successfully parsed rule plus provenance for diagnostics.
struct ParsedRule {
  Rule rule;
  SourceLocation loc;  ///< start of the rule's first token
  std::string text;    ///< the source text (trimmed)
  /// Start location of every atom in parse order, which equals the pre-order
  /// atom traversal of the corresponding formula tree.
  std::vector<SourceLocation> premise_atom_locs;
  std::vector<SourceLocation> consequent_atom_locs;
};

/// \brief Outcome of leniently parsing a rule file: every non-empty,
/// non-comment line yields either a rule or an error.
struct RuleFileParse {
  std::vector<ParsedRule> rules;
  std::vector<ParseError> errors;
};

/// \brief Parses a TDG-formula; fails with a position-annotated message.
Result<Formula> ParseFormula(const Schema& schema, const std::string& text);

/// \brief Parses one TDG-rule "premise -> consequent".
Result<Rule> ParseRule(const Schema& schema, const std::string& text);

/// \brief Parses one rule with full provenance. Returns true on success and
/// fills `*out`; on failure fills `*error` (locations use `line` as the
/// 1-based line number and the character offset in `text` as the column).
bool ParseRuleDetailed(const Schema& schema, const std::string& text,
                       size_t line, ParsedRule* out, ParseError* error);

/// \brief Parses a rule file: one rule per non-empty line, '#' comments.
/// Stops at the first malformed line.
Result<std::vector<Rule>> ParseRuleFile(const Schema& schema,
                                        std::istream* in);

Result<std::vector<Rule>> ParseRuleFileAt(const Schema& schema,
                                          const std::string& path);

/// \brief Lenient variant: collects every parseable rule and one ParseError
/// per malformed line instead of stopping at the first failure.
RuleFileParse ParseRuleFileLenient(const Schema& schema, std::istream* in);

/// \brief Lenient file parse; fails only when the file cannot be opened.
Result<RuleFileParse> ParseRuleFileLenientAt(const Schema& schema,
                                             const std::string& path);

/// \brief Renders a formula as source text this parser accepts: numeric
/// constants in shortest round-trip form, dates as YYYY-MM-DD, and nominal
/// categories quoted whenever the bare spelling would mis-parse (text that
/// names a schema attribute, matches a keyword, or contains characters
/// outside the word-token alphabet). Compound children are parenthesized.
std::string RenderFormulaSource(const Formula& f, const Schema& schema);

/// \brief Renders "premise -> consequent" in parseable form.
std::string RenderRuleSource(const Rule& rule, const Schema& schema);

}  // namespace dq

#endif  // DQ_LOGIC_RULE_PARSER_H_
