#include "logic/natural.h"

namespace dq {

Result<bool> NaturalnessChecker::IsNaturalFormula(const Formula& f) const {
  switch (f.kind()) {
    case Formula::Kind::kAtom: {
      // Atomic: satisfiable within the schema domains.
      return sat_.Satisfiable(f);
    }
    case Formula::Kind::kAnd: {
      for (const Formula& c : f.children()) {
        DQ_ASSIGN_OR_RETURN(bool natural, IsNaturalFormula(c));
        if (!natural) return false;
      }
      DQ_ASSIGN_OR_RETURN(bool sat, sat_.Satisfiable(f));
      if (!sat) return false;
      // No conjunct may be implied by the conjunction of the others.
      if (f.children().size() > 1) {
        for (size_t i = 0; i < f.children().size(); ++i) {
          std::vector<Formula> others;
          for (size_t j = 0; j < f.children().size(); ++j) {
            if (j != i) others.push_back(f.children()[j]);
          }
          DQ_ASSIGN_OR_RETURN(
              bool implied,
              sat_.Implies(Formula::And(std::move(others)), f.children()[i]));
          if (implied) return false;
        }
      }
      return true;
    }
    case Formula::Kind::kOr: {
      for (const Formula& c : f.children()) {
        DQ_ASSIGN_OR_RETURN(bool natural, IsNaturalFormula(c));
        if (!natural) return false;
      }
      // No disjunct may be implied by the disjunction of the others.
      if (f.children().size() > 1) {
        for (size_t i = 0; i < f.children().size(); ++i) {
          std::vector<Formula> others;
          for (size_t j = 0; j < f.children().size(); ++j) {
            if (j != i) others.push_back(f.children()[j]);
          }
          DQ_ASSIGN_OR_RETURN(
              bool implied,
              sat_.Implies(Formula::Or(std::move(others)), f.children()[i]));
          if (implied) return false;
        }
      }
      return true;
    }
  }
  return Status::Internal("unreachable formula kind");
}

Result<bool> NaturalnessChecker::IsNaturalRule(const Rule& rule) const {
  DQ_ASSIGN_OR_RETURN(bool nat_premise, IsNaturalFormula(rule.premise));
  if (!nat_premise) return false;
  DQ_ASSIGN_OR_RETURN(bool nat_consequent, IsNaturalFormula(rule.consequent));
  if (!nat_consequent) return false;
  // alpha AND beta satisfiable.
  DQ_ASSIGN_OR_RETURN(
      bool joint_sat,
      sat_.Satisfiable(Formula::And({rule.premise, rule.consequent})));
  if (!joint_sat) return false;
  // Not a tautology: alpha must not already imply beta.
  DQ_ASSIGN_OR_RETURN(bool tautological,
                      sat_.Implies(rule.premise, rule.consequent));
  return !tautological;
}

namespace {

/// One direction of the Definition 6 check: if a.premise => b.premise then
/// a.premise AND b.consequent AND a.consequent must be satisfiable and
/// (a.premise AND b.consequent) must not imply a.consequent.
Result<bool> CheckDirection(const SatChecker& sat, const Rule& stronger,
                            const Rule& weaker) {
  DQ_ASSIGN_OR_RETURN(bool premise_implies,
                      sat.Implies(stronger.premise, weaker.premise));
  if (!premise_implies) return true;  // condition vacuously satisfied
  Formula joint = Formula::And(
      {stronger.premise, weaker.consequent, stronger.consequent});
  DQ_ASSIGN_OR_RETURN(bool joint_sat, sat.Satisfiable(joint));
  if (!joint_sat) return false;  // contradictory consequents
  Formula lhs = Formula::And({stronger.premise, weaker.consequent});
  DQ_ASSIGN_OR_RETURN(bool redundant, sat.Implies(lhs, stronger.consequent));
  return !redundant;  // redundant rule adds no new dependency
}

}  // namespace

Result<bool> NaturalnessChecker::PairCompatible(const Rule& a,
                                                const Rule& b) const {
  DQ_ASSIGN_OR_RETURN(bool ab, CheckDirection(sat_, a, b));
  if (!ab) return false;
  DQ_ASSIGN_OR_RETURN(bool ba, CheckDirection(sat_, b, a));
  return ba;
}

Result<bool> NaturalnessChecker::CanAdd(const std::vector<Rule>& rules,
                                        const Rule& candidate) const {
  for (const Rule& existing : rules) {
    DQ_ASSIGN_OR_RETURN(bool compatible, PairCompatible(existing, candidate));
    if (!compatible) return false;
  }
  return true;
}

Result<bool> NaturalnessChecker::IsNaturalRuleSet(
    const std::vector<Rule>& rules) const {
  for (const Rule& r : rules) {
    DQ_ASSIGN_OR_RETURN(bool natural, IsNaturalRule(r));
    if (!natural) return false;
  }
  for (size_t i = 0; i < rules.size(); ++i) {
    for (size_t j = i + 1; j < rules.size(); ++j) {
      DQ_ASSIGN_OR_RETURN(bool compatible, PairCompatible(rules[i], rules[j]));
      if (!compatible) return false;
    }
  }
  return true;
}

}  // namespace dq
