#include "logic/formula.h"

#include <algorithm>
#include <cassert>

namespace dq {

const char* AtomOpToString(AtomOp op) {
  switch (op) {
    case AtomOp::kEq:
      return "=";
    case AtomOp::kNeq:
      return "!=";
    case AtomOp::kLt:
      return "<";
    case AtomOp::kGt:
      return ">";
    case AtomOp::kIsNull:
      return "isnull";
    case AtomOp::kIsNotNull:
      return "isnotnull";
  }
  return "?";
}

bool Atom::Evaluate(const Row& row) const {
  const Value& lhs = row[static_cast<size_t>(lhs_attr)];
  switch (op) {
    case AtomOp::kIsNull:
      return lhs.is_null();
    case AtomOp::kIsNotNull:
      return !lhs.is_null();
    default:
      break;
  }
  if (lhs.is_null()) return false;
  const Value& rhs = rhs_is_attr ? row[static_cast<size_t>(rhs_attr)] : rhs_value;
  if (rhs.is_null()) return false;
  switch (op) {
    case AtomOp::kEq:
      if (lhs.is_nominal()) return lhs.StrictEquals(rhs);
      return lhs.Compare(rhs) == 0;
    case AtomOp::kNeq:
      if (lhs.is_nominal()) return !lhs.StrictEquals(rhs);
      return lhs.Compare(rhs) != 0;
    case AtomOp::kLt:
      return lhs.Compare(rhs) < 0;
    case AtomOp::kGt:
      return lhs.Compare(rhs) > 0;
    default:
      return false;
  }
}

std::vector<int> Atom::Attributes() const {
  std::vector<int> out{lhs_attr};
  if (rhs_is_attr) out.push_back(rhs_attr);
  return out;
}

std::string Atom::ToString(const Schema& schema) const {
  const std::string lhs = schema.attribute(static_cast<size_t>(lhs_attr)).name;
  switch (op) {
    case AtomOp::kIsNull:
      return lhs + " isnull";
    case AtomOp::kIsNotNull:
      return lhs + " isnotnull";
    default:
      break;
  }
  std::string rhs;
  if (rhs_is_attr) {
    rhs = schema.attribute(static_cast<size_t>(rhs_attr)).name;
  } else {
    rhs = schema.ValueToString(lhs_attr, rhs_value);
  }
  return lhs + " " + AtomOpToString(op) + " " + rhs;
}

bool Atom::operator==(const Atom& other) const {
  return lhs_attr == other.lhs_attr && op == other.op &&
         rhs_is_attr == other.rhs_is_attr &&
         (rhs_is_attr ? rhs_attr == other.rhs_attr
                      : rhs_value.StrictEquals(other.rhs_value));
}

Status ValidateAtom(const Atom& atom, const Schema& schema) {
  const int n = static_cast<int>(schema.num_attributes());
  if (atom.lhs_attr < 0 || atom.lhs_attr >= n) {
    return Status::OutOfRange("atom lhs attribute index out of range");
  }
  const AttributeDef& lhs = schema.attribute(static_cast<size_t>(atom.lhs_attr));
  if (atom.op == AtomOp::kIsNull || atom.op == AtomOp::kIsNotNull) {
    return Status::OK();
  }
  if ((atom.op == AtomOp::kLt || atom.op == AtomOp::kGt) &&
      !IsOrdered(lhs.type)) {
    return Status::InvalidArgument("ordered comparison on nominal attribute '" +
                                   lhs.name + "'");
  }
  if (atom.rhs_is_attr) {
    if (atom.rhs_attr < 0 || atom.rhs_attr >= n) {
      return Status::OutOfRange("atom rhs attribute index out of range");
    }
    if (atom.rhs_attr == atom.lhs_attr) {
      return Status::InvalidArgument("relational atom compares '" + lhs.name +
                                     "' with itself");
    }
    const AttributeDef& rhs = schema.attribute(static_cast<size_t>(atom.rhs_attr));
    if (rhs.type != lhs.type) {
      return Status::InvalidArgument("relational atom over mixed types: '" +
                                     lhs.name + "' vs '" + rhs.name + "'");
    }
    if (lhs.type == DataType::kNominal && lhs.categories != rhs.categories) {
      return Status::InvalidArgument(
          "nominal relational atom requires identical category lists: '" +
          lhs.name + "' vs '" + rhs.name + "'");
    }
    return Status::OK();
  }
  if (atom.rhs_value.is_null()) {
    return Status::InvalidArgument("propositional atom with null constant");
  }
  if (!lhs.InDomain(atom.rhs_value)) {
    return Status::OutOfRange("constant outside domain of '" + lhs.name + "'");
  }
  return Status::OK();
}

Formula Formula::MakeAtom(Atom atom) {
  Formula f;
  f.kind_ = Kind::kAtom;
  f.atom_ = std::move(atom);
  return f;
}

Formula Formula::And(std::vector<Formula> children) {
  if (children.size() == 1) return std::move(children[0]);
  Formula f;
  f.kind_ = Kind::kAnd;
  f.children_ = std::move(children);
  return f;
}

Formula Formula::Or(std::vector<Formula> children) {
  if (children.size() == 1) return std::move(children[0]);
  Formula f;
  f.kind_ = Kind::kOr;
  f.children_ = std::move(children);
  return f;
}

bool Formula::Evaluate(const Row& row) const {
  switch (kind_) {
    case Kind::kAtom:
      return atom_.Evaluate(row);
    case Kind::kAnd:
      for (const Formula& c : children_) {
        if (!c.Evaluate(row)) return false;
      }
      return true;
    case Kind::kOr:
      for (const Formula& c : children_) {
        if (c.Evaluate(row)) return true;
      }
      return false;
  }
  return false;
}

std::vector<int> Formula::Attributes() const {
  std::vector<int> out;
  if (kind_ == Kind::kAtom) {
    out = atom_.Attributes();
  } else {
    for (const Formula& c : children_) {
      auto sub = c.Attributes();
      out.insert(out.end(), sub.begin(), sub.end());
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

size_t Formula::CountAtoms() const {
  if (kind_ == Kind::kAtom) return 1;
  size_t n = 0;
  for (const Formula& c : children_) n += c.CountAtoms();
  return n;
}

size_t Formula::Depth() const {
  if (kind_ == Kind::kAtom) return 1;
  size_t d = 0;
  for (const Formula& c : children_) d = std::max(d, c.Depth());
  return d + 1;
}

std::string Formula::ToString(const Schema& schema) const {
  switch (kind_) {
    case Kind::kAtom:
      return atom_.ToString(schema);
    case Kind::kAnd:
    case Kind::kOr: {
      if (children_.empty()) return kind_ == Kind::kAnd ? "TRUE" : "FALSE";
      const char* sep = kind_ == Kind::kAnd ? " AND " : " OR ";
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += sep;
        out += children_[i].ToString(schema);
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

Result<std::vector<Atom>> Formula::AsConjunction() const {
  std::vector<Atom> out;
  switch (kind_) {
    case Kind::kAtom:
      out.push_back(atom_);
      return out;
    case Kind::kAnd:
      for (const Formula& c : children_) {
        DQ_ASSIGN_OR_RETURN(std::vector<Atom> sub, c.AsConjunction());
        out.insert(out.end(), sub.begin(), sub.end());
      }
      return out;
    case Kind::kOr:
      return Status::InvalidArgument("formula contains a disjunction");
  }
  return Status::Internal("unreachable formula kind");
}

Status ValidateFormula(const Formula& f, const Schema& schema) {
  if (f.is_atom()) return ValidateAtom(f.atom(), schema);
  if (f.children().empty()) {
    return Status::InvalidArgument("compound formula with no children");
  }
  for (const Formula& c : f.children()) {
    DQ_RETURN_NOT_OK(ValidateFormula(c, schema));
  }
  return Status::OK();
}

namespace {

/// TDG-negation of a single atom per Table 1.
Formula NegateAtom(const Atom& a) {
  std::vector<Formula> parts;
  const Atom null_lhs = Atom::Prop(a.lhs_attr, AtomOp::kIsNull);
  switch (a.op) {
    case AtomOp::kIsNull:
      return Formula::MakeAtom(Atom::Prop(a.lhs_attr, AtomOp::kIsNotNull));
    case AtomOp::kIsNotNull:
      return Formula::MakeAtom(null_lhs);
    case AtomOp::kEq: {
      Atom neq = a;
      neq.op = AtomOp::kNeq;
      parts.push_back(Formula::MakeAtom(neq));
      parts.push_back(Formula::MakeAtom(null_lhs));
      break;
    }
    case AtomOp::kNeq: {
      Atom eq = a;
      eq.op = AtomOp::kEq;
      parts.push_back(Formula::MakeAtom(eq));
      parts.push_back(Formula::MakeAtom(null_lhs));
      break;
    }
    case AtomOp::kLt:
    case AtomOp::kGt: {
      Atom flip = a;
      flip.op = a.op == AtomOp::kLt ? AtomOp::kGt : AtomOp::kLt;
      Atom eq = a;
      eq.op = AtomOp::kEq;
      parts.push_back(Formula::MakeAtom(flip));
      parts.push_back(Formula::MakeAtom(eq));
      parts.push_back(Formula::MakeAtom(null_lhs));
      break;
    }
  }
  if (a.rhs_is_attr) {
    parts.push_back(Formula::MakeAtom(Atom::Prop(a.rhs_attr, AtomOp::kIsNull)));
  }
  return Formula::Or(std::move(parts));
}

}  // namespace

Formula Negate(const Formula& f) {
  switch (f.kind()) {
    case Formula::Kind::kAtom:
      return NegateAtom(f.atom());
    case Formula::Kind::kAnd: {
      std::vector<Formula> parts;
      parts.reserve(f.children().size());
      for (const Formula& c : f.children()) parts.push_back(Negate(c));
      return Formula::Or(std::move(parts));
    }
    case Formula::Kind::kOr: {
      std::vector<Formula> parts;
      parts.reserve(f.children().size());
      for (const Formula& c : f.children()) parts.push_back(Negate(c));
      return Formula::And(std::move(parts));
    }
  }
  return f;
}

namespace {

Status DnfRec(const Formula& f, size_t max_disjuncts,
              std::vector<std::vector<Atom>>* out) {
  switch (f.kind()) {
    case Formula::Kind::kAtom:
      out->push_back({f.atom()});
      return Status::OK();
    case Formula::Kind::kOr: {
      for (const Formula& c : f.children()) {
        DQ_RETURN_NOT_OK(DnfRec(c, max_disjuncts, out));
        if (out->size() > max_disjuncts) {
          return Status::Exhausted("DNF expansion exceeds limit");
        }
      }
      return Status::OK();
    }
    case Formula::Kind::kAnd: {
      // Cross product of child DNFs.
      std::vector<std::vector<Atom>> acc{{}};
      for (const Formula& c : f.children()) {
        std::vector<std::vector<Atom>> child_dnf;
        DQ_RETURN_NOT_OK(DnfRec(c, max_disjuncts, &child_dnf));
        std::vector<std::vector<Atom>> next;
        next.reserve(acc.size() * child_dnf.size());
        for (const auto& left : acc) {
          for (const auto& right : child_dnf) {
            std::vector<Atom> merged = left;
            merged.insert(merged.end(), right.begin(), right.end());
            next.push_back(std::move(merged));
            if (next.size() > max_disjuncts) {
              return Status::Exhausted("DNF expansion exceeds limit");
            }
          }
        }
        acc = std::move(next);
      }
      out->insert(out->end(), acc.begin(), acc.end());
      return Status::OK();
    }
  }
  return Status::Internal("unreachable formula kind");
}

}  // namespace

Result<std::vector<std::vector<Atom>>> ToDnf(const Formula& f,
                                             size_t max_disjuncts) {
  std::vector<std::vector<Atom>> out;
  DQ_RETURN_NOT_OK(DnfRec(f, max_disjuncts, &out));
  if (out.size() > max_disjuncts) {
    return Status::Exhausted("DNF expansion exceeds limit");
  }
  return out;
}

}  // namespace dq
