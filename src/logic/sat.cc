#include "logic/sat.h"

#include <algorithm>
#include <functional>
#include <set>

namespace dq {

namespace {

/// Minimal union-find over attribute indices.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<int>(i);
  }
  int Find(int x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }
  void Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[static_cast<size_t>(std::max(a, b))] = std::min(a, b);
  }

 private:
  std::vector<int> parent_;
};

/// True if the directed graph over `nodes` with `edges` contains a cycle.
bool HasCycle(const std::vector<int>& nodes,
              const std::vector<std::pair<int, int>>& edges) {
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(nodes.empty() ? 0 : 1, Color::kWhite);
  // Map node id -> dense index.
  std::vector<int> ids = nodes;
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  auto dense = [&](int id) {
    return static_cast<size_t>(
        std::lower_bound(ids.begin(), ids.end(), id) - ids.begin());
  };
  std::vector<std::vector<size_t>> adj(ids.size());
  for (const auto& [u, v] : edges) {
    adj[dense(u)].push_back(dense(v));
  }
  color.assign(ids.size(), Color::kWhite);
  std::function<bool(size_t)> dfs = [&](size_t u) -> bool {
    color[u] = Color::kGray;
    for (size_t v : adj[u]) {
      if (color[v] == Color::kGray) return true;
      if (color[v] == Color::kWhite && dfs(v)) return true;
    }
    color[u] = Color::kBlack;
    return false;
  };
  for (size_t i = 0; i < ids.size(); ++i) {
    if (color[i] == Color::kWhite && dfs(i)) return true;
  }
  return false;
}

}  // namespace

Propagation SatChecker::Propagate(const std::vector<Atom>& atoms) const {
  const size_t n = schema_->num_attributes();
  Propagation prop;
  prop.ranges.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    prop.ranges.push_back(DomainRange::FullDomain(schema_->attribute(i)));
  }
  prop.eq_class.resize(n);

  UnionFind uf(n);

  // Pass 1: propositional restrictions + null requirements + eq links.
  for (const Atom& a : atoms) {
    DomainRange& lhs = prop.ranges[static_cast<size_t>(a.lhs_attr)];
    switch (a.op) {
      case AtomOp::kIsNull:
        lhs.ForbidValues();
        continue;
      case AtomOp::kIsNotNull:
        lhs.ForbidNull();
        continue;
      default:
        break;
    }
    lhs.ForbidNull();
    if (a.rhs_is_attr) {
      prop.ranges[static_cast<size_t>(a.rhs_attr)].ForbidNull();
      if (a.op == AtomOp::kEq) uf.Union(a.lhs_attr, a.rhs_attr);
      continue;
    }
    switch (a.op) {
      case AtomOp::kEq:
        lhs.RestrictEq(a.rhs_value);
        break;
      case AtomOp::kNeq:
        lhs.RestrictNeq(a.rhs_value);
        break;
      case AtomOp::kLt:
        lhs.RestrictLt(a.rhs_value);
        break;
      case AtomOp::kGt:
        lhs.RestrictGt(a.rhs_value);
        break;
      default:
        break;
    }
  }

  for (size_t i = 0; i < n; ++i) {
    prop.eq_class[i] = uf.Find(static_cast<int>(i));
  }

  // Merge ranges within each eq class into the representative, then mirror
  // the merged range back to all members.
  for (size_t i = 0; i < n; ++i) {
    const int rep = prop.eq_class[i];
    if (rep != static_cast<int>(i)) {
      prop.ranges[static_cast<size_t>(rep)].IntersectWith(prop.ranges[i]);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    const int rep = prop.eq_class[i];
    if (rep != static_cast<int>(i)) {
      prop.ranges[i] = prop.ranges[static_cast<size_t>(rep)];
    }
  }

  // Pass 2: collect strict-order and disequality links between class reps.
  std::vector<int> rel_nodes;
  for (const Atom& a : atoms) {
    if (!a.rhs_is_attr) continue;
    const int lrep = prop.eq_class[static_cast<size_t>(a.lhs_attr)];
    const int rrep = prop.eq_class[static_cast<size_t>(a.rhs_attr)];
    switch (a.op) {
      case AtomOp::kLt:
        prop.lt_links.emplace_back(lrep, rrep);
        break;
      case AtomOp::kGt:
        prop.lt_links.emplace_back(rrep, lrep);
        break;
      case AtomOp::kNeq:
        if (lrep == rrep) {
          // A != B with A = B forced: contradiction.
          prop.satisfiable = false;
          return prop;
        }
        prop.neq_links.emplace_back(lrep, rrep);
        break;
      default:
        break;
    }
    rel_nodes.push_back(lrep);
    rel_nodes.push_back(rrep);
  }

  // Strict-order links forbid equality within a class and strict cycles.
  for (const auto& [u, v] : prop.lt_links) {
    if (u == v) {
      prop.satisfiable = false;
      return prop;
    }
  }
  if (!prop.lt_links.empty() && HasCycle(rel_nodes, prop.lt_links)) {
    prop.satisfiable = false;
    return prop;
  }

  // Pass 3: bound propagation along < links to a fixpoint.
  bool changed = true;
  size_t guard = 0;
  while (changed && guard++ < n + prop.lt_links.size() + 4) {
    changed = false;
    for (const auto& [u, v] : prop.lt_links) {
      DomainRange& ru = prop.ranges[static_cast<size_t>(u)];
      DomainRange& rv = prop.ranges[static_cast<size_t>(v)];
      if (ru.LimitBelow(rv)) changed = true;
      if (rv.LimitAbove(ru)) changed = true;
    }
  }
  // Mirror propagated class ranges back to members.
  for (size_t i = 0; i < n; ++i) {
    const int rep = prop.eq_class[i];
    if (rep != static_cast<int>(i)) {
      prop.ranges[i] = prop.ranges[static_cast<size_t>(rep)];
    }
  }

  // Disequality between two singleton classes with the same single value.
  for (const auto& [u, v] : prop.neq_links) {
    Value a, b;
    if (prop.ranges[static_cast<size_t>(u)].SingleValue(&a) &&
        prop.ranges[static_cast<size_t>(v)].SingleValue(&b) &&
        !prop.ranges[static_cast<size_t>(u)].allow_null() &&
        !prop.ranges[static_cast<size_t>(v)].allow_null() &&
        a.StrictEquals(b)) {
      prop.satisfiable = false;
      return prop;
    }
  }

  for (size_t i = 0; i < n; ++i) {
    if (prop.ranges[i].Empty()) {
      prop.satisfiable = false;
      return prop;
    }
  }
  prop.satisfiable = true;
  return prop;
}

Result<bool> SatChecker::Satisfiable(const Formula& f) const {
  DQ_ASSIGN_OR_RETURN(std::vector<std::vector<Atom>> dnf, ToDnf(f));
  for (const auto& conj : dnf) {
    if (ConjunctionSatisfiable(conj)) return true;
  }
  return false;
}

Result<bool> SatChecker::Implies(const Formula& alpha,
                                 const Formula& beta) const {
  Formula combined = Formula::And({alpha, Negate(beta)});
  DQ_ASSIGN_OR_RETURN(bool sat, Satisfiable(combined));
  return !sat;
}

Status SatChecker::TrySolve(const Propagation& prop,
                            const std::vector<Atom>& atoms, Row* row,
                            Rng* rng) const {
  // Attributes touched by the conjunction.
  std::set<int> involved;
  for (const Atom& a : atoms) {
    for (int attr : a.Attributes()) involved.insert(attr);
  }

  // Topological order of class representatives along < links.
  std::vector<int> reps;
  for (int attr : involved) {
    reps.push_back(prop.eq_class[static_cast<size_t>(attr)]);
  }
  std::sort(reps.begin(), reps.end());
  reps.erase(std::unique(reps.begin(), reps.end()), reps.end());

  std::vector<int> order;
  {
    std::set<int> remaining(reps.begin(), reps.end());
    while (!remaining.empty()) {
      bool progressed = false;
      for (int r : std::vector<int>(remaining.begin(), remaining.end())) {
        bool has_unassigned_pred = false;
        for (const auto& [u, v] : prop.lt_links) {
          if (v == r && remaining.count(u) > 0) {
            has_unassigned_pred = true;
            break;
          }
        }
        if (!has_unassigned_pred) {
          order.push_back(r);
          remaining.erase(r);
          progressed = true;
        }
      }
      if (!progressed) {
        return Status::Internal("cycle in propagated strict-order links");
      }
    }
  }

  // Assign one value per class, respecting already-assigned predecessors.
  std::vector<bool> assigned(schema_->num_attributes(), false);
  for (int rep : order) {
    DomainRange range = prop.ranges[static_cast<size_t>(rep)];
    // Tighten by assigned strict-order neighbours.
    for (const auto& [u, v] : prop.lt_links) {
      if (v == rep && assigned[static_cast<size_t>(u)]) {
        const Value& uv = (*row)[static_cast<size_t>(u)];
        if (!uv.is_null()) range.RestrictGt(uv);
      }
      if (u == rep && assigned[static_cast<size_t>(v)]) {
        const Value& vv = (*row)[static_cast<size_t>(v)];
        if (!vv.is_null()) range.RestrictLt(vv);
      }
    }
    // Disequality with assigned classes.
    for (const auto& [u, v] : prop.neq_links) {
      int other = -1;
      if (u == rep) other = v;
      if (v == rep) other = u;
      if (other >= 0 && assigned[static_cast<size_t>(other)]) {
        const Value& ov = (*row)[static_cast<size_t>(other)];
        if (!ov.is_null()) range.RestrictNeq(ov);
      }
    }

    Value chosen;
    if (range.ValuesEmpty()) {
      if (!range.allow_null()) {
        return Status::Exhausted("no value left for class during solve");
      }
      chosen = Value::Null();
    } else {
      // Prefer the base row's current value when it already fits.
      const Value& current = (*row)[static_cast<size_t>(rep)];
      if (!current.is_null() && range.Contains(current)) {
        chosen = current;
      } else {
        chosen = range.SampleValue(rng);
      }
    }
    // Write to every member of the class.
    for (int attr : involved) {
      if (prop.eq_class[static_cast<size_t>(attr)] == rep) {
        (*row)[static_cast<size_t>(attr)] = chosen;
        assigned[static_cast<size_t>(attr)] = true;
      }
    }
    assigned[static_cast<size_t>(rep)] = true;
  }

  // Verify: every atom must hold.
  for (const Atom& a : atoms) {
    if (!a.Evaluate(*row)) {
      return Status::Exhausted("solve verification failed");
    }
  }
  return Status::OK();
}

Result<Row> SatChecker::SolveConjunction(const std::vector<Atom>& atoms,
                                         const Row& base, Rng* rng) const {
  Propagation prop = Propagate(atoms);
  if (!prop.satisfiable) {
    return Status::Unsatisfiable("conjunction has no model");
  }
  constexpr int kMaxAttempts = 32;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    Row candidate = base;
    Status s = TrySolve(prop, atoms, &candidate, rng);
    if (s.ok()) return candidate;
    if (s.code() == StatusCode::kInternal) return s;
  }
  return Status::Exhausted("could not solve conjunction after retries");
}

}  // namespace dq
