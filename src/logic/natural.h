// Natural TDG-formulae, rules and rule sets (sec. 4.1.2, Definitions 4-6).
//
// Randomly constructed rules "do not necessarily comply with a
// human-generated set of meaningful rules": they can be contradictory or
// tautological. Naturalness rules these out so that the number of generated
// rules reflects the structural strength of the data:
//   Def. 4 — every subformula of a conjunction/disjunction contributes
//            (is not implied by its siblings), conjunctions are satisfiable;
//   Def. 5 — a rule's sides are natural, jointly satisfiable, and the
//            premise does not already imply the consequent;
//   Def. 6 — pairwise: when one premise implies another, the consequents
//            must be compatible and the stronger rule must add information.

#ifndef DQ_LOGIC_NATURAL_H_
#define DQ_LOGIC_NATURAL_H_

#include <vector>

#include "logic/sat.h"

namespace dq {

/// \brief Decides naturalness of formulae, rules and rule sets over a
/// schema, using the pragmatic satisfiability test.
class NaturalnessChecker {
 public:
  explicit NaturalnessChecker(const Schema* schema)
      : schema_(schema), sat_(schema) {}

  /// \brief Definition 4.
  Result<bool> IsNaturalFormula(const Formula& f) const;

  /// \brief Definition 5 (assumes both sides were checked with
  /// IsNaturalFormula when required; re-checks them here for safety).
  Result<bool> IsNaturalRule(const Rule& rule) const;

  /// \brief Checks only the pairwise Definition 6 condition between two
  /// rules (in both premise-implication directions).
  Result<bool> PairCompatible(const Rule& a, const Rule& b) const;

  /// \brief Whether `rules + {candidate}` remains a natural rule set; the
  /// existing rules are assumed pairwise compatible.
  Result<bool> CanAdd(const std::vector<Rule>& rules,
                      const Rule& candidate) const;

  /// \brief Definition 6 over a whole set (each rule also checked with
  /// Definition 5).
  Result<bool> IsNaturalRuleSet(const std::vector<Rule>& rules) const;

  const SatChecker& sat() const { return sat_; }

 private:
  const Schema* schema_;
  SatChecker sat_;
};

}  // namespace dq

#endif  // DQ_LOGIC_NATURAL_H_
