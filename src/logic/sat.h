// Pragmatic satisfiability test for TDG-formulae (sec. 4.1.3).
//
// "First, the TDG-formula is transformed into disjunctive normal form. [It]
// is satisfiable iff one of these disjuncts is satisfiable. ... initialize
// the current domain ranges of every attribute ... and then successively
// restrict them by integrating the constraints of each atomic TDG-formula.
// ... The integration of relational constraints ... are reflected by the
// instantiation of links between attributes while considering the
// transitive nature of the operators <, > and =."
//
// Like the paper's algorithm, the test is sound for unsatisfiability: when
// it reports "unsatisfiable" the formula truly has no model. In rare corner
// cases (interacting exclusion points across several relational links) it
// can report "satisfiable" for an unsatisfiable formula; the rule generator
// only emits shapes for which the test is exact.
//
// The checker also doubles as a constraint *solver*: SolveConjunction finds
// a concrete row satisfying a conjunction while deviating from a base row
// as little as possible — the primitive used by rule repair during data
// generation (sec. 4.1.4).

#ifndef DQ_LOGIC_SAT_H_
#define DQ_LOGIC_SAT_H_

#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "logic/domain_range.h"
#include "logic/formula.h"

namespace dq {

/// \brief Result of propagating a conjunction's constraints.
struct Propagation {
  bool satisfiable = false;
  /// One range per schema attribute; attributes linked by `=` share the
  /// intersected class range.
  std::vector<DomainRange> ranges;
  /// Class representative per attribute (union-find root; == own index for
  /// unlinked attributes).
  std::vector<int> eq_class;
  /// Strict-order links between class representatives: first < second.
  std::vector<std::pair<int, int>> lt_links;
  /// Disequality links between class representatives.
  std::vector<std::pair<int, int>> neq_links;
};

/// \brief Satisfiability / implication / solving over TDG-formulae.
class SatChecker {
 public:
  explicit SatChecker(const Schema* schema) : schema_(schema) {}

  /// \brief Domain-range propagation for a conjunction of atoms.
  Propagation Propagate(const std::vector<Atom>& atoms) const;

  /// \brief Satisfiability of a conjunction of atoms.
  bool ConjunctionSatisfiable(const std::vector<Atom>& atoms) const {
    return Propagate(atoms).satisfiable;
  }

  /// \brief Satisfiability of an arbitrary TDG-formula (via DNF). Fails
  /// with Exhausted if the DNF expansion is too large.
  Result<bool> Satisfiable(const Formula& f) const;

  /// \brief Validity of alpha => beta, decided as unsat(alpha AND ~beta).
  Result<bool> Implies(const Formula& alpha, const Formula& beta) const;

  /// \brief Finds a row satisfying the conjunction, starting from `base`
  /// and preferring to keep base values where possible. Only attributes
  /// mentioned by the atoms are modified. Fails with Unsatisfiable when the
  /// conjunction has no model, Exhausted when the bounded search gives up.
  Result<Row> SolveConjunction(const std::vector<Atom>& atoms, const Row& base,
                               Rng* rng) const;

  const Schema& schema() const { return *schema_; }

 private:
  Status TrySolve(const Propagation& prop, const std::vector<Atom>& atoms,
                  Row* row, Rng* rng) const;

  const Schema* schema_;
};

}  // namespace dq

#endif  // DQ_LOGIC_SAT_H_
