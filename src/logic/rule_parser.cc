#include "logic/rule_parser.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace dq {

namespace {

enum class TokenKind {
  kWord,    // attribute name, keyword or bare constant
  kQuoted,  // 'constant'
  kOp,      // = != < >
  kArrow,   // ->
  kLParen,
  kRParen,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  size_t pos = 0;  // character offset for error messages
};

Status SyntaxError(const Token& token, const std::string& what) {
  return Status::InvalidArgument("parse error at offset " +
                                 std::to_string(token.pos) + " ('" +
                                 (token.kind == TokenKind::kEnd ? "<end>"
                                                                : token.text) +
                                 "'): " + what);
}

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
         c == '-' || c == '+' || c == ':';
}

Result<std::vector<Token>> Tokenize(const std::string& text) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.pos = i;
    if (c == '-' && i + 1 < text.size() && text[i + 1] == '>') {
      token.kind = TokenKind::kArrow;
      token.text = "->";
      i += 2;
    } else if (c == '(') {
      token.kind = TokenKind::kLParen;
      token.text = "(";
      ++i;
    } else if (c == ')') {
      token.kind = TokenKind::kRParen;
      token.text = ")";
      ++i;
    } else if (c == '=' || c == '<' || c == '>') {
      token.kind = TokenKind::kOp;
      token.text = std::string(1, c);
      ++i;
    } else if (c == '!' && i + 1 < text.size() && text[i + 1] == '=') {
      token.kind = TokenKind::kOp;
      token.text = "!=";
      i += 2;
    } else if (c == '\'') {
      const size_t close = text.find('\'', i + 1);
      if (close == std::string::npos) {
        return Status::InvalidArgument("parse error at offset " +
                                       std::to_string(i) +
                                       ": unterminated quote");
      }
      token.kind = TokenKind::kQuoted;
      token.text = text.substr(i + 1, close - i - 1);
      i = close + 1;
    } else if (IsWordChar(c)) {
      size_t j = i;
      while (j < text.size() && IsWordChar(text[j])) {
        // Stop before an arrow embedded after a '-'.
        if (text[j] == '-' && j + 1 < text.size() && text[j + 1] == '>') break;
        ++j;
      }
      token.kind = TokenKind::kWord;
      token.text = text.substr(i, j - i);
      i = j;
    } else {
      return Status::InvalidArgument("parse error at offset " +
                                     std::to_string(i) +
                                     ": unexpected character '" +
                                     std::string(1, c) + "'");
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.pos = text.size();
  tokens.push_back(end);
  return tokens;
}

std::string Lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  Parser(const Schema& schema, std::vector<Token> tokens)
      : schema_(schema), tokens_(std::move(tokens)) {}

  Result<Formula> ParseFormulaToEnd() {
    DQ_ASSIGN_OR_RETURN(Formula f, ParseOr());
    if (Peek().kind != TokenKind::kEnd) {
      return SyntaxError(Peek(), "trailing input after formula");
    }
    return f;
  }

  Result<Rule> ParseRuleToEnd() {
    DQ_ASSIGN_OR_RETURN(Formula premise, ParseOr());
    if (Peek().kind != TokenKind::kArrow) {
      return SyntaxError(Peek(), "expected '->'");
    }
    Advance();
    DQ_ASSIGN_OR_RETURN(Formula consequent, ParseOr());
    if (Peek().kind != TokenKind::kEnd) {
      return SyntaxError(Peek(), "trailing input after rule");
    }
    Rule rule;
    rule.premise = std::move(premise);
    rule.consequent = std::move(consequent);
    return rule;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  bool PeekKeyword(const char* keyword) const {
    return Peek().kind == TokenKind::kWord && Lower(Peek().text) == keyword;
  }

  Result<Formula> ParseOr() {
    DQ_ASSIGN_OR_RETURN(Formula first, ParseAnd());
    std::vector<Formula> parts;
    parts.push_back(std::move(first));
    while (PeekKeyword("or")) {
      Advance();
      DQ_ASSIGN_OR_RETURN(Formula next, ParseAnd());
      parts.push_back(std::move(next));
    }
    return Formula::Or(std::move(parts));
  }

  Result<Formula> ParseAnd() {
    DQ_ASSIGN_OR_RETURN(Formula first, ParseUnit());
    std::vector<Formula> parts;
    parts.push_back(std::move(first));
    while (PeekKeyword("and")) {
      Advance();
      DQ_ASSIGN_OR_RETURN(Formula next, ParseUnit());
      parts.push_back(std::move(next));
    }
    return Formula::And(std::move(parts));
  }

  Result<Formula> ParseUnit() {
    if (Peek().kind == TokenKind::kLParen) {
      Advance();
      DQ_ASSIGN_OR_RETURN(Formula inner, ParseOr());
      if (Peek().kind != TokenKind::kRParen) {
        return SyntaxError(Peek(), "expected ')'");
      }
      Advance();
      return inner;
    }
    return ParseAtom();
  }

  Result<Formula> ParseAtom() {
    if (Peek().kind != TokenKind::kWord) {
      return SyntaxError(Peek(), "expected an attribute name");
    }
    const Token name_token = Peek();
    auto attr = schema_.IndexOf(name_token.text);
    if (!attr.ok()) {
      return SyntaxError(name_token,
                         "unknown attribute '" + name_token.text + "'");
    }
    Advance();

    // Null tests.
    if (PeekKeyword("isnull")) {
      Advance();
      return Formula::MakeAtom(Atom::Prop(*attr, AtomOp::kIsNull));
    }
    if (PeekKeyword("isnotnull")) {
      Advance();
      return Formula::MakeAtom(Atom::Prop(*attr, AtomOp::kIsNotNull));
    }

    if (Peek().kind != TokenKind::kOp) {
      return SyntaxError(Peek(), "expected '=', '!=', '<', '>' or a null test");
    }
    AtomOp op;
    if (Peek().text == "=") {
      op = AtomOp::kEq;
    } else if (Peek().text == "!=") {
      op = AtomOp::kNeq;
    } else if (Peek().text == "<") {
      op = AtomOp::kLt;
    } else {
      op = AtomOp::kGt;
    }
    Advance();

    const Token operand = Peek();
    if (operand.kind != TokenKind::kWord && operand.kind != TokenKind::kQuoted) {
      return SyntaxError(operand, "expected an operand");
    }
    Advance();

    // A bare operand naming a schema attribute means a relational atom.
    if (operand.kind == TokenKind::kWord) {
      auto rhs_attr = schema_.IndexOf(operand.text);
      if (rhs_attr.ok()) {
        Atom atom = Atom::Rel(*attr, op, *rhs_attr);
        Status valid = ValidateAtom(atom, schema_);
        if (!valid.ok()) return SyntaxError(operand, valid.message());
        return Formula::MakeAtom(atom);
      }
    }

    auto value = schema_.ParseValue(*attr, operand.text);
    if (!value.ok()) {
      return SyntaxError(operand, "cannot parse '" + operand.text +
                                      "' as a value of attribute '" +
                                      name_token.text + "': " +
                                      value.status().message());
    }
    Atom atom = Atom::Prop(*attr, op, *value);
    Status valid = ValidateAtom(atom, schema_);
    if (!valid.ok()) return SyntaxError(operand, valid.message());
    return Formula::MakeAtom(atom);
  }

  const Schema& schema_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Formula> ParseFormula(const Schema& schema, const std::string& text) {
  DQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(schema, std::move(tokens));
  return parser.ParseFormulaToEnd();
}

Result<Rule> ParseRule(const Schema& schema, const std::string& text) {
  DQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(schema, std::move(tokens));
  return parser.ParseRuleToEnd();
}

Result<std::vector<Rule>> ParseRuleFile(const Schema& schema,
                                        std::istream* in) {
  std::vector<Rule> rules;
  std::string line;
  size_t line_no = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    auto rule = ParseRule(schema, std::string(trimmed));
    if (!rule.ok()) {
      return Status::InvalidArgument("rule file line " +
                                     std::to_string(line_no) + ": " +
                                     rule.status().message());
    }
    rules.push_back(std::move(*rule));
  }
  return rules;
}

Result<std::vector<Rule>> ParseRuleFileAt(const Schema& schema,
                                          const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot open '" + path + "' for reading");
  return ParseRuleFile(schema, &f);
}

}  // namespace dq
