#include "logic/rule_parser.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "table/date.h"

namespace dq {

std::string SourceLocation::ToString() const {
  return "line " + std::to_string(line) + ", column " + std::to_string(column);
}

const char* ParseErrorKindToString(ParseError::Kind kind) {
  switch (kind) {
    case ParseError::Kind::kSyntax:
      return "syntax";
    case ParseError::Kind::kUnknownAttribute:
      return "unknown-attribute";
    case ParseError::Kind::kTypeMismatch:
      return "type-mismatch";
    case ParseError::Kind::kBadConstant:
      return "bad-constant";
  }
  return "?";
}

std::string ParseError::Render() const {
  return loc.ToString() + " ('" + token + "'): " + message;
}

namespace {

enum class TokenKind {
  kWord,    // attribute name, keyword or bare constant
  kQuoted,  // 'constant'
  kOp,      // = != < >
  kArrow,   // ->
  kLParen,
  kRParen,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  size_t pos = 0;  // character offset within the parsed text
};

std::string TokenDisplay(const Token& token) {
  return token.kind == TokenKind::kEnd ? "<end>" : token.text;
}

/// Builds a ParseError anchored at `token` on line `line`.
ParseError MakeError(ParseError::Kind kind, size_t line, const Token& token,
                     std::string message) {
  ParseError err;
  err.kind = kind;
  err.loc.line = line;
  err.loc.column = token.pos + 1;
  err.token = TokenDisplay(token);
  err.message = std::move(message);
  return err;
}

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
         c == '-' || c == '+' || c == ':';
}

/// Tokenizes `text`; returns false and fills `*error` on lexical failure.
bool Tokenize(const std::string& text, size_t line, std::vector<Token>* tokens,
              ParseError* error) {
  size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.pos = i;
    if (c == '-' && i + 1 < text.size() && text[i + 1] == '>') {
      token.kind = TokenKind::kArrow;
      token.text = "->";
      i += 2;
    } else if (c == '(') {
      token.kind = TokenKind::kLParen;
      token.text = "(";
      ++i;
    } else if (c == ')') {
      token.kind = TokenKind::kRParen;
      token.text = ")";
      ++i;
    } else if (c == '=' || c == '<' || c == '>') {
      token.kind = TokenKind::kOp;
      token.text = std::string(1, c);
      ++i;
    } else if (c == '!' && i + 1 < text.size() && text[i + 1] == '=') {
      token.kind = TokenKind::kOp;
      token.text = "!=";
      i += 2;
    } else if (c == '\'') {
      const size_t close = text.find('\'', i + 1);
      if (close == std::string::npos) {
        Token at;
        at.pos = i;
        at.kind = TokenKind::kWord;
        at.text = text.substr(i);
        *error = MakeError(ParseError::Kind::kSyntax, line, at,
                           "unterminated quote");
        return false;
      }
      token.kind = TokenKind::kQuoted;
      token.text = text.substr(i + 1, close - i - 1);
      i = close + 1;
    } else if (IsWordChar(c)) {
      size_t j = i;
      while (j < text.size() && IsWordChar(text[j])) {
        // Stop before an arrow embedded after a '-'.
        if (text[j] == '-' && j + 1 < text.size() && text[j + 1] == '>') break;
        ++j;
      }
      token.kind = TokenKind::kWord;
      token.text = text.substr(i, j - i);
      i = j;
    } else {
      Token at;
      at.pos = i;
      at.kind = TokenKind::kWord;
      at.text = std::string(1, c);
      *error = MakeError(ParseError::Kind::kSyntax, line, at,
                         "unexpected character '" + std::string(1, c) + "'");
      return false;
    }
    tokens->push_back(std::move(token));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.pos = text.size();
  tokens->push_back(end);
  return true;
}

std::string Lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Recursive-descent parser over the token stream. Failures are recorded as
/// a structured ParseError (the Status returned through Result<> carries the
/// rendered form of the same error).
class Parser {
 public:
  Parser(const Schema& schema, std::vector<Token> tokens, size_t line)
      : schema_(schema), tokens_(std::move(tokens)), line_(line) {}

  Result<Formula> ParseFormulaToEnd() {
    DQ_ASSIGN_OR_RETURN(Formula f, ParseOr());
    if (Peek().kind != TokenKind::kEnd) {
      return Error(ParseError::Kind::kSyntax, Peek(),
                   "trailing input after formula");
    }
    return f;
  }

  Result<Rule> ParseRuleToEnd() {
    first_token_pos_ = Peek().pos;
    DQ_ASSIGN_OR_RETURN(Formula premise, ParseOr());
    if (Peek().kind != TokenKind::kArrow) {
      return Error(ParseError::Kind::kSyntax, Peek(), "expected '->'");
    }
    premise_atom_count_ = atom_locs_.size();
    Advance();
    DQ_ASSIGN_OR_RETURN(Formula consequent, ParseOr());
    if (Peek().kind != TokenKind::kEnd) {
      return Error(ParseError::Kind::kSyntax, Peek(),
                   "trailing input after rule");
    }
    Rule rule;
    rule.premise = std::move(premise);
    rule.consequent = std::move(consequent);
    return rule;
  }

  const ParseError& error() const { return error_; }
  size_t first_token_pos() const { return first_token_pos_; }
  const std::vector<SourceLocation>& atom_locs() const { return atom_locs_; }
  size_t premise_atom_count() const { return premise_atom_count_; }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  Status Error(ParseError::Kind kind, const Token& token, std::string what) {
    error_ = MakeError(kind, line_, token, std::move(what));
    return error_.ToStatus();
  }

  bool PeekKeyword(const char* keyword) const {
    return Peek().kind == TokenKind::kWord && Lower(Peek().text) == keyword;
  }

  Result<Formula> ParseOr() {
    DQ_ASSIGN_OR_RETURN(Formula first, ParseAnd());
    std::vector<Formula> parts;
    parts.push_back(std::move(first));
    while (PeekKeyword("or")) {
      Advance();
      DQ_ASSIGN_OR_RETURN(Formula next, ParseAnd());
      parts.push_back(std::move(next));
    }
    return Formula::Or(std::move(parts));
  }

  Result<Formula> ParseAnd() {
    DQ_ASSIGN_OR_RETURN(Formula first, ParseUnit());
    std::vector<Formula> parts;
    parts.push_back(std::move(first));
    while (PeekKeyword("and")) {
      Advance();
      DQ_ASSIGN_OR_RETURN(Formula next, ParseUnit());
      parts.push_back(std::move(next));
    }
    return Formula::And(std::move(parts));
  }

  Result<Formula> ParseUnit() {
    if (Peek().kind == TokenKind::kLParen) {
      Advance();
      DQ_ASSIGN_OR_RETURN(Formula inner, ParseOr());
      if (Peek().kind != TokenKind::kRParen) {
        return Error(ParseError::Kind::kSyntax, Peek(), "expected ')'");
      }
      Advance();
      return inner;
    }
    return ParseAtom();
  }

  Result<Formula> ParseAtom() {
    if (Peek().kind != TokenKind::kWord) {
      return Error(ParseError::Kind::kSyntax, Peek(),
                   "expected an attribute name");
    }
    const Token name_token = Peek();
    auto attr = schema_.IndexOf(name_token.text);
    if (!attr.ok()) {
      return Error(ParseError::Kind::kUnknownAttribute, name_token,
                   "unknown attribute '" + name_token.text + "'");
    }
    Advance();
    atom_locs_.push_back(SourceLocation{line_, name_token.pos + 1});

    // Null tests.
    if (PeekKeyword("isnull")) {
      Advance();
      return Formula::MakeAtom(Atom::Prop(*attr, AtomOp::kIsNull));
    }
    if (PeekKeyword("isnotnull")) {
      Advance();
      return Formula::MakeAtom(Atom::Prop(*attr, AtomOp::kIsNotNull));
    }

    if (Peek().kind != TokenKind::kOp) {
      return Error(ParseError::Kind::kSyntax, Peek(),
                   "expected '=', '!=', '<', '>' or a null test");
    }
    AtomOp op;
    if (Peek().text == "=") {
      op = AtomOp::kEq;
    } else if (Peek().text == "!=") {
      op = AtomOp::kNeq;
    } else if (Peek().text == "<") {
      op = AtomOp::kLt;
    } else {
      op = AtomOp::kGt;
    }
    Advance();

    const Token operand = Peek();
    if (operand.kind != TokenKind::kWord && operand.kind != TokenKind::kQuoted) {
      return Error(ParseError::Kind::kSyntax, operand, "expected an operand");
    }
    Advance();

    // A bare operand naming a schema attribute means a relational atom.
    if (operand.kind == TokenKind::kWord) {
      auto rhs_attr = schema_.IndexOf(operand.text);
      if (rhs_attr.ok()) {
        Atom atom = Atom::Rel(*attr, op, *rhs_attr);
        Status valid = ValidateAtom(atom, schema_);
        if (!valid.ok()) {
          return Error(ParseError::Kind::kTypeMismatch, operand,
                       valid.message());
        }
        return Formula::MakeAtom(atom);
      }
    }

    auto value = schema_.ParseValue(*attr, operand.text);
    if (!value.ok()) {
      return Error(ParseError::Kind::kBadConstant, operand,
                   "cannot parse '" + operand.text +
                       "' as a value of attribute '" + name_token.text +
                       "': " + value.status().message());
    }
    Atom atom = Atom::Prop(*attr, op, *value);
    Status valid = ValidateAtom(atom, schema_);
    if (!valid.ok()) {
      const ParseError::Kind kind = valid.code() == StatusCode::kOutOfRange
                                        ? ParseError::Kind::kBadConstant
                                        : ParseError::Kind::kTypeMismatch;
      return Error(kind, operand, valid.message());
    }
    return Formula::MakeAtom(atom);
  }

  const Schema& schema_;
  std::vector<Token> tokens_;
  size_t line_ = 1;
  size_t pos_ = 0;
  ParseError error_;
  size_t first_token_pos_ = 0;
  std::vector<SourceLocation> atom_locs_;
  size_t premise_atom_count_ = 0;
};

}  // namespace

Result<Formula> ParseFormula(const Schema& schema, const std::string& text) {
  std::vector<Token> tokens;
  ParseError lex_error;
  if (!Tokenize(text, 1, &tokens, &lex_error)) return lex_error.ToStatus();
  Parser parser(schema, std::move(tokens), 1);
  return parser.ParseFormulaToEnd();
}

Result<Rule> ParseRule(const Schema& schema, const std::string& text) {
  ParsedRule parsed;
  ParseError error;
  if (!ParseRuleDetailed(schema, text, 1, &parsed, &error)) {
    return error.ToStatus();
  }
  return std::move(parsed.rule);
}

bool ParseRuleDetailed(const Schema& schema, const std::string& text,
                       size_t line, ParsedRule* out, ParseError* error) {
  std::vector<Token> tokens;
  if (!Tokenize(text, line, &tokens, error)) return false;
  Parser parser(schema, std::move(tokens), line);
  auto rule = parser.ParseRuleToEnd();
  if (!rule.ok()) {
    *error = parser.error();
    return false;
  }
  out->rule = std::move(*rule);
  out->loc = SourceLocation{line, parser.first_token_pos() + 1};
  out->text = std::string(TrimWhitespace(text));
  const auto& locs = parser.atom_locs();
  const size_t split = parser.premise_atom_count();
  out->premise_atom_locs.assign(locs.begin(),
                                locs.begin() + static_cast<ptrdiff_t>(split));
  out->consequent_atom_locs.assign(locs.begin() + static_cast<ptrdiff_t>(split),
                                   locs.end());
  return true;
}

Result<std::vector<Rule>> ParseRuleFile(const Schema& schema,
                                        std::istream* in) {
  std::vector<Rule> rules;
  std::string line;
  size_t line_no = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    ParsedRule parsed;
    ParseError error;
    if (!ParseRuleDetailed(schema, line, line_no, &parsed, &error)) {
      return Status::InvalidArgument("rule file " + error.Render());
    }
    rules.push_back(std::move(parsed.rule));
  }
  return rules;
}

Result<std::vector<Rule>> ParseRuleFileAt(const Schema& schema,
                                          const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot open '" + path + "' for reading");
  return ParseRuleFile(schema, &f);
}

RuleFileParse ParseRuleFileLenient(const Schema& schema, std::istream* in) {
  RuleFileParse result;
  std::string line;
  size_t line_no = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    ParsedRule parsed;
    ParseError error;
    if (ParseRuleDetailed(schema, line, line_no, &parsed, &error)) {
      result.rules.push_back(std::move(parsed));
    } else {
      result.errors.push_back(std::move(error));
    }
  }
  return result;
}

Result<RuleFileParse> ParseRuleFileLenientAt(const Schema& schema,
                                             const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot open '" + path + "' for reading");
  return ParseRuleFileLenient(schema, &f);
}

namespace {

bool IsKeywordText(const std::string& text) {
  const std::string lower = Lower(text);
  return lower == "or" || lower == "and" || lower == "isnull" ||
         lower == "isnotnull";
}

/// True when `text` survives the tokenizer as one bare word token that the
/// grammar reads back as a constant (not an attribute, keyword or operator).
bool ParsesAsBareConstant(const std::string& text, const Schema& schema) {
  if (text.empty() || IsKeywordText(text)) return false;
  if (schema.IndexOf(text).ok()) return false;  // would become relational
  for (size_t i = 0; i < text.size(); ++i) {
    if (!IsWordChar(text[i])) return false;
    // The tokenizer splits a word before an embedded arrow.
    if (text[i] == '-' && i + 1 < text.size() && text[i + 1] == '>') {
      return false;
    }
  }
  return true;
}

std::string RenderConstantSource(int attr, const Value& v,
                                 const Schema& schema) {
  const AttributeDef& def = schema.attribute(static_cast<size_t>(attr));
  switch (def.type) {
    case DataType::kNominal: {
      const std::string text = schema.ValueToString(attr, v);
      return ParsesAsBareConstant(text, schema) ? text : "'" + text + "'";
    }
    case DataType::kNumeric:
      return FormatDoubleRoundTrip(v.numeric());
    case DataType::kDate:
      return FormatDate(v.date_days());
  }
  return schema.ValueToString(attr, v);
}

std::string RenderAtomSource(const Atom& atom, const Schema& schema) {
  const std::string lhs =
      schema.attribute(static_cast<size_t>(atom.lhs_attr)).name;
  switch (atom.op) {
    case AtomOp::kIsNull:
      return lhs + " isnull";
    case AtomOp::kIsNotNull:
      return lhs + " isnotnull";
    default:
      break;
  }
  const std::string rhs =
      atom.rhs_is_attr
          ? schema.attribute(static_cast<size_t>(atom.rhs_attr)).name
          : RenderConstantSource(atom.lhs_attr, atom.rhs_value, schema);
  return lhs + " " + AtomOpToString(atom.op) + " " + rhs;
}

}  // namespace

std::string RenderFormulaSource(const Formula& f, const Schema& schema) {
  if (f.is_atom()) return RenderAtomSource(f.atom(), schema);
  const char* joiner = f.kind() == Formula::Kind::kAnd ? " AND " : " OR ";
  std::string out;
  for (size_t i = 0; i < f.children().size(); ++i) {
    if (i > 0) out += joiner;
    const Formula& child = f.children()[i];
    if (child.is_atom()) {
      out += RenderFormulaSource(child, schema);
    } else {
      out += "(" + RenderFormulaSource(child, schema) + ")";
    }
  }
  return out;
}

std::string RenderRuleSource(const Rule& rule, const Schema& schema) {
  return RenderFormulaSource(rule.premise, schema) + " -> " +
         RenderFormulaSource(rule.consequent, schema);
}

}  // namespace dq
