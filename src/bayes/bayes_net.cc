#include "bayes/bayes_net.h"

namespace dq {

int BayesianNetwork::FindNode(int attr) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].attr == attr) return static_cast<int>(i);
  }
  return -1;
}

Status BayesianNetwork::AddNode(int attr, std::vector<int> parents) {
  if (attr < 0 || static_cast<size_t>(attr) >= schema_->num_attributes()) {
    return Status::OutOfRange("attribute index " + std::to_string(attr));
  }
  if (Covers(attr)) {
    return Status::AlreadyExists("attribute '" +
                                 schema_->attribute(attr).name +
                                 "' already in network");
  }
  for (int p : parents) {
    if (p == attr) {
      return Status::InvalidArgument("node cannot be its own parent");
    }
    if (!Covers(p)) {
      // Requiring parents to pre-exist makes insertion order topological
      // and rules out cycles by construction.
      return Status::InvalidArgument(
          "parent attribute index " + std::to_string(p) +
          " must be added to the network before its children");
    }
    if (schema_->attribute(p).type != DataType::kNominal) {
      return Status::InvalidArgument("parent '" + schema_->attribute(p).name +
                                     "' must be nominal");
    }
  }
  Node node;
  node.attr = attr;
  node.parents = std::move(parents);
  nodes_.push_back(std::move(node));
  return Status::OK();
}

Result<size_t> BayesianNetwork::NumParentConfigs(int attr) const {
  int idx = FindNode(attr);
  if (idx < 0) return Status::NotFound("attribute not in network");
  size_t configs = 1;
  for (int p : nodes_[idx].parents) {
    configs *= schema_->attribute(p).categories.size();
  }
  return configs;
}

Status BayesianNetwork::SetNominalCpt(int attr,
                                      std::vector<std::vector<double>> rows) {
  int idx = FindNode(attr);
  if (idx < 0) return Status::NotFound("attribute not in network");
  const AttributeDef& def = schema_->attribute(attr);
  if (def.type != DataType::kNominal) {
    return Status::InvalidArgument("'" + def.name + "' is not nominal");
  }
  DQ_ASSIGN_OR_RETURN(size_t configs, NumParentConfigs(attr));
  if (rows.size() != configs) {
    return Status::InvalidArgument(
        "CPT for '" + def.name + "' needs " + std::to_string(configs) +
        " rows, got " + std::to_string(rows.size()));
  }
  for (const auto& row : rows) {
    if (row.size() != def.categories.size()) {
      return Status::InvalidArgument("CPT row arity mismatch for '" + def.name +
                                     "'");
    }
    double total = 0.0;
    for (double w : row) {
      if (w < 0.0) return Status::InvalidArgument("negative CPT weight");
      total += w;
    }
    if (total <= 0.0) return Status::InvalidArgument("all-zero CPT row");
  }
  nodes_[idx].cpt = std::move(rows);
  nodes_[idx].cond_specs.clear();
  nodes_[idx].has_distribution = true;
  return Status::OK();
}

Status BayesianNetwork::SetConditionalSpecs(int attr,
                                            std::vector<DistributionSpec> rows) {
  int idx = FindNode(attr);
  if (idx < 0) return Status::NotFound("attribute not in network");
  const AttributeDef& def = schema_->attribute(attr);
  if (def.type == DataType::kNominal) {
    return Status::InvalidArgument(
        "use SetNominalCpt for nominal attribute '" + def.name + "'");
  }
  DQ_ASSIGN_OR_RETURN(size_t configs, NumParentConfigs(attr));
  if (rows.size() != configs) {
    return Status::InvalidArgument(
        "conditional specs for '" + def.name + "' need " +
        std::to_string(configs) + " rows, got " + std::to_string(rows.size()));
  }
  for (const auto& spec : rows) {
    DQ_RETURN_NOT_OK(ValidateDistribution(spec, def));
  }
  nodes_[idx].cond_specs = std::move(rows);
  nodes_[idx].cpt.clear();
  nodes_[idx].has_distribution = true;
  return Status::OK();
}

Status BayesianNetwork::SetNullProb(int attr, double p) {
  int idx = FindNode(attr);
  if (idx < 0) return Status::NotFound("attribute not in network");
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("null probability outside [0,1]");
  }
  nodes_[idx].null_prob = p;
  return Status::OK();
}

Status BayesianNetwork::Validate() const {
  for (const Node& node : nodes_) {
    if (!node.has_distribution) {
      return Status::FailedPrecondition(
          "node '" + schema_->attribute(node.attr).name +
          "' has no distribution");
    }
  }
  return Status::OK();
}

std::vector<int> BayesianNetwork::covered_attributes() const {
  std::vector<int> out;
  out.reserve(nodes_.size());
  for (const Node& n : nodes_) out.push_back(n.attr);
  return out;
}

int64_t BayesianNetwork::ParentRank(const Node& node, const Row& row) const {
  int64_t rank = 0;
  for (int p : node.parents) {
    const Value& v = (row)[static_cast<size_t>(p)];
    if (!v.is_nominal()) return -1;
    const auto& categories = schema_->attribute(p).categories;
    rank = rank * static_cast<int64_t>(categories.size()) + v.nominal_code();
  }
  return rank;
}

Status BayesianNetwork::SampleInto(Row* row, Rng* rng) const {
  if (row->size() != schema_->num_attributes()) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  for (const Node& node : nodes_) {
    const AttributeDef& def = schema_->attribute(node.attr);
    if (node.null_prob > 0.0 && rng->Bernoulli(node.null_prob)) {
      (*row)[static_cast<size_t>(node.attr)] = Value::Null();
      continue;
    }
    const int64_t rank = ParentRank(node, *row);
    Value v;
    if (def.type == DataType::kNominal) {
      if (rank < 0 || node.cpt.empty()) {
        v = SampleValue(DistributionSpec::Uniform(), def, rng);
      } else {
        v = Value::Nominal(static_cast<int32_t>(
            rng->WeightedIndex(node.cpt[static_cast<size_t>(rank)])));
      }
    } else {
      if (rank < 0 || node.cond_specs.empty()) {
        v = SampleValue(DistributionSpec::Uniform(), def, rng);
      } else {
        v = SampleValue(node.cond_specs[static_cast<size_t>(rank)], def, rng);
      }
    }
    (*row)[static_cast<size_t>(node.attr)] = v;
  }
  return Status::OK();
}

}  // namespace dq
