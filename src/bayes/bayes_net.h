// Bayesian networks for multivariate start distributions (sec. 4.1.4).
//
// "First experiments showed that an independent sampling of the initial
// values does not lead to a satisfactory model of the QUIS database. Hence,
// we developed a method for the intuitive specification of multivariate
// start distributions based on the graphical representation of stochastic
// dependencies among attributes in Bayesian networks."
//
// A BayesianNetwork covers a subset of a schema's attributes. Parent nodes
// must be nominal (so that parent configurations are finite); child nodes
// may be nominal (conditional probability table rows = category weights) or
// numeric/date (rows = DistributionSpecs). Sampling is ancestral in
// topological order.

#ifndef DQ_BAYES_BAYES_NET_H_
#define DQ_BAYES_BAYES_NET_H_

#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "stats/distribution.h"
#include "table/table.h"

namespace dq {

/// \brief Directed graphical model over schema attributes with explicit
/// conditional distributions; used as a multivariate start distribution by
/// the test data generator.
class BayesianNetwork {
 public:
  explicit BayesianNetwork(const Schema* schema) : schema_(schema) {}

  /// \brief Adds a node for `attr` with the given parent attributes.
  /// Parents must already be nodes of the network and must be nominal.
  Status AddNode(int attr, std::vector<int> parents = {});

  /// \brief Sets the CPT for a nominal node: one weight row (unnormalized,
  /// length = category count) per parent configuration, in mixed-radix rank
  /// order (first parent varies slowest).
  Status SetNominalCpt(int attr, std::vector<std::vector<double>> rows);

  /// \brief Sets conditional distributions for a numeric/date node: one
  /// DistributionSpec per parent configuration.
  Status SetConditionalSpecs(int attr, std::vector<DistributionSpec> rows);

  /// \brief Probability that a node's sampled value is null, independent of
  /// the parent configuration (default 0).
  Status SetNullProb(int attr, double p);

  /// \brief Checks completeness: every node has a distribution with the
  /// right arity for its parent-configuration count.
  Status Validate() const;

  /// \brief Number of parent configurations of a node.
  Result<size_t> NumParentConfigs(int attr) const;

  /// \brief Attributes covered by the network, in insertion order.
  std::vector<int> covered_attributes() const;

  bool Covers(int attr) const { return FindNode(attr) >= 0; }

  /// \brief Ancestral sampling: fills `row` cells for all covered
  /// attributes (other cells are untouched). `row` must have schema arity.
  /// If a parent cell is null, a uniform fallback is used for the child.
  Status SampleInto(Row* row, Rng* rng) const;

  const Schema& schema() const { return *schema_; }

 private:
  struct Node {
    int attr = -1;
    std::vector<int> parents;  // attribute indices
    std::vector<std::vector<double>> cpt;        // nominal nodes
    std::vector<DistributionSpec> cond_specs;    // numeric/date nodes
    double null_prob = 0.0;
    bool has_distribution = false;
  };

  int FindNode(int attr) const;
  /// Mixed-radix rank of a parent configuration; -1 if any parent is null.
  int64_t ParentRank(const Node& node, const Row& row) const;

  const Schema* schema_;
  std::vector<Node> nodes_;  // insertion order is a topological order
};

}  // namespace dq

#endif  // DQ_BAYES_BAYES_NET_H_
