// Synthetic QUIS engine-composition sample (sec. 3.2 / 6.2 surrogate).
//
// The paper audits "a table of the QUIS database that describes the
// composition of all industry engines manufactured by Mercedes-Benz. It
// contains 8 attributes and about 200000 records. The attributes code the
// model category of each individual engine and its production date." QUIS
// itself is a proprietary 70 GB DaimlerChrysler database, so this module
// generates a deterministic synthetic table with the same structural
// characteristics the experiment exercises:
//   * mostly nominal attributes grouped around planted domain dependencies,
//   * the exact dependency shapes reported in sec. 6.2:
//       BRV = 404 -> GBM = 901   (~16k instances, exactly ONE deviating
//                                 record carrying GBM = 911),
//       KBM = 01 AND GBM = 901 -> BRV = 501  (~9.5k records, ~96% purity,
//                                 yielding a deviation confidence near 92%),
//   * scattered low-rate noise in the plant/variant attributes so that the
//     audit flags a few thousand suspicious records out of 200k, matching
//     the reported "about 6000 suspicious records".

#ifndef DQ_QUIS_QUIS_SAMPLE_H_
#define DQ_QUIS_QUIS_SAMPLE_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "table/table.h"

namespace dq {

struct QuisConfig {
  /// Paper scale is 200000; smaller values shrink every segment
  /// proportionally (the planted single deviation is kept).
  size_t num_records = 200000;
  uint64_t seed = 2003;

  /// Noise rate for the plant/variant attributes (drives the volume of
  /// suspicious records).
  double noise_prob = 0.02;
};

/// \brief The 8-attribute engine-composition schema: model series (BRV),
/// base engine model (GBM), component code (KBM), aggregate code (AGM),
/// assembly plant, variant, displacement and production date.
Schema MakeQuisSchema();

struct QuisSample {
  Table table;
  /// Row index of the planted BRV=404 / GBM=911 deviation.
  size_t planted_deviation_row = 0;
  /// Number of BRV=404 records (the support of the headline rule).
  size_t brv404_count = 0;
  /// Number of KBM=01 AND GBM=901 records and how many of them are BRV=501.
  size_t kbm01_gbm901_count = 0;
  size_t kbm01_gbm901_brv501_count = 0;
};

/// \brief Generates the synthetic sample.
Result<QuisSample> GenerateQuisSample(const QuisConfig& config = {});

/// \brief Chunked QUIS generation for datasets that must never be held in
/// RAM at once: NextChunk() emits the next run of records into a fresh
/// table, and the concatenation of all chunks is bitwise identical to the
/// table GenerateQuisSample builds for the same config — one RNG stream
/// advances across chunk boundaries, and the single planted GBM=911
/// deviation is emitted in place when the first BRV=404 record is reached
/// (the engine assignment for series 404 consumes no RNG draw, so planting
/// at generation time leaves the stream untouched).
class QuisStreamGenerator {
 public:
  /// Validates the config (same rules as GenerateQuisSample).
  static Result<QuisStreamGenerator> Create(const QuisConfig& config = {});

  const Schema& schema() const { return schema_; }
  size_t total_records() const { return config_.num_records; }
  size_t records_generated() const { return generated_; }
  bool done() const { return generated_ >= config_.num_records; }

  /// \brief Replaces `*out` with the next at-most-max_rows records. On the
  /// final chunk, verifies the planted deviation exists (mirrors the
  /// one-shot generator's check).
  Status NextChunk(size_t max_rows, Table* out);

  /// \brief Sample statistics; complete once done().
  size_t planted_deviation_row() const { return first_404_; }
  size_t brv404_count() const { return brv404_count_; }
  size_t kbm01_gbm901_count() const { return kbm01_gbm901_count_; }
  size_t kbm01_gbm901_brv501_count() const {
    return kbm01_gbm901_brv501_count_;
  }

 private:
  explicit QuisStreamGenerator(const QuisConfig& config);

  QuisConfig config_;
  Schema schema_;
  Rng rng_;
  std::vector<double> brv_weights_;
  size_t generated_ = 0;
  bool seen_404_ = false;
  size_t first_404_ = 0;
  size_t brv404_count_ = 0;
  size_t kbm01_gbm901_count_ = 0;
  size_t kbm01_gbm901_brv501_count_ = 0;
};

}  // namespace dq

#endif  // DQ_QUIS_QUIS_SAMPLE_H_
