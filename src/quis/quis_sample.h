// Synthetic QUIS engine-composition sample (sec. 3.2 / 6.2 surrogate).
//
// The paper audits "a table of the QUIS database that describes the
// composition of all industry engines manufactured by Mercedes-Benz. It
// contains 8 attributes and about 200000 records. The attributes code the
// model category of each individual engine and its production date." QUIS
// itself is a proprietary 70 GB DaimlerChrysler database, so this module
// generates a deterministic synthetic table with the same structural
// characteristics the experiment exercises:
//   * mostly nominal attributes grouped around planted domain dependencies,
//   * the exact dependency shapes reported in sec. 6.2:
//       BRV = 404 -> GBM = 901   (~16k instances, exactly ONE deviating
//                                 record carrying GBM = 911),
//       KBM = 01 AND GBM = 901 -> BRV = 501  (~9.5k records, ~96% purity,
//                                 yielding a deviation confidence near 92%),
//   * scattered low-rate noise in the plant/variant attributes so that the
//     audit flags a few thousand suspicious records out of 200k, matching
//     the reported "about 6000 suspicious records".

#ifndef DQ_QUIS_QUIS_SAMPLE_H_
#define DQ_QUIS_QUIS_SAMPLE_H_

#include "common/result.h"
#include "table/table.h"

namespace dq {

struct QuisConfig {
  /// Paper scale is 200000; smaller values shrink every segment
  /// proportionally (the planted single deviation is kept).
  size_t num_records = 200000;
  uint64_t seed = 2003;

  /// Noise rate for the plant/variant attributes (drives the volume of
  /// suspicious records).
  double noise_prob = 0.02;
};

/// \brief The 8-attribute engine-composition schema: model series (BRV),
/// base engine model (GBM), component code (KBM), aggregate code (AGM),
/// assembly plant, variant, displacement and production date.
Schema MakeQuisSchema();

struct QuisSample {
  Table table;
  /// Row index of the planted BRV=404 / GBM=911 deviation.
  size_t planted_deviation_row = 0;
  /// Number of BRV=404 records (the support of the headline rule).
  size_t brv404_count = 0;
  /// Number of KBM=01 AND GBM=901 records and how many of them are BRV=501.
  size_t kbm01_gbm901_count = 0;
  size_t kbm01_gbm901_brv501_count = 0;
};

/// \brief Generates the synthetic sample.
Result<QuisSample> GenerateQuisSample(const QuisConfig& config = {});

}  // namespace dq

#endif  // DQ_QUIS_QUIS_SAMPLE_H_
