#include "quis/quis_sample.h"

#include <algorithm>
#include <array>

#include "common/random.h"
#include "table/date.h"

namespace dq {

Schema MakeQuisSchema() {
  Schema schema;
  (void)schema.AddNominal(
      "BRV", {"401", "404", "407", "501", "504", "507", "601", "604"});
  (void)schema.AddNominal("GBM", {"901", "902", "904", "911", "912", "921"});
  (void)schema.AddNominal("KBM", {"01", "02", "03", "04", "05"});
  (void)schema.AddNominal("AGM", {"A1", "A2", "A3", "A4", "A5", "A6"});
  (void)schema.AddNominal("PLANT", {"MANNHEIM", "GAGGENAU", "KASSEL", "BERLIN"});
  (void)schema.AddNominal("VARIANT",
                          {"V1", "V2", "V3", "V4", "V5", "V6", "V7", "V8"});
  (void)schema.AddNumeric("DISPLACEMENT", 2000.0, 16000.0);
  (void)schema.AddDate("PROD_DATE", DaysFromCivil({1990, 1, 1}),
                       DaysFromCivil({2003, 6, 30}));
  return schema;
}

namespace {

// Attribute indices in MakeQuisSchema order.
constexpr int kBrv = 0;
constexpr int kGbm = 1;
constexpr int kKbm = 2;
constexpr int kAgm = 3;
constexpr int kPlant = 4;
constexpr int kVariant = 5;
constexpr int kDisplacement = 6;
constexpr int kProdDate = 7;

// BRV category indices.
constexpr int kBrv404 = 1;
constexpr int kBrv501 = 3;
// GBM category indices.
constexpr int kGbm901 = 0;
constexpr int kGbm911 = 3;
// KBM category index of "01".
constexpr int kKbm01 = 0;

}  // namespace

QuisStreamGenerator::QuisStreamGenerator(const QuisConfig& config)
    : config_(config),
      schema_(MakeQuisSchema()),
      rng_(config.seed),
      // Model-series mix; BRV=404 sized so the headline rule rests on ~16k
      // instances at the paper's 200k scale.
      brv_weights_({0.12, 0.0806, 0.10, 0.25, 0.15, 0.12, 0.10, 0.0794}) {}

Result<QuisStreamGenerator> QuisStreamGenerator::Create(
    const QuisConfig& config) {
  if (config.num_records < 100) {
    return Status::InvalidArgument("QUIS sample needs at least 100 records");
  }
  if (config.noise_prob < 0.0 || config.noise_prob > 1.0) {
    return Status::InvalidArgument("noise_prob outside [0,1]");
  }
  return QuisStreamGenerator(config);
}

Status QuisStreamGenerator::NextChunk(size_t max_rows, Table* out) {
  Rng& rng = rng_;
  const QuisConfig& config = config_;

  // Deterministic engine assignment per model series; only 404 and 501 use
  // the 901 engine, which pins down the KBM=01 AND GBM=901 slice.
  auto gbm_for = [&rng](int brv) -> int {
    switch (brv) {
      case 0:  // 401
        return 1;
      case kBrv404:
        return kGbm901;
      case 2:  // 407
        return rng.Bernoulli(0.95) ? 2 : 1;
      case kBrv501:
        return kGbm901;
      case 4:  // 504
        return kGbm911;
      case 5:  // 507
        return 4;
      case 6:  // 601
        return rng.Bernoulli(0.93) ? 5 : 4;
      default:  // 604
        return 5;
    }
  };

  // Component code: series 501 uses component 01 for ~19% of engines,
  // series 404 rarely (~2.6%) — together they shape the second sec. 6.2
  // rule with ~96% purity.
  auto kbm_for = [&rng](int brv) -> int {
    double p01;
    if (brv == kBrv501) {
      p01 = 0.19;
    } else if (brv == kBrv404) {
      p01 = 0.026;
    } else {
      p01 = 0.05;
    }
    if (rng.Bernoulli(p01)) return kKbm01;
    return 1 + static_cast<int>(rng.UniformInt(0, 3));
  };

  // Aggregate code follows the engine *family* (three families share
  // aggregate codes, so AGM does not fully determine GBM and the model
  // series stays the strongest engine predictor) with a small noise rate.
  const double agm_noise = config.noise_prob * 0.75;
  auto agm_for = [&](int gbm) -> int {
    if (rng.Bernoulli(agm_noise)) return static_cast<int>(rng.UniformInt(0, 5));
    return gbm % 3;
  };

  // Assembly plants build every series (uniform, no dependency): the plant
  // must not leak the model series, otherwise the induced engine rules
  // condition on the plant instead of the series.
  auto plant_for = [&](int /*brv*/) -> int {
    return static_cast<int>(rng.UniformInt(0, 3));
  };

  // Displacement loosely tracks the engine model (overlapping bands, so it
  // does not out-predict the model series) with rare outliers.
  const std::array<double, 6> displacement_mean = {4000,  5200,  6400,
                                                   7600,  8800,  10000};
  const double displacement_noise = config.noise_prob * 0.5;
  auto displacement_for = [&](int gbm) -> double {
    if (rng.Bernoulli(displacement_noise)) {
      return rng.UniformReal(2000.0, 16000.0);
    }
    double x = rng.Normal(displacement_mean[static_cast<size_t>(gbm)], 1200.0);
    return std::clamp(x, 2000.0, 16000.0);
  };

  // Production dates are uniform over the whole observation window (the
  // audited excerpt mixes all series generations).
  const int32_t date_lo = DaysFromCivil({1990, 1, 1});
  const int32_t date_hi = DaysFromCivil({2003, 6, 30});
  auto prod_date_for = [&](int /*brv*/) -> int32_t {
    return static_cast<int32_t>(rng.UniformInt(date_lo, date_hi));
  };

  *out = Table(schema_);
  const size_t remaining = config.num_records - generated_;
  const size_t n = std::min(max_rows, remaining);
  out->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t r = generated_++;
    const int brv = static_cast<int>(rng.WeightedIndex(brv_weights_));
    const int gbm = gbm_for(brv);
    const int kbm = kbm_for(brv);

    // The headline deviation is planted in place: the first BRV=404 record
    // gets GBM=911 instead of the rule's 901 ("One instance, however,
    // contradicts the rule: It has got a value of 911 for the GBM
    // attribute", sec. 6.2). AGM and displacement still derive from the
    // undeviated engine (gbm), exactly as the one-shot generator's
    // after-the-fact SetCell left them.
    int gbm_emitted = gbm;
    if (brv == kBrv404 && !seen_404_) {
      first_404_ = r;
      seen_404_ = true;
      gbm_emitted = kGbm911;
    }

    Row row(schema_.num_attributes());
    row[kBrv] = Value::Nominal(brv);
    row[kGbm] = Value::Nominal(gbm_emitted);
    row[kKbm] = Value::Nominal(kbm);
    row[kAgm] = Value::Nominal(agm_for(gbm));
    row[kPlant] = Value::Nominal(plant_for(brv));
    row[kVariant] = Value::Nominal(static_cast<int>(rng.UniformInt(0, 7)));
    row[kDisplacement] = Value::Numeric(displacement_for(gbm));
    row[kProdDate] = Value::Date(prod_date_for(brv));
    out->AppendRowUnchecked(std::move(row));

    if (brv == kBrv404) ++brv404_count_;
    if (kbm == kKbm01 && gbm == kGbm901) {
      ++kbm01_gbm901_count_;
      if (brv == kBrv501) ++kbm01_gbm901_brv501_count_;
    }
  }
  if (done() && !seen_404_) {
    return Status::Internal("no BRV=404 records generated");
  }
  return Status::OK();
}

Result<QuisSample> GenerateQuisSample(const QuisConfig& config) {
  DQ_ASSIGN_OR_RETURN(QuisStreamGenerator gen,
                      QuisStreamGenerator::Create(config));
  QuisSample out;
  DQ_RETURN_NOT_OK(gen.NextChunk(config.num_records, &out.table));
  out.planted_deviation_row = gen.planted_deviation_row();
  out.brv404_count = gen.brv404_count();
  out.kbm01_gbm901_count = gen.kbm01_gbm901_count();
  out.kbm01_gbm901_brv501_count = gen.kbm01_gbm901_brv501_count();
  return out;
}

}  // namespace dq
