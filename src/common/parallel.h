// Fixed-size thread pool and data-parallel helpers.
//
// The audit pipeline is embarrassingly parallel along two axes: structure
// induction trains one independent classifier per class attribute (sec. 5),
// and data checking scores each record independently (Def. 7/8 are
// per-record). Both are dispatched through the pool here. Parallel runs are
// bitwise-reproducible regardless of thread count because
//   * every output is written to a pre-assigned slot (no reduction order
//     dependence), and
//   * stochastic tasks derive their seed from TaskSeed(base, task_id)
//     (SplitMix64 child streams) instead of sharing an engine.

#ifndef DQ_COMMON_PARALLEL_H_
#define DQ_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace dq {

/// \brief Number of hardware threads; always >= 1.
int HardwareThreads();

/// \brief Maps a user thread-count setting to an effective count: any
/// non-positive value (0 = auto, negatives included) becomes
/// HardwareThreads(). One documented behavior for every CLI and for
/// ThreadPool construction.
int ResolveThreadCount(int requested);

/// \brief Deterministic per-task child seed: the same (base_seed, task_id)
/// pair yields the same stream on every run and thread schedule.
uint64_t TaskSeed(uint64_t base_seed, uint64_t task_id);

/// \brief Process-wide thread-pool activity counters, maintained with
/// relaxed atomics by every pool. The observability layer exports them as
/// gauges (pool.* in the metrics dump); they are monotone over the process
/// lifetime.
struct PoolStats {
  uint64_t pools_created = 0;
  uint64_t tasks_executed = 0;
  uint64_t peak_queue_depth = 0;  ///< deepest backlog any pool ever saw
};

PoolStats GlobalPoolStats();

/// \brief Small fixed-size thread pool with a shared FIFO task queue.
///
/// A pool of size 1 executes submitted tasks on its single worker; the
/// convenience ParallelFor additionally short-circuits to inline execution
/// when the pool would not help (one thread or one item).
class ThreadPool {
 public:
  /// \brief Spawns ResolveThreadCount(num_threads) workers.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// \brief Enqueues a task; the future resolves when it finishes (and
  /// carries any exception the task threw).
  std::future<void> Submit(std::function<void()> fn);

  /// \brief Runs fn(i) for every i in [0, n), blocking until done. Work is
  /// split into contiguous chunks (one per worker); the first exception
  /// thrown by any chunk is rethrown in the caller.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// \brief Runs fn(i) for every i in [0, n) with item-granular work
  /// stealing, blocking until done. Unlike ParallelFor this is safe to call
  /// from code that itself runs on pool workers: the caller participates in
  /// draining the shared index counter, so progress is guaranteed even when
  /// every worker is busy (no nested-wait deadlock). Used for the per-node
  /// and per-attribute-per-node task batches of intra-tree C4.5
  /// parallelism; callers keep determinism by writing results to
  /// pre-assigned slots. The first exception thrown by any item is
  /// rethrown in the caller after the batch completes.
  void RunBatch(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

/// \brief One-shot data-parallel loop: runs fn(i) for i in [0, n) on
/// `num_threads` (0 = hardware concurrency). Executes inline when a pool
/// would not help.
void ParallelFor(int num_threads, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace dq

#endif  // DQ_COMMON_PARALLEL_H_
