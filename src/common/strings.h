// Small string/formatting helpers shared across modules.

#ifndef DQ_COMMON_STRINGS_H_
#define DQ_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace dq {

/// \brief Splits `s` on `sep`; keeps empty fields.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// \brief Joins parts with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// \brief Trims ASCII whitespace from both ends.
std::string_view TrimWhitespace(std::string_view s);

/// \brief Formats a double with trailing-zero trimming ("1.5", "2", "0.25").
std::string FormatDouble(double v, int max_decimals = 6);

/// \brief Shortest decimal form that parses back to exactly `v` (CSV cells
/// must survive a write/read round trip bitwise).
std::string FormatDoubleRoundTrip(double v);

/// \brief True if `s` parses fully as a floating point number.
bool ParseDouble(std::string_view s, double* out);

/// \brief True if `s` parses fully as a 64-bit integer.
bool ParseInt64(std::string_view s, int64_t* out);

/// \brief True if `s` parses fully as a byte count: a non-negative integer
/// with an optional binary-multiple suffix K/M/G/T (case-insensitive,
/// optional trailing B), e.g. "65536", "64K", "2g", "1GiB". Rejects
/// negative values, junk and overflow.
bool ParseByteSize(std::string_view s, uint64_t* out);

}  // namespace dq

#endif  // DQ_COMMON_STRINGS_H_
