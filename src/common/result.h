// Result<T>: value-or-Status, in the style of arrow::Result.

#ifndef DQ_COMMON_RESULT_H_
#define DQ_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace dq {

/// \brief Holds either a value of type T or a non-OK Status.
///
/// Construction from a value yields an OK result; construction from a
/// non-OK Status yields an error result. Constructing from an OK Status
/// is a programming error (asserted).
template <typename T>
class Result {
 public:
  Result(T value) : repr_(std::move(value)) {}                    // NOLINT implicit
  Result(Status status) : repr_(std::move(status)) {              // NOLINT implicit
    assert(!std::get<Status>(repr_).ok() && "Result constructed from OK Status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(repr_);
  }

  /// \brief Access the value; must only be called when ok().
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// \brief Returns the value or a fallback when in the error state.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  std::variant<Status, T> repr_;
};

/// \brief Assigns the value of a Result expression to `lhs`, or returns its
/// error Status from the enclosing function.
#define DQ_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value()

#define DQ_ASSIGN_OR_RETURN_CONCAT_(a, b) a##b
#define DQ_ASSIGN_OR_RETURN_CONCAT(a, b) DQ_ASSIGN_OR_RETURN_CONCAT_(a, b)

#define DQ_ASSIGN_OR_RETURN(lhs, expr) \
  DQ_ASSIGN_OR_RETURN_IMPL(            \
      DQ_ASSIGN_OR_RETURN_CONCAT(_dq_result_, __LINE__), lhs, expr)

}  // namespace dq

#endif  // DQ_COMMON_RESULT_H_
