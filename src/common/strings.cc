#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace dq {

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string FormatDouble(double v, int max_decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", max_decimals, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (s[last] == '.') --last;
    s.erase(last + 1);
  }
  return s;
}

std::string FormatDoubleRoundTrip(double v) {
#if defined(__cpp_lib_to_chars)
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  if (res.ec == std::errc()) return std::string(buf, res.ptr);
#endif
  // Fallback: the smallest %g precision whose output parses back exactly.
  char gbuf[64];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(gbuf, sizeof(gbuf), "%.*g", prec, v);
    double back = 0.0;
    if (ParseDouble(gbuf, &back) && back == v) break;
  }
  return gbuf;
}

bool ParseDouble(std::string_view s, double* out) {
  s = TrimWhitespace(s);
  if (s.empty()) return false;
  // Fast path: from_chars parses without the NUL-terminated copy strtod
  // needs, and both are correctly rounded, so any input both accept yields
  // the same bits. Inputs only strtod accepts (leading '+', hex floats)
  // fall through to the original path below.
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec == std::errc() && ptr == s.data() + s.size()) {
    *out = v;
    return true;
  }
  std::string buf(s);
  char* end = nullptr;
  v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = TrimWhitespace(s);
  if (s.empty()) return false;
  int64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseByteSize(std::string_view s, uint64_t* out) {
  s = TrimWhitespace(s);
  if (s.empty()) return false;
  // Strip the optional multiplier suffix: K/M/G/T, optionally followed by
  // "B" or "iB" ("64K", "2g", "512B", "1GiB" all work).
  uint64_t multiplier = 1;
  size_t end = s.size();
  bool saw_i = false;
  if (end >= 2 && (s[end - 1] == 'B' || s[end - 1] == 'b')) {
    --end;
    if (end >= 2 && (s[end - 1] == 'i' || s[end - 1] == 'I')) {
      --end;
      saw_i = true;
    }
  }
  if (end >= 1) {
    switch (s[end - 1]) {
      case 'K': case 'k': multiplier = uint64_t{1} << 10; --end; break;
      case 'M': case 'm': multiplier = uint64_t{1} << 20; --end; break;
      case 'G': case 'g': multiplier = uint64_t{1} << 30; --end; break;
      case 'T': case 't': multiplier = uint64_t{1} << 40; --end; break;
      default: break;
    }
  }
  // "iB" only follows a multiplier letter ("1iB" is not a byte count).
  if (saw_i && multiplier == 1) return false;
  s = s.substr(0, end);
  if (s.empty()) return false;
  uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  if (multiplier != 1 && v > UINT64_MAX / multiplier) return false;
  *out = v * multiplier;
  return true;
}

}  // namespace dq
