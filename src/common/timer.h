// Lightweight wall-clock instrumentation for the per-phase timing stats
// the audit summary and benchmark binaries report.

#ifndef DQ_COMMON_TIMER_H_
#define DQ_COMMON_TIMER_H_

#include <chrono>

namespace dq {

/// \brief Restartable wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Adds the scope's wall-clock duration to *target_ms on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* target_ms) : target_ms_(target_ms) {}
  ~ScopedTimer() {
    if (target_ms_ != nullptr) *target_ms_ += timer_.ElapsedMs();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double ElapsedMs() const { return timer_.ElapsedMs(); }

 private:
  double* target_ms_;
  WallTimer timer_;
};

}  // namespace dq

#endif  // DQ_COMMON_TIMER_H_
