// Status: lightweight error propagation in the style of Arrow / RocksDB.
//
// Public API functions that can fail return either a Status or a Result<T>
// (see result.h). Exceptions are not used across library boundaries.

#ifndef DQ_COMMON_STATUS_H_
#define DQ_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace dq {

/// \brief Machine-readable error category for a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kUnsatisfiable = 6,  ///< A TDG-formula / rule-set constraint cannot be met.
  kExhausted = 7,      ///< A bounded retry/search gave up.
  kIOError = 8,
  kNotImplemented = 9,
  kInternal = 10,
};

/// \brief Returns a stable human-readable name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: OK, or an error code plus message.
///
/// The OK state carries no allocation; error states allocate a small
/// descriptor. Status is cheap to move and to test for success.
class Status {
 public:
  Status() = default;  // OK

  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_unique<State>(State{code, std::move(message)})) {}

  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unsatisfiable(std::string msg) {
    return Status(StatusCode::kUnsatisfiable, std::move(msg));
  }
  static Status Exhausted(std::string msg) {
    return Status(StatusCode::kExhausted, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsUnsatisfiable() const { return code() == StatusCode::kUnsatisfiable; }
  bool IsExhausted() const { return code() == StatusCode::kExhausted; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<State> state_;  // nullptr <=> OK
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// \brief Propagates a non-OK Status to the caller.
#define DQ_RETURN_NOT_OK(expr)                   \
  do {                                           \
    ::dq::Status _dq_status = (expr);            \
    if (!_dq_status.ok()) return _dq_status;     \
  } while (false)

}  // namespace dq

#endif  // DQ_COMMON_STATUS_H_
