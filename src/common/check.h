// Debug-only assertion macro for hot-path index contracts.
//
// Hot accessors (Table::cell, Table::SetCell, Table::row) are called per
// cell inside induction and scoring loops; paying a bounds check (and the
// exception machinery of vector::at) on every call there is measurable.
// DQ_DCHECK keeps the contract explicit and enforced in Debug/sanitizer
// builds while compiling to nothing in Release. Checked entry points for
// ingest and tests (Table::cell_at) stay unconditionally guarded.

#ifndef DQ_COMMON_CHECK_H_
#define DQ_COMMON_CHECK_H_

#include <cassert>

#ifndef NDEBUG
#define DQ_DCHECK(cond) assert(cond)
#else
#define DQ_DCHECK(cond) ((void)0)
#endif

#endif  // DQ_COMMON_CHECK_H_
