#include "common/parallel.h"

#include <algorithm>
#include <atomic>

#include "common/random.h"

namespace dq {

namespace {

std::atomic<uint64_t> g_pools_created{0};
std::atomic<uint64_t> g_tasks_executed{0};
std::atomic<uint64_t> g_peak_queue_depth{0};

void UpdatePeakQueueDepth(uint64_t depth) {
  uint64_t peak = g_peak_queue_depth.load(std::memory_order_relaxed);
  while (depth > peak && !g_peak_queue_depth.compare_exchange_weak(
                             peak, depth, std::memory_order_relaxed)) {
  }
}

}  // namespace

PoolStats GlobalPoolStats() {
  PoolStats stats;
  stats.pools_created = g_pools_created.load(std::memory_order_relaxed);
  stats.tasks_executed = g_tasks_executed.load(std::memory_order_relaxed);
  stats.peak_queue_depth =
      g_peak_queue_depth.load(std::memory_order_relaxed);
  return stats;
}

int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int ResolveThreadCount(int requested) {
  // Zero and negative both mean "hardware default": every CLI and pool
  // constructor funnels through here, so the normalization is uniform
  // instead of tool-by-tool ad hoc (negatives used to clamp to 1 while 0
  // meant auto — two undocumented behaviors for one misconfiguration).
  if (requested <= 0) return HardwareThreads();
  return requested;
}

uint64_t TaskSeed(uint64_t base_seed, uint64_t task_id) {
  // Child stream: mix the task id into a decorrelated lane, then mix again
  // with the base so adjacent (seed, id) pairs never share prefixes.
  return SplitMix64(SplitMix64(base_seed) ^
                    SplitMix64(task_id + 0x9e3779b97f4a7c15ULL));
}

ThreadPool::ThreadPool(int num_threads) {
  g_pools_created.fetch_add(1, std::memory_order_relaxed);
  const int n = ResolveThreadCount(num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    UpdatePeakQueueDepth(queue_.size());
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the task's future
    g_tasks_executed.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t chunks =
      std::min<size_t>(static_cast<size_t>(num_threads()), n);
  if (chunks <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = n * c / chunks;
    const size_t end = n * (c + 1) / chunks;
    futures.push_back(Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  std::exception_ptr first_error;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::RunBatch(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (num_threads() <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Shared-state batch: helpers and the caller race on `next`; whoever
  // claims an index runs it. The state is a shared_ptr so a helper task
  // that only gets scheduled after the batch finished (all indices
  // claimed) still has a valid counter to bounce off -- it must not touch
  // `fn`, which dies when this frame returns.
  struct State {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    size_t n = 0;
    const std::function<void(size_t)>* fn = nullptr;
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr error;
  };
  auto state = std::make_shared<State>();
  state->n = n;
  state->fn = &fn;
  auto drain = [state] {
    for (;;) {
      const size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state->n) break;
      try {
        (*state->fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (!state->error) state->error = std::current_exception();
      }
      // acq_rel: item results written above become visible to the caller,
      // which acquires `done` below before reading any slot.
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          state->n) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    }
  };
  const size_t helpers =
      std::min<size_t>(static_cast<size_t>(num_threads()), n - 1);
  for (size_t h = 0; h < helpers; ++h) Submit(drain);
  drain();
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == state->n;
  });
  if (state->error) std::rethrow_exception(state->error);
}

void ParallelFor(int num_threads, size_t n,
                 const std::function<void(size_t)>& fn) {
  const int threads = ResolveThreadCount(num_threads);
  if (threads <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(threads);
  pool.ParallelFor(n, fn);
}

}  // namespace dq
