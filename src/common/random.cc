#include "common/random.h"

#include <algorithm>
#include <cassert>

namespace dq {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::UniformReal(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Rng::Exponential(double lambda) {
  std::exponential_distribution<double> dist(lambda);
  return dist(engine_);
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) {
    return static_cast<size_t>(
        UniformInt(0, static_cast<int64_t>(weights.size()) - 1));
  }
  double r = UniformReal(0.0, total);
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] > 0.0) {
      acc += weights[i];
      if (r < acc) return i;
    }
  }
  return weights.size() - 1;
}

Rng Rng::Fork(uint64_t stream_id) {
  uint64_t base = engine_();
  return Rng(SplitMix64(base ^ SplitMix64(stream_id)));
}

}  // namespace dq
