// Deterministic random number generation.
//
// Every stochastic component of the library draws from an explicitly seeded
// Rng so that rule generation, data generation, pollution and audits are
// fully reproducible. Seeds are mixed through SplitMix64 so that adjacent
// user seeds (0, 1, 2, ...) yield decorrelated streams.

#ifndef DQ_COMMON_RANDOM_H_
#define DQ_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace dq {

/// \brief SplitMix64 mixing step; maps any 64-bit seed to a well-mixed value.
uint64_t SplitMix64(uint64_t x);

/// \brief Seedable random engine with convenience draws.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(SplitMix64(seed)) {}

  /// \brief Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// \brief Uniform real in [lo, hi).
  double UniformReal(double lo, double hi);

  /// \brief Uniform real in [0, 1).
  double NextDouble() { return UniformReal(0.0, 1.0); }

  /// \brief Bernoulli draw with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  double Normal(double mean, double stddev);
  double Exponential(double lambda);

  /// \brief Index drawn from unnormalized non-negative weights.
  /// Returns weights.size() - 1 on degenerate input (all-zero weights use a
  /// uniform fallback).
  size_t WeightedIndex(const std::vector<double>& weights);

  /// \brief Fisher-Yates shuffles a vector in place.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// \brief Derives an independent child stream (e.g. per record / per rule).
  Rng Fork(uint64_t stream_id);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dq

#endif  // DQ_COMMON_RANDOM_H_
