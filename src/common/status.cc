#include "common/status.h"

namespace dq {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnsatisfiable:
      return "Unsatisfiable";
    case StatusCode::kExhausted:
      return "Exhausted";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace dq
