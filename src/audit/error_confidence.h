// Error confidence (sec. 5.2, Definitions 7 and 8).
//
// Definition 7: errorConf(P, c) = max(0, leftBound(P(c_hat), n)
//                                        - rightBound(P(c), n))
// where P is the predicted class distribution, c_hat the predicted class,
// c the observed class, and n the number of training instances the
// prediction is based on. Definition 8 combines per-classifier confidences
// by taking their maximum (adding them, as Hipp does for association rules,
// is "only valid if all rules predict values for the same attributes").

#ifndef DQ_AUDIT_ERROR_CONFIDENCE_H_
#define DQ_AUDIT_ERROR_CONFIDENCE_H_

#include "mining/classifier.h"

namespace dq {

/// \brief Definition 7 for an observed class index. An observed class of -1
/// (null value) is scored as P(c) = 0 when `flag_nulls` is set, and as 0
/// (never flagged) otherwise.
double ErrorConfidence(const Prediction& prediction, int observed_class,
                       double confidence_level, bool flag_nulls = true);

/// \brief Definition 8: the maximum of the per-classifier confidences.
double CombineErrorConfidences(const std::vector<double>& confidences);

}  // namespace dq

#endif  // DQ_AUDIT_ERROR_CONFIDENCE_H_
