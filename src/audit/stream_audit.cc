#include "audit/stream_audit.h"

#include <algorithm>
#include <fstream>
#include <optional>
#include <ostream>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/strings.h"
#include "table/csv.h"
#include "table/ingest_backend.h"

namespace dq {

namespace {

/// Single-pass ingest fan-out: every kept record lands in the segment
/// store (columnar, spillable) and is offered to the reservoir (row form,
/// bounded). Records are offered in global order — OnChunk is called
/// serially by the CSV driver — which is what keeps the sample
/// chunking-invariant.
class StreamingIngestSink : public CsvChunkSink {
 public:
  StreamingIngestSink(SegmentStore* store, ReservoirSampler* sampler)
      : store_(store), sampler_(sampler) {}

  Status OnChunk(const TableChunk& chunk,
                 const std::vector<uint8_t>& keep) override {
    for (size_t i = 0; i < chunk.num_rows(); ++i) {
      if (keep[i] == 0) continue;
      sampler_->Offer(chunk.MaterializeRow(i));
    }
    return store_->Append(chunk, &keep);
  }

 private:
  SegmentStore* store_;
  ReservoirSampler* sampler_;
};

}  // namespace

Result<StreamAuditResult> RunStreamingAudit(
    const Schema& schema, const std::string& input_path,
    const StreamAuditOptions& options) {
  if (options.sample_rows == 0) {
    return Status::InvalidArgument("sample_rows must be positive");
  }
  StreamAuditResult result;
  SegmentStore store(schema, options.store);
  ReservoirSampler sampler(options.sample_rows, options.sample_seed);
  StreamingIngestSink sink(&store, &sampler);
  DQ_RETURN_NOT_OK(ReadTableFileChunks(options.format, schema, input_path,
                                       options.csv, &sink, &result.ingest));
  DQ_RETURN_NOT_OK(store.Finish());
  result.timings.ingest_ms = result.ingest.parse_ms;
  result.total_rows = store.num_rows();

  const Table sample = sampler.BuildSampleTable(schema);
  result.sampled_rows = sample.num_rows();

  const Auditor auditor(options.auditor);
  DQ_ASSIGN_OR_RETURN(result.model, auditor.Induce(sample, &result.timings));

  // Deviation detection per segment. Records are scored independently of
  // one another (Def. 7/8 look only at the model), so segment-local audits
  // see the same confidences the whole-table audit would. Only each
  // segment's suspicious list survives — the per-record score vectors die
  // with the segment, so audit memory is bounded by the pin window plus
  // the flagged rows.
  //
  // Segments are checked in parallel across a bounded pin window of
  // `threads` segments: each window is pinned serially (the store is not
  // thread-safe), audited concurrently with one auditor thread per
  // segment into pre-assigned report slots, then merged and unpinned
  // serially in segment order. Per-segment reports are thread-count
  // invariant and the merge order is fixed, so the ranking is bitwise
  // identical for every thread count — parallelism changes only who
  // computes each slot.
  const int threads = ResolveThreadCount(options.auditor.num_threads);
  const auto window =
      std::max<size_t>(1, static_cast<size_t>(threads));
  AuditorConfig segment_config = options.auditor;
  segment_config.num_threads = 1;  // parallelism is across segments
  const Auditor segment_auditor(segment_config);
  std::optional<ThreadPool> pool;
  if (window > 1 && store.num_segments() > 1) pool.emplace(threads);

  std::vector<const Table*> pinned(window);
  std::vector<Result<AuditReport>> reports;
  std::vector<AuditTimings> segment_timings(window);
  for (size_t s0 = 0; s0 < store.num_segments(); s0 += window) {
    const size_t count = std::min(window, store.num_segments() - s0);
    for (size_t i = 0; i < count; ++i) {
      DQ_ASSIGN_OR_RETURN(pinned[i], store.Pin(s0 + i));
    }
    reports.assign(count, Status::Internal("segment audit did not run"));
    auto audit_one = [&](size_t i) {
      reports[i] = segment_auditor.Audit(result.model, *pinned[i],
                                         &segment_timings[i]);
    };
    if (pool.has_value()) {
      pool->RunBatch(count, audit_one);
    } else {
      for (size_t i = 0; i < count; ++i) audit_one(i);
    }
    for (size_t i = 0; i < count; ++i) {
      if (!reports[i].ok()) return reports[i].status();
      AuditReport& report = *reports[i];
      result.timings.audit_ms += segment_timings[i].audit_ms;
      const size_t base = store.segment_base_row(s0 + i);
      result.suspicious.reserve(result.suspicious.size() +
                                report.suspicious.size());
      for (Suspicion& suspicion : report.suspicious) {
        suspicion.row += base;  // segment-local -> global row index
        result.suspicious.push_back(std::move(suspicion));
      }
      DQ_RETURN_NOT_OK(store.Unpin(s0 + i));
    }
  }

  // Merge: each per-segment list is already stable-ranked (confidence
  // descending, row ascending on ties), and the lists were concatenated in
  // base-row order, so ties across segments sit in global row order too.
  // One stable sort by confidence alone therefore reproduces exactly the
  // ranking Auditor::Audit emits for the whole table.
  std::stable_sort(result.suspicious.begin(), result.suspicious.end(),
                   [](const Suspicion& a, const Suspicion& b) {
                     return a.error_confidence > b.error_confidence;
                   });

  result.store_stats = store.stats();
  return result;
}

Status WriteStreamAuditReportCsv(const std::vector<Suspicion>& suspicious,
                                 const Schema& schema, std::ostream* out) {
  *out << "rank,row,error_confidence,attribute,observed,suggestion,support\n";
  size_t rank = 1;
  for (const Suspicion& s : suspicious) {
    if (s.attr < 0 || static_cast<size_t>(s.attr) >= schema.num_attributes()) {
      return Status::InvalidArgument("report does not match the schema");
    }
    *out << rank++ << ',' << s.row << ','
         << FormatDouble(s.error_confidence, 6) << ','
         << CsvQuote(schema.attribute(static_cast<size_t>(s.attr)).name, ',')
         << ',' << CsvQuote(schema.ValueToString(s.attr, s.observed), ',')
         << ',' << CsvQuote(schema.ValueToString(s.attr, s.suggestion), ',')
         << ',' << FormatDouble(s.support, 1) << '\n';
  }
  if (!*out) return Status::IOError("stream write failed");
  return Status::OK();
}

Status WriteStreamAuditReportCsvFile(const std::vector<Suspicion>& suspicious,
                                     const Schema& schema,
                                     const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::IOError("cannot open '" + path + "' for writing");
  return WriteStreamAuditReportCsv(suspicious, schema, &f);
}

}  // namespace dq
