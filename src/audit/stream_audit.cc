#include "audit/stream_audit.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <utility>

#include "common/strings.h"
#include "table/csv.h"

namespace dq {

namespace {

/// Single-pass ingest fan-out: every kept record lands in the segment
/// store (columnar, spillable) and is offered to the reservoir (row form,
/// bounded). Records are offered in global order — OnChunk is called
/// serially by the CSV driver — which is what keeps the sample
/// chunking-invariant.
class StreamingIngestSink : public CsvChunkSink {
 public:
  StreamingIngestSink(SegmentStore* store, ReservoirSampler* sampler)
      : store_(store), sampler_(sampler) {}

  Status OnChunk(const TableChunk& chunk,
                 const std::vector<uint8_t>& keep) override {
    for (size_t i = 0; i < chunk.num_rows(); ++i) {
      if (keep[i] == 0) continue;
      sampler_->Offer(chunk.MaterializeRow(i));
    }
    return store_->Append(chunk, &keep);
  }

 private:
  SegmentStore* store_;
  ReservoirSampler* sampler_;
};

}  // namespace

Result<StreamAuditResult> RunStreamingCsvAudit(
    const Schema& schema, const std::string& csv_path,
    const StreamAuditOptions& options) {
  if (options.sample_rows == 0) {
    return Status::InvalidArgument("sample_rows must be positive");
  }
  StreamAuditResult result;
  SegmentStore store(schema, options.store);
  ReservoirSampler sampler(options.sample_rows, options.sample_seed);
  StreamingIngestSink sink(&store, &sampler);
  DQ_RETURN_NOT_OK(
      ReadCsvFileChunks(schema, csv_path, options.csv, &sink, &result.ingest));
  DQ_RETURN_NOT_OK(store.Finish());
  result.timings.ingest_ms = result.ingest.parse_ms;
  result.total_rows = store.num_rows();

  const Table sample = sampler.BuildSampleTable(schema);
  result.sampled_rows = sample.num_rows();

  const Auditor auditor(options.auditor);
  DQ_ASSIGN_OR_RETURN(result.model, auditor.Induce(sample, &result.timings));

  // Deviation detection per segment. Records are scored independently of
  // one another (Def. 7/8 look only at the model), so segment-local audits
  // see the same confidences the whole-table audit would. Only each
  // segment's suspicious list survives — the per-record score vectors die
  // with the segment, so audit memory is bounded by one segment plus the
  // flagged rows.
  for (size_t s = 0; s < store.num_segments(); ++s) {
    DQ_ASSIGN_OR_RETURN(const Table* segment, store.Pin(s));
    AuditTimings segment_timings;
    DQ_ASSIGN_OR_RETURN(AuditReport report,
                        auditor.Audit(result.model, *segment,
                                      &segment_timings));
    result.timings.audit_ms += segment_timings.audit_ms;
    const size_t base = store.segment_base_row(s);
    result.suspicious.reserve(result.suspicious.size() +
                              report.suspicious.size());
    for (Suspicion& suspicion : report.suspicious) {
      suspicion.row += base;  // segment-local -> global row index
      result.suspicious.push_back(std::move(suspicion));
    }
    DQ_RETURN_NOT_OK(store.Unpin(s));
  }

  // Merge: each per-segment list is already stable-ranked (confidence
  // descending, row ascending on ties), and the lists were concatenated in
  // base-row order, so ties across segments sit in global row order too.
  // One stable sort by confidence alone therefore reproduces exactly the
  // ranking Auditor::Audit emits for the whole table.
  std::stable_sort(result.suspicious.begin(), result.suspicious.end(),
                   [](const Suspicion& a, const Suspicion& b) {
                     return a.error_confidence > b.error_confidence;
                   });

  result.store_stats = store.stats();
  return result;
}

Status WriteStreamAuditReportCsv(const std::vector<Suspicion>& suspicious,
                                 const Schema& schema, std::ostream* out) {
  *out << "rank,row,error_confidence,attribute,observed,suggestion,support\n";
  size_t rank = 1;
  for (const Suspicion& s : suspicious) {
    if (s.attr < 0 || static_cast<size_t>(s.attr) >= schema.num_attributes()) {
      return Status::InvalidArgument("report does not match the schema");
    }
    *out << rank++ << ',' << s.row << ','
         << FormatDouble(s.error_confidence, 6) << ','
         << CsvQuote(schema.attribute(static_cast<size_t>(s.attr)).name, ',')
         << ',' << CsvQuote(schema.ValueToString(s.attr, s.observed), ',')
         << ',' << CsvQuote(schema.ValueToString(s.attr, s.suggestion), ',')
         << ',' << FormatDouble(s.support, 1) << '\n';
  }
  if (!*out) return Status::IOError("stream write failed");
  return Status::OK();
}

Status WriteStreamAuditReportCsvFile(const std::vector<Suspicion>& suspicious,
                                     const Schema& schema,
                                     const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::IOError("cannot open '" + path + "' for writing");
  return WriteStreamAuditReportCsv(suspicious, schema, &f);
}

}  // namespace dq
