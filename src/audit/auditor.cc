#include "audit/auditor.h"

#include <algorithm>
#include <optional>
#include <thread>
#include <unordered_set>

#include "audit/error_confidence.h"
#include "common/parallel.h"
#include "mining/encoded_dataset.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dq {

const char* InducerKindToString(InducerKind kind) {
  switch (kind) {
    case InducerKind::kC45:
      return "c4.5";
    case InducerKind::kNaiveBayes:
      return "naive-bayes";
    case InducerKind::kKnn:
      return "knn";
    case InducerKind::kOneR:
      return "oner";
  }
  return "unknown";
}

std::unique_ptr<Classifier> Auditor::MakeClassifier() const {
  switch (config_.inducer) {
    case InducerKind::kC45: {
      C45Config c = config_.c45;
      // The audit-wide thresholds parameterize the tree adjustments
      // (minInst pre-pruning and Def. 9 truncation, sec. 5.4).
      c.min_error_confidence = config_.min_error_confidence;
      c.confidence_level = config_.confidence_level;
      return std::make_unique<C45Tree>(c);
    }
    case InducerKind::kNaiveBayes:
      return std::make_unique<NaiveBayesClassifier>(config_.naive_bayes);
    case InducerKind::kKnn:
      return std::make_unique<KnnClassifier>(config_.knn);
    case InducerKind::kOneR:
      return std::make_unique<OneRClassifier>(config_.oner);
  }
  return nullptr;
}

namespace {

/// Key for the (class_attr, excluded_base_attr) pair set; attribute
/// indices are non-negative, so the packed form is collision-free.
uint64_t ExclusionKey(int class_attr, int base_attr) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(class_attr)) << 32) |
         static_cast<uint32_t>(base_attr);
}

}  // namespace

Result<AuditModel> Auditor::Induce(const Table& train,
                                   AuditTimings* timings) const {
  if (train.num_rows() == 0) {
    return Status::FailedPrecondition("cannot induce structure on empty table");
  }
  const Schema& schema = train.schema();
  obs::Span induce_span("induce");

  const std::unordered_set<int> skip(config_.skip_class_attrs.begin(),
                                     config_.skip_class_attrs.end());
  std::unordered_set<uint64_t> excluded;
  excluded.reserve(config_.excluded_base_attrs.size());
  for (const auto& [class_attr, base_attr] : config_.excluded_base_attrs) {
    excluded.insert(ExclusionKey(class_attr, base_attr));
  }

  // Collect the per-attribute induction jobs up front; each is independent
  // of the others (one classifier per class attribute, sec. 5), so they
  // dispatch across the thread pool and land in pre-assigned slots —
  // the model is identical for every thread count.
  struct Job {
    int class_attr = -1;
    std::vector<int> base_attrs;
  };
  std::vector<Job> jobs;
  for (size_t attr = 0; attr < schema.num_attributes(); ++attr) {
    const int class_attr = static_cast<int>(attr);
    if (skip.count(class_attr) != 0) continue;
    Job job;
    job.class_attr = class_attr;
    for (size_t base = 0; base < schema.num_attributes(); ++base) {
      if (base == attr) continue;
      if (excluded.count(ExclusionKey(class_attr, static_cast<int>(base))) !=
          0) {
        continue;
      }
      job.base_attrs.push_back(static_cast<int>(base));
    }
    if (job.base_attrs.empty()) continue;
    jobs.push_back(std::move(job));
  }

  const int threads = ResolveThreadCount(config_.num_threads);

  // The audit-wide encode cache: column views, SLIQ sort orders and class
  // encodings are a pure function of the table, so they are built ONCE here
  // and shared read-only by all k parallel inductions below — the work the
  // per-Train c45.encode/c45.presort phases used to redo k times.
  double encode_ms = 0.0;
  std::optional<EncodedDataset> encoded;
  {
    obs::Span encode_span("induce.encode", -1, &encode_ms);
    encoded.emplace(EncodedDataset::Build(train, config_.numeric_class_bins,
                                          threads,
                                          config_.c45.histogram_bins));
  }

  std::vector<std::optional<AttributeModel>> slots(jobs.size());
  std::vector<double> job_ms(jobs.size(), 0.0);
  std::vector<Status> fatal(jobs.size());

  // Parallelism is applied on one of two axes, never both:
  //
  //  * histogram-mode C4.5 parallelizes INSIDE each Train (the breadth-wise
  //    node frontier), so the k inductions run sequentially here sharing
  //    one pool — per-tree spans never overlap, and the summed
  //    tree_build_ms stays a faithful non-overlapping wall-clock total;
  //  * every other inducer has serial Train calls, so the k independent
  //    jobs fan out ACROSS the pool as before.
  //
  // Both axes produce bitwise-identical models for every thread count
  // (pre-assigned slots here, deterministic frontier reduction there).
  const bool intra_tree = config_.inducer == InducerKind::kC45 &&
                          config_.c45.split_mode == SplitMode::kHistogram;

  auto run_job = [&](size_t j, ThreadPool* pool) {
    obs::Span span("induce.attr", jobs[j].class_attr, &job_ms[j]);
    const Job& job = jobs[j];
    AttributeModel am;
    am.class_attr = job.class_attr;
    am.base_attrs = job.base_attrs;

    const std::optional<ClassEncoder>& fitted =
        encoded->encoder(static_cast<size_t>(job.class_attr));
    if (!fitted.has_value()) return;  // e.g. all-null ordered attribute
    am.encoder = *fitted;

    am.classifier = MakeClassifier();
    if (am.classifier == nullptr) {
      fatal[j] = Status::Internal("classifier factory returned null");
      return;
    }
    TrainingData td;
    td.table = &train;
    td.class_attr = job.class_attr;
    td.base_attrs = am.base_attrs;
    td.encoder = &am.encoder;
    td.encoded = &*encoded;
    td.pool = pool;
    Status trained = am.classifier->Train(td);
    if (!trained.ok()) {
      // An attribute that cannot be modelled (e.g. all class values null)
      // is skipped rather than failing the whole audit.
      return;
    }
    slots[j] = std::move(am);
  };

  int induction_threads = threads;
  if (intra_tree) {
    // Worker threads beyond the physical cores cannot speed node-parallel
    // induction -- they only add scheduling contention on the shared
    // frontier batches -- so the intra-tree pool is clamped to the
    // hardware concurrency. The tree is pool-size invariant (pre-assigned
    // result slots), so the clamp never changes output.
    const int hw =
        static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
    const int workers = std::min(threads, hw);
    induction_threads = workers;
    std::optional<ThreadPool> pool;
    if (workers > 1) pool.emplace(workers);
    for (size_t j = 0; j < jobs.size(); ++j) {
      run_job(j, pool.has_value() ? &*pool : nullptr);
    }
  } else {
    // Worker spans stitch under this Induce call's span: the context is
    // captured here on the dispatching thread and installed inside each
    // task. The per-attribute span is keyed by the class attribute index,
    // so the stitched tree is the same for every thread count.
    const obs::TaskContext trace_ctx = obs::Tracer::Global().CurrentContext();
    ParallelFor(threads, jobs.size(), [&](size_t j) {
      obs::TaskScope task_scope(trace_ctx);
      run_job(j, nullptr);
    });
  }
  for (const Status& status : fatal) {
    if (!status.ok()) return status;
  }

  AuditModel model;
  double presort_ms = 0.0;
  double tree_build_ms = 0.0;
  for (size_t j = 0; j < slots.size(); ++j) {
    if (!slots[j].has_value()) continue;
    if (const auto* tree =
            dynamic_cast<const C45Tree*>(slots[j]->classifier.get())) {
      presort_ms += tree->presort_ms();
      tree_build_ms += tree->build_ms();
    }
    model.AddAttributeModel(std::move(*slots[j]));
  }
  if (model.num_models() == 0) {
    return Status::FailedPrecondition("no attribute could be modelled");
  }
  obs::GetCounter("induce.attributes_modelled")->Add(model.num_models());
  if (timings != nullptr) {
    timings->threads_used = induction_threads;
    timings->induce_ms = induce_span.ElapsedMs();
    timings->encode_ms = encode_ms;
    timings->presort_ms = presort_ms;
    timings->tree_build_ms = tree_build_ms;
    timings->induce_attr_ms.clear();
    for (size_t j = 0; j < jobs.size(); ++j) {
      timings->induce_attr_ms.emplace_back(jobs[j].class_attr, job_ms[j]);
    }
  }
  return model;
}

Result<AuditReport> Auditor::Audit(const AuditModel& model, const Table& data,
                                   AuditTimings* timings) const {
  AuditReport report;
  const size_t n = data.num_rows();
  report.record_confidence.assign(n, 0.0);
  report.record_attr.assign(n, -1);
  report.record_suggestion.assign(n, Value::Null());
  report.record_support.assign(n, 0.0);
  report.flagged.assign(n, false);

  obs::Span audit_span("audit");
  const int threads = ResolveThreadCount(config_.num_threads);

  // Each record is scored independently (Def. 7/8) into its own slot, so
  // rows chunk across the pool. The bit-packed `flagged` vector and the
  // ranked suspicion list are filled serially below from the per-row
  // results, which keeps them byte-identical to a serial run. No per-row
  // spans: rows are chunked by thread count, which would make the span
  // tree schedule-dependent.
  {
    obs::Span score_span("audit.score");
    ParallelFor(threads, n, [&](size_t r) {
      const Row row = data.row(r);  // one materialization per record
      double best_conf = 0.0;
      int best_attr = -1;
      Value best_suggestion = Value::Null();
      double best_support = 0.0;

      for (const AttributeModel& am : model.models()) {
        const Value& observed = row[static_cast<size_t>(am.class_attr)];
        const int observed_class = am.encoder.Encode(observed);
        const Prediction pred = am.classifier->Predict(row);
        const double conf = ErrorConfidence(pred, observed_class,
                                            config_.confidence_level,
                                            config_.flag_null_values);
        if (conf > best_conf) {
          best_conf = conf;
          best_attr = am.class_attr;
          best_suggestion = am.encoder.Representative(pred.PredictedClass());
          best_support = pred.support;
        }
      }

      report.record_confidence[r] = best_conf;  // Def. 8 (max combination)
      report.record_attr[r] = best_attr;
      report.record_suggestion[r] = best_suggestion;
      report.record_support[r] = best_support;
    });
  }

  {
    obs::Span rank_span("audit.rank");
    for (size_t r = 0; r < n; ++r) {
      const double best_conf = report.record_confidence[r];
      const int best_attr = report.record_attr[r];
      if (best_conf >= config_.min_error_confidence && best_attr >= 0) {
        report.flagged[r] = true;
        Suspicion s;
        s.row = r;
        s.error_confidence = best_conf;
        s.attr = best_attr;
        s.observed = data.cell(r, static_cast<size_t>(best_attr));
        s.suggestion = report.record_suggestion[r];
        s.support = report.record_support[r];
        report.suspicious.push_back(std::move(s));
      }
    }

    std::stable_sort(report.suspicious.begin(), report.suspicious.end(),
                     [](const Suspicion& a, const Suspicion& b) {
                       return a.error_confidence > b.error_confidence;
                     });
  }
  obs::GetCounter("audit.records_scored")->Add(n);
  obs::GetCounter("audit.suspicions_flagged")->Add(report.suspicious.size());
  if (timings != nullptr) {
    timings->threads_used = threads;
    timings->audit_ms = audit_span.ElapsedMs();
  }
  return report;
}

Result<Table> Auditor::ApplyCorrections(const AuditReport& report,
                                        const Table& data) const {
  if (report.record_confidence.size() != data.num_rows()) {
    return Status::InvalidArgument("report does not match table size");
  }
  Table corrected = data;
  for (const Suspicion& s : report.suspicious) {
    if (s.attr < 0) continue;
    corrected.SetCell(s.row, static_cast<size_t>(s.attr), s.suggestion);
  }
  return corrected;
}

}  // namespace dq
