#include "audit/auditor.h"

#include <algorithm>

#include "audit/error_confidence.h"

namespace dq {

const char* InducerKindToString(InducerKind kind) {
  switch (kind) {
    case InducerKind::kC45:
      return "c4.5";
    case InducerKind::kNaiveBayes:
      return "naive-bayes";
    case InducerKind::kKnn:
      return "knn";
    case InducerKind::kOneR:
      return "oner";
  }
  return "unknown";
}

std::unique_ptr<Classifier> Auditor::MakeClassifier() const {
  switch (config_.inducer) {
    case InducerKind::kC45: {
      C45Config c = config_.c45;
      // The audit-wide thresholds parameterize the tree adjustments
      // (minInst pre-pruning and Def. 9 truncation, sec. 5.4).
      c.min_error_confidence = config_.min_error_confidence;
      c.confidence_level = config_.confidence_level;
      return std::make_unique<C45Tree>(c);
    }
    case InducerKind::kNaiveBayes:
      return std::make_unique<NaiveBayesClassifier>(config_.naive_bayes);
    case InducerKind::kKnn:
      return std::make_unique<KnnClassifier>(config_.knn);
    case InducerKind::kOneR:
      return std::make_unique<OneRClassifier>(config_.oner);
  }
  return nullptr;
}

Result<AuditModel> Auditor::Induce(const Table& train) const {
  if (train.num_rows() == 0) {
    return Status::FailedPrecondition("cannot induce structure on empty table");
  }
  const Schema& schema = train.schema();
  AuditModel model;

  for (size_t attr = 0; attr < schema.num_attributes(); ++attr) {
    const int class_attr = static_cast<int>(attr);
    if (std::find(config_.skip_class_attrs.begin(),
                  config_.skip_class_attrs.end(),
                  class_attr) != config_.skip_class_attrs.end()) {
      continue;
    }

    AttributeModel am;
    am.class_attr = class_attr;
    for (size_t base = 0; base < schema.num_attributes(); ++base) {
      if (base == attr) continue;
      const std::pair<int, int> exclusion{class_attr, static_cast<int>(base)};
      if (std::find(config_.excluded_base_attrs.begin(),
                    config_.excluded_base_attrs.end(),
                    exclusion) != config_.excluded_base_attrs.end()) {
        continue;
      }
      am.base_attrs.push_back(static_cast<int>(base));
    }
    if (am.base_attrs.empty()) continue;

    auto encoder =
        ClassEncoder::Fit(train, class_attr, config_.numeric_class_bins);
    if (!encoder.ok()) continue;  // e.g. all-null ordered attribute
    am.encoder = std::move(*encoder);

    am.classifier = MakeClassifier();
    if (am.classifier == nullptr) {
      return Status::Internal("classifier factory returned null");
    }
    TrainingData td;
    td.table = &train;
    td.class_attr = class_attr;
    td.base_attrs = am.base_attrs;
    td.encoder = &am.encoder;
    Status trained = am.classifier->Train(td);
    if (!trained.ok()) {
      // An attribute that cannot be modelled (e.g. all class values null)
      // is skipped rather than failing the whole audit.
      continue;
    }
    model.AddAttributeModel(std::move(am));
  }
  if (model.num_models() == 0) {
    return Status::FailedPrecondition("no attribute could be modelled");
  }
  return model;
}

Result<AuditReport> Auditor::Audit(const AuditModel& model,
                                   const Table& data) const {
  AuditReport report;
  const size_t n = data.num_rows();
  report.record_confidence.assign(n, 0.0);
  report.record_attr.assign(n, -1);
  report.record_suggestion.assign(n, Value::Null());
  report.record_support.assign(n, 0.0);
  report.flagged.assign(n, false);

  for (size_t r = 0; r < n; ++r) {
    const Row& row = data.row(r);
    double best_conf = 0.0;
    int best_attr = -1;
    Value best_suggestion = Value::Null();
    double best_support = 0.0;

    for (const AttributeModel& am : model.models()) {
      const Value& observed = row[static_cast<size_t>(am.class_attr)];
      const int observed_class = am.encoder.Encode(observed);
      const Prediction pred = am.classifier->Predict(row);
      const double conf = ErrorConfidence(pred, observed_class,
                                          config_.confidence_level,
                                          config_.flag_null_values);
      if (conf > best_conf) {
        best_conf = conf;
        best_attr = am.class_attr;
        best_suggestion = am.encoder.Representative(pred.PredictedClass());
        best_support = pred.support;
      }
    }

    report.record_confidence[r] = best_conf;  // Def. 8 (max combination)
    report.record_attr[r] = best_attr;
    report.record_suggestion[r] = best_suggestion;
    report.record_support[r] = best_support;

    if (best_conf >= config_.min_error_confidence && best_attr >= 0) {
      report.flagged[r] = true;
      Suspicion s;
      s.row = r;
      s.error_confidence = best_conf;
      s.attr = best_attr;
      s.observed = row[static_cast<size_t>(best_attr)];
      s.suggestion = best_suggestion;
      s.support = best_support;
      report.suspicious.push_back(std::move(s));
    }
  }

  std::stable_sort(report.suspicious.begin(), report.suspicious.end(),
                   [](const Suspicion& a, const Suspicion& b) {
                     return a.error_confidence > b.error_confidence;
                   });
  return report;
}

Result<Table> Auditor::ApplyCorrections(const AuditReport& report,
                                        const Table& data) const {
  if (report.record_confidence.size() != data.num_rows()) {
    return Status::InvalidArgument("report does not match table size");
  }
  Table corrected = data;
  for (const Suspicion& s : report.suspicious) {
    if (s.attr < 0) continue;
    corrected.SetCell(s.row, static_cast<size_t>(s.attr), s.suggestion);
  }
  return corrected;
}

}  // namespace dq
