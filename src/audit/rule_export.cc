#include "audit/rule_export.h"

#include <algorithm>

#include "common/strings.h"

namespace dq {

bool StructureRule::Matches(const Row& row) const {
  for (const SplitCondition& cond : conditions) {
    const Value& v = row[static_cast<size_t>(cond.attr)];
    if (v.is_null()) return false;
    switch (cond.kind) {
      case SplitCondition::Kind::kCategory:
        if (!v.is_nominal() || v.nominal_code() != cond.category) return false;
        break;
      case SplitCondition::Kind::kLessEq:
        if (v.is_nominal() || v.OrderedValue() > cond.threshold) return false;
        break;
      case SplitCondition::Kind::kGreater:
        if (v.is_nominal() || v.OrderedValue() <= cond.threshold) return false;
        break;
    }
  }
  return true;
}

std::string StructureRule::ToString(const Schema& schema,
                                    const ClassEncoder& encoder) const {
  std::string out;
  if (conditions.empty()) {
    out += "TRUE";
  } else {
    for (size_t i = 0; i < conditions.size(); ++i) {
      if (i > 0) out += " AND ";
      out += conditions[i].ToString(schema);
    }
  }
  out += " -> ";
  out += schema.attribute(static_cast<size_t>(class_attr)).name;
  out += " = ";
  out += encoder.Label(majority_class, schema);
  out += "  [support " + FormatDouble(support, 1) + ", purity " +
         FormatDouble(purity * 100.0, 2) + "%, expErrorConf " +
         FormatDouble(expected_error_confidence, 4) + "]";
  return out;
}

std::vector<StructureRule> ExtractRules(const AttributeModel& model,
                                        bool drop_useless) {
  std::vector<StructureRule> rules;
  const auto* tree = dynamic_cast<const C45Tree*>(model.classifier.get());
  if (tree == nullptr) return rules;
  tree->VisitPaths([&](const std::vector<SplitCondition>& conditions,
                       const LeafInfo& leaf) {
    if (leaf.weight <= 0.0 || leaf.majority < 0) return;
    if (drop_useless && leaf.expected_error_confidence <= 0.0) return;
    StructureRule rule;
    rule.class_attr = model.class_attr;
    rule.conditions = conditions;
    rule.majority_class = leaf.majority;
    rule.support = leaf.weight;
    rule.purity =
        leaf.class_counts[static_cast<size_t>(leaf.majority)] / leaf.weight;
    rule.expected_error_confidence = leaf.expected_error_confidence;
    rule.class_counts = leaf.class_counts;
    rules.push_back(std::move(rule));
  });
  return rules;
}

std::vector<StructureRule> ExtractStructureModel(const AuditModel& model,
                                                 bool drop_useless) {
  std::vector<StructureRule> all;
  for (const AttributeModel& am : model.models()) {
    std::vector<StructureRule> rules = ExtractRules(am, drop_useless);
    all.insert(all.end(), std::make_move_iterator(rules.begin()),
               std::make_move_iterator(rules.end()));
  }
  return all;
}

std::string RenderStructureModel(const AuditModel& model, const Schema& schema,
                                 size_t max_rules) {
  std::string out;
  for (const AttributeModel& am : model.models()) {
    std::vector<StructureRule> rules = ExtractRules(am, /*drop_useless=*/true);
    if (rules.empty()) continue;
    std::sort(rules.begin(), rules.end(),
              [](const StructureRule& a, const StructureRule& b) {
                return a.support > b.support;
              });
    out += "== classifier for " +
           schema.attribute(static_cast<size_t>(am.class_attr)).name + " (" +
           std::to_string(rules.size()) + " useful rules)\n";
    for (size_t i = 0; i < rules.size() && i < max_rules; ++i) {
      out += "  " + rules[i].ToString(schema, am.encoder) + "\n";
    }
  }
  return out;
}

}  // namespace dq
