#include "audit/rule_export.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "logic/rule_parser.h"

namespace dq {

bool StructureRule::Matches(const Row& row) const {
  for (const SplitCondition& cond : conditions) {
    const Value& v = row[static_cast<size_t>(cond.attr)];
    if (v.is_null()) return false;
    switch (cond.kind) {
      case SplitCondition::Kind::kCategory:
        if (!v.is_nominal() || v.nominal_code() != cond.category) return false;
        break;
      case SplitCondition::Kind::kLessEq:
        if (v.is_nominal() || v.OrderedValue() > cond.threshold) return false;
        break;
      case SplitCondition::Kind::kGreater:
        if (v.is_nominal() || v.OrderedValue() <= cond.threshold) return false;
        break;
    }
  }
  return true;
}

std::string StructureRule::ToString(const Schema& schema,
                                    const ClassEncoder& encoder) const {
  std::string out;
  if (conditions.empty()) {
    out += "TRUE";
  } else {
    for (size_t i = 0; i < conditions.size(); ++i) {
      if (i > 0) out += " AND ";
      out += conditions[i].ToString(schema);
    }
  }
  out += " -> ";
  out += schema.attribute(static_cast<size_t>(class_attr)).name;
  out += " = ";
  out += encoder.Label(majority_class, schema);
  out += "  [support " + FormatDouble(support, 1) + ", purity " +
         FormatDouble(purity * 100.0, 2) + "%, expErrorConf " +
         FormatDouble(expected_error_confidence, 4) + "]";
  return out;
}

std::vector<StructureRule> ExtractRules(const AttributeModel& model,
                                        bool drop_useless) {
  std::vector<StructureRule> rules;
  const auto* tree = dynamic_cast<const C45Tree*>(model.classifier.get());
  if (tree == nullptr) return rules;
  tree->VisitPaths([&](const std::vector<SplitCondition>& conditions,
                       const LeafInfo& leaf) {
    if (leaf.weight <= 0.0 || leaf.majority < 0) return;
    if (drop_useless && leaf.expected_error_confidence <= 0.0) return;
    StructureRule rule;
    rule.class_attr = model.class_attr;
    rule.conditions = conditions;
    rule.majority_class = leaf.majority;
    rule.support = leaf.weight;
    rule.purity =
        leaf.class_counts[static_cast<size_t>(leaf.majority)] / leaf.weight;
    rule.expected_error_confidence = leaf.expected_error_confidence;
    rule.class_counts = leaf.class_counts;
    rules.push_back(std::move(rule));
  });
  return rules;
}

std::vector<StructureRule> ExtractStructureModel(const AuditModel& model,
                                                 bool drop_useless) {
  std::vector<StructureRule> all;
  for (const AttributeModel& am : model.models()) {
    std::vector<StructureRule> rules = ExtractRules(am, drop_useless);
    all.insert(all.end(), std::make_move_iterator(rules.begin()),
               std::make_move_iterator(rules.end()));
  }
  return all;
}

namespace {

/// Typed constant on an ordered attribute's axis; dates floor to whole
/// days (the axis is integral, so v <= 3.5 and v <= 3 coincide).
Value OrderedConstant(const AttributeDef& attr, double x) {
  if (attr.type == DataType::kDate) {
    return Value::Date(static_cast<int32_t>(std::floor(x)));
  }
  return Value::Numeric(x);
}

/// Outcome of expressing one threshold condition inside the domain.
enum class BoundKind {
  kAtom,        ///< a real constraint
  kAlwaysTrue,  ///< vacuous for schema-valid data — drop the atom
  kNeverTrue,   ///< unsatisfiable inside the domain — the rule is void
};

/// "attr <= x" clamped to the schema domain. The grammar has no <=, so a
/// real bound renders as (attr < c OR attr = c).
BoundKind UpperBound(int attr_idx, const AttributeDef& attr, double x,
                     Formula* out) {
  const Value c = OrderedConstant(attr, x);
  const double axis = c.OrderedValue();
  const double lo = attr.type == DataType::kDate
                        ? static_cast<double>(attr.date_min)
                        : attr.numeric_min;
  const double hi = attr.type == DataType::kDate
                        ? static_cast<double>(attr.date_max)
                        : attr.numeric_max;
  if (axis >= hi) return BoundKind::kAlwaysTrue;
  if (axis < lo) return BoundKind::kNeverTrue;
  *out = Formula::Or(
      {Formula::MakeAtom(Atom::Prop(attr_idx, AtomOp::kLt, c)),
       Formula::MakeAtom(Atom::Prop(attr_idx, AtomOp::kEq, c))});
  return BoundKind::kAtom;
}

/// "attr > x" clamped to the schema domain.
BoundKind LowerBound(int attr_idx, const AttributeDef& attr, double x,
                     Formula* out) {
  const Value c = OrderedConstant(attr, x);
  const double axis = c.OrderedValue();
  const double lo = attr.type == DataType::kDate
                        ? static_cast<double>(attr.date_min)
                        : attr.numeric_min;
  const double hi = attr.type == DataType::kDate
                        ? static_cast<double>(attr.date_max)
                        : attr.numeric_max;
  if (axis < lo) return BoundKind::kAlwaysTrue;
  if (axis >= hi) return BoundKind::kNeverTrue;
  *out = Formula::MakeAtom(Atom::Prop(attr_idx, AtomOp::kGt, c));
  return BoundKind::kAtom;
}

/// Consequent formula for one class of the encoder: the category itself
/// for nominal class attributes, the bin interval for discretized ones.
Result<Formula> ClassFormula(const ClassEncoder& encoder, int cls,
                             const Schema& schema) {
  const int attr_idx = encoder.attr();
  const AttributeDef& attr = schema.attribute(static_cast<size_t>(attr_idx));
  if (!encoder.is_discretized()) {
    return Formula::MakeAtom(
        Atom::Prop(attr_idx, AtomOp::kEq, encoder.Representative(cls)));
  }
  const std::vector<double>& cuts = encoder.discretizer()->cut_points();
  const int num_bins = encoder.num_classes();
  std::vector<Formula> parts;
  if (cls > 0) {  // bin cls covers (cuts[cls-1], cuts[cls]]
    Formula f;
    switch (LowerBound(attr_idx, attr, cuts[static_cast<size_t>(cls - 1)],
                       &f)) {
      case BoundKind::kAtom:
        parts.push_back(std::move(f));
        break;
      case BoundKind::kAlwaysTrue:
        break;
      case BoundKind::kNeverTrue:
        return Status::InvalidArgument(
            "class bin lies outside the schema domain of '" + attr.name +
            "'");
    }
  }
  if (cls < num_bins - 1) {
    Formula f;
    switch (UpperBound(attr_idx, attr, cuts[static_cast<size_t>(cls)], &f)) {
      case BoundKind::kAtom:
        parts.push_back(std::move(f));
        break;
      case BoundKind::kAlwaysTrue:
        break;
      case BoundKind::kNeverTrue:
        return Status::InvalidArgument(
            "class bin lies outside the schema domain of '" + attr.name +
            "'");
    }
  }
  if (parts.empty()) {
    // A single bin (or one whose cut points straddle the whole domain)
    // only asserts that the class attribute is known.
    return Formula::MakeAtom(Atom::Prop(attr_idx, AtomOp::kIsNotNull));
  }
  if (parts.size() == 1) return std::move(parts.front());
  return Formula::And(std::move(parts));
}

}  // namespace

Result<CandidateRule> StructureRuleToCandidate(const StructureRule& rule,
                                               const ClassEncoder& encoder,
                                               const Schema& schema,
                                               double total_rows,
                                               const std::string& source) {
  if (rule.conditions.empty()) {
    return Status::InvalidArgument(
        "rule with an empty premise cannot be expressed (the grammar has no "
        "TRUE literal)");
  }
  std::vector<Formula> premise_parts;
  premise_parts.reserve(rule.conditions.size());
  for (const SplitCondition& cond : rule.conditions) {
    const AttributeDef& attr =
        schema.attribute(static_cast<size_t>(cond.attr));
    switch (cond.kind) {
      case SplitCondition::Kind::kCategory:
        premise_parts.push_back(Formula::MakeAtom(Atom::Prop(
            cond.attr, AtomOp::kEq, Value::Nominal(cond.category))));
        break;
      case SplitCondition::Kind::kLessEq: {
        Formula f;
        switch (UpperBound(cond.attr, attr, cond.threshold, &f)) {
          case BoundKind::kAtom:
            premise_parts.push_back(std::move(f));
            break;
          case BoundKind::kAlwaysTrue:
            break;
          case BoundKind::kNeverTrue:
            return Status::InvalidArgument(
                "premise threshold lies outside the schema domain of '" +
                attr.name + "'");
        }
        break;
      }
      case SplitCondition::Kind::kGreater: {
        Formula f;
        switch (LowerBound(cond.attr, attr, cond.threshold, &f)) {
          case BoundKind::kAtom:
            premise_parts.push_back(std::move(f));
            break;
          case BoundKind::kAlwaysTrue:
            break;
          case BoundKind::kNeverTrue:
            return Status::InvalidArgument(
                "premise threshold lies outside the schema domain of '" +
                attr.name + "'");
        }
        break;
      }
    }
  }
  if (premise_parts.empty()) {
    return Status::InvalidArgument(
        "every premise condition is vacuous inside the schema domain");
  }

  CandidateRule out;
  out.rule.premise = premise_parts.size() == 1
                         ? std::move(premise_parts.front())
                         : Formula::And(std::move(premise_parts));
  DQ_ASSIGN_OR_RETURN(out.rule.consequent,
                      ClassFormula(encoder, rule.majority_class, schema));
  out.source = source;
  out.confidence = rule.purity;
  const double agreeing = rule.purity * rule.support;
  out.support_count =
      static_cast<size_t>(std::llround(std::max(0.0, agreeing)));
  if (total_rows > 0.0) {
    out.support = agreeing / total_rows;
    out.coverage = rule.support / total_rows;
  }
  return out;
}

std::vector<CandidateRule> ExtractCandidateRules(const AuditModel& model,
                                                 const Schema& schema,
                                                 double total_rows) {
  std::vector<CandidateRule> out;
  for (const AttributeModel& am : model.models()) {
    const std::vector<StructureRule> rules =
        ExtractRules(am, /*drop_useless=*/true);
    const std::string& attr_name =
        schema.attribute(static_cast<size_t>(am.class_attr)).name;
    for (size_t k = 0; k < rules.size(); ++k) {
      Result<CandidateRule> cand = StructureRuleToCandidate(
          rules[k], am.encoder, schema, total_rows,
          "c45:" + attr_name + ":path#" + std::to_string(k + 1));
      if (cand.ok()) out.push_back(std::move(*cand));
    }
  }
  return out;
}

std::vector<CandidateRule> AssociationCandidates(
    const std::vector<AssociationRule>& rules, const Schema& schema,
    double total_rows) {
  (void)schema;
  std::vector<CandidateRule> out;
  out.reserve(rules.size());
  for (size_t k = 0; k < rules.size(); ++k) {
    const AssociationRule& r = rules[k];
    if (r.premise.empty()) continue;
    CandidateRule cand;
    cand.rule = r.ToTdgRule();
    cand.source = "assoc#" + std::to_string(k + 1);
    cand.confidence = r.confidence;
    cand.support_count =
        static_cast<size_t>(std::llround(std::max(0.0, r.support)));
    if (total_rows > 0.0) {
      cand.support = r.support / total_rows;
      if (r.confidence > 0.0) {
        cand.coverage = r.support / r.confidence / total_rows;
      }
    }
    out.push_back(std::move(cand));
  }
  return out;
}

std::string RenderSuggestedRuleFile(const std::vector<CandidateRule>& rules,
                                    const Schema& schema,
                                    const std::string& header) {
  std::string out;
  if (!header.empty()) {
    size_t start = 0;
    while (start <= header.size()) {
      const size_t end = header.find('\n', start);
      const std::string line =
          header.substr(start, end == std::string::npos ? std::string::npos
                                                        : end - start);
      out += "# " + line + "\n";
      if (end == std::string::npos) break;
      start = end + 1;
    }
  }
  for (const CandidateRule& r : rules) {
    out += "# @rule conf=" + FormatDouble(r.confidence, 4) +
           " support=" + std::to_string(r.support_count) +
           " coverage=" + FormatDouble(r.coverage, 6) +
           " source=" + r.source + "\n";
    out += RenderRuleSource(r.rule, schema) + "\n";
  }
  return out;
}

std::string RenderStructureModel(const AuditModel& model, const Schema& schema,
                                 size_t max_rules) {
  std::string out;
  for (const AttributeModel& am : model.models()) {
    std::vector<StructureRule> rules = ExtractRules(am, /*drop_useless=*/true);
    if (rules.empty()) continue;
    std::sort(rules.begin(), rules.end(),
              [](const StructureRule& a, const StructureRule& b) {
                return a.support > b.support;
              });
    out += "== classifier for " +
           schema.attribute(static_cast<size_t>(am.class_attr)).name + " (" +
           std::to_string(rules.size()) + " useful rules)\n";
    for (size_t i = 0; i < rules.size() && i < max_rules; ++i) {
      out += "  " + rules[i].ToString(schema, am.encoder) + "\n";
    }
  }
  return out;
}

}  // namespace dq
