#include "audit/summary.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace dq {

AuditSummary SummarizeReport(const AuditReport& report, const Table& data) {
  AuditSummary summary;
  summary.records = data.num_rows();
  summary.flagged = report.NumFlagged();
  summary.flag_rate =
      summary.records == 0
          ? 0.0
          : static_cast<double>(summary.flagged) /
                static_cast<double>(summary.records);

  std::map<int, AttributeSummary> per_attr;
  for (const Suspicion& s : report.suspicious) {
    AttributeSummary& a = per_attr[s.attr];
    a.attr = s.attr;
    ++a.flagged;
    a.mean_confidence += s.error_confidence;
    a.max_confidence = std::max(a.max_confidence, s.error_confidence);
    if (s.observed.is_null()) ++a.null_observations;
  }
  for (auto& [attr, a] : per_attr) {
    a.mean_confidence /= static_cast<double>(a.flagged);
    summary.by_attribute.push_back(a);
  }
  std::sort(summary.by_attribute.begin(), summary.by_attribute.end(),
            [](const AttributeSummary& x, const AttributeSummary& y) {
              return x.flagged > y.flagged;
            });
  return summary;
}

std::string RenderAuditSummary(const AuditSummary& summary,
                               const Schema& schema) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "audited %zu records, %zu suspicious (%.2f%%)\n",
                summary.records, summary.flagged, summary.flag_rate * 100.0);
  out += line;
  if (summary.by_attribute.empty()) return out;
  std::snprintf(line, sizeof(line), "%-16s %8s %10s %10s %8s\n", "attribute",
                "flags", "mean conf", "max conf", "nulls");
  out += line;
  for (const AttributeSummary& a : summary.by_attribute) {
    std::snprintf(line, sizeof(line), "%-16s %8zu %10.4f %10.4f %8zu\n",
                  schema.attribute(static_cast<size_t>(a.attr)).name.c_str(),
                  a.flagged, a.mean_confidence, a.max_confidence,
                  a.null_observations);
    out += line;
  }
  return out;
}

}  // namespace dq
