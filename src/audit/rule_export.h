// Decision tree -> rule set transformation (sec. 5.4).
//
// "It is straightforward to represent an induced decision tree as a set of
// rules from the root to its leaves. If the dependency of a class attribute
// on its base attributes is very punctiform, it is often useful to reduce
// this set to the rules that do not have an expected error confidence of
// zero and thereby cannot contribute to an error detection." The surviving
// rules across all attribute models form the exported structure model — "a
// set of integrity constraints that must hold with a given probability".

#ifndef DQ_AUDIT_RULE_EXPORT_H_
#define DQ_AUDIT_RULE_EXPORT_H_

#include <string>
#include <vector>

#include "audit/audit_model.h"
#include "lint/suggest.h"
#include "mining/assoc_rules.h"
#include "mining/c45.h"

namespace dq {

/// \brief One exported structure rule: path conditions -> majority class.
struct StructureRule {
  int class_attr = -1;
  std::vector<SplitCondition> conditions;
  int majority_class = -1;
  /// Training instances the rule is based on ("It was based on 16118
  /// instances", sec. 6.2).
  double support = 0.0;
  /// Share of the support agreeing with the majority class.
  double purity = 0.0;
  /// Expected error confidence of the originating leaf (Def. 9).
  double expected_error_confidence = 0.0;

  /// Full (weighted) class distribution of the originating leaf; rule-set
  /// based checking (structure_model.h) scores deviations from it.
  std::vector<double> class_counts;

  /// \brief True when every condition holds on `row` (nulls never match).
  bool Matches(const Row& row) const;

  std::string ToString(const Schema& schema, const ClassEncoder& encoder) const;
};

/// \brief Extracts the rule set of one attribute model. Only meaningful for
/// C4.5 classifiers; other inducers yield an empty set. When
/// `drop_useless` is set, rules with zero expected error confidence are
/// deleted (sec. 5.4).
std::vector<StructureRule> ExtractRules(const AttributeModel& model,
                                        bool drop_useless = true);

/// \brief Extracts and concatenates the rule sets of every model in an
/// AuditModel (the full structure model).
std::vector<StructureRule> ExtractStructureModel(const AuditModel& model,
                                                 bool drop_useless = true);

/// \brief Renders a structure model for human review, most-supported rules
/// first.
std::string RenderStructureModel(const AuditModel& model, const Schema& schema,
                                 size_t max_rules = 50);

// --- dqsuggest candidate extraction --------------------------------------
//
// Induced models become *parseable* TDG-rule candidates: C4.5 path
// conditions turn into conjunctions of atoms (`A <= c` is spelled
// `(A < c OR A = c)` — the grammar has no <=; date thresholds floor to
// whole days), discretized class consequents turn into bin-interval
// formulas over the encoder's cut points, and association rules map to
// equality atoms on both sides. Conditions that are vacuous for
// schema-valid data (a threshold beyond the domain bound, mined from
// polluted training values) are dropped; rules whose premise or consequent
// is unsatisfiable inside the domain fail to convert and are skipped.
// Annotations follow the standard mining measures: confidence =
// P(consequent | premise), support = fraction of rows matching premise and
// consequent, coverage = fraction matching the premise.

/// \brief Converts one structure rule into a candidate. `total_rows` is
/// the training row count (for support/coverage fractions); `source` is
/// the provenance tag embedded in diagnostics. Fails when the rule cannot
/// be expressed inside the schema domain (empty premise, vacuous bin).
Result<CandidateRule> StructureRuleToCandidate(const StructureRule& rule,
                                               const ClassEncoder& encoder,
                                               const Schema& schema,
                                               double total_rows,
                                               const std::string& source);

/// \brief Extracts candidates from every C4.5 model of `model`
/// (inconvertible rules are skipped). Provenance: "c45:<attr>:path#<k>".
std::vector<CandidateRule> ExtractCandidateRules(const AuditModel& model,
                                                 const Schema& schema,
                                                 double total_rows);

/// \brief Converts mined association rules into candidates. Provenance:
/// "assoc#<k>".
std::vector<CandidateRule> AssociationCandidates(
    const std::vector<AssociationRule>& rules, const Schema& schema,
    double total_rows);

/// \brief Renders candidates as an annotated rule file that dqlint,
/// dqaudit --rules-file and dqgen accept unchanged: each rule line is
/// preceded by a "# @rule conf=... support=... coverage=... source=..."
/// metadata comment. `header` becomes a leading comment block (may be
/// empty).
std::string RenderSuggestedRuleFile(const std::vector<CandidateRule>& rules,
                                    const Schema& schema,
                                    const std::string& header);

}  // namespace dq

#endif  // DQ_AUDIT_RULE_EXPORT_H_
