// Decision tree -> rule set transformation (sec. 5.4).
//
// "It is straightforward to represent an induced decision tree as a set of
// rules from the root to its leaves. If the dependency of a class attribute
// on its base attributes is very punctiform, it is often useful to reduce
// this set to the rules that do not have an expected error confidence of
// zero and thereby cannot contribute to an error detection." The surviving
// rules across all attribute models form the exported structure model — "a
// set of integrity constraints that must hold with a given probability".

#ifndef DQ_AUDIT_RULE_EXPORT_H_
#define DQ_AUDIT_RULE_EXPORT_H_

#include <string>
#include <vector>

#include "audit/audit_model.h"
#include "mining/c45.h"

namespace dq {

/// \brief One exported structure rule: path conditions -> majority class.
struct StructureRule {
  int class_attr = -1;
  std::vector<SplitCondition> conditions;
  int majority_class = -1;
  /// Training instances the rule is based on ("It was based on 16118
  /// instances", sec. 6.2).
  double support = 0.0;
  /// Share of the support agreeing with the majority class.
  double purity = 0.0;
  /// Expected error confidence of the originating leaf (Def. 9).
  double expected_error_confidence = 0.0;

  /// Full (weighted) class distribution of the originating leaf; rule-set
  /// based checking (structure_model.h) scores deviations from it.
  std::vector<double> class_counts;

  /// \brief True when every condition holds on `row` (nulls never match).
  bool Matches(const Row& row) const;

  std::string ToString(const Schema& schema, const ClassEncoder& encoder) const;
};

/// \brief Extracts the rule set of one attribute model. Only meaningful for
/// C4.5 classifiers; other inducers yield an empty set. When
/// `drop_useless` is set, rules with zero expected error confidence are
/// deleted (sec. 5.4).
std::vector<StructureRule> ExtractRules(const AttributeModel& model,
                                        bool drop_useless = true);

/// \brief Extracts and concatenates the rule sets of every model in an
/// AuditModel (the full structure model).
std::vector<StructureRule> ExtractStructureModel(const AuditModel& model,
                                                 bool drop_useless = true);

/// \brief Renders a structure model for human review, most-supported rules
/// first.
std::string RenderStructureModel(const AuditModel& model, const Schema& schema,
                                 size_t max_rules = 50);

}  // namespace dq

#endif  // DQ_AUDIT_RULE_EXPORT_H_
