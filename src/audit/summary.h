// Per-attribute audit summaries: the monitoring view a data quality
// engineer keeps across loads (fig. 1 role; "product quality monitoring,
// early error detection and analysis, and reporting" is what QUIS serves,
// sec. 3.2).

#ifndef DQ_AUDIT_SUMMARY_H_
#define DQ_AUDIT_SUMMARY_H_

#include <string>
#include <vector>

#include "audit/auditor.h"

namespace dq {

/// \brief Aggregates of one attribute's flags within a report.
struct AttributeSummary {
  int attr = -1;
  size_t flagged = 0;
  double mean_confidence = 0.0;
  double max_confidence = 0.0;
  size_t null_observations = 0;  ///< flagged records whose observed value is null
};

/// \brief Whole-report aggregates.
struct AuditSummary {
  size_t records = 0;
  size_t flagged = 0;
  double flag_rate = 0.0;
  /// Attributes ranked by flag volume (only attributes with flags appear).
  std::vector<AttributeSummary> by_attribute;
};

/// \brief Builds the summary from a report.
AuditSummary SummarizeReport(const AuditReport& report, const Table& data);

/// \brief Renders the summary as an aligned text table.
std::string RenderAuditSummary(const AuditSummary& summary,
                               const Schema& schema);

}  // namespace dq

#endif  // DQ_AUDIT_SUMMARY_H_
