#include "audit/structure_model.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "audit/error_confidence.h"
#include "common/parallel.h"
#include "common/strings.h"

namespace dq {

namespace {

std::string FullPrecision(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

StructureModel StructureModel::FromAuditModel(const AuditModel& model,
                                              const Schema& schema,
                                              bool drop_useless) {
  (void)schema;
  StructureModel out;
  for (const AttributeModel& am : model.models()) {
    AttributeRuleSet set;
    set.class_attr = am.class_attr;
    set.encoder = am.encoder;
    set.rules = ExtractRules(am, drop_useless);
    if (!set.rules.empty()) {
      out.rule_sets_.push_back(std::move(set));
    }
  }
  return out;
}

size_t StructureModel::TotalRules() const {
  size_t n = 0;
  for (const AttributeRuleSet& set : rule_sets_) n += set.rules.size();
  return n;
}

Result<AuditReport> StructureModel::Check(const Table& data,
                                          const AuditorConfig& config) const {
  AuditReport report;
  const size_t n = data.num_rows();
  report.record_confidence.assign(n, 0.0);
  report.record_attr.assign(n, -1);
  report.record_suggestion.assign(n, Value::Null());
  report.record_support.assign(n, 0.0);
  report.flagged.assign(n, false);

  // Records are independent: chunk rows across the pool into pre-assigned
  // slots, then build the bit-packed flags and the ranked list serially so
  // the report matches a serial run byte for byte.
  ParallelFor(ResolveThreadCount(config.num_threads), n, [&](size_t r) {
    const RecordVerdict verdict = CheckRecord(data.row(r), config);
    report.record_confidence[r] = verdict.error_confidence;
    report.record_attr[r] = verdict.attr;
    report.record_suggestion[r] = verdict.suggestion;
    report.record_support[r] = verdict.support;
  });
  for (size_t r = 0; r < n; ++r) {
    const int attr = report.record_attr[r];
    if (attr < 0 ||
        report.record_confidence[r] < config.min_error_confidence) {
      continue;
    }
    report.flagged[r] = true;
    Suspicion s;
    s.row = r;
    s.error_confidence = report.record_confidence[r];
    s.attr = attr;
    s.observed = data.cell(r, static_cast<size_t>(attr));
    s.suggestion = report.record_suggestion[r];
    s.support = report.record_support[r];
    report.suspicious.push_back(std::move(s));
  }
  std::stable_sort(report.suspicious.begin(), report.suspicious.end(),
                   [](const Suspicion& a, const Suspicion& b) {
                     return a.error_confidence > b.error_confidence;
                   });
  return report;
}

StructureModel::RecordVerdict StructureModel::CheckRecord(
    const Row& row, const AuditorConfig& config) const {
  RecordVerdict verdict;
  for (const AttributeRuleSet& set : rule_sets_) {
    // Tree paths are mutually exclusive: at most one rule matches.
    const StructureRule* matched = nullptr;
    for (const StructureRule& rule : set.rules) {
      if (rule.Matches(row)) {
        matched = &rule;
        break;
      }
    }
    if (matched == nullptr || matched->support <= 0.0) continue;

    Prediction pred;
    pred.support = matched->support;
    pred.distribution.reserve(matched->class_counts.size());
    for (double c : matched->class_counts) {
      pred.distribution.push_back(c / matched->support);
    }
    const int observed =
        set.encoder.Encode(row[static_cast<size_t>(set.class_attr)]);
    const double conf = ErrorConfidence(pred, observed,
                                        config.confidence_level,
                                        config.flag_null_values);
    if (conf > verdict.error_confidence) {
      verdict.error_confidence = conf;
      verdict.attr = set.class_attr;
      verdict.suggestion = set.encoder.Representative(matched->majority_class);
      verdict.support = matched->support;
    }
  }
  verdict.suspicious = verdict.attr >= 0 &&
                       verdict.error_confidence >= config.min_error_confidence;
  return verdict;
}

// ---------------------------------------------------------------------------
// Serialization

Status StructureModel::SerializeTo(std::ostream* out) const {
  *out << "dqmodel v1\n";
  for (const AttributeRuleSet& set : rule_sets_) {
    *out << "attrset " << set.class_attr;
    if (set.encoder.is_discretized()) {
      const auto& disc = *set.encoder.discretizer();
      *out << " discretized " << disc.cut_points().size();
      for (double c : disc.cut_points()) *out << ' ' << FullPrecision(c);
      *out << ' ' << disc.num_bins();
      for (int b = 0; b < disc.num_bins(); ++b) {
        *out << ' ' << FullPrecision(disc.Representative(b));
      }
      *out << '\n';
    } else {
      *out << " nominal\n";
    }
    for (const StructureRule& rule : set.rules) {
      *out << "rule " << rule.majority_class << ' '
           << FullPrecision(rule.support) << ' ' << FullPrecision(rule.purity)
           << ' ' << FullPrecision(rule.expected_error_confidence)
           << " counts " << rule.class_counts.size();
      for (double c : rule.class_counts) *out << ' ' << FullPrecision(c);
      *out << " conds " << rule.conditions.size() << '\n';
      for (const SplitCondition& cond : rule.conditions) {
        *out << "cond " << cond.attr << ' ';
        switch (cond.kind) {
          case SplitCondition::Kind::kCategory:
            *out << "cat " << cond.category;
            break;
          case SplitCondition::Kind::kLessEq:
            *out << "le " << FullPrecision(cond.threshold);
            break;
          case SplitCondition::Kind::kGreater:
            *out << "gt " << FullPrecision(cond.threshold);
            break;
        }
        *out << '\n';
      }
    }
  }
  *out << "end\n";
  if (!*out) return Status::IOError("stream write failed");
  return Status::OK();
}

Status StructureModel::SaveToFile(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return Status::IOError("cannot open '" + path + "' for writing");
  return SerializeTo(&f);
}

namespace {

Status ModelParseError(size_t line_no, const std::string& what) {
  return Status::IOError("dqmodel parse error at line " +
                         std::to_string(line_no) + ": " + what);
}

}  // namespace

Result<StructureModel> StructureModel::Deserialize(const Schema& schema,
                                                   std::istream* in) {
  StructureModel model;
  std::string line;
  size_t line_no = 0;

  auto next_line = [&]() -> bool {
    while (std::getline(*in, line)) {
      ++line_no;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!TrimWhitespace(line).empty()) return true;
    }
    return false;
  };

  if (!next_line() || line != "dqmodel v1") {
    return ModelParseError(line_no, "missing 'dqmodel v1' header");
  }

  AttributeRuleSet* current = nullptr;
  while (next_line()) {
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "end") {
      return model;
    }
    if (tag == "attrset") {
      int attr = -1;
      std::string kind;
      ls >> attr >> kind;
      if (!ls) return ModelParseError(line_no, "malformed attrset");
      std::optional<EqualFrequencyDiscretizer> disc;
      if (kind == "discretized") {
        size_t ncuts = 0;
        ls >> ncuts;
        std::vector<double> cuts(ncuts);
        for (double& c : cuts) ls >> c;
        size_t nreps = 0;
        ls >> nreps;
        std::vector<double> reps(nreps);
        for (double& r : reps) ls >> r;
        if (!ls) return ModelParseError(line_no, "malformed discretizer");
        auto built = EqualFrequencyDiscretizer::FromParts(std::move(cuts),
                                                          std::move(reps));
        if (!built.ok()) return ModelParseError(line_no, built.status().message());
        disc = std::move(*built);
      } else if (kind != "nominal") {
        return ModelParseError(line_no, "unknown encoder kind '" + kind + "'");
      }
      auto encoder = ClassEncoder::FromParts(schema, attr, std::move(disc));
      if (!encoder.ok()) return ModelParseError(line_no, encoder.status().message());
      AttributeRuleSet set;
      set.class_attr = attr;
      set.encoder = std::move(*encoder);
      model.rule_sets_.push_back(std::move(set));
      current = &model.rule_sets_.back();
      continue;
    }
    if (tag == "rule") {
      if (current == nullptr) return ModelParseError(line_no, "rule before attrset");
      StructureRule rule;
      rule.class_attr = current->class_attr;
      std::string counts_tag, conds_tag;
      size_t ncounts = 0, nconds = 0;
      ls >> rule.majority_class >> rule.support >> rule.purity >>
          rule.expected_error_confidence >> counts_tag >> ncounts;
      if (!ls || counts_tag != "counts") {
        return ModelParseError(line_no, "malformed rule");
      }
      rule.class_counts.resize(ncounts);
      for (double& c : rule.class_counts) ls >> c;
      ls >> conds_tag >> nconds;
      if (!ls || conds_tag != "conds") {
        return ModelParseError(line_no, "malformed rule conditions count");
      }
      if (static_cast<int>(ncounts) !=
          current->encoder.num_classes()) {
        return ModelParseError(line_no, "class count arity mismatch");
      }
      for (size_t i = 0; i < nconds; ++i) {
        if (!next_line()) return ModelParseError(line_no, "truncated conditions");
        std::istringstream cs(line);
        std::string cond_tag, op;
        SplitCondition cond;
        cs >> cond_tag >> cond.attr >> op;
        if (!cs || cond_tag != "cond") {
          return ModelParseError(line_no, "malformed cond");
        }
        if (cond.attr < 0 ||
            static_cast<size_t>(cond.attr) >= schema.num_attributes()) {
          return ModelParseError(line_no, "cond attribute out of range");
        }
        if (op == "cat") {
          cond.kind = SplitCondition::Kind::kCategory;
          cs >> cond.category;
        } else if (op == "le") {
          cond.kind = SplitCondition::Kind::kLessEq;
          cs >> cond.threshold;
        } else if (op == "gt") {
          cond.kind = SplitCondition::Kind::kGreater;
          cs >> cond.threshold;
        } else {
          return ModelParseError(line_no, "unknown cond op '" + op + "'");
        }
        if (!cs) return ModelParseError(line_no, "malformed cond operand");
        rule.conditions.push_back(cond);
      }
      current->rules.push_back(std::move(rule));
      continue;
    }
    return ModelParseError(line_no, "unknown tag '" + tag + "'");
  }
  return ModelParseError(line_no, "missing 'end'");
}

Result<StructureModel> StructureModel::LoadFromFile(const Schema& schema,
                                                    const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot open '" + path + "' for reading");
  return Deserialize(schema, &f);
}

}  // namespace dq
