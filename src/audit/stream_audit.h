// Out-of-core audit: memory-budgeted streaming variant of the classic
// ingest -> Induce -> Audit pipeline.
//
// The classic path holds the whole table plus per-record score vectors in
// RAM. The streaming path bounds both sides:
//
//   1. Ingest streams the CSV once through a CsvChunkSink that feeds a
//      SegmentStore (segments spill to disk past --memory-budget) and a
//      ReservoirSampler (a uniform sample_rows-row sample of the stream).
//   2. Structure induction trains on the sample table, so the
//      EncodedDataset is bounded by the sample size, not the input.
//   3. Deviation detection walks the segments in order — Pin, Audit,
//      offset rows by the segment's base row, Unpin — keeping only each
//      segment's suspicious list, then merges the lists into the global
//      ranking with one stable sort by error confidence.
//
// Determinism: the sample depends only on (seed, record sequence); segment
// boundaries depend only on the record sequence; the merged ranking equals
// the ranking Auditor::Audit would produce over the whole table with the
// same model. Hence the report is bitwise identical for every memory
// budget, and — when sample_rows >= total rows, where the sample IS the
// table in original order — identical to the classic in-memory path too.

#ifndef DQ_AUDIT_STREAM_AUDIT_H_
#define DQ_AUDIT_STREAM_AUDIT_H_

#include <string>
#include <vector>

#include "audit/auditor.h"
#include "mining/sample.h"
#include "table/csv.h"
#include "table/ingest_backend.h"
#include "table/segment_store.h"

namespace dq {

struct StreamAuditOptions {
  /// Reservoir capacity for the induction sample. When this reaches the
  /// input size the sample is the full table and the streaming audit
  /// reproduces the classic path exactly.
  size_t sample_rows = 200000;

  /// Seed of the reservoir's RNG (fixed default: rerunning the same file
  /// with the same options gives the same report).
  uint64_t sample_seed = 2003;

  /// Segment sizing, memory budget and spill directory.
  SegmentStoreOptions store;

  /// CSV dialect, error policy and decode threads for the single pass.
  CsvOptions csv;

  /// On-disk format of the input file (CSV text or dqcol columnar). The
  /// dqcol path feeds the same chunk sink, so the audit output is byte
  /// identical for a faithfully converted file.
  IngestFormat format = IngestFormat::kCsv;

  AuditorConfig auditor;
};

/// \brief Everything a streaming audit run produces. Unlike AuditReport
/// there are no per-record vectors — only the ranked suspicious list, so
/// the result's footprint scales with the number of flagged records.
struct StreamAuditResult {
  AuditModel model;
  AuditTimings timings;
  IngestReport ingest;
  size_t total_rows = 0;    ///< rows audited (kept by ingest)
  size_t sampled_rows = 0;  ///< rows the model was trained on
  /// Globally ranked suspicions (error confidence descending, row
  /// ascending on ties); Suspicion::row is the global row index.
  std::vector<Suspicion> suspicious;
  SegmentStore::Stats store_stats;
};

/// \brief Runs the full streaming audit over a CSV or dqcol file
/// (options.format). Deviation detection is segment-parallel when
/// options.auditor.num_threads allows: segments are pinned in a bounded
/// window and audited concurrently, one auditor thread per segment, then
/// merged serially in segment order — so the ranking stays bitwise
/// identical for every thread count.
Result<StreamAuditResult> RunStreamingAudit(const Schema& schema,
                                            const std::string& input_path,
                                            const StreamAuditOptions& options);

/// \brief Writes the ranked streaming suspicions in exactly the classic
/// report CSV format (rank,row,error_confidence,attribute,observed,
/// suggestion,support) — byte-compatible with WriteAuditReportCsv.
Status WriteStreamAuditReportCsv(const std::vector<Suspicion>& suspicious,
                                 const Schema& schema, std::ostream* out);

Status WriteStreamAuditReportCsvFile(const std::vector<Suspicion>& suspicious,
                                     const Schema& schema,
                                     const std::string& path);

}  // namespace dq

#endif  // DQ_AUDIT_STREAM_AUDIT_H_
