#include "audit/audit_model.h"

namespace dq {

const AttributeModel* AuditModel::ModelFor(int attr) const {
  for (const AttributeModel& m : models_) {
    if (m.class_attr == attr) return &m;
  }
  return nullptr;
}

}  // namespace dq
