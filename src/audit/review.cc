#include "audit/review.h"

#include <algorithm>

#include "audit/error_confidence.h"
#include "common/strings.h"

namespace dq {

Result<SuspicionDetail> ExplainRecord(const AuditModel& model,
                                      const Table& data, size_t row,
                                      const AuditorConfig& config) {
  if (row >= data.num_rows()) {
    return Status::OutOfRange("row index " + std::to_string(row));
  }
  const Row& record = data.row(row);
  SuspicionDetail detail;
  detail.row = row;

  for (const AttributeModel& am : model.models()) {
    const Value& observed = record[static_cast<size_t>(am.class_attr)];
    const int observed_class = am.encoder.Encode(observed);
    const Prediction pred = am.classifier->Predict(record);
    const double conf = ErrorConfidence(pred, observed_class,
                                        config.confidence_level,
                                        config.flag_null_values);
    if (conf > 0.0) {
      ClassifierOpinion opinion;
      opinion.class_attr = am.class_attr;
      opinion.error_confidence = conf;
      opinion.observed_class = observed_class;
      opinion.predicted_class = pred.PredictedClass();
      opinion.support = pred.support;
      opinion.distribution = pred.distribution;
      detail.dissenting.push_back(std::move(opinion));
    } else {
      ++detail.agreeing;
    }
  }
  std::sort(detail.dissenting.begin(), detail.dissenting.end(),
            [](const ClassifierOpinion& a, const ClassifierOpinion& b) {
              return a.error_confidence > b.error_confidence;
            });
  std::vector<double> confidences;
  confidences.reserve(detail.dissenting.size());
  for (const ClassifierOpinion& o : detail.dissenting) {
    confidences.push_back(o.error_confidence);
  }
  detail.combined_confidence = CombineErrorConfidences(confidences);
  return detail;
}

std::string RenderSuspicionDetail(const SuspicionDetail& detail,
                                  const AuditModel& model, const Table& data) {
  const Schema& schema = data.schema();
  const Row& record = data.row(detail.row);

  std::string out = "record " + std::to_string(detail.row) +
                    " (combined error confidence " +
                    FormatDouble(detail.combined_confidence, 4) + ")\n";
  out += "  values:";
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    out += " " + schema.attribute(a).name + "=" +
           schema.ValueToString(static_cast<int>(a), record[a]);
  }
  out += "\n";
  if (detail.dissenting.empty()) {
    out += "  no classifier dissents\n";
    return out;
  }
  for (const ClassifierOpinion& o : detail.dissenting) {
    const AttributeModel* am = model.ModelFor(o.class_attr);
    if (am == nullptr) continue;
    const std::string attr_name =
        schema.attribute(static_cast<size_t>(o.class_attr)).name;
    out += "  " + attr_name + ": observed " +
           (o.observed_class < 0 ? std::string("null")
                                 : am->encoder.Label(o.observed_class, schema)) +
           ", predicted " + am->encoder.Label(o.predicted_class, schema) +
           " (conf " + FormatDouble(o.error_confidence, 4) + ", support " +
           FormatDouble(o.support, 0) + ")\n";
    // Head of the predicted distribution (top 3 classes).
    std::vector<std::pair<double, int>> ranked;
    for (size_t c = 0; c < o.distribution.size(); ++c) {
      if (o.distribution[c] > 0.0) {
        ranked.emplace_back(o.distribution[c], static_cast<int>(c));
      }
    }
    std::sort(ranked.rbegin(), ranked.rend());
    out += "      distribution:";
    for (size_t i = 0; i < ranked.size() && i < 3; ++i) {
      out += " " + am->encoder.Label(ranked[i].second, schema) + ":" +
             FormatDouble(ranked[i].first, 3);
    }
    out += "\n";
  }
  out += "  " + std::to_string(detail.agreeing) + " classifier(s) agree\n";
  return out;
}

}  // namespace dq
