// Interactive error review (sec. 3.1 / 5.3).
//
// "The correction of outliers should always be supervised by a quality
// engineer" and "in interactive error correction, the predicted
// distributions of all classifiers that indicate a data error can be useful
// in finding the true reason for a possible error. This is because a
// difference between an observed and predicted value sometimes lays in
// erroneous base attribute values." ExplainRecord gathers every
// classifier's opinion about one record so a quality engineer can decide
// which attribute is actually wrong.

#ifndef DQ_AUDIT_REVIEW_H_
#define DQ_AUDIT_REVIEW_H_

#include <string>
#include <vector>

#include "audit/auditor.h"

namespace dq {

/// \brief One classifier's view of a record.
struct ClassifierOpinion {
  int class_attr = -1;
  double error_confidence = 0.0;
  int observed_class = -1;  ///< -1 for null
  int predicted_class = -1;
  double support = 0.0;
  std::vector<double> distribution;
};

/// \brief All classifier opinions about one record, strongest first.
struct SuspicionDetail {
  size_t row = 0;
  /// Def. 8 combination over the opinions.
  double combined_confidence = 0.0;
  /// Every classifier whose error confidence is positive, descending.
  std::vector<ClassifierOpinion> dissenting;
  /// Number of classifiers that agree with the record.
  size_t agreeing = 0;
};

/// \brief Evaluates every attribute model of `model` on one record.
Result<SuspicionDetail> ExplainRecord(const AuditModel& model,
                                      const Table& data, size_t row,
                                      const AuditorConfig& config);

/// \brief Renders a detail as a human-readable review sheet: per dissenting
/// classifier the observed value, predicted value, confidence, support and
/// the head of the predicted distribution.
std::string RenderSuspicionDetail(const SuspicionDetail& detail,
                                  const AuditModel& model, const Table& data);

}  // namespace dq

#endif  // DQ_AUDIT_REVIEW_H_
