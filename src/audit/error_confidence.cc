#include "audit/error_confidence.h"

#include <algorithm>

#include "stats/confidence.h"

namespace dq {

double ErrorConfidence(const Prediction& prediction, int observed_class,
                       double confidence_level, bool flag_nulls) {
  const int predicted = prediction.PredictedClass();
  if (predicted < 0 || prediction.support <= 0.0) return 0.0;
  if (observed_class == predicted) return 0.0;
  if (observed_class < 0 && !flag_nulls) return 0.0;

  const double p_pred = prediction.ProbabilityOf(predicted);
  const double p_obs =
      observed_class < 0 ? 0.0 : prediction.ProbabilityOf(observed_class);
  const double conf =
      LeftBound(p_pred, prediction.support, confidence_level) -
      RightBound(p_obs, prediction.support, confidence_level);
  return std::max(0.0, conf);
}

double CombineErrorConfidences(const std::vector<double>& confidences) {
  double best = 0.0;
  for (double c : confidences) best = std::max(best, c);
  return best;
}

}  // namespace dq
