#include "mining/knn.h"

#include <algorithm>
#include <cmath>

#include "mining/encoded_dataset.h"

namespace dq {

Status KnnClassifier::Train(const TrainingData& data) {
  DQ_RETURN_NOT_OK(data.Check());
  if (config_.k < 1) return Status::InvalidArgument("k must be >= 1");
  table_ = data.table;
  base_attrs_ = data.base_attrs;
  encoder_ = data.encoder;
  num_classes_ = data.encoder->num_classes();
  const Schema& schema = table_->schema();

  inv_width_.assign(schema.num_attributes(), 0.0);
  for (int attr : base_attrs_) {
    const AttributeDef& def = schema.attribute(static_cast<size_t>(attr));
    if (def.type == DataType::kNumeric) {
      const double w = def.numeric_max - def.numeric_min;
      inv_width_[static_cast<size_t>(attr)] = w > 0 ? 1.0 / w : 0.0;
    } else if (def.type == DataType::kDate) {
      const double w = static_cast<double>(def.date_max - def.date_min);
      inv_width_[static_cast<size_t>(attr)] = w > 0 ? 1.0 / w : 0.0;
    }
  }

  // Class codes from the audit-wide cache when present, else per-cell.
  const int32_t* cached =
      data.encoded != nullptr
          ? data.encoded->class_codes(static_cast<size_t>(data.class_attr))
          : nullptr;
  auto class_code = [&](size_t r) {
    return cached != nullptr
               ? static_cast<int>(cached[r])
               : encoder_->Encode(
                     table_->cell(r, static_cast<size_t>(data.class_attr)));
  };
  std::vector<uint32_t> candidates;
  for (size_t r = 0; r < table_->num_rows(); ++r) {
    if (class_code(r) >= 0) candidates.push_back(static_cast<uint32_t>(r));
  }
  if (candidates.empty()) {
    return Status::FailedPrecondition("no instances with non-null class");
  }
  train_rows_.clear();
  train_classes_.clear();
  if (candidates.size() <= config_.max_training_instances) {
    train_rows_ = std::move(candidates);
  } else {
    // Deterministic strided subsample.
    const double stride = static_cast<double>(candidates.size()) /
                          static_cast<double>(config_.max_training_instances);
    for (size_t i = 0; i < config_.max_training_instances; ++i) {
      train_rows_.push_back(
          candidates[static_cast<size_t>(static_cast<double>(i) * stride)]);
    }
  }
  train_classes_.reserve(train_rows_.size());
  for (uint32_t r : train_rows_) {
    train_classes_.push_back(class_code(r));
  }
  return Status::OK();
}

double KnnClassifier::Distance(const Row& probe, uint32_t train_row) const {
  // Training-side cells read straight from the typed columns; only the
  // probe goes through Value (it arrives as a materialized row).
  double d = 0.0;
  for (int attr : base_attrs_) {
    const size_t a = static_cast<size_t>(attr);
    const Value& va = probe[a];
    if (va.is_null() || table_->is_null(train_row, a)) {
      d += 1.0;
      continue;
    }
    if (va.is_nominal()) {
      d += va.nominal_code() == table_->code_at(train_row, a) ? 0.0 : 1.0;
    } else {
      const double diff =
          std::fabs(va.OrderedValue() - table_->ordered_at(train_row, a)) *
          inv_width_[a];
      d += std::min(diff, 1.0);
    }
  }
  return d;
}

Prediction KnnClassifier::Predict(const Row& row) const {
  Prediction out;
  out.distribution.assign(static_cast<size_t>(num_classes_), 0.0);
  if (train_rows_.empty()) return out;

  const size_t k = std::min(static_cast<size_t>(config_.k), train_rows_.size());
  // Partial selection of the k smallest distances.
  std::vector<std::pair<double, size_t>> dist;
  dist.reserve(train_rows_.size());
  for (size_t i = 0; i < train_rows_.size(); ++i) {
    dist.emplace_back(Distance(row, train_rows_[i]), i);
  }
  std::nth_element(dist.begin(), dist.begin() + static_cast<long>(k - 1),
                   dist.end());

  double total = 0.0;
  for (size_t i = 0; i < k; ++i) {
    const double w =
        config_.distance_weighted ? 1.0 / (1.0 + dist[i].first) : 1.0;
    out.distribution[static_cast<size_t>(train_classes_[dist[i].second])] += w;
    total += w;
  }
  if (total > 0.0) {
    for (double& p : out.distribution) p /= total;
  }
  out.support = static_cast<double>(k);
  return out;
}

}  // namespace dq
