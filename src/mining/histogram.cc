#include "mining/histogram.h"

#include <algorithm>

namespace dq {

namespace {

// Distinctness tolerance of the exact threshold sweep (c45.cc kEps): two
// adjacent sorted values belong to the same run when the step up is within
// kEps. Bins reuse the rule so per-distinct bins reproduce the exact
// evaluator's candidate set.
constexpr double kEps = 1e-9;

}  // namespace

AttributeBins BuildAttributeBins(const double* col,
                                 const std::vector<uint32_t>& order,
                                 size_t num_rows, int max_bins) {
  AttributeBins out;
  out.codes.assign(num_rows, kNullBinCode);
  const size_t n = order.size();
  if (n == 0) return out;
  max_bins = std::clamp(max_bins, 1, kMaxHistogramBins);

  size_t distinct = 1;
  for (size_t i = 1; i < n; ++i) {
    if (col[order[i]] > col[order[i - 1]] + kEps) ++distinct;
  }

  auto close_bin = [&out](double first_val, double last_val,
                          uint32_t distinct_vals) {
    out.lower.push_back(first_val);
    out.upper.push_back(last_val);
    out.distinct.push_back(distinct_vals);
    ++out.num_bins;
  };

  if (distinct <= static_cast<size_t>(max_bins)) {
    // One bin per distinct value: the histogram evaluator then tests the
    // exact sweep's thresholds verbatim.
    double first_val = col[order[0]];
    for (size_t i = 0; i < n; ++i) {
      const double v = col[order[i]];
      if (i > 0 && v > col[order[i - 1]] + kEps) {
        close_bin(first_val, col[order[i - 1]], 1);
        first_val = v;
      }
      out.codes[order[i]] = static_cast<uint8_t>(out.num_bins);
    }
    close_bin(first_val, col[order[n - 1]], 1);
    return out;
  }

  // Equal-frequency bins, recomputing the per-bin row target from what is
  // left so runs of equal values (which a bin must swallow whole) cannot
  // overflow the bin budget: with b bins remaining the target is
  // ceil(remaining_rows / b), so the final bin always absorbs the rest.
  size_t i = 0;
  int remaining_bins = max_bins;
  while (i < n) {
    const size_t target =
        (n - i + static_cast<size_t>(remaining_bins) - 1) /
        static_cast<size_t>(remaining_bins);
    size_t j = std::min(i + target, n);
    while (j < n && col[order[j]] <= col[order[j - 1]] + kEps) ++j;
    uint32_t distinct_vals = 1;
    for (size_t r = i; r < j; ++r) {
      out.codes[order[r]] = static_cast<uint8_t>(out.num_bins);
      if (r > i && col[order[r]] > col[order[r - 1]] + kEps) ++distinct_vals;
    }
    close_bin(col[order[i]], col[order[j - 1]], distinct_vals);
    i = j;
    --remaining_bins;
  }
  return out;
}

}  // namespace dq
