#include "mining/encoded_dataset.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dq {

EncodedDataset EncodedDataset::Build(const Table& table,
                                     int numeric_class_bins, int num_threads,
                                     int histogram_bins) {
  obs::Span span("audit.encode");
  obs::GetCounter("audit.encode_builds")->Add(1);
  obs::GetGauge("table.bytes")->Set(static_cast<double>(table.byte_size()));

  const Schema& schema = table.schema();
  const size_t k = schema.num_attributes();
  const size_t n = table.num_rows();

  EncodedDataset out;
  out.table_ = &table;
  out.num_rows_ = n;
  out.ordered_.assign(k, nullptr);
  out.nominal_.assign(k, nullptr);
  out.date_storage_.resize(k);
  out.sort_orders_.resize(k);
  out.bins_.resize(k);
  out.encoders_.resize(k);
  out.class_code_storage_.resize(k);
  out.class_code_views_.assign(k, nullptr);

  // Each attribute's views, sort order and encoder depend only on that
  // attribute's column: fan out one task per attribute into its own slots.
  ParallelFor(ResolveThreadCount(num_threads), k, [&](size_t a) {
    const AttributeDef& def = schema.attribute(a);
    if (def.type == DataType::kNominal) {
      out.nominal_[a] = table.code_col(a).data();
    } else {
      if (def.type == DataType::kNumeric) {
        out.ordered_[a] = table.numeric_col(a).data();
      } else {
        // Widen day counts to the shared double axis once (NaN = null).
        std::vector<double>& col = out.date_storage_[a];
        col.resize(n);
        const std::vector<int32_t>& days = table.code_col(a);
        for (size_t r = 0; r < n; ++r) {
          col[r] = table.is_null(r, a)
                       ? std::numeric_limits<double>::quiet_NaN()
                       : static_cast<double>(days[r]);
        }
        out.ordered_[a] = col.data();
      }
      // SLIQ presort: known-value rows in stable (value, row) order.
      const double* col = out.ordered_[a];
      std::vector<uint32_t>& order = out.sort_orders_[a];
      order.reserve(n);
      for (size_t r = 0; r < n; ++r) {
        if (!std::isnan(col[r])) order.push_back(static_cast<uint32_t>(r));
      }
      std::stable_sort(order.begin(), order.end(),
                       [col](uint32_t x, uint32_t y) {
                         return col[x] < col[y];
                       });
      // Histogram-evaluator value bins, derived from the fresh sort order
      // (one pass; the order already carries the (value, row) ranking).
      out.bins_[a] = BuildAttributeBins(col, order, n, histogram_bins);
    }

    // Class encoding. Nominal attributes encode as the identity over the
    // dictionary codes, so the table's own column IS the code vector.
    auto encoder =
        ClassEncoder::Fit(table, static_cast<int>(a), numeric_class_bins);
    if (!encoder.ok()) return;  // e.g. all-null ordered attribute
    out.encoders_[a] = std::move(*encoder);
    if (def.type == DataType::kNominal) {
      out.class_code_views_[a] = table.code_col(a).data();
    } else {
      std::vector<int32_t>& codes = out.class_code_storage_[a];
      codes.resize(n);
      const double* col = out.ordered_[a];
      const ClassEncoder& enc = *out.encoders_[a];
      for (size_t r = 0; r < n; ++r) {
        codes[r] = std::isnan(col[r])
                       ? -1
                       : enc.EncodeOrdered(col[r]);
      }
      out.class_code_views_[a] = codes.data();
    }
  });
  return out;
}

}  // namespace dq
