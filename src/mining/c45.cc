#include "mining/c45.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/parallel.h"
#include "common/strings.h"
#include "mining/encoded_dataset.h"
#include "mining/histogram.h"
#include "mining/split_kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/confidence.h"
#include "stats/descriptive.h"

namespace dq {

const char* PruningModeToString(PruningMode mode) {
  switch (mode) {
    case PruningMode::kNone:
      return "none";
    case PruningMode::kPessimistic:
      return "pessimistic";
    case PruningMode::kExpectedErrorConfidence:
      return "expected-error-confidence";
  }
  return "unknown";
}

const char* SplitModeToString(SplitMode mode) {
  switch (mode) {
    case SplitMode::kHistogram:
      return "histogram";
    case SplitMode::kExact:
      return "exact";
  }
  return "unknown";
}

double MinInstForConfidence(double min_conf, double confidence_level) {
  if (min_conf <= 0.0) return 1.0;
  // errorConf of a deviating record at a pure leaf of weight n:
  // leftBound(1, n) - rightBound(0, n); monotonically increasing in n.
  for (double n = 1.0; n <= 1e6; n = std::max(n + 1.0, n * 1.01)) {
    const double conf = LeftBound(1.0, n, confidence_level) -
                        RightBound(0.0, n, confidence_level);
    if (conf >= min_conf) return std::ceil(n);
  }
  return 1e6;
}

std::string SplitCondition::ToString(const Schema& schema) const {
  const AttributeDef& def = schema.attribute(static_cast<size_t>(attr));
  switch (kind) {
    case Kind::kCategory:
      return def.name + " = " +
             (category >= 0 &&
                      static_cast<size_t>(category) < def.categories.size()
                  ? def.categories[static_cast<size_t>(category)]
                  : "#" + std::to_string(category));
    case Kind::kLessEq:
      return def.name + " <= " + FormatDouble(threshold, 4);
    case Kind::kGreater:
      return def.name + " > " + FormatDouble(threshold, 4);
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Tree structure

struct C45Tree::Node {
  std::vector<double> class_counts;
  double weight = 0.0;
  int majority = 0;

  int split_attr = -1;  // -1 => leaf
  bool ordered_split = false;
  double threshold = 0.0;
  std::vector<std::unique_ptr<Node>> children;
  std::vector<double> child_weights;  // known-value weight per child
  double known_weight = 0.0;

  /// Def. 9 value of this node (leaf value or weighted child aggregate).
  double expected_error_conf = 0.0;

  bool IsLeaf() const { return split_attr < 0; }
};

struct C45Tree::BuildContext {
  const Table* table;
  const int32_t* class_codes;  // per row, -1 for null
  std::vector<int> base_attrs;
  int num_classes;
  double min_inst;

  // Columnar views of the base attributes: ordered_cols[a][row] is the
  // OrderedValue (NaN = null) of ordered base attributes, nominal_cols[a]
  // [row] the category code (-1 = null) of nominal ones. Non-base
  // attributes stay nullptr. The views alias the shared EncodedDataset
  // when one is supplied, else per-Train storage owned by Train's frame.
  std::vector<const double*> ordered_cols;
  std::vector<const int32_t*> nominal_cols;

  // Presort active: the table has at least one ordered base attribute and
  // the config enables the SLIQ-style sorted index lists.
  bool presort = false;

  // Per-row branch assignment scratch used while partitioning one node
  // (-2 = not in node, -1 = missing split value, >= 0 = branch index).
  std::vector<int32_t> branch_scratch;
};

/// Per-node training state: the instance set plus (in presort mode) one
/// value-ordered instance list per ordered base attribute. The lists are
/// partitioned stably alongside the instances, so the upfront sort order
/// survives to every descendant and no node ever re-sorts.
struct C45Tree::NodeData {
  std::vector<std::pair<uint32_t, double>> insts;
  std::vector<std::vector<std::pair<uint32_t, double>>> sorted;
};

C45Tree::C45Tree(C45Config config) : config_(config) {}
C45Tree::~C45Tree() = default;
C45Tree::C45Tree(C45Tree&&) noexcept = default;
C45Tree& C45Tree::operator=(C45Tree&&) noexcept = default;

namespace {

using Inst = std::pair<uint32_t, double>;  // row index, weight

/// Truncated error confidence of Def. 7 used inside Def. 9: contributions
/// below the user's minimal error confidence count as zero (sec. 5.4).
double TruncatedErrorConf(const std::vector<double>& counts, double weight,
                          int observed, int majority, double level,
                          double min_conf) {
  if (weight <= 0.0 || observed == majority) return 0.0;
  const double p_pred = counts[static_cast<size_t>(majority)] / weight;
  const double p_obs = counts[static_cast<size_t>(observed)] / weight;
  const double conf = LeftBound(p_pred, weight, level) -
                      RightBound(p_obs, weight, level);
  if (conf <= 0.0) return 0.0;
  if (conf < min_conf) return 0.0;
  return conf;
}

/// Leaf value of Def. 9: sum over classes of relative frequency times the
/// (truncated) error confidence of observing that class.
double LeafExpectedErrorConf(const std::vector<double>& counts, double weight,
                             int majority, double level, double min_conf) {
  if (weight <= 0.0) return 0.0;
  double exp_conf = 0.0;
  for (size_t c = 0; c < counts.size(); ++c) {
    if (counts[c] <= 0.0) continue;
    exp_conf += counts[c] / weight *
                TruncatedErrorConf(counts, weight, static_cast<int>(c),
                                   majority, level, min_conf);
  }
  return exp_conf;
}

int MajorityOf(const std::vector<double>& counts) {
  int best = 0;
  for (size_t c = 1; c < counts.size(); ++c) {
    if (counts[c] > counts[static_cast<size_t>(best)]) best = static_cast<int>(c);
  }
  return best;
}

struct SplitEval {
  bool valid = false;
  double gain = 0.0;
  double gain_ratio = 0.0;
  bool ordered = false;
  double threshold = 0.0;
};

constexpr double kEps = 1e-9;

}  // namespace

// ---------------------------------------------------------------------------
// Induction

Status C45Tree::Train(const TrainingData& data) {
  DQ_RETURN_NOT_OK(data.Check());
  table_ = data.table;
  class_attr_ = data.class_attr;
  encoder_ = data.encoder;
  num_classes_ = data.encoder->num_classes();
  if (num_classes_ < 1) {
    return Status::FailedPrecondition("encoder reports no classes");
  }

  const Schema& schema = table_->schema();
  const size_t num_rows = table_->num_rows();
  presort_ms_ = 0.0;
  build_ms_ = 0.0;

  const EncodedDataset* cache = data.encoded;

  BuildContext ctx;
  ctx.table = table_;
  ctx.base_attrs = data.base_attrs;
  ctx.num_classes = num_classes_;
  ctx.min_inst =
      MinInstForConfidence(config_.min_error_confidence, config_.confidence_level);
  ctx.ordered_cols.assign(schema.num_attributes(), nullptr);
  ctx.nominal_cols.assign(schema.num_attributes(), nullptr);

  // Per-Train storage backing the context views on the legacy (uncached)
  // path; with an EncodedDataset the views alias the shared cache and
  // these stay empty.
  std::vector<int32_t> class_code_storage;
  std::vector<std::vector<double>> ordered_storage;
  std::vector<std::vector<int32_t>> nominal_storage;

  bool has_ordered_base = false;
  if (cache != nullptr) {
    // Audit-wide cache: column views and class codes were built once for
    // the whole audit, so this Train call encodes nothing.
    DQ_DCHECK(cache->table() == table_);
    ctx.class_codes = cache->class_codes(static_cast<size_t>(class_attr_));
    if (ctx.class_codes == nullptr) {
      return Status::FailedPrecondition(
          "encoded dataset has no class encoding for the class attribute");
    }
    for (int a : data.base_attrs) {
      const size_t attr = static_cast<size_t>(a);
      if (schema.attribute(attr).type == DataType::kNominal) {
        ctx.nominal_cols[attr] = cache->nominal_col(attr);
      } else {
        ctx.ordered_cols[attr] = cache->ordered_col(attr);
        has_ordered_base = true;
      }
    }
  } else {
    // Columnar encoding: one dense value column per base attribute, so the
    // split search and partitioning never chase Row/Value indirections.
    obs::Span span("c45.encode", class_attr_, &presort_ms_);
    class_code_storage.resize(num_rows);
    for (size_t r = 0; r < num_rows; ++r) {
      class_code_storage[r] =
          encoder_->Encode(table_->cell(r, static_cast<size_t>(class_attr_)));
    }
    ctx.class_codes = class_code_storage.data();
    ordered_storage.assign(schema.num_attributes(), {});
    nominal_storage.assign(schema.num_attributes(), {});
    for (int a : data.base_attrs) {
      const size_t attr = static_cast<size_t>(a);
      if (schema.attribute(attr).type == DataType::kNominal) {
        std::vector<int32_t>& col = nominal_storage[attr];
        col.resize(num_rows);
        for (size_t r = 0; r < num_rows; ++r) {
          const Value v = table_->cell(r, attr);
          col[r] = v.is_null() ? -1 : v.nominal_code();
        }
        ctx.nominal_cols[attr] = col.data();
      } else {
        has_ordered_base = true;
        std::vector<double>& col = ordered_storage[attr];
        col.resize(num_rows);
        for (size_t r = 0; r < num_rows; ++r) {
          const Value v = table_->cell(r, attr);
          col[r] = v.is_null() ? std::numeric_limits<double>::quiet_NaN()
                               : v.OrderedValue();
        }
        ctx.ordered_cols[attr] = col.data();
      }
    }
  }

  std::vector<Inst> insts;
  insts.reserve(num_rows);
  for (size_t r = 0; r < num_rows; ++r) {
    if (ctx.class_codes[r] >= 0) {
      insts.emplace_back(static_cast<uint32_t>(r), 1.0);
    }
  }
  if (insts.empty()) {
    return Status::FailedPrecondition(
        "no training instances with non-null class value");
  }

  if (config_.split_mode == SplitMode::kHistogram) {
    return TrainHistogram(data, &ctx, std::move(insts), has_ordered_base);
  }

  ctx.presort = config_.presort && has_ordered_base;

  NodeData root_data;
  root_data.insts = std::move(insts);
  if (ctx.presort) {
    // The one upfront sort (SLIQ-style): every ordered base attribute gets
    // a value-ordered list of the root instances with known values; ties
    // keep row order (stable), so parallel/serial runs agree bitwise.
    //
    // Cached path: the shared sort order already holds ALL value-known
    // rows stable-sorted by (value, row); filtering it down to the rows
    // with a known class value preserves that order exactly, so the result
    // is bitwise-identical to the per-Train stable sort — in O(n) per
    // attribute instead of O(n log n).
    obs::Span span("c45.presort", class_attr_, &presort_ms_);
    ctx.branch_scratch.assign(num_rows, -2);
    root_data.sorted.assign(schema.num_attributes(), {});
    for (int a : data.base_attrs) {
      const size_t attr = static_cast<size_t>(a);
      const double* col = ctx.ordered_cols[attr];
      if (col == nullptr) continue;
      std::vector<std::pair<uint32_t, double>>& list = root_data.sorted[attr];
      list.reserve(root_data.insts.size());
      if (cache != nullptr) {
        const int32_t* class_codes = ctx.class_codes;
        for (uint32_t r : cache->sort_order(attr)) {
          if (class_codes[r] >= 0) list.emplace_back(r, 1.0);
        }
      } else {
        for (const auto& inst : root_data.insts) {
          if (!std::isnan(col[inst.first])) list.push_back(inst);
        }
        std::stable_sort(list.begin(), list.end(),
                         [col](const auto& x, const auto& y) {
                           return col[x.first] < col[y.first];
                         });
      }
    }
  }

  std::vector<bool> avail(schema.num_attributes(), false);
  for (int a : data.base_attrs) avail[static_cast<size_t>(a)] = true;

  {
    obs::Span span("c45.build", class_attr_, &build_ms_);
    root_ = Build(&ctx, std::move(root_data), std::move(avail), 0);
    if (config_.pruning == PruningMode::kPessimistic) {
      PrunePessimistic(root_.get());
    }
  }
  obs::GetCounter("c45.tree_nodes")->Add(NodeCount());
  return Status::OK();
}

std::unique_ptr<C45Tree::Node> C45Tree::Build(BuildContext* ctx, NodeData data,
                                              std::vector<bool> avail,
                                              int depth) {
  std::vector<Inst>& insts = data.insts;
  static obs::Counter* const nodes_built = obs::GetCounter("c45.nodes_built");
  nodes_built->Add(1);
  auto node = std::make_unique<Node>();
  node->class_counts.assign(static_cast<size_t>(ctx->num_classes), 0.0);
  for (const Inst& inst : insts) {
    node->class_counts[static_cast<size_t>(
        ctx->class_codes[inst.first])] += inst.second;
    node->weight += inst.second;
  }
  node->majority = MajorityOf(node->class_counts);
  node->expected_error_conf = LeafExpectedErrorConf(
      node->class_counts, node->weight, node->majority,
      config_.confidence_level, config_.min_error_confidence);

  const double majority_count =
      node->class_counts[static_cast<size_t>(node->majority)];
  const bool pure = majority_count >= node->weight - kEps;

  // Stopping conditions; the minInst check is the pre-pruning of sec. 5.4:
  // once no partition can hold minInst instances of one class, deeper
  // leaves can never flag a deviation above the minimal error confidence.
  if (pure || depth >= config_.max_depth ||
      node->weight < 2.0 * config_.min_split_weight ||
      majority_count < ctx->min_inst) {
    return node;
  }

  // --- Split search -------------------------------------------------------
  const Schema& schema = ctx->table->schema();
  std::vector<SplitEval> evals(schema.num_attributes());
  const double node_entropy = EntropyFromCounts(node->class_counts);
  const int32_t* class_codes = ctx->class_codes;

  // Threshold sweep shared by the presorted and the legacy path; `entries`
  // must be in ascending value order.
  struct SweepEntry {
    double val;
    uint32_t row;
    double weight;
  };
  auto eval_ordered_split = [&](const std::vector<SweepEntry>& entries,
                                const std::vector<double>& known_counts,
                                double known, SplitEval* eval) {
    const double known_entropy = EntropyFromCounts(known_counts);
    std::vector<double> left(static_cast<size_t>(ctx->num_classes), 0.0);
    std::vector<double> right = known_counts;
    double left_w = 0.0;
    double best_gain = -1.0;
    double best_thr = 0.0;
    double best_left_w = 0.0;
    size_t distinct = 1;
    for (size_t i = 0; i + 1 < entries.size(); ++i) {
      const size_t cls = static_cast<size_t>(class_codes[entries[i].row]);
      left[cls] += entries[i].weight;
      right[cls] -= entries[i].weight;
      left_w += entries[i].weight;
      if (entries[i + 1].val > entries[i].val + kEps) {
        ++distinct;
        const double right_w = known - left_w;
        if (left_w < config_.min_split_weight ||
            right_w < config_.min_split_weight) {
          continue;
        }
        const double sub = left_w / known * EntropyFromCounts(left) +
                           right_w / known * EntropyFromCounts(right);
        const double gain = known_entropy - sub;
        if (gain > best_gain) {
          best_gain = gain;
          best_thr = (entries[i].val + entries[i + 1].val) / 2.0;
          best_left_w = left_w;
        }
      }
    }
    if (best_gain <= kEps) return;
    const double known_frac = known / node->weight;
    double gain = known_frac * best_gain;
    if (config_.mdl_numeric_correction && distinct > 1) {
      gain -= std::log2(static_cast<double>(distinct - 1)) / known;
    }
    if (gain <= kEps) return;
    std::vector<double> si_weights{best_left_w, known - best_left_w};
    if (node->weight - known > kEps) si_weights.push_back(node->weight - known);
    const double split_info = EntropyFromCounts(si_weights);
    eval->valid = true;
    eval->gain = gain;
    eval->gain_ratio = split_info > kEps ? gain / split_info : 0.0;
    eval->ordered = true;
    eval->threshold = best_thr;
  };

  for (int attr : ctx->base_attrs) {
    if (!avail[static_cast<size_t>(attr)]) continue;
    const AttributeDef& def = schema.attribute(static_cast<size_t>(attr));
    SplitEval& eval = evals[static_cast<size_t>(attr)];

    if (def.type == DataType::kNominal) {
      const int32_t* col = ctx->nominal_cols[static_cast<size_t>(attr)];
      const size_t k = def.categories.size();
      std::vector<std::vector<double>> branch_counts(
          k, std::vector<double>(static_cast<size_t>(ctx->num_classes), 0.0));
      std::vector<double> branch_weights(k, 0.0);
      double known = 0.0;
      for (const Inst& inst : insts) {
        const int32_t code = col[inst.first];
        if (code < 0) continue;
        const size_t b = static_cast<size_t>(code);
        branch_counts[b][static_cast<size_t>(class_codes[inst.first])] +=
            inst.second;
        branch_weights[b] += inst.second;
        known += inst.second;
      }
      if (known <= kEps) continue;
      int non_empty = 0;
      int big_enough = 0;
      double sub_entropy = 0.0;
      for (size_t b = 0; b < k; ++b) {
        if (branch_weights[b] <= kEps) continue;
        ++non_empty;
        if (branch_weights[b] >= config_.min_split_weight) ++big_enough;
        sub_entropy +=
            branch_weights[b] / known * EntropyFromCounts(branch_counts[b]);
      }
      if (non_empty < 2 || big_enough < 2) continue;
      const double known_frac = known / node->weight;
      const double gain = known_frac * (node_entropy - sub_entropy);
      if (gain <= kEps) continue;
      // Split info over the known branches plus the missing "branch".
      std::vector<double> si_weights = branch_weights;
      if (node->weight - known > kEps) si_weights.push_back(node->weight - known);
      const double split_info = EntropyFromCounts(si_weights);
      eval.valid = true;
      eval.gain = gain;
      eval.gain_ratio = split_info > kEps ? gain / split_info : 0.0;
    } else {
      // Ordered attribute: sweep thresholds between distinct values.
      const double* col = ctx->ordered_cols[static_cast<size_t>(attr)];
      std::vector<SweepEntry> entries;
      std::vector<double> known_counts(static_cast<size_t>(ctx->num_classes),
                                       0.0);
      double known = 0.0;
      if (ctx->presort) {
        // The node's instances are already in value order: reuse the
        // partitioned sorted list instead of sorting.
        const std::vector<Inst>& list = data.sorted[static_cast<size_t>(attr)];
        entries.reserve(list.size());
        for (const Inst& inst : list) {
          entries.push_back({col[inst.first], inst.first, inst.second});
          known += inst.second;
          known_counts[static_cast<size_t>(class_codes[inst.first])] +=
              inst.second;
        }
      } else {
        entries.reserve(insts.size());
        for (const Inst& inst : insts) {
          const double v = col[inst.first];
          if (std::isnan(v)) continue;
          entries.push_back({v, inst.first, inst.second});
          known += inst.second;
          known_counts[static_cast<size_t>(class_codes[inst.first])] +=
              inst.second;
        }
        std::sort(entries.begin(), entries.end(),
                  [](const SweepEntry& x, const SweepEntry& y) {
                    return x.val < y.val;
                  });
      }
      if (known <= kEps || entries.size() < 2) continue;
      eval_ordered_split(entries, known_counts, known, &eval);
    }
  }

  // C4.5 selection: among candidates with at least average gain, take the
  // best gain ratio (or raw gain in ID3 mode).
  double gain_sum = 0.0;
  int valid_count = 0;
  for (const SplitEval& e : evals) {
    if (e.valid) {
      gain_sum += e.gain;
      ++valid_count;
    }
  }
  static obs::Counter* const splits_evaluated =
      obs::GetCounter("c45.splits_evaluated");
  splits_evaluated->Add(static_cast<uint64_t>(valid_count));
  if (valid_count == 0) return node;
  const double avg_gain = gain_sum / valid_count;
  int best_attr = -1;
  double best_score = -1.0;
  for (size_t a = 0; a < evals.size(); ++a) {
    const SplitEval& e = evals[a];
    if (!e.valid) continue;
    if (config_.use_gain_ratio && e.gain + kEps < avg_gain) continue;
    const double score = config_.use_gain_ratio ? e.gain_ratio : e.gain;
    if (score > best_score) {
      best_score = score;
      best_attr = static_cast<int>(a);
    }
  }
  if (best_attr < 0) return node;
  const SplitEval& best = evals[static_cast<size_t>(best_attr)];

  // --- Partition ----------------------------------------------------------
  const AttributeDef& def = schema.attribute(static_cast<size_t>(best_attr));
  const size_t num_children =
      best.ordered ? 2 : def.categories.size();
  std::vector<std::vector<Inst>> parts(num_children);
  std::vector<Inst> missing;
  std::vector<double> part_weights(num_children, 0.0);
  double known = 0.0;
  const double* ordered_col = ctx->ordered_cols[static_cast<size_t>(best_attr)];
  const int32_t* nominal_col = ctx->nominal_cols[static_cast<size_t>(best_attr)];
  for (const Inst& inst : insts) {
    size_t b;
    if (best.ordered) {
      const double v = ordered_col[inst.first];
      if (std::isnan(v)) {
        if (ctx->presort) ctx->branch_scratch[inst.first] = -1;
        missing.push_back(inst);
        continue;
      }
      b = v <= best.threshold ? 0 : 1;
    } else {
      const int32_t code = nominal_col[inst.first];
      if (code < 0) {
        if (ctx->presort) ctx->branch_scratch[inst.first] = -1;
        missing.push_back(inst);
        continue;
      }
      b = static_cast<size_t>(code);
    }
    if (ctx->presort) {
      ctx->branch_scratch[inst.first] = static_cast<int32_t>(b);
    }
    parts[b].push_back(inst);
    part_weights[b] += inst.second;
    known += inst.second;
  }
  auto reset_scratch = [&] {
    if (!ctx->presort) return;
    for (const Inst& inst : insts) ctx->branch_scratch[inst.first] = -2;
  };

  // minInst pre-pruning (sec. 5.4): require at least one partition with
  // minInst instances of one class.
  if (ctx->min_inst > 1.0) {
    bool any_strong = false;
    for (size_t b = 0; b < num_children && !any_strong; ++b) {
      std::vector<double> counts(static_cast<size_t>(ctx->num_classes), 0.0);
      for (const Inst& inst : parts[b]) {
        counts[static_cast<size_t>(class_codes[inst.first])] += inst.second;
      }
      if (counts[static_cast<size_t>(MajorityOf(counts))] >= ctx->min_inst) {
        any_strong = true;
      }
    }
    if (!any_strong) {
      reset_scratch();
      return node;
    }
  }

  // Distribute missing-value instances over non-empty branches.
  if (!missing.empty() && known > kEps) {
    for (const Inst& inst : missing) {
      for (size_t b = 0; b < num_children; ++b) {
        if (part_weights[b] <= kEps) continue;
        const double w = inst.second * part_weights[b] / known;
        if (w > 1e-6) parts[b].emplace_back(inst.first, w);
      }
    }
  }

  // Stable partition of the per-attribute sorted lists: children inherit
  // their slices in the same value order, so no descendant ever re-sorts.
  // Missing-value instances replicate into every non-empty branch with the
  // same scaled weight their parts[] copy received above.
  std::vector<std::vector<std::vector<Inst>>> child_sorted;
  if (ctx->presort) {
    child_sorted.assign(num_children, {});
    for (size_t b = 0; b < num_children; ++b) {
      if (!parts[b].empty()) {
        child_sorted[b].assign(schema.num_attributes(), {});
      }
    }
    for (size_t a = 0; a < data.sorted.size(); ++a) {
      const std::vector<Inst>& list = data.sorted[a];
      if (list.empty()) continue;
      for (const Inst& e : list) {
        const int32_t br = ctx->branch_scratch[e.first];
        if (br >= 0) {
          child_sorted[static_cast<size_t>(br)][a].push_back(e);
        } else if (br == -1 && known > kEps) {
          for (size_t b = 0; b < num_children; ++b) {
            if (part_weights[b] <= kEps) continue;
            const double w = e.second * part_weights[b] / known;
            if (w > 1e-6) child_sorted[b][a].emplace_back(e.first, w);
          }
        }
      }
    }
    reset_scratch();
  }
  insts.clear();
  insts.shrink_to_fit();
  data.sorted.clear();
  data.sorted.shrink_to_fit();

  node->split_attr = best_attr;
  node->ordered_split = best.ordered;
  node->threshold = best.threshold;
  node->known_weight = known;
  node->child_weights = part_weights;

  std::vector<bool> child_avail = avail;
  if (!best.ordered) {
    child_avail[static_cast<size_t>(best_attr)] = false;  // consumed
  }

  double subtree_exp = 0.0;
  double subtree_weight = 0.0;
  for (size_t b = 0; b < num_children; ++b) {
    if (parts[b].empty()) {
      // Empty branch: leaf predicting the parent majority, weight 0.
      auto child = std::make_unique<Node>();
      child->class_counts.assign(static_cast<size_t>(ctx->num_classes), 0.0);
      child->majority = node->majority;
      nodes_built->Add(1);
      node->children.push_back(std::move(child));
      continue;
    }
    NodeData child_data;
    child_data.insts = std::move(parts[b]);
    if (ctx->presort) child_data.sorted = std::move(child_sorted[b]);
    auto child = Build(ctx, std::move(child_data), child_avail, depth + 1);
    subtree_exp += child->weight * child->expected_error_conf;
    subtree_weight += child->weight;
    node->children.push_back(std::move(child));
  }
  if (subtree_weight > kEps) subtree_exp /= subtree_weight;

  // Integrated Def. 9 pruning: replace the subtree by a leaf whenever that
  // leads to a higher expected error confidence.
  if (config_.pruning == PruningMode::kExpectedErrorConfidence) {
    const double leaf_exp = node->expected_error_conf;
    if (leaf_exp > subtree_exp + kEps) {
      node->split_attr = -1;
      node->children.clear();
      node->child_weights.clear();
      return node;
    }
  }
  node->expected_error_conf = subtree_exp;
  return node;
}

// ---------------------------------------------------------------------------
// Histogram-mode induction (SplitMode::kHistogram)
//
// The split evaluator scans per-node (bin x class) histograms instead of
// the exact per-row sweep: every ordered attribute is bucketed once per
// table into <= 255 equal-frequency bins (AttributeBins, derived from the
// shared EncodedDataset presort), nominal attributes use their dictionary
// codes as bins directly, and a node's histograms over all base attributes
// are filled in one pass over its instances. Three cost levers stack:
//
//   * evaluation is O(bins x classes) per attribute instead of
//     O(rows x classes) with a log2 per distinct boundary;
//   * the largest child of a split never gets scanned -- its histograms
//     are reconstructed as parent minus the scanned siblings;
//   * the tree grows breadth-wise (level-synchronous frontier), and each
//     level fans out per-(family, attribute) histogram/eval tasks and
//     per-node partition tasks onto the Train pool (TrainingData::pool)
//     via ThreadPool::RunBatch.
//
// Determinism: every task writes pre-assigned slots (a child's histogram
// slice, a node's eval slot), reductions walk fixed attribute/branch
// order, and the inline and pooled dispatch run the same code -- the tree
// is bitwise-identical for every thread count. The integrated Def. 9
// pruning of the recursive path is deferred to one post-order pass after
// the frontier finishes, which provably yields the same tree: construction
// is pure top-down, so pruning decisions only ever consume finished
// subtrees in both orders.

struct C45HistogramBuilder {
  using Node = C45Tree::Node;

  /// Nominal histograms are only worth materializing for bounded
  /// dictionaries; wider ones fall back to the direct instance scan.
  static constexpr size_t kMaxNominalHistBins = 1024;
  /// Smallest child worth reconstructing by subtraction instead of
  /// scanning.
  static constexpr size_t kSubtractMinInsts = 1024;
  /// Subtraction residue clamp: real histogram cells hold at least one
  /// instance fraction > 1e-6 (the partition drop threshold), so anything
  /// at or below this is floating-point cancellation noise.
  static constexpr double kResidueEps = 1e-9;

  struct AttrPlan {
    enum class Kind { kNone, kBinned, kNominalHist, kNominalScan };
    Kind kind = Kind::kNone;
    size_t width = 0;   ///< histogram rows; 0 for kNone/kNominalScan
    size_t offset = 0;  ///< start of this attribute's slice (doubles)
    const AttributeBins* bins = nullptr;  // kBinned
    const uint8_t* bin_codes = nullptr;   // kBinned
    const int32_t* codes = nullptr;       // nominal kinds
    const double* ordered_col = nullptr;  // kBinned (partitioning)
  };

  /// One non-terminal frontier node awaiting split evaluation.
  struct HTask {
    Node* node = nullptr;
    std::vector<Inst> insts;
    std::vector<bool> avail;
    int depth = 0;
    double node_entropy = 0.0;
    /// True only for the root: its instances are exactly every class-known
    /// row with unit weight, so whole-column SIMD count kernels apply.
    bool dense = false;
    std::vector<double> hist;      ///< per-attribute slices, phase A output
    std::vector<SplitEval> evals;  ///< per-attribute slot, phase A output
  };

  /// Children of one split, grouped so one phase-A unit can reconstruct
  /// the subtraction child from the parent histogram and its siblings.
  struct Family {
    std::vector<std::unique_ptr<HTask>> tasks;  ///< non-terminal children
    /// Parent histogram block; non-empty iff subtraction is enabled.
    std::vector<double> parent_hist;
    int sub_task = -1;  ///< tasks[] index reconstructed by subtraction
    /// Terminal siblings that still get scanned to support subtraction.
    std::vector<std::vector<Inst>> support_insts;
    std::vector<std::vector<double>> support_hist;
  };

  C45HistogramBuilder(const C45Config& cfg, const Schema& sch,
                      const C45Tree::BuildContext& context,
                      const std::vector<const AttributeBins*>& bins,
                      ThreadPool* worker_pool, size_t rows)
      : config(cfg),
        schema(sch),
        ctx(context),
        pool(worker_pool),
        num_rows(rows),
        nc(static_cast<size_t>(context.num_classes)) {
    plans.assign(schema.num_attributes(), AttrPlan{});
    for (int a : ctx.base_attrs) {
      const size_t attr = static_cast<size_t>(a);
      AttrPlan& plan = plans[attr];
      if (schema.attribute(attr).type == DataType::kNominal) {
        plan.codes = ctx.nominal_cols[attr];
        const size_t cats = schema.attribute(attr).categories.size();
        if (cats == 0) continue;
        if (cats <= kMaxNominalHistBins) {
          plan.kind = AttrPlan::Kind::kNominalHist;
          plan.width = cats;
        } else {
          plan.kind = AttrPlan::Kind::kNominalScan;
        }
      } else {
        const AttributeBins* b = bins[attr];
        if (b == nullptr || b->num_bins <= 0) continue;  // no known values
        plan.kind = AttrPlan::Kind::kBinned;
        plan.width = static_cast<size_t>(b->num_bins);
        plan.bins = b;
        plan.bin_codes = b->codes.data();
        plan.ordered_col = ctx.ordered_cols[attr];
      }
    }
    for (int a : ctx.base_attrs) {
      AttrPlan& plan = plans[static_cast<size_t>(a)];
      plan.offset = hist_width;
      hist_width += plan.width * nc;
    }
  }

  std::unique_ptr<Node> Run(std::vector<Inst> insts,
                            std::vector<bool> avail) {
    // Root statistics over the dense class-code column (SIMD kernel); the
    // counts are integers, so they match the instance-order accumulation
    // of the exact path bit-for-bit.
    std::vector<uint32_t> root_counts(nc, 0);
    kernels::CountClasses(ctx.class_codes, num_rows, root_counts.data());
    std::vector<double> counts(nc, 0.0);
    double weight = 0.0;
    for (size_t c = 0; c < nc; ++c) {
      counts[c] = static_cast<double>(root_counts[c]);
      weight += counts[c];
    }
    std::unique_ptr<Node> root = MakeNode(std::move(counts), weight);
    if (IsTerminal(*root, 0)) return root;

    auto task = std::make_unique<HTask>();
    task->node = root.get();
    task->insts = std::move(insts);
    task->avail = std::move(avail);
    task->depth = 0;
    task->dense = true;
    task->node_entropy = EntropyBits(root->class_counts.data(), nc);

    std::vector<Family> families;
    families.emplace_back();
    families.back().tasks.push_back(std::move(task));
    while (!families.empty()) {
      PhaseA(families);
      families = PhaseB(families);
    }
    return root;
  }

 private:
  // --- dispatch ------------------------------------------------------------

  /// Runs fn(i) for i in [0, n): on the pool when the level carries enough
  /// instances to amortize task overhead, inline otherwise. Both paths run
  /// the same per-item code against pre-assigned slots, so results are
  /// identical.
  void RunUnits(size_t n, size_t total_insts,
                const std::function<void(size_t)>& fn) {
    if (pool != nullptr && total_insts >= config.parallel_min_insts) {
      pool->RunBatch(n, fn);
    } else {
      for (size_t i = 0; i < n; ++i) fn(i);
    }
  }

  // --- phase A: histogram build + per-attribute split evaluation ----------

  void PhaseA(std::vector<Family>& families) {
    size_t total_insts = 0;
    for (Family& f : families) {
      for (std::unique_ptr<HTask>& t : f.tasks) {
        t->hist.assign(hist_width, 0.0);
        t->evals.assign(schema.num_attributes(), SplitEval{});
        total_insts += t->insts.size();
      }
      f.support_hist.resize(f.support_insts.size());
      for (size_t s = 0; s < f.support_insts.size(); ++s) {
        f.support_hist[s].assign(hist_width, 0.0);
        total_insts += f.support_insts[s].size();
      }
    }
    struct Unit {
      Family* family;
      int attr;
    };
    std::vector<Unit> units;
    for (Family& f : families) {
      const std::vector<bool>& avail = f.tasks.front()->avail;
      for (int a : ctx.base_attrs) {
        if (!avail[static_cast<size_t>(a)]) continue;
        if (plans[static_cast<size_t>(a)].kind == AttrPlan::Kind::kNone) {
          continue;
        }
        units.push_back(Unit{&f, a});
      }
    }
    RunUnits(units.size(), total_insts, [&](size_t i) {
      RunUnit(*units[i].family, units[i].attr);
    });
  }

  void RunUnit(Family& f, int attr) {
    const AttrPlan& plan = plans[static_cast<size_t>(attr)];
    if (plan.width > 0) {
      const int sub = f.parent_hist.empty() ? -1 : f.sub_task;
      for (size_t ti = 0; ti < f.tasks.size(); ++ti) {
        if (static_cast<int>(ti) == sub) continue;
        ScanTask(*f.tasks[ti], plan,
                 f.tasks[ti]->hist.data() + plan.offset);
      }
      for (size_t s = 0; s < f.support_insts.size(); ++s) {
        histogram_builds->Add(1);
        ScanInsts(f.support_insts[s], plan,
                  f.support_hist[s].data() + plan.offset);
      }
      if (sub >= 0) {
        // Largest child = parent - scanned siblings; cells at or below the
        // residue threshold are cancellation noise (exact zeros on
        // unit-weight data, where all sums are integers).
        const size_t len = plan.width * nc;
        double* dst = f.tasks[static_cast<size_t>(sub)]->hist.data() +
                      plan.offset;
        const double* parent = f.parent_hist.data() + plan.offset;
        for (size_t i = 0; i < len; ++i) dst[i] = parent[i];
        for (size_t ti = 0; ti < f.tasks.size(); ++ti) {
          if (static_cast<int>(ti) == sub) continue;
          const double* src = f.tasks[ti]->hist.data() + plan.offset;
          for (size_t i = 0; i < len; ++i) dst[i] -= src[i];
        }
        for (const std::vector<double>& support : f.support_hist) {
          const double* src = support.data() + plan.offset;
          for (size_t i = 0; i < len; ++i) dst[i] -= src[i];
        }
        for (size_t i = 0; i < len; ++i) {
          if (dst[i] <= kResidueEps) dst[i] = 0.0;
        }
        histogram_subtractions->Add(1);
      }
    }
    for (std::unique_ptr<HTask>& t : f.tasks) {
      SplitEval* eval = &t->evals[static_cast<size_t>(attr)];
      switch (plan.kind) {
        case AttrPlan::Kind::kBinned:
          EvalBinned(*t, plan, eval);
          break;
        case AttrPlan::Kind::kNominalHist:
          EvalNominalHist(*t, plan, eval);
          break;
        case AttrPlan::Kind::kNominalScan:
          EvalNominalScan(*t, attr, eval);
          break;
        case AttrPlan::Kind::kNone:
          break;
      }
    }
  }

  void ScanTask(const HTask& t, const AttrPlan& plan, double* dst) {
    histogram_builds->Add(1);
    if (t.dense) {
      // Whole-column kernels: integer counts, then one exact widen to
      // double (the root covers every class-known row at unit weight).
      std::vector<uint32_t> u(plan.width * nc, 0);
      if (plan.kind == AttrPlan::Kind::kBinned) {
        kernels::CountBinClass(plan.bin_codes, ctx.class_codes, num_rows, nc,
                               u.data());
      } else {
        kernels::CountCodeClass(plan.codes, ctx.class_codes, num_rows, nc,
                                u.data());
      }
      for (size_t i = 0; i < u.size(); ++i) {
        dst[i] = static_cast<double>(u[i]);
      }
      return;
    }
    ScanInsts(t.insts, plan, dst);
  }

  void ScanInsts(const std::vector<Inst>& insts, const AttrPlan& plan,
                 double* dst) {
    if (plan.kind == AttrPlan::Kind::kBinned) {
      const uint8_t* bin_codes = plan.bin_codes;
      for (const Inst& inst : insts) {
        const uint8_t b = bin_codes[inst.first];
        if (b == kNullBinCode) continue;
        dst[static_cast<size_t>(b) * nc +
            static_cast<size_t>(ctx.class_codes[inst.first])] += inst.second;
      }
    } else {
      const int32_t* codes = plan.codes;
      for (const Inst& inst : insts) {
        const int32_t code = codes[inst.first];
        if (code < 0) continue;
        dst[static_cast<size_t>(code) * nc +
            static_cast<size_t>(ctx.class_codes[inst.first])] += inst.second;
      }
    }
  }

  void EvalBinned(const HTask& t, const AttrPlan& plan,
                  SplitEval* eval) const {
    const double* h = t.hist.data() + plan.offset;
    const size_t width = plan.width;
    std::vector<double> bin_w(width, 0.0);
    std::vector<double> known_counts(nc, 0.0);
    double known = 0.0;
    for (size_t b = 0; b < width; ++b) {
      const double* row = h + b * nc;
      double bw = 0.0;
      for (size_t c = 0; c < nc; ++c) {
        bw += row[c];
        known_counts[c] += row[c];
      }
      bin_w[b] = bw;
      known += bw;
    }
    if (known <= kEps) return;
    const double known_entropy = EntropyBits(known_counts.data(), nc);
    std::vector<double> left(nc, 0.0);
    std::vector<double> right = known_counts;
    double left_w = 0.0;
    double best_gain = -1.0;
    double best_thr = 0.0;
    double best_left_w = 0.0;
    uint64_t distinct = 0;
    bool lossy_bins = false;
    bool have_left = false;
    double last_upper = 0.0;
    for (size_t b = 0; b < width; ++b) {
      if (bin_w[b] <= 0.0) continue;
      // Per-bin distinct-value totals from the global binning; in the
      // per-distinct regime every count is 1 and this is exactly the
      // number of non-empty bins (= the node's distinct values).
      distinct += plan.bins->distinct[b];
      lossy_bins |= plan.bins->distinct[b] > 1;
      if (have_left) {
        // Candidate threshold between the previous non-empty bin and this
        // one -- the midpoint the exact sweep tests between the adjacent
        // values on either side of the boundary.
        const double right_w = known - left_w;
        if (left_w >= config.min_split_weight &&
            right_w >= config.min_split_weight) {
          const double sub = left_w / known * EntropyBits(left.data(), nc) +
                             right_w / known * EntropyBits(right.data(), nc);
          const double gain = known_entropy - sub;
          if (gain > best_gain) {
            best_gain = gain;
            best_thr = (last_upper + plan.bins->lower[b]) / 2.0;
            best_left_w = left_w;
          }
        }
      }
      const double* row = h + b * nc;
      for (size_t c = 0; c < nc; ++c) {
        left[c] += row[c];
        right[c] -= row[c];
      }
      left_w += bin_w[b];
      have_left = true;
      last_upper = plan.bins->upper[b];
    }
    if (best_gain <= kEps) return;
    const double node_weight = t.node->weight;
    const double known_frac = known / node_weight;
    double gain = known_frac * best_gain;
    if (config.mdl_numeric_correction && distinct > 1) {
      // Summing global per-bin counts over-reports distinct values once
      // bins are lossy (a deep node holds a subset of each bin), but the
      // node cannot have more distinct values than known instances --
      // capping by the known weight restores the exact sweep's
      // log2(N - 1) penalty for continuous attributes, where every
      // instance carries a distinct value.
      if (lossy_bins) {
        const auto cap = static_cast<uint64_t>(known + 0.5);
        distinct = std::max(uint64_t{2}, std::min(distinct, cap));
      }
      gain -= std::log2(static_cast<double>(distinct - 1)) / known;
    }
    if (gain <= kEps) return;
    std::vector<double> si_weights{best_left_w, known - best_left_w};
    if (node_weight - known > kEps) si_weights.push_back(node_weight - known);
    const double split_info =
        EntropyBits(si_weights.data(), si_weights.size());
    eval->valid = true;
    eval->gain = gain;
    eval->gain_ratio = split_info > kEps ? gain / split_info : 0.0;
    eval->ordered = true;
    eval->threshold = best_thr;
  }

  void EvalNominalHist(const HTask& t, const AttrPlan& plan,
                       SplitEval* eval) const {
    const double* h = t.hist.data() + plan.offset;
    const size_t k = plan.width;
    std::vector<double> branch_weights(k, 0.0);
    double known = 0.0;
    for (size_t b = 0; b < k; ++b) {
      const double* row = h + b * nc;
      double bw = 0.0;
      for (size_t c = 0; c < nc; ++c) bw += row[c];
      branch_weights[b] = bw;
      known += bw;
    }
    if (known <= kEps) return;
    int non_empty = 0;
    int big_enough = 0;
    double sub_entropy = 0.0;
    for (size_t b = 0; b < k; ++b) {
      if (branch_weights[b] <= kEps) continue;
      ++non_empty;
      if (branch_weights[b] >= config.min_split_weight) ++big_enough;
      sub_entropy +=
          branch_weights[b] / known * EntropyBits(h + b * nc, nc);
    }
    if (non_empty < 2 || big_enough < 2) return;
    const double node_weight = t.node->weight;
    const double known_frac = known / node_weight;
    const double gain = known_frac * (t.node_entropy - sub_entropy);
    if (gain <= kEps) return;
    std::vector<double> si_weights = branch_weights;
    if (node_weight - known > kEps) si_weights.push_back(node_weight - known);
    const double split_info =
        EntropyBits(si_weights.data(), si_weights.size());
    eval->valid = true;
    eval->gain = gain;
    eval->gain_ratio = split_info > kEps ? gain / split_info : 0.0;
  }

  /// Fallback for nominal dictionaries too wide to histogram: the exact
  /// path's one-pass branch-count accumulation over the node's instances.
  void EvalNominalScan(const HTask& t, int attr, SplitEval* eval) const {
    const int32_t* col = ctx.nominal_cols[static_cast<size_t>(attr)];
    const size_t k = schema.attribute(static_cast<size_t>(attr))
                         .categories.size();
    std::vector<std::vector<double>> branch_counts(
        k, std::vector<double>(nc, 0.0));
    std::vector<double> branch_weights(k, 0.0);
    double known = 0.0;
    for (const Inst& inst : t.insts) {
      const int32_t code = col[inst.first];
      if (code < 0) continue;
      const size_t b = static_cast<size_t>(code);
      branch_counts[b][static_cast<size_t>(ctx.class_codes[inst.first])] +=
          inst.second;
      branch_weights[b] += inst.second;
      known += inst.second;
    }
    if (known <= kEps) return;
    int non_empty = 0;
    int big_enough = 0;
    double sub_entropy = 0.0;
    for (size_t b = 0; b < k; ++b) {
      if (branch_weights[b] <= kEps) continue;
      ++non_empty;
      if (branch_weights[b] >= config.min_split_weight) ++big_enough;
      sub_entropy += branch_weights[b] / known *
                     EntropyFromCounts(branch_counts[b]);
    }
    if (non_empty < 2 || big_enough < 2) return;
    const double node_weight = t.node->weight;
    const double known_frac = known / node_weight;
    const double gain = known_frac * (t.node_entropy - sub_entropy);
    if (gain <= kEps) return;
    std::vector<double> si_weights = branch_weights;
    if (node_weight - known > kEps) si_weights.push_back(node_weight - known);
    const double split_info =
        EntropyBits(si_weights.data(), si_weights.size());
    eval->valid = true;
    eval->gain = gain;
    eval->gain_ratio = split_info > kEps ? gain / split_info : 0.0;
  }

  // --- phase B: split selection, partition, child creation ----------------

  std::vector<Family> PhaseB(std::vector<Family>& families) {
    std::vector<HTask*> tasks;
    size_t total_insts = 0;
    for (Family& f : families) {
      for (std::unique_ptr<HTask>& t : f.tasks) {
        tasks.push_back(t.get());
        total_insts += t->insts.size();
      }
    }
    std::vector<Family> slots(tasks.size());
    std::vector<char> has_children(tasks.size(), 0);
    RunUnits(tasks.size(), total_insts, [&](size_t i) {
      has_children[i] = Expand(*tasks[i], &slots[i]) ? 1 : 0;
    });
    std::vector<Family> next;
    for (size_t i = 0; i < slots.size(); ++i) {
      if (has_children[i] != 0) next.push_back(std::move(slots[i]));
    }
    return next;
  }

  /// Selects and applies the best split of one frontier node. Returns
  /// false when the node stays a leaf; otherwise fills `out` with the
  /// non-terminal children (and the subtraction setup for the next level).
  bool Expand(HTask& t, Family* out) {
    Node* node = t.node;
    double gain_sum = 0.0;
    int valid_count = 0;
    for (const SplitEval& e : t.evals) {
      if (e.valid) {
        gain_sum += e.gain;
        ++valid_count;
      }
    }
    splits_evaluated->Add(static_cast<uint64_t>(valid_count));
    if (valid_count == 0) return false;
    const double avg_gain = gain_sum / valid_count;
    int best_attr = -1;
    double best_score = -1.0;
    for (size_t a = 0; a < t.evals.size(); ++a) {
      const SplitEval& e = t.evals[a];
      if (!e.valid) continue;
      if (config.use_gain_ratio && e.gain + kEps < avg_gain) continue;
      const double score = config.use_gain_ratio ? e.gain_ratio : e.gain;
      if (score > best_score) {
        best_score = score;
        best_attr = static_cast<int>(a);
      }
    }
    if (best_attr < 0) return false;
    const SplitEval& best = t.evals[static_cast<size_t>(best_attr)];

    const AttributeDef& def =
        schema.attribute(static_cast<size_t>(best_attr));
    const size_t num_children = best.ordered ? 2 : def.categories.size();
    std::vector<std::vector<Inst>> parts(num_children);
    std::vector<std::vector<double>> child_counts(
        num_children, std::vector<double>(nc, 0.0));
    std::vector<double> child_weight(num_children, 0.0);
    std::vector<double> part_weights(num_children, 0.0);
    std::vector<Inst> missing;
    double known = 0.0;
    const double* ordered_col =
        ctx.ordered_cols[static_cast<size_t>(best_attr)];
    const int32_t* nominal_col =
        ctx.nominal_cols[static_cast<size_t>(best_attr)];
    for (const Inst& inst : t.insts) {
      size_t b;
      if (best.ordered) {
        const double v = ordered_col[inst.first];
        if (std::isnan(v)) {
          missing.push_back(inst);
          continue;
        }
        b = v <= best.threshold ? 0 : 1;
      } else {
        const int32_t code = nominal_col[inst.first];
        if (code < 0) {
          missing.push_back(inst);
          continue;
        }
        b = static_cast<size_t>(code);
      }
      parts[b].push_back(inst);
      part_weights[b] += inst.second;
      child_counts[b][static_cast<size_t>(ctx.class_codes[inst.first])] +=
          inst.second;
      child_weight[b] += inst.second;
      known += inst.second;
    }

    // minInst pre-pruning (sec. 5.4) on the known-value partitions, before
    // missing-value distribution -- as in the exact path.
    if (ctx.min_inst > 1.0) {
      bool any_strong = false;
      for (size_t b = 0; b < num_children && !any_strong; ++b) {
        if (child_counts[b][static_cast<size_t>(MajorityOf(
                child_counts[b]))] >= ctx.min_inst) {
          any_strong = true;
        }
      }
      if (!any_strong) return false;
    }

    if (!missing.empty() && known > kEps) {
      for (const Inst& inst : missing) {
        const size_t cls =
            static_cast<size_t>(ctx.class_codes[inst.first]);
        for (size_t b = 0; b < num_children; ++b) {
          if (part_weights[b] <= kEps) continue;
          const double w = inst.second * part_weights[b] / known;
          if (w > 1e-6) {
            parts[b].emplace_back(inst.first, w);
            child_counts[b][cls] += w;
            child_weight[b] += w;
          }
        }
      }
    }

    node->split_attr = best_attr;
    node->ordered_split = best.ordered;
    node->threshold = best.threshold;
    node->known_weight = known;
    node->child_weights = part_weights;

    std::vector<bool> child_avail = t.avail;
    if (!best.ordered) {
      child_avail[static_cast<size_t>(best_attr)] = false;  // consumed
    }

    std::vector<std::vector<Inst>> terminal_insts;
    for (size_t b = 0; b < num_children; ++b) {
      if (parts[b].empty()) {
        // Empty branch: leaf predicting the parent majority, weight 0.
        auto child = std::make_unique<Node>();
        child->class_counts.assign(nc, 0.0);
        child->majority = node->majority;
        nodes_built->Add(1);
        node->children.push_back(std::move(child));
        continue;
      }
      std::unique_ptr<Node> child =
          MakeNode(std::move(child_counts[b]), child_weight[b]);
      if (IsTerminal(*child, t.depth + 1)) {
        terminal_insts.push_back(std::move(parts[b]));
        node->children.push_back(std::move(child));
        continue;
      }
      auto ct = std::make_unique<HTask>();
      ct->node = child.get();
      ct->insts = std::move(parts[b]);
      ct->avail = child_avail;
      ct->depth = t.depth + 1;
      ct->node_entropy = EntropyBits(child->class_counts.data(), nc);
      out->tasks.push_back(std::move(ct));
      node->children.push_back(std::move(child));
    }
    if (out->tasks.empty()) return false;

    // Subtraction setup: reconstruct the largest non-terminal child from
    // the parent block iff scanning it costs more than scanning everything
    // else (terminal siblings included, since they must be scanned to
    // complete the subtraction). Size-based and therefore deterministic.
    int sub = -1;
    size_t sub_size = 0;
    for (size_t i = 0; i < out->tasks.size(); ++i) {
      if (out->tasks[i]->insts.size() > sub_size) {
        sub = static_cast<int>(i);
        sub_size = out->tasks[i]->insts.size();
      }
    }
    size_t terminal_total = 0;
    for (const std::vector<Inst>& insts : terminal_insts) {
      terminal_total += insts.size();
    }
    if (config.histogram_subtraction && hist_width > 0 && sub >= 0 &&
        sub_size >= kSubtractMinInsts && sub_size > terminal_total) {
      out->sub_task = sub;
      out->parent_hist = std::move(t.hist);
      out->support_insts = std::move(terminal_insts);
    }
    return true;
  }

  // --- node helpers --------------------------------------------------------

  std::unique_ptr<Node> MakeNode(std::vector<double> counts, double weight) {
    auto node = std::make_unique<Node>();
    node->class_counts = std::move(counts);
    node->weight = weight;
    node->majority = MajorityOf(node->class_counts);
    node->expected_error_conf = LeafExpectedErrorConf(
        node->class_counts, node->weight, node->majority,
        config.confidence_level, config.min_error_confidence);
    nodes_built->Add(1);
    return node;
  }

  bool IsTerminal(const Node& node, int depth) const {
    const double majority_count =
        node.class_counts[static_cast<size_t>(node.majority)];
    const bool pure = majority_count >= node.weight - kEps;
    return pure || depth >= config.max_depth ||
           node.weight < 2.0 * config.min_split_weight ||
           majority_count < ctx.min_inst;
  }

  const C45Config& config;
  const Schema& schema;
  const C45Tree::BuildContext& ctx;
  ThreadPool* pool;
  size_t num_rows;
  size_t nc;
  std::vector<AttrPlan> plans;
  size_t hist_width = 0;

  obs::Counter* const nodes_built = obs::GetCounter("c45.nodes_built");
  obs::Counter* const histogram_builds =
      obs::GetCounter("c45.histogram_builds");
  obs::Counter* const histogram_subtractions =
      obs::GetCounter("c45.histogram_subtractions");
  obs::Counter* const splits_evaluated =
      obs::GetCounter("c45.splits_evaluated");
};

Status C45Tree::TrainHistogram(const TrainingData& data, BuildContext* ctx,
                               std::vector<std::pair<uint32_t, double>> insts,
                               bool has_ordered_base) {
  const Schema& schema = table_->schema();
  const size_t num_rows = table_->num_rows();
  const EncodedDataset* cache = data.encoded;

  // Value bins for every ordered base attribute: shared audit-wide bins
  // from the cache when present, else derived here from a per-Train stable
  // sort (the uncached analogue of the c45.presort phase).
  std::vector<AttributeBins> local_bins(schema.num_attributes());
  std::vector<const AttributeBins*> bins(schema.num_attributes(), nullptr);
  if (has_ordered_base) {
    obs::Span span("c45.bin", class_attr_, &presort_ms_);
    for (int a : data.base_attrs) {
      const size_t attr = static_cast<size_t>(a);
      const double* col = ctx->ordered_cols[attr];
      if (col == nullptr) continue;
      if (cache != nullptr) {
        bins[attr] = cache->bins(attr);
        continue;
      }
      std::vector<uint32_t> order;
      order.reserve(num_rows);
      for (size_t r = 0; r < num_rows; ++r) {
        if (!std::isnan(col[r])) order.push_back(static_cast<uint32_t>(r));
      }
      std::stable_sort(order.begin(), order.end(),
                       [col](uint32_t x, uint32_t y) {
                         return col[x] < col[y];
                       });
      local_bins[attr] =
          BuildAttributeBins(col, order, num_rows, config_.histogram_bins);
      bins[attr] = &local_bins[attr];
    }
  }

  {
    obs::Span span("c45.build", class_attr_, &build_ms_);
    std::vector<bool> avail(schema.num_attributes(), false);
    for (int a : data.base_attrs) avail[static_cast<size_t>(a)] = true;
    C45HistogramBuilder builder(config_, schema, *ctx, bins, data.pool,
                                num_rows);
    root_ = builder.Run(std::move(insts), std::move(avail));
    // The recursive path aggregates Def. 9 values (and prunes, in
    // kExpectedErrorConfidence mode) bottom-up during construction; the
    // frontier build defers that to one post-order pass, which yields the
    // identical tree because construction is pure top-down.
    PruneExpectedErrorConf(root_.get());
    if (config_.pruning == PruningMode::kPessimistic) {
      PrunePessimistic(root_.get());
    }
  }
  obs::GetCounter("c45.tree_nodes")->Add(NodeCount());
  return Status::OK();
}

void C45Tree::PruneExpectedErrorConf(Node* node) {
  if (node == nullptr || node->IsLeaf()) return;
  double subtree_exp = 0.0;
  double subtree_weight = 0.0;
  for (std::unique_ptr<Node>& child : node->children) {
    PruneExpectedErrorConf(child.get());
    subtree_exp += child->weight * child->expected_error_conf;
    subtree_weight += child->weight;
  }
  if (subtree_weight > kEps) subtree_exp /= subtree_weight;
  // node->expected_error_conf still holds the leaf value of Def. 9 here
  // (the frontier build never overwrites it).
  if (config_.pruning == PruningMode::kExpectedErrorConfidence &&
      node->expected_error_conf > subtree_exp + kEps) {
    node->split_attr = -1;
    node->children.clear();
    node->child_weights.clear();
    return;
  }
  node->expected_error_conf = subtree_exp;
}

// ---------------------------------------------------------------------------
// Classic pessimistic pruning (sec. 5.1.2)

double C45Tree::PessimisticErrors(const Node& node) const {
  const double leaf_errors =
      node.weight - node.class_counts[static_cast<size_t>(node.majority)];
  return leaf_errors + C45AddErrs(node.weight, leaf_errors, config_.pruning_cf);
}

void C45Tree::PrunePessimistic(Node* node) {
  if (node == nullptr || node->IsLeaf()) return;
  for (auto& child : node->children) PrunePessimistic(child.get());
  double subtree_errors = 0.0;
  for (const auto& child : node->children) {
    if (child->weight <= kEps) continue;
    if (child->IsLeaf()) {
      subtree_errors += PessimisticErrors(*child);
    } else {
      // Children already pruned; accumulate their leaf estimates.
      std::vector<const Node*> stack{child.get()};
      while (!stack.empty()) {
        const Node* n = stack.back();
        stack.pop_back();
        if (n->IsLeaf()) {
          if (n->weight > kEps) subtree_errors += PessimisticErrors(*n);
        } else {
          for (const auto& c : n->children) stack.push_back(c.get());
        }
      }
    }
  }
  if (PessimisticErrors(*node) <= subtree_errors + 0.1) {
    node->split_attr = -1;
    node->children.clear();
    node->child_weights.clear();
  }
}

// ---------------------------------------------------------------------------
// Classification

void C45Tree::PredictInto(const Node& node, const Row& row, double weight,
                          std::vector<double>* dist, double* support) const {
  if (node.IsLeaf()) {
    if (node.weight > kEps) {
      for (size_t c = 0; c < node.class_counts.size(); ++c) {
        (*dist)[c] += weight * node.class_counts[c] / node.weight;
      }
      *support += weight * node.weight;
    } else {
      // Empty training leaf: fall back to its majority with zero support.
      (*dist)[static_cast<size_t>(node.majority)] += weight;
    }
    return;
  }
  const Value& v = row[static_cast<size_t>(node.split_attr)];
  if (v.is_null()) {
    // Distribute over branches by training fractions (C4.5 missing-value
    // classification).
    if (node.known_weight <= kEps) {
      PredictInto(*node.children[0], row, weight, dist, support);
      return;
    }
    for (size_t b = 0; b < node.children.size(); ++b) {
      if (node.child_weights[b] <= kEps) continue;
      PredictInto(*node.children[b], row,
                  weight * node.child_weights[b] / node.known_weight, dist,
                  support);
    }
    return;
  }
  size_t b;
  if (node.ordered_split) {
    b = v.OrderedValue() <= node.threshold ? 0 : 1;
  } else {
    const int32_t code = v.nominal_code();
    if (code < 0 || static_cast<size_t>(code) >= node.children.size()) {
      PredictInto(*node.children[0], row, weight, dist, support);
      return;
    }
    b = static_cast<size_t>(code);
  }
  PredictInto(*node.children[b], row, weight, dist, support);
}

Prediction C45Tree::Predict(const Row& row) const {
  Prediction out;
  out.distribution.assign(static_cast<size_t>(num_classes_), 0.0);
  if (root_ == nullptr) return out;
  double support = 0.0;
  PredictInto(*root_, row, 1.0, &out.distribution, &support);
  out.support = support;
  double total = 0.0;
  for (double p : out.distribution) total += p;
  if (total > kEps) {
    for (double& p : out.distribution) p /= total;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Introspection

namespace {

template <typename NodeT>
void CountNodes(const NodeT& node, size_t depth, size_t* nodes, size_t* leaves,
                size_t* max_depth) {
  ++*nodes;
  *max_depth = std::max(*max_depth, depth);
  if (node.IsLeaf()) {
    ++*leaves;
    return;
  }
  for (const auto& child : node.children) {
    CountNodes(*child, depth + 1, nodes, leaves, max_depth);
  }
}

}  // namespace

size_t C45Tree::NodeCount() const {
  if (root_ == nullptr) return 0;
  size_t nodes = 0, leaves = 0, depth = 0;
  CountNodes(*root_, 1, &nodes, &leaves, &depth);
  return nodes;
}

size_t C45Tree::LeafCount() const {
  if (root_ == nullptr) return 0;
  size_t nodes = 0, leaves = 0, depth = 0;
  CountNodes(*root_, 1, &nodes, &leaves, &depth);
  return leaves;
}

size_t C45Tree::TreeDepth() const {
  if (root_ == nullptr) return 0;
  size_t nodes = 0, leaves = 0, depth = 0;
  CountNodes(*root_, 1, &nodes, &leaves, &depth);
  return depth;
}

void C45Tree::VisitPaths(
    const std::function<void(const std::vector<SplitCondition>&,
                             const LeafInfo&)>& visitor) const {
  if (root_ == nullptr) return;
  std::vector<SplitCondition> prefix;
  std::function<void(const Node&)> rec = [&](const Node& node) {
    if (node.IsLeaf()) {
      LeafInfo info;
      info.class_counts = node.class_counts;
      info.weight = node.weight;
      info.majority = node.majority;
      info.expected_error_confidence = node.expected_error_conf;
      visitor(prefix, info);
      return;
    }
    for (size_t b = 0; b < node.children.size(); ++b) {
      SplitCondition cond;
      cond.attr = node.split_attr;
      if (node.ordered_split) {
        cond.kind = b == 0 ? SplitCondition::Kind::kLessEq
                           : SplitCondition::Kind::kGreater;
        cond.threshold = node.threshold;
      } else {
        cond.kind = SplitCondition::Kind::kCategory;
        cond.category = static_cast<int32_t>(b);
      }
      prefix.push_back(cond);
      rec(*node.children[b]);
      prefix.pop_back();
    }
  };
  rec(*root_);
}

std::string C45Tree::ToString(const Schema& schema) const {
  std::string out;
  if (root_ == nullptr) return "<untrained>";
  std::function<void(const Node&, int)> rec = [&](const Node& node, int indent) {
    const std::string pad(static_cast<size_t>(indent) * 2, ' ');
    if (node.IsLeaf()) {
      out += pad + "leaf: class " +
             encoder_->Label(node.majority, schema) + " (weight " +
             FormatDouble(node.weight, 2) + ")\n";
      return;
    }
    const AttributeDef& def =
        schema.attribute(static_cast<size_t>(node.split_attr));
    for (size_t b = 0; b < node.children.size(); ++b) {
      std::string branch;
      if (node.ordered_split) {
        branch = def.name + (b == 0 ? " <= " : " > ") +
                 FormatDouble(node.threshold, 4);
      } else {
        branch = def.name + " = " + def.categories[b];
      }
      out += pad + branch + ":\n";
      rec(*node.children[b], indent + 1);
    }
  };
  rec(*root_, 0);
  return out;
}

}  // namespace dq
