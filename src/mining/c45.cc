#include "mining/c45.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/strings.h"
#include "mining/encoded_dataset.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/confidence.h"
#include "stats/descriptive.h"

namespace dq {

const char* PruningModeToString(PruningMode mode) {
  switch (mode) {
    case PruningMode::kNone:
      return "none";
    case PruningMode::kPessimistic:
      return "pessimistic";
    case PruningMode::kExpectedErrorConfidence:
      return "expected-error-confidence";
  }
  return "unknown";
}

double MinInstForConfidence(double min_conf, double confidence_level) {
  if (min_conf <= 0.0) return 1.0;
  // errorConf of a deviating record at a pure leaf of weight n:
  // leftBound(1, n) - rightBound(0, n); monotonically increasing in n.
  for (double n = 1.0; n <= 1e6; n = std::max(n + 1.0, n * 1.01)) {
    const double conf = LeftBound(1.0, n, confidence_level) -
                        RightBound(0.0, n, confidence_level);
    if (conf >= min_conf) return std::ceil(n);
  }
  return 1e6;
}

std::string SplitCondition::ToString(const Schema& schema) const {
  const AttributeDef& def = schema.attribute(static_cast<size_t>(attr));
  switch (kind) {
    case Kind::kCategory:
      return def.name + " = " +
             (category >= 0 &&
                      static_cast<size_t>(category) < def.categories.size()
                  ? def.categories[static_cast<size_t>(category)]
                  : "#" + std::to_string(category));
    case Kind::kLessEq:
      return def.name + " <= " + FormatDouble(threshold, 4);
    case Kind::kGreater:
      return def.name + " > " + FormatDouble(threshold, 4);
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Tree structure

struct C45Tree::Node {
  std::vector<double> class_counts;
  double weight = 0.0;
  int majority = 0;

  int split_attr = -1;  // -1 => leaf
  bool ordered_split = false;
  double threshold = 0.0;
  std::vector<std::unique_ptr<Node>> children;
  std::vector<double> child_weights;  // known-value weight per child
  double known_weight = 0.0;

  /// Def. 9 value of this node (leaf value or weighted child aggregate).
  double expected_error_conf = 0.0;

  bool IsLeaf() const { return split_attr < 0; }
};

struct C45Tree::BuildContext {
  const Table* table;
  const int32_t* class_codes;  // per row, -1 for null
  std::vector<int> base_attrs;
  int num_classes;
  double min_inst;

  // Columnar views of the base attributes: ordered_cols[a][row] is the
  // OrderedValue (NaN = null) of ordered base attributes, nominal_cols[a]
  // [row] the category code (-1 = null) of nominal ones. Non-base
  // attributes stay nullptr. The views alias the shared EncodedDataset
  // when one is supplied, else per-Train storage owned by Train's frame.
  std::vector<const double*> ordered_cols;
  std::vector<const int32_t*> nominal_cols;

  // Presort active: the table has at least one ordered base attribute and
  // the config enables the SLIQ-style sorted index lists.
  bool presort = false;

  // Per-row branch assignment scratch used while partitioning one node
  // (-2 = not in node, -1 = missing split value, >= 0 = branch index).
  std::vector<int32_t> branch_scratch;
};

/// Per-node training state: the instance set plus (in presort mode) one
/// value-ordered instance list per ordered base attribute. The lists are
/// partitioned stably alongside the instances, so the upfront sort order
/// survives to every descendant and no node ever re-sorts.
struct C45Tree::NodeData {
  std::vector<std::pair<uint32_t, double>> insts;
  std::vector<std::vector<std::pair<uint32_t, double>>> sorted;
};

C45Tree::C45Tree(C45Config config) : config_(config) {}
C45Tree::~C45Tree() = default;
C45Tree::C45Tree(C45Tree&&) noexcept = default;
C45Tree& C45Tree::operator=(C45Tree&&) noexcept = default;

namespace {

using Inst = std::pair<uint32_t, double>;  // row index, weight

/// Truncated error confidence of Def. 7 used inside Def. 9: contributions
/// below the user's minimal error confidence count as zero (sec. 5.4).
double TruncatedErrorConf(const std::vector<double>& counts, double weight,
                          int observed, int majority, double level,
                          double min_conf) {
  if (weight <= 0.0 || observed == majority) return 0.0;
  const double p_pred = counts[static_cast<size_t>(majority)] / weight;
  const double p_obs = counts[static_cast<size_t>(observed)] / weight;
  const double conf = LeftBound(p_pred, weight, level) -
                      RightBound(p_obs, weight, level);
  if (conf <= 0.0) return 0.0;
  if (conf < min_conf) return 0.0;
  return conf;
}

/// Leaf value of Def. 9: sum over classes of relative frequency times the
/// (truncated) error confidence of observing that class.
double LeafExpectedErrorConf(const std::vector<double>& counts, double weight,
                             int majority, double level, double min_conf) {
  if (weight <= 0.0) return 0.0;
  double exp_conf = 0.0;
  for (size_t c = 0; c < counts.size(); ++c) {
    if (counts[c] <= 0.0) continue;
    exp_conf += counts[c] / weight *
                TruncatedErrorConf(counts, weight, static_cast<int>(c),
                                   majority, level, min_conf);
  }
  return exp_conf;
}

int MajorityOf(const std::vector<double>& counts) {
  int best = 0;
  for (size_t c = 1; c < counts.size(); ++c) {
    if (counts[c] > counts[static_cast<size_t>(best)]) best = static_cast<int>(c);
  }
  return best;
}

struct SplitEval {
  bool valid = false;
  double gain = 0.0;
  double gain_ratio = 0.0;
  bool ordered = false;
  double threshold = 0.0;
};

constexpr double kEps = 1e-9;

}  // namespace

// ---------------------------------------------------------------------------
// Induction

Status C45Tree::Train(const TrainingData& data) {
  DQ_RETURN_NOT_OK(data.Check());
  table_ = data.table;
  class_attr_ = data.class_attr;
  encoder_ = data.encoder;
  num_classes_ = data.encoder->num_classes();
  if (num_classes_ < 1) {
    return Status::FailedPrecondition("encoder reports no classes");
  }

  const Schema& schema = table_->schema();
  const size_t num_rows = table_->num_rows();
  presort_ms_ = 0.0;
  build_ms_ = 0.0;

  const EncodedDataset* cache = data.encoded;

  BuildContext ctx;
  ctx.table = table_;
  ctx.base_attrs = data.base_attrs;
  ctx.num_classes = num_classes_;
  ctx.min_inst =
      MinInstForConfidence(config_.min_error_confidence, config_.confidence_level);
  ctx.ordered_cols.assign(schema.num_attributes(), nullptr);
  ctx.nominal_cols.assign(schema.num_attributes(), nullptr);

  // Per-Train storage backing the context views on the legacy (uncached)
  // path; with an EncodedDataset the views alias the shared cache and
  // these stay empty.
  std::vector<int32_t> class_code_storage;
  std::vector<std::vector<double>> ordered_storage;
  std::vector<std::vector<int32_t>> nominal_storage;

  bool has_ordered_base = false;
  if (cache != nullptr) {
    // Audit-wide cache: column views and class codes were built once for
    // the whole audit, so this Train call encodes nothing.
    DQ_DCHECK(cache->table() == table_);
    ctx.class_codes = cache->class_codes(static_cast<size_t>(class_attr_));
    if (ctx.class_codes == nullptr) {
      return Status::FailedPrecondition(
          "encoded dataset has no class encoding for the class attribute");
    }
    for (int a : data.base_attrs) {
      const size_t attr = static_cast<size_t>(a);
      if (schema.attribute(attr).type == DataType::kNominal) {
        ctx.nominal_cols[attr] = cache->nominal_col(attr);
      } else {
        ctx.ordered_cols[attr] = cache->ordered_col(attr);
        has_ordered_base = true;
      }
    }
  } else {
    // Columnar encoding: one dense value column per base attribute, so the
    // split search and partitioning never chase Row/Value indirections.
    obs::Span span("c45.encode", -1, &presort_ms_);
    class_code_storage.resize(num_rows);
    for (size_t r = 0; r < num_rows; ++r) {
      class_code_storage[r] =
          encoder_->Encode(table_->cell(r, static_cast<size_t>(class_attr_)));
    }
    ctx.class_codes = class_code_storage.data();
    ordered_storage.assign(schema.num_attributes(), {});
    nominal_storage.assign(schema.num_attributes(), {});
    for (int a : data.base_attrs) {
      const size_t attr = static_cast<size_t>(a);
      if (schema.attribute(attr).type == DataType::kNominal) {
        std::vector<int32_t>& col = nominal_storage[attr];
        col.resize(num_rows);
        for (size_t r = 0; r < num_rows; ++r) {
          const Value v = table_->cell(r, attr);
          col[r] = v.is_null() ? -1 : v.nominal_code();
        }
        ctx.nominal_cols[attr] = col.data();
      } else {
        has_ordered_base = true;
        std::vector<double>& col = ordered_storage[attr];
        col.resize(num_rows);
        for (size_t r = 0; r < num_rows; ++r) {
          const Value v = table_->cell(r, attr);
          col[r] = v.is_null() ? std::numeric_limits<double>::quiet_NaN()
                               : v.OrderedValue();
        }
        ctx.ordered_cols[attr] = col.data();
      }
    }
  }

  std::vector<Inst> insts;
  insts.reserve(num_rows);
  for (size_t r = 0; r < num_rows; ++r) {
    if (ctx.class_codes[r] >= 0) {
      insts.emplace_back(static_cast<uint32_t>(r), 1.0);
    }
  }
  if (insts.empty()) {
    return Status::FailedPrecondition(
        "no training instances with non-null class value");
  }

  ctx.presort = config_.presort && has_ordered_base;

  NodeData root_data;
  root_data.insts = std::move(insts);
  if (ctx.presort) {
    // The one upfront sort (SLIQ-style): every ordered base attribute gets
    // a value-ordered list of the root instances with known values; ties
    // keep row order (stable), so parallel/serial runs agree bitwise.
    //
    // Cached path: the shared sort order already holds ALL value-known
    // rows stable-sorted by (value, row); filtering it down to the rows
    // with a known class value preserves that order exactly, so the result
    // is bitwise-identical to the per-Train stable sort — in O(n) per
    // attribute instead of O(n log n).
    obs::Span span("c45.presort", -1, &presort_ms_);
    ctx.branch_scratch.assign(num_rows, -2);
    root_data.sorted.assign(schema.num_attributes(), {});
    for (int a : data.base_attrs) {
      const size_t attr = static_cast<size_t>(a);
      const double* col = ctx.ordered_cols[attr];
      if (col == nullptr) continue;
      std::vector<std::pair<uint32_t, double>>& list = root_data.sorted[attr];
      list.reserve(root_data.insts.size());
      if (cache != nullptr) {
        const int32_t* class_codes = ctx.class_codes;
        for (uint32_t r : cache->sort_order(attr)) {
          if (class_codes[r] >= 0) list.emplace_back(r, 1.0);
        }
      } else {
        for (const auto& inst : root_data.insts) {
          if (!std::isnan(col[inst.first])) list.push_back(inst);
        }
        std::stable_sort(list.begin(), list.end(),
                         [col](const auto& x, const auto& y) {
                           return col[x.first] < col[y.first];
                         });
      }
    }
  }

  std::vector<bool> avail(schema.num_attributes(), false);
  for (int a : data.base_attrs) avail[static_cast<size_t>(a)] = true;

  {
    obs::Span span("c45.build", -1, &build_ms_);
    root_ = Build(&ctx, std::move(root_data), std::move(avail), 0);
    if (config_.pruning == PruningMode::kPessimistic) {
      PrunePessimistic(root_.get());
    }
  }
  obs::GetCounter("c45.tree_nodes")->Add(NodeCount());
  return Status::OK();
}

std::unique_ptr<C45Tree::Node> C45Tree::Build(BuildContext* ctx, NodeData data,
                                              std::vector<bool> avail,
                                              int depth) {
  std::vector<Inst>& insts = data.insts;
  auto node = std::make_unique<Node>();
  node->class_counts.assign(static_cast<size_t>(ctx->num_classes), 0.0);
  for (const Inst& inst : insts) {
    node->class_counts[static_cast<size_t>(
        ctx->class_codes[inst.first])] += inst.second;
    node->weight += inst.second;
  }
  node->majority = MajorityOf(node->class_counts);
  node->expected_error_conf = LeafExpectedErrorConf(
      node->class_counts, node->weight, node->majority,
      config_.confidence_level, config_.min_error_confidence);

  const double majority_count =
      node->class_counts[static_cast<size_t>(node->majority)];
  const bool pure = majority_count >= node->weight - kEps;

  // Stopping conditions; the minInst check is the pre-pruning of sec. 5.4:
  // once no partition can hold minInst instances of one class, deeper
  // leaves can never flag a deviation above the minimal error confidence.
  if (pure || depth >= config_.max_depth ||
      node->weight < 2.0 * config_.min_split_weight ||
      majority_count < ctx->min_inst) {
    return node;
  }

  // --- Split search -------------------------------------------------------
  const Schema& schema = ctx->table->schema();
  std::vector<SplitEval> evals(schema.num_attributes());
  const double node_entropy = EntropyFromCounts(node->class_counts);
  const int32_t* class_codes = ctx->class_codes;

  // Threshold sweep shared by the presorted and the legacy path; `entries`
  // must be in ascending value order.
  struct SweepEntry {
    double val;
    uint32_t row;
    double weight;
  };
  auto eval_ordered_split = [&](const std::vector<SweepEntry>& entries,
                                const std::vector<double>& known_counts,
                                double known, SplitEval* eval) {
    const double known_entropy = EntropyFromCounts(known_counts);
    std::vector<double> left(static_cast<size_t>(ctx->num_classes), 0.0);
    std::vector<double> right = known_counts;
    double left_w = 0.0;
    double best_gain = -1.0;
    double best_thr = 0.0;
    double best_left_w = 0.0;
    size_t distinct = 1;
    for (size_t i = 0; i + 1 < entries.size(); ++i) {
      const size_t cls = static_cast<size_t>(class_codes[entries[i].row]);
      left[cls] += entries[i].weight;
      right[cls] -= entries[i].weight;
      left_w += entries[i].weight;
      if (entries[i + 1].val > entries[i].val + kEps) {
        ++distinct;
        const double right_w = known - left_w;
        if (left_w < config_.min_split_weight ||
            right_w < config_.min_split_weight) {
          continue;
        }
        const double sub = left_w / known * EntropyFromCounts(left) +
                           right_w / known * EntropyFromCounts(right);
        const double gain = known_entropy - sub;
        if (gain > best_gain) {
          best_gain = gain;
          best_thr = (entries[i].val + entries[i + 1].val) / 2.0;
          best_left_w = left_w;
        }
      }
    }
    if (best_gain <= kEps) return;
    const double known_frac = known / node->weight;
    double gain = known_frac * best_gain;
    if (config_.mdl_numeric_correction && distinct > 1) {
      gain -= std::log2(static_cast<double>(distinct - 1)) / known;
    }
    if (gain <= kEps) return;
    std::vector<double> si_weights{best_left_w, known - best_left_w};
    if (node->weight - known > kEps) si_weights.push_back(node->weight - known);
    const double split_info = EntropyFromCounts(si_weights);
    eval->valid = true;
    eval->gain = gain;
    eval->gain_ratio = split_info > kEps ? gain / split_info : 0.0;
    eval->ordered = true;
    eval->threshold = best_thr;
  };

  for (int attr : ctx->base_attrs) {
    if (!avail[static_cast<size_t>(attr)]) continue;
    const AttributeDef& def = schema.attribute(static_cast<size_t>(attr));
    SplitEval& eval = evals[static_cast<size_t>(attr)];

    if (def.type == DataType::kNominal) {
      const int32_t* col = ctx->nominal_cols[static_cast<size_t>(attr)];
      const size_t k = def.categories.size();
      std::vector<std::vector<double>> branch_counts(
          k, std::vector<double>(static_cast<size_t>(ctx->num_classes), 0.0));
      std::vector<double> branch_weights(k, 0.0);
      double known = 0.0;
      for (const Inst& inst : insts) {
        const int32_t code = col[inst.first];
        if (code < 0) continue;
        const size_t b = static_cast<size_t>(code);
        branch_counts[b][static_cast<size_t>(class_codes[inst.first])] +=
            inst.second;
        branch_weights[b] += inst.second;
        known += inst.second;
      }
      if (known <= kEps) continue;
      int non_empty = 0;
      int big_enough = 0;
      double sub_entropy = 0.0;
      for (size_t b = 0; b < k; ++b) {
        if (branch_weights[b] <= kEps) continue;
        ++non_empty;
        if (branch_weights[b] >= config_.min_split_weight) ++big_enough;
        sub_entropy +=
            branch_weights[b] / known * EntropyFromCounts(branch_counts[b]);
      }
      if (non_empty < 2 || big_enough < 2) continue;
      const double known_frac = known / node->weight;
      const double gain = known_frac * (node_entropy - sub_entropy);
      if (gain <= kEps) continue;
      // Split info over the known branches plus the missing "branch".
      std::vector<double> si_weights = branch_weights;
      if (node->weight - known > kEps) si_weights.push_back(node->weight - known);
      const double split_info = EntropyFromCounts(si_weights);
      eval.valid = true;
      eval.gain = gain;
      eval.gain_ratio = split_info > kEps ? gain / split_info : 0.0;
    } else {
      // Ordered attribute: sweep thresholds between distinct values.
      const double* col = ctx->ordered_cols[static_cast<size_t>(attr)];
      std::vector<SweepEntry> entries;
      std::vector<double> known_counts(static_cast<size_t>(ctx->num_classes),
                                       0.0);
      double known = 0.0;
      if (ctx->presort) {
        // The node's instances are already in value order: reuse the
        // partitioned sorted list instead of sorting.
        const std::vector<Inst>& list = data.sorted[static_cast<size_t>(attr)];
        entries.reserve(list.size());
        for (const Inst& inst : list) {
          entries.push_back({col[inst.first], inst.first, inst.second});
          known += inst.second;
          known_counts[static_cast<size_t>(class_codes[inst.first])] +=
              inst.second;
        }
      } else {
        entries.reserve(insts.size());
        for (const Inst& inst : insts) {
          const double v = col[inst.first];
          if (std::isnan(v)) continue;
          entries.push_back({v, inst.first, inst.second});
          known += inst.second;
          known_counts[static_cast<size_t>(class_codes[inst.first])] +=
              inst.second;
        }
        std::sort(entries.begin(), entries.end(),
                  [](const SweepEntry& x, const SweepEntry& y) {
                    return x.val < y.val;
                  });
      }
      if (known <= kEps || entries.size() < 2) continue;
      eval_ordered_split(entries, known_counts, known, &eval);
    }
  }

  // C4.5 selection: among candidates with at least average gain, take the
  // best gain ratio (or raw gain in ID3 mode).
  double gain_sum = 0.0;
  int valid_count = 0;
  for (const SplitEval& e : evals) {
    if (e.valid) {
      gain_sum += e.gain;
      ++valid_count;
    }
  }
  static obs::Counter* const splits_evaluated =
      obs::GetCounter("c45.splits_evaluated");
  splits_evaluated->Add(static_cast<uint64_t>(valid_count));
  if (valid_count == 0) return node;
  const double avg_gain = gain_sum / valid_count;
  int best_attr = -1;
  double best_score = -1.0;
  for (size_t a = 0; a < evals.size(); ++a) {
    const SplitEval& e = evals[a];
    if (!e.valid) continue;
    if (config_.use_gain_ratio && e.gain + kEps < avg_gain) continue;
    const double score = config_.use_gain_ratio ? e.gain_ratio : e.gain;
    if (score > best_score) {
      best_score = score;
      best_attr = static_cast<int>(a);
    }
  }
  if (best_attr < 0) return node;
  const SplitEval& best = evals[static_cast<size_t>(best_attr)];

  // --- Partition ----------------------------------------------------------
  const AttributeDef& def = schema.attribute(static_cast<size_t>(best_attr));
  const size_t num_children =
      best.ordered ? 2 : def.categories.size();
  std::vector<std::vector<Inst>> parts(num_children);
  std::vector<Inst> missing;
  std::vector<double> part_weights(num_children, 0.0);
  double known = 0.0;
  const double* ordered_col = ctx->ordered_cols[static_cast<size_t>(best_attr)];
  const int32_t* nominal_col = ctx->nominal_cols[static_cast<size_t>(best_attr)];
  for (const Inst& inst : insts) {
    size_t b;
    if (best.ordered) {
      const double v = ordered_col[inst.first];
      if (std::isnan(v)) {
        if (ctx->presort) ctx->branch_scratch[inst.first] = -1;
        missing.push_back(inst);
        continue;
      }
      b = v <= best.threshold ? 0 : 1;
    } else {
      const int32_t code = nominal_col[inst.first];
      if (code < 0) {
        if (ctx->presort) ctx->branch_scratch[inst.first] = -1;
        missing.push_back(inst);
        continue;
      }
      b = static_cast<size_t>(code);
    }
    if (ctx->presort) {
      ctx->branch_scratch[inst.first] = static_cast<int32_t>(b);
    }
    parts[b].push_back(inst);
    part_weights[b] += inst.second;
    known += inst.second;
  }
  auto reset_scratch = [&] {
    if (!ctx->presort) return;
    for (const Inst& inst : insts) ctx->branch_scratch[inst.first] = -2;
  };

  // minInst pre-pruning (sec. 5.4): require at least one partition with
  // minInst instances of one class.
  if (ctx->min_inst > 1.0) {
    bool any_strong = false;
    for (size_t b = 0; b < num_children && !any_strong; ++b) {
      std::vector<double> counts(static_cast<size_t>(ctx->num_classes), 0.0);
      for (const Inst& inst : parts[b]) {
        counts[static_cast<size_t>(class_codes[inst.first])] += inst.second;
      }
      if (counts[static_cast<size_t>(MajorityOf(counts))] >= ctx->min_inst) {
        any_strong = true;
      }
    }
    if (!any_strong) {
      reset_scratch();
      return node;
    }
  }

  // Distribute missing-value instances over non-empty branches.
  if (!missing.empty() && known > kEps) {
    for (const Inst& inst : missing) {
      for (size_t b = 0; b < num_children; ++b) {
        if (part_weights[b] <= kEps) continue;
        const double w = inst.second * part_weights[b] / known;
        if (w > 1e-6) parts[b].emplace_back(inst.first, w);
      }
    }
  }

  // Stable partition of the per-attribute sorted lists: children inherit
  // their slices in the same value order, so no descendant ever re-sorts.
  // Missing-value instances replicate into every non-empty branch with the
  // same scaled weight their parts[] copy received above.
  std::vector<std::vector<std::vector<Inst>>> child_sorted;
  if (ctx->presort) {
    child_sorted.assign(num_children, {});
    for (size_t b = 0; b < num_children; ++b) {
      if (!parts[b].empty()) {
        child_sorted[b].assign(schema.num_attributes(), {});
      }
    }
    for (size_t a = 0; a < data.sorted.size(); ++a) {
      const std::vector<Inst>& list = data.sorted[a];
      if (list.empty()) continue;
      for (const Inst& e : list) {
        const int32_t br = ctx->branch_scratch[e.first];
        if (br >= 0) {
          child_sorted[static_cast<size_t>(br)][a].push_back(e);
        } else if (br == -1 && known > kEps) {
          for (size_t b = 0; b < num_children; ++b) {
            if (part_weights[b] <= kEps) continue;
            const double w = e.second * part_weights[b] / known;
            if (w > 1e-6) child_sorted[b][a].emplace_back(e.first, w);
          }
        }
      }
    }
    reset_scratch();
  }
  insts.clear();
  insts.shrink_to_fit();
  data.sorted.clear();
  data.sorted.shrink_to_fit();

  node->split_attr = best_attr;
  node->ordered_split = best.ordered;
  node->threshold = best.threshold;
  node->known_weight = known;
  node->child_weights = part_weights;

  std::vector<bool> child_avail = avail;
  if (!best.ordered) {
    child_avail[static_cast<size_t>(best_attr)] = false;  // consumed
  }

  double subtree_exp = 0.0;
  double subtree_weight = 0.0;
  for (size_t b = 0; b < num_children; ++b) {
    if (parts[b].empty()) {
      // Empty branch: leaf predicting the parent majority, weight 0.
      auto child = std::make_unique<Node>();
      child->class_counts.assign(static_cast<size_t>(ctx->num_classes), 0.0);
      child->majority = node->majority;
      node->children.push_back(std::move(child));
      continue;
    }
    NodeData child_data;
    child_data.insts = std::move(parts[b]);
    if (ctx->presort) child_data.sorted = std::move(child_sorted[b]);
    auto child = Build(ctx, std::move(child_data), child_avail, depth + 1);
    subtree_exp += child->weight * child->expected_error_conf;
    subtree_weight += child->weight;
    node->children.push_back(std::move(child));
  }
  if (subtree_weight > kEps) subtree_exp /= subtree_weight;

  // Integrated Def. 9 pruning: replace the subtree by a leaf whenever that
  // leads to a higher expected error confidence.
  if (config_.pruning == PruningMode::kExpectedErrorConfidence) {
    const double leaf_exp = node->expected_error_conf;
    if (leaf_exp > subtree_exp + kEps) {
      node->split_attr = -1;
      node->children.clear();
      node->child_weights.clear();
      return node;
    }
  }
  node->expected_error_conf = subtree_exp;
  return node;
}

// ---------------------------------------------------------------------------
// Classic pessimistic pruning (sec. 5.1.2)

double C45Tree::PessimisticErrors(const Node& node) const {
  const double leaf_errors =
      node.weight - node.class_counts[static_cast<size_t>(node.majority)];
  return leaf_errors + C45AddErrs(node.weight, leaf_errors, config_.pruning_cf);
}

void C45Tree::PrunePessimistic(Node* node) {
  if (node == nullptr || node->IsLeaf()) return;
  for (auto& child : node->children) PrunePessimistic(child.get());
  double subtree_errors = 0.0;
  for (const auto& child : node->children) {
    if (child->weight <= kEps) continue;
    if (child->IsLeaf()) {
      subtree_errors += PessimisticErrors(*child);
    } else {
      // Children already pruned; accumulate their leaf estimates.
      std::vector<const Node*> stack{child.get()};
      while (!stack.empty()) {
        const Node* n = stack.back();
        stack.pop_back();
        if (n->IsLeaf()) {
          if (n->weight > kEps) subtree_errors += PessimisticErrors(*n);
        } else {
          for (const auto& c : n->children) stack.push_back(c.get());
        }
      }
    }
  }
  if (PessimisticErrors(*node) <= subtree_errors + 0.1) {
    node->split_attr = -1;
    node->children.clear();
    node->child_weights.clear();
  }
}

// ---------------------------------------------------------------------------
// Classification

void C45Tree::PredictInto(const Node& node, const Row& row, double weight,
                          std::vector<double>* dist, double* support) const {
  if (node.IsLeaf()) {
    if (node.weight > kEps) {
      for (size_t c = 0; c < node.class_counts.size(); ++c) {
        (*dist)[c] += weight * node.class_counts[c] / node.weight;
      }
      *support += weight * node.weight;
    } else {
      // Empty training leaf: fall back to its majority with zero support.
      (*dist)[static_cast<size_t>(node.majority)] += weight;
    }
    return;
  }
  const Value& v = row[static_cast<size_t>(node.split_attr)];
  if (v.is_null()) {
    // Distribute over branches by training fractions (C4.5 missing-value
    // classification).
    if (node.known_weight <= kEps) {
      PredictInto(*node.children[0], row, weight, dist, support);
      return;
    }
    for (size_t b = 0; b < node.children.size(); ++b) {
      if (node.child_weights[b] <= kEps) continue;
      PredictInto(*node.children[b], row,
                  weight * node.child_weights[b] / node.known_weight, dist,
                  support);
    }
    return;
  }
  size_t b;
  if (node.ordered_split) {
    b = v.OrderedValue() <= node.threshold ? 0 : 1;
  } else {
    const int32_t code = v.nominal_code();
    if (code < 0 || static_cast<size_t>(code) >= node.children.size()) {
      PredictInto(*node.children[0], row, weight, dist, support);
      return;
    }
    b = static_cast<size_t>(code);
  }
  PredictInto(*node.children[b], row, weight, dist, support);
}

Prediction C45Tree::Predict(const Row& row) const {
  Prediction out;
  out.distribution.assign(static_cast<size_t>(num_classes_), 0.0);
  if (root_ == nullptr) return out;
  double support = 0.0;
  PredictInto(*root_, row, 1.0, &out.distribution, &support);
  out.support = support;
  double total = 0.0;
  for (double p : out.distribution) total += p;
  if (total > kEps) {
    for (double& p : out.distribution) p /= total;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Introspection

namespace {

template <typename NodeT>
void CountNodes(const NodeT& node, size_t depth, size_t* nodes, size_t* leaves,
                size_t* max_depth) {
  ++*nodes;
  *max_depth = std::max(*max_depth, depth);
  if (node.IsLeaf()) {
    ++*leaves;
    return;
  }
  for (const auto& child : node.children) {
    CountNodes(*child, depth + 1, nodes, leaves, max_depth);
  }
}

}  // namespace

size_t C45Tree::NodeCount() const {
  if (root_ == nullptr) return 0;
  size_t nodes = 0, leaves = 0, depth = 0;
  CountNodes(*root_, 1, &nodes, &leaves, &depth);
  return nodes;
}

size_t C45Tree::LeafCount() const {
  if (root_ == nullptr) return 0;
  size_t nodes = 0, leaves = 0, depth = 0;
  CountNodes(*root_, 1, &nodes, &leaves, &depth);
  return leaves;
}

size_t C45Tree::TreeDepth() const {
  if (root_ == nullptr) return 0;
  size_t nodes = 0, leaves = 0, depth = 0;
  CountNodes(*root_, 1, &nodes, &leaves, &depth);
  return depth;
}

void C45Tree::VisitPaths(
    const std::function<void(const std::vector<SplitCondition>&,
                             const LeafInfo&)>& visitor) const {
  if (root_ == nullptr) return;
  std::vector<SplitCondition> prefix;
  std::function<void(const Node&)> rec = [&](const Node& node) {
    if (node.IsLeaf()) {
      LeafInfo info;
      info.class_counts = node.class_counts;
      info.weight = node.weight;
      info.majority = node.majority;
      info.expected_error_confidence = node.expected_error_conf;
      visitor(prefix, info);
      return;
    }
    for (size_t b = 0; b < node.children.size(); ++b) {
      SplitCondition cond;
      cond.attr = node.split_attr;
      if (node.ordered_split) {
        cond.kind = b == 0 ? SplitCondition::Kind::kLessEq
                           : SplitCondition::Kind::kGreater;
        cond.threshold = node.threshold;
      } else {
        cond.kind = SplitCondition::Kind::kCategory;
        cond.category = static_cast<int32_t>(b);
      }
      prefix.push_back(cond);
      rec(*node.children[b]);
      prefix.pop_back();
    }
  };
  rec(*root_);
}

std::string C45Tree::ToString(const Schema& schema) const {
  std::string out;
  if (root_ == nullptr) return "<untrained>";
  std::function<void(const Node&, int)> rec = [&](const Node& node, int indent) {
    const std::string pad(static_cast<size_t>(indent) * 2, ' ');
    if (node.IsLeaf()) {
      out += pad + "leaf: class " +
             encoder_->Label(node.majority, schema) + " (weight " +
             FormatDouble(node.weight, 2) + ")\n";
      return;
    }
    const AttributeDef& def =
        schema.attribute(static_cast<size_t>(node.split_attr));
    for (size_t b = 0; b < node.children.size(); ++b) {
      std::string branch;
      if (node.ordered_split) {
        branch = def.name + (b == 0 ? " <= " : " > ") +
                 FormatDouble(node.threshold, 4);
      } else {
        branch = def.name + " = " + def.categories[b];
      }
      out += pad + branch + ":\n";
      rec(*node.children[b], indent + 1);
    }
  };
  rec(*root_, 0);
  return out;
}

}  // namespace dq
