#include "mining/split_kernels.h"

#include "stats/descriptive.h"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace dq::kernels {

// ---------------------------------------------------------------------------
// Scalar reference kernels. Counts are integers, so these define the exact
// results every wide variant must reproduce bit-for-bit.

void CountBinClassScalar(const uint8_t* bins, const int32_t* cls, size_t n,
                         size_t nc, uint32_t* out) {
  for (size_t r = 0; r < n; ++r) {
    const uint8_t b = bins[r];
    const int32_t c = cls[r];
    if (b == 0xFF || c < 0) continue;
    ++out[static_cast<size_t>(b) * nc + static_cast<size_t>(c)];
  }
}

void CountCodeClassScalar(const int32_t* codes, const int32_t* cls, size_t n,
                          size_t nc, uint32_t* out) {
  for (size_t r = 0; r < n; ++r) {
    const int32_t b = codes[r];
    const int32_t c = cls[r];
    if (b < 0 || c < 0) continue;
    ++out[static_cast<size_t>(b) * nc + static_cast<size_t>(c)];
  }
}

void CountClassesScalar(const int32_t* cls, size_t n, uint32_t* out) {
  for (size_t r = 0; r < n; ++r) {
    if (cls[r] >= 0) ++out[static_cast<size_t>(cls[r])];
  }
}

// ---------------------------------------------------------------------------
// SSE2 variants (baseline on x86-64). The wide part computes the flattened
// histogram indices and the validity mask four rows at a time; the final
// increments stay scalar (a scatter with possible index collisions cannot
// be vectorized without conflict detection). 32x32->32 multiply is the
// classic two-_mm_mul_epu32 shuffle because SSE2 has no _mm_mullo_epi32.

#if defined(DQ_KERNELS_SSE2)

namespace {

inline __m128i Mullo32Sse2(__m128i a, __m128i b) {
  const __m128i even = _mm_mul_epu32(a, b);
  const __m128i odd =
      _mm_mul_epu32(_mm_srli_si128(a, 4), _mm_srli_si128(b, 4));
  return _mm_unpacklo_epi32(_mm_shuffle_epi32(even, _MM_SHUFFLE(0, 0, 2, 0)),
                            _mm_shuffle_epi32(odd, _MM_SHUFFLE(0, 0, 2, 0)));
}

inline void Scatter4(__m128i idx, int valid_mask, uint32_t* out) {
  alignas(16) int32_t buf[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(buf), idx);
  for (int lane = 0; lane < 4; ++lane) {
    if ((valid_mask >> lane) & 1) ++out[buf[lane]];
  }
}

}  // namespace

void CountBinClassSse2(const uint8_t* bins, const int32_t* cls, size_t n,
                       size_t nc, uint32_t* out) {
  const __m128i nc_v = _mm_set1_epi32(static_cast<int32_t>(nc));
  const __m128i null_bin = _mm_set1_epi32(0xFF);
  const __m128i zero = _mm_setzero_si128();
  size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    int32_t packed;
    __builtin_memcpy(&packed, bins + r, 4);
    __m128i b = _mm_cvtsi32_si128(packed);
    b = _mm_unpacklo_epi8(b, zero);
    b = _mm_unpacklo_epi16(b, zero);  // 4 x i32 bin codes
    const __m128i c =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cls + r));
    const __m128i invalid = _mm_or_si128(_mm_cmpeq_epi32(b, null_bin),
                                         _mm_cmplt_epi32(c, zero));
    const __m128i idx = _mm_add_epi32(Mullo32Sse2(b, nc_v), c);
    const int valid =
        (~_mm_movemask_ps(_mm_castsi128_ps(invalid))) & 0xF;
    Scatter4(idx, valid, out);
  }
  CountBinClassScalar(bins + r, cls + r, n - r, nc, out);
}

void CountCodeClassSse2(const int32_t* codes, const int32_t* cls, size_t n,
                        size_t nc, uint32_t* out) {
  const __m128i nc_v = _mm_set1_epi32(static_cast<int32_t>(nc));
  const __m128i zero = _mm_setzero_si128();
  size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + r));
    const __m128i c =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cls + r));
    const __m128i invalid = _mm_or_si128(_mm_cmplt_epi32(b, zero),
                                         _mm_cmplt_epi32(c, zero));
    const __m128i idx = _mm_add_epi32(Mullo32Sse2(b, nc_v), c);
    const int valid =
        (~_mm_movemask_ps(_mm_castsi128_ps(invalid))) & 0xF;
    Scatter4(idx, valid, out);
  }
  CountCodeClassScalar(codes + r, cls + r, n - r, nc, out);
}

void CountClassesSse2(const int32_t* cls, size_t n, uint32_t* out) {
  const __m128i zero = _mm_setzero_si128();
  size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    const __m128i c =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cls + r));
    const int valid =
        (~_mm_movemask_ps(_mm_castsi128_ps(_mm_cmplt_epi32(c, zero)))) & 0xF;
    Scatter4(c, valid, out);
  }
  CountClassesScalar(cls + r, n - r, out);
}

#endif  // DQ_KERNELS_SSE2

// ---------------------------------------------------------------------------
// AVX2 variants. The build baseline does not enable -mavx2, so the bodies
// carry a function-level target attribute and callers must gate on
// HasAvx2() (the dispatcher below does).

#if defined(DQ_KERNELS_AVX2)

bool HasAvx2() { return __builtin_cpu_supports("avx2") != 0; }

namespace {

__attribute__((target("avx2"))) inline void Scatter8(__m256i idx,
                                                     int valid_mask,
                                                     uint32_t* out) {
  alignas(32) int32_t buf[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(buf), idx);
  for (int lane = 0; lane < 8; ++lane) {
    if ((valid_mask >> lane) & 1) ++out[buf[lane]];
  }
}

}  // namespace

__attribute__((target("avx2"))) void CountBinClassAvx2(const uint8_t* bins,
                                                       const int32_t* cls,
                                                       size_t n, size_t nc,
                                                       uint32_t* out) {
  const __m256i nc_v = _mm256_set1_epi32(static_cast<int32_t>(nc));
  const __m256i null_bin = _mm256_set1_epi32(0xFF);
  const __m256i zero = _mm256_setzero_si256();
  size_t r = 0;
  for (; r + 8 <= n; r += 8) {
    const __m256i b = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(bins + r)));
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cls + r));
    const __m256i invalid = _mm256_or_si256(
        _mm256_cmpeq_epi32(b, null_bin), _mm256_cmpgt_epi32(zero, c));
    const __m256i idx = _mm256_add_epi32(_mm256_mullo_epi32(b, nc_v), c);
    const int valid =
        (~_mm256_movemask_ps(_mm256_castsi256_ps(invalid))) & 0xFF;
    Scatter8(idx, valid, out);
  }
  CountBinClassScalar(bins + r, cls + r, n - r, nc, out);
}

__attribute__((target("avx2"))) void CountCodeClassAvx2(const int32_t* codes,
                                                        const int32_t* cls,
                                                        size_t n, size_t nc,
                                                        uint32_t* out) {
  const __m256i nc_v = _mm256_set1_epi32(static_cast<int32_t>(nc));
  const __m256i zero = _mm256_setzero_si256();
  size_t r = 0;
  for (; r + 8 <= n; r += 8) {
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + r));
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cls + r));
    const __m256i invalid = _mm256_or_si256(_mm256_cmpgt_epi32(zero, b),
                                            _mm256_cmpgt_epi32(zero, c));
    const __m256i idx = _mm256_add_epi32(_mm256_mullo_epi32(b, nc_v), c);
    const int valid =
        (~_mm256_movemask_ps(_mm256_castsi256_ps(invalid))) & 0xFF;
    Scatter8(idx, valid, out);
  }
  CountCodeClassScalar(codes + r, cls + r, n - r, nc, out);
}

__attribute__((target("avx2"))) void CountClassesAvx2(const int32_t* cls,
                                                      size_t n,
                                                      uint32_t* out) {
  const __m256i zero = _mm256_setzero_si256();
  size_t r = 0;
  for (; r + 8 <= n; r += 8) {
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cls + r));
    const int valid =
        (~_mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpgt_epi32(zero, c)))) &
        0xFF;
    Scatter8(c, valid, out);
  }
  CountClassesScalar(cls + r, n - r, out);
}

#endif  // DQ_KERNELS_AVX2

// ---------------------------------------------------------------------------
// Dispatch.

namespace {

enum class Level { kScalar, kSse2, kAvx2 };

Level PickLevel() {
#if defined(DQ_KERNELS_AVX2)
  if (HasAvx2()) return Level::kAvx2;
#endif
#if defined(DQ_KERNELS_SSE2)
  return Level::kSse2;
#else
  return Level::kScalar;
#endif
}

Level CachedLevel() {
  static const Level level = PickLevel();
  return level;
}

}  // namespace

const char* SimdLevel() {
  switch (CachedLevel()) {
    case Level::kAvx2:
      return "avx2";
    case Level::kSse2:
      return "sse2";
    case Level::kScalar:
      return "scalar";
  }
  return "scalar";
}

void CountBinClass(const uint8_t* bins, const int32_t* cls, size_t n,
                   size_t nc, uint32_t* out) {
  switch (CachedLevel()) {
#if defined(DQ_KERNELS_AVX2)
    case Level::kAvx2:
      CountBinClassAvx2(bins, cls, n, nc, out);
      return;
#endif
#if defined(DQ_KERNELS_SSE2)
    case Level::kSse2:
      CountBinClassSse2(bins, cls, n, nc, out);
      return;
#endif
    default:
      CountBinClassScalar(bins, cls, n, nc, out);
  }
}

void CountCodeClass(const int32_t* codes, const int32_t* cls, size_t n,
                    size_t nc, uint32_t* out) {
  switch (CachedLevel()) {
#if defined(DQ_KERNELS_AVX2)
    case Level::kAvx2:
      CountCodeClassAvx2(codes, cls, n, nc, out);
      return;
#endif
#if defined(DQ_KERNELS_SSE2)
    case Level::kSse2:
      CountCodeClassSse2(codes, cls, n, nc, out);
      return;
#endif
    default:
      CountCodeClassScalar(codes, cls, n, nc, out);
  }
}

void CountClasses(const int32_t* cls, size_t n, uint32_t* out) {
  switch (CachedLevel()) {
#if defined(DQ_KERNELS_AVX2)
    case Level::kAvx2:
      CountClassesAvx2(cls, n, out);
      return;
#endif
#if defined(DQ_KERNELS_SSE2)
    case Level::kSse2:
      CountClassesSse2(cls, n, out);
      return;
#endif
    default:
      CountClassesScalar(cls, n, out);
  }
}

void EntropyRows(const double* counts, size_t rows, size_t nc, double* out) {
  for (size_t i = 0; i < rows; ++i) {
    out[i] = EntropyBits(counts + i * nc, nc);
  }
}

}  // namespace dq::kernels
