#include "mining/classifier.h"

#include <algorithm>

namespace dq {

int Prediction::PredictedClass() const {
  int best = -1;
  double best_p = 0.0;
  for (size_t i = 0; i < distribution.size(); ++i) {
    if (distribution[i] > best_p) {
      best_p = distribution[i];
      best = static_cast<int>(i);
    }
  }
  return best;
}

Status TrainingData::Check() const {
  if (table == nullptr) return Status::InvalidArgument("null training table");
  if (encoder == nullptr) return Status::InvalidArgument("null class encoder");
  const size_t n_attrs = table->schema().num_attributes();
  if (class_attr < 0 || static_cast<size_t>(class_attr) >= n_attrs) {
    return Status::OutOfRange("class attribute out of range");
  }
  if (encoder->attr() != class_attr) {
    return Status::InvalidArgument("encoder fitted for a different attribute");
  }
  if (base_attrs.empty()) {
    return Status::InvalidArgument("no base attributes");
  }
  for (int a : base_attrs) {
    if (a < 0 || static_cast<size_t>(a) >= n_attrs) {
      return Status::OutOfRange("base attribute out of range");
    }
    if (a == class_attr) {
      return Status::InvalidArgument(
          "class attribute cannot be a base attribute");
    }
  }
  return Status::OK();
}

}  // namespace dq
