#include "mining/oner.h"

#include <algorithm>
#include <cmath>

#include "mining/encoded_dataset.h"

namespace dq {

namespace {

double BucketError(const std::vector<std::vector<double>>& counts) {
  double errors = 0.0;
  for (const auto& bucket : counts) {
    double total = 0.0, best = 0.0;
    for (double c : bucket) {
      total += c;
      best = std::max(best, c);
    }
    errors += total - best;
  }
  return errors;
}

}  // namespace

Status OneRClassifier::Train(const TrainingData& data) {
  DQ_RETURN_NOT_OK(data.Check());
  encoder_ = data.encoder;
  num_classes_ = data.encoder->num_classes();
  const Table& table = *data.table;
  const Schema& schema = table.schema();

  overall_counts_.assign(static_cast<size_t>(num_classes_), 0.0);
  overall_weight_ = 0.0;
  const int32_t* cached =
      data.encoded != nullptr
          ? data.encoded->class_codes(static_cast<size_t>(data.class_attr))
          : nullptr;
  std::vector<int> class_codes(table.num_rows(), -1);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    class_codes[r] =
        cached != nullptr
            ? static_cast<int>(cached[r])
            : encoder_->Encode(
                  table.cell(r, static_cast<size_t>(data.class_attr)));
    if (class_codes[r] >= 0) {
      overall_counts_[static_cast<size_t>(class_codes[r])] += 1.0;
      overall_weight_ += 1.0;
    }
  }
  if (overall_weight_ <= 0.0) {
    return Status::FailedPrecondition("no instances with non-null class");
  }

  double best_error = -1.0;
  for (int attr : data.base_attrs) {
    const AttributeDef& def = schema.attribute(static_cast<size_t>(attr));
    std::optional<EqualFrequencyDiscretizer> disc;
    size_t buckets;
    if (def.type == DataType::kNominal) {
      buckets = def.categories.size();
    } else {
      std::vector<double> sample;
      for (size_t r = 0; r < table.num_rows(); ++r) {
        if (class_codes[r] < 0) continue;
        const double x = table.ordered_at(r, static_cast<size_t>(attr));
        if (!std::isnan(x)) sample.push_back(x);
      }
      if (sample.empty()) continue;
      auto fitted =
          EqualFrequencyDiscretizer::Fit(std::move(sample), config_.numeric_bins);
      if (!fitted.ok()) continue;
      disc = std::move(*fitted);
      buckets = static_cast<size_t>(disc->num_bins());
    }

    // counts[bucket][class] with a trailing null bucket.
    std::vector<std::vector<double>> counts(
        buckets + 1, std::vector<double>(static_cast<size_t>(num_classes_), 0.0));
    for (size_t r = 0; r < table.num_rows(); ++r) {
      if (class_codes[r] < 0) continue;
      const size_t a = static_cast<size_t>(attr);
      size_t b;
      if (table.is_null(r, a)) {
        b = buckets;
      } else if (def.type == DataType::kNominal) {
        b = static_cast<size_t>(table.code_at(r, a));
      } else {
        b = static_cast<size_t>(disc->BinOf(table.ordered_at(r, a)));
      }
      counts[b][static_cast<size_t>(class_codes[r])] += 1.0;
    }

    const double error = BucketError(counts);
    if (best_error < 0.0 || error < best_error) {
      best_error = error;
      chosen_attr_ = attr;
      chosen_is_nominal_ = def.type == DataType::kNominal;
      chosen_disc_ = std::move(disc);
      bucket_counts_ = std::move(counts);
    }
  }
  if (chosen_attr_ < 0) {
    return Status::FailedPrecondition("no usable base attribute for OneR");
  }
  return Status::OK();
}

int OneRClassifier::BucketOf(const Value& v) const {
  if (v.is_null()) return static_cast<int>(bucket_counts_.size()) - 1;
  if (chosen_is_nominal_) return v.nominal_code();
  return chosen_disc_->BinOf(v.OrderedValue());
}

Prediction OneRClassifier::Predict(const Row& row) const {
  Prediction out;
  out.distribution.assign(static_cast<size_t>(num_classes_), 0.0);
  if (chosen_attr_ < 0) return out;

  const int bucket = BucketOf(row[static_cast<size_t>(chosen_attr_)]);
  const std::vector<double>* counts = nullptr;
  if (bucket >= 0 && static_cast<size_t>(bucket) < bucket_counts_.size()) {
    counts = &bucket_counts_[static_cast<size_t>(bucket)];
  }
  double total = 0.0;
  if (counts != nullptr) {
    for (double c : *counts) total += c;
  }
  if (counts == nullptr || total < config_.min_bucket_weight) {
    counts = &overall_counts_;
    total = overall_weight_;
  }
  if (total <= 0.0) return out;
  for (size_t c = 0; c < counts->size(); ++c) {
    out.distribution[c] = (*counts)[c] / total;
  }
  out.support = total;
  return out;
}

}  // namespace dq
