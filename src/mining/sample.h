// Reservoir sampling for memory-bounded structure induction.
//
// The streaming audit cannot hand the inducers the whole table — that is
// the table it refuses to hold in RAM. Instead it trains on a uniform
// sample drawn during ingest with Algorithm R (Vitter): keep the first k
// rows, then replace a random slot with probability k/i for row i. The
// EncodedDataset the inducers build is therefore bounded by the sample
// size, not the input size.
//
// Determinism: the sampler draws exactly one RNG value per row past the
// first k, keyed only by the global row sequence — never by chunk
// boundaries — so the sample is identical for any chunking of the same
// record stream and for every thread count (rows are offered serially, in
// record order). When k >= n the reservoir degenerates to the full input
// in original order, which makes the streaming audit's model bitwise equal
// to the classic in-memory path's.

#ifndef DQ_MINING_SAMPLE_H_
#define DQ_MINING_SAMPLE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/random.h"
#include "table/table.h"

namespace dq {

/// \brief Uniform k-of-n row sample maintained online (Algorithm R).
class ReservoirSampler {
 public:
  /// `capacity` must be > 0; `seed` pins the sample for reproducibility.
  ReservoirSampler(size_t capacity, uint64_t seed);

  /// \brief Offers the next row of the stream. Rows must arrive in global
  /// record order (the caller's serial ingest loop guarantees this).
  void Offer(const Row& row);

  size_t rows_seen() const { return rows_seen_; }
  size_t sample_size() const { return slots_.size(); }

  /// \brief Materializes the sample as a table, rows sorted by their
  /// original stream position (so equal seeds give identical tables no
  /// matter when the sample is read out).
  Table BuildSampleTable(const Schema& schema) const;

 private:
  size_t capacity_;
  Rng rng_;
  size_t rows_seen_ = 0;
  /// (global row index, row) pairs; unordered until BuildSampleTable.
  std::vector<std::pair<uint64_t, Row>> slots_;
};

}  // namespace dq

#endif  // DQ_MINING_SAMPLE_H_
