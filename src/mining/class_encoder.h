// ClassEncoder: uniform class-label view for nominal and ordered class
// attributes.
//
// The multiple classification / regression approach (sec. 5) induces one
// dependency model per attribute. Nominal class attributes map 1:1 to
// class labels; numeric and date class attributes are "discretized into
// equal frequency bins before the induction process", turning regression
// into classification. The encoder also supplies a representative value
// per class so predictions can be decoded into correction proposals
// (sec. 5.3).

#ifndef DQ_MINING_CLASS_ENCODER_H_
#define DQ_MINING_CLASS_ENCODER_H_

#include <optional>
#include <string>

#include "common/result.h"
#include "stats/discretizer.h"
#include "table/table.h"

namespace dq {

/// \brief Maps Values of one attribute to dense class indices and back.
class ClassEncoder {
 public:
  /// \brief Builds an encoder for `class_attr` of `table`. Ordered
  /// attributes are discretized into at most `max_bins` equal-frequency
  /// bins fitted on the non-null values; fails if an ordered attribute has
  /// no non-null values.
  static Result<ClassEncoder> Fit(const Table& table, int class_attr,
                                  int max_bins);

  /// \brief Reconstructs an encoder (deserialization): nominal when
  /// `discretizer` is absent, discretized otherwise. The attribute's type in
  /// `schema` must match.
  static Result<ClassEncoder> FromParts(
      const Schema& schema, int class_attr,
      std::optional<EqualFrequencyDiscretizer> discretizer);

  int num_classes() const { return num_classes_; }
  DataType type() const { return type_; }

  /// \brief The fitted discretizer (ordered class attributes only).
  const std::optional<EqualFrequencyDiscretizer>& discretizer() const {
    return discretizer_;
  }
  int attr() const { return attr_; }
  bool is_discretized() const { return discretizer_.has_value(); }

  /// \brief Class index of a value; -1 for null.
  int Encode(const Value& v) const;

  /// \brief Class index of a non-null ordered value given as its double
  /// axis (Value::OrderedValue); discretized encoders only. The typed
  /// column fast path of EncodedDataset::Build.
  int EncodeOrdered(double x) const { return discretizer_->BinOf(x); }

  /// \brief Decoded stand-in for a class: the category itself for nominal
  /// attributes, the bin median for discretized ones.
  Value Representative(int cls) const;

  /// \brief Human-readable class label.
  std::string Label(int cls, const Schema& schema) const;

 private:
  int attr_ = -1;
  DataType type_ = DataType::kNominal;
  int num_classes_ = 0;
  std::optional<EqualFrequencyDiscretizer> discretizer_;
};

}  // namespace dq

#endif  // DQ_MINING_CLASS_ENCODER_H_
