// OneR classification-rule inducer — the "classification rule inducers"
// alternative of sec. 5.
//
// Holte's 1R: pick the single base attribute whose value -> majority-class
// rule table has the lowest training error; ordered base attributes are
// discretized into equal-frequency bins first. The prediction returns the
// class distribution of the matching bucket together with the bucket's
// instance count as support, so it plugs directly into the error-confidence
// framework.

#ifndef DQ_MINING_ONER_H_
#define DQ_MINING_ONER_H_

#include <optional>

#include "mining/classifier.h"
#include "stats/discretizer.h"

namespace dq {

struct OneRConfig {
  int numeric_bins = 10;  ///< bins for ordered base attributes
  /// A bucket needs at least this many instances; smaller buckets fall back
  /// to the overall class distribution.
  double min_bucket_weight = 1.0;
};

class OneRClassifier : public Classifier {
 public:
  explicit OneRClassifier(OneRConfig config = {}) : config_(config) {}

  Status Train(const TrainingData& data) override;
  Prediction Predict(const Row& row) const override;
  std::string name() const override { return "oner"; }

  /// \brief Attribute the rule table was built on (-1 before training).
  int chosen_attr() const { return chosen_attr_; }

 private:
  /// Bucket index of a value for the chosen attribute; -1 for null.
  int BucketOf(const Value& v) const;

  OneRConfig config_;
  const ClassEncoder* encoder_ = nullptr;
  int num_classes_ = 0;
  int chosen_attr_ = -1;
  bool chosen_is_nominal_ = true;
  std::optional<EqualFrequencyDiscretizer> chosen_disc_;
  /// counts[bucket][class]; last bucket is the null bucket.
  std::vector<std::vector<double>> bucket_counts_;
  std::vector<double> overall_counts_;
  double overall_weight_ = 0.0;
};

}  // namespace dq

#endif  // DQ_MINING_ONER_H_
