// Association-rule deviation scoring — the Hipp et al. "Data Quality
// Mining" baseline the paper positions itself against (sec. 5.2, sec. 7).
//
// "Hipp et al. use scalable algorithms for association rule induction and
// define a scoring that rates deviations from these rules based on the
// confidence of the violated rules. ... To score a deviation, Hipp adds the
// precision values of all violated association rules. This addition is,
// strictly speaking, only valid if all rules predict values for the same
// attributes." The paper's own combination (Def. 8) takes the maximum
// instead; both combinators are implemented here so the Def. 8 design
// choice can be ablated. As the paper notes, "association rules cannot
// directly model dependencies between numerical attributes" — the miner
// only considers nominal attributes.

#ifndef DQ_MINING_ASSOC_RULES_H_
#define DQ_MINING_ASSOC_RULES_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "logic/formula.h"
#include "table/table.h"

namespace dq {

/// \brief One mined association rule: premise items -> consequent item.
struct AssociationRule {
  /// Premise: (attribute, category-code) pairs, ascending by attribute.
  std::vector<std::pair<int, int32_t>> premise;
  int consequent_attr = -1;
  int32_t consequent_code = 0;
  double support = 0.0;     ///< absolute transaction count of premise+consequent
  double confidence = 0.0;  ///< support / premise support

  /// \brief Premise holds but the consequent attribute carries a different
  /// (non-null) value.
  bool ViolatedBy(const Row& row) const;

  /// \brief The rule as a TDG-rule (equality atoms on both sides) so mined
  /// association knowledge can flow through the rule linter/auditor.
  Rule ToTdgRule() const;

  std::string ToString(const Schema& schema) const;
};

struct AssocMinerConfig {
  /// Minimum absolute support of an itemset (count of rows).
  double min_support = 50.0;
  /// Minimum rule confidence.
  double min_confidence = 0.9;
  /// Maximum premise size (itemset size - 1).
  int max_premise_items = 2;
  /// Cap on generated rules (largest-support first).
  size_t max_rules = 20000;
};

/// \brief How per-rule violation scores combine into a record score.
enum class ScoreCombination {
  kSum,  ///< Hipp et al.: add the confidences of all violated rules
  kMax,  ///< the paper's Def. 8 policy applied to association rules
};

/// \brief Apriori-style miner + deviation scorer over nominal attributes.
class AssociationRuleAuditor {
 public:
  explicit AssociationRuleAuditor(AssocMinerConfig config = {})
      : config_(config) {}

  /// \brief Mines association rules from `table` (nominal attributes only).
  Status Mine(const Table& table);

  size_t num_rules() const { return rules_.size(); }
  const std::vector<AssociationRule>& rules() const { return rules_; }

  /// \brief Deviation score of one record: combined confidence of the
  /// violated rules (kSum scores are clamped to 1).
  double Score(const Row& row, ScoreCombination combination) const;

  /// \brief Scores every record; `flagged` gets score >= threshold.
  std::vector<double> ScoreTable(const Table& table,
                                 ScoreCombination combination,
                                 double threshold,
                                 std::vector<bool>* flagged) const;

 private:
  AssocMinerConfig config_;
  std::vector<AssociationRule> rules_;
};

}  // namespace dq

#endif  // DQ_MINING_ASSOC_RULES_H_
