// Naive Bayes classifier — one of the alternatives the paper evaluated for
// the QUIS domain before settling on C4.5 (sec. 5: "we evaluated different
// alternatives (instance based classifiers, naive Bayes classifiers,
// classification rule inducers, and decision trees)").
//
// Nominal base attributes use Laplace-smoothed conditional frequencies;
// ordered base attributes use per-class Gaussians. Missing base values are
// skipped (their likelihood factor is 1). The prediction's support is the
// training weight of the predicted posterior's evidence (all instances with
// known class), satisfying the Def. 7 contract.

#ifndef DQ_MINING_NAIVE_BAYES_H_
#define DQ_MINING_NAIVE_BAYES_H_

#include "mining/classifier.h"

namespace dq {

struct NaiveBayesConfig {
  double laplace = 1.0;  ///< additive smoothing for nominal likelihoods
  /// Variance floor (fraction of domain width, squared) so degenerate
  /// Gaussians cannot produce infinite densities.
  double min_stddev_fraction = 0.01;
};

class NaiveBayesClassifier : public Classifier {
 public:
  explicit NaiveBayesClassifier(NaiveBayesConfig config = {})
      : config_(config) {}

  Status Train(const TrainingData& data) override;
  Prediction Predict(const Row& row) const override;
  std::string name() const override { return "naive-bayes"; }

 private:
  struct NominalModel {
    // counts[class][category]
    std::vector<std::vector<double>> counts;
    std::vector<double> class_totals;
  };
  struct GaussianModel {
    std::vector<double> mean;
    std::vector<double> stddev;
    std::vector<double> count;
  };

  NaiveBayesConfig config_;
  const Table* table_ = nullptr;
  std::vector<int> base_attrs_;
  const ClassEncoder* encoder_ = nullptr;
  int num_classes_ = 0;
  double total_weight_ = 0.0;
  std::vector<double> priors_;  // class counts
  std::vector<NominalModel> nominal_;    // indexed by attr
  std::vector<GaussianModel> gaussian_;  // indexed by attr
  std::vector<bool> attr_is_nominal_;
};

}  // namespace dq

#endif  // DQ_MINING_NAIVE_BAYES_H_
