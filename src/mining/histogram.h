// Per-attribute value binning for the histogram split evaluator
// (LightGBM-style, sec. 5.1 adjusted): every ordered attribute is bucketed
// once per table into at most 255 equal-frequency bins whose boundaries
// never cut through a run of equal values, and every row carries its bin
// code as a uint8 (0xFF = null). Tree nodes then evaluate threshold splits
// by scanning (bin x class) histograms instead of the exact SLIQ row
// sweep, and candidate thresholds fall on the midpoints between adjacent
// non-empty bins -- exactly the thresholds the exact sweep would test when
// an attribute has at most `max_bins` distinct values (each value gets its
// own bin then, making the two evaluators bit-identical on null-free
// data; see c45_histogram_test).

#ifndef DQ_MINING_HISTOGRAM_H_
#define DQ_MINING_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dq {

/// \brief Bin code marking a null value (row excluded from histograms).
inline constexpr uint8_t kNullBinCode = 0xFF;

/// \brief Maximum representable bins (0xFF is reserved for null).
inline constexpr int kMaxHistogramBins = 255;

/// \brief Equal-frequency value bins of one ordered attribute.
struct AttributeBins {
  /// Number of bins; 0 when the column has no known values (the attribute
  /// then cannot split and histogram consumers skip it).
  int num_bins = 0;
  /// Per-row bin code, kNullBinCode for null values.
  std::vector<uint8_t> codes;
  /// Smallest / largest attribute value that falls into each bin; split
  /// thresholds between bins b and b' are (upper[b] + lower[b']) / 2, the
  /// same midpoint rule the exact sweep uses between adjacent values.
  std::vector<double> lower;
  std::vector<double> upper;
  /// Distinct attribute values swallowed by each bin (always 1 in the
  /// per-distinct regime). The MDL numeric-split correction needs the
  /// distinct-value count, which the histogram alone under-reports once
  /// bins hold more than one value; summing these per-bin counts over a
  /// node's non-empty bins (capped by the node's known weight) restores
  /// the exact penalty for continuous attributes.
  std::vector<uint32_t> distinct;
};

/// \brief Builds equal-frequency bins for the column `col` (NaN = null)
/// from its presorted known-value row order (stable (value, row), the
/// EncodedDataset sort order). When the column has at most `max_bins`
/// distinct values every distinct value receives its own bin; otherwise
/// bins target equal row counts but never split a run of equal values, so
/// the result has at most `max_bins` bins either way. Pure function of
/// (col, order): identical for every thread count.
AttributeBins BuildAttributeBins(const double* col,
                                 const std::vector<uint32_t>& order,
                                 size_t num_rows, int max_bins);

}  // namespace dq

#endif  // DQ_MINING_HISTOGRAM_H_
