// The classifier abstraction of the multiple classification / regression
// approach (sec. 5).
//
// "For each attribute in the relation to be audited, a classifier is
// induced that describes the dependency of this class attribute from the
// other attributes (called base attributes)." Every classifier must output
// a predicted class *distribution* together with the number of training
// instances the prediction is based on — exactly the two quantities the
// error confidence measure (Def. 7) needs: "the error confidence measure
// can be used with each classifier that both outputs a predicted class
// distribution and the number of training instances this prediction is
// based on."

#ifndef DQ_MINING_CLASSIFIER_H_
#define DQ_MINING_CLASSIFIER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "mining/class_encoder.h"
#include "table/table.h"

namespace dq {

class EncodedDataset;
class ThreadPool;

/// \brief A classifier's answer for one record.
struct Prediction {
  /// Probability per class index; sums to 1 when support > 0.
  std::vector<double> distribution;
  /// Number of (weighted) training instances behind the distribution.
  double support = 0.0;

  /// \brief argmax class, -1 if the distribution is empty/zero.
  int PredictedClass() const;

  /// \brief Probability of a class (0 for out-of-range indices).
  double ProbabilityOf(int cls) const {
    return cls >= 0 && static_cast<size_t>(cls) < distribution.size()
               ? distribution[static_cast<size_t>(cls)]
               : 0.0;
  }
};

/// \brief Training problem handed to a classifier.
struct TrainingData {
  const Table* table = nullptr;
  int class_attr = -1;
  std::vector<int> base_attrs;
  const ClassEncoder* encoder = nullptr;

  /// Optional audit-wide encode cache built over `table` (column views,
  /// presort orders, class codes). When set, `encoder` must be the cache's
  /// own encoder for `class_attr` so cached class codes stay consistent.
  /// Classifiers that understand the cache skip their per-Train encode and
  /// sort work; others ignore it. Results are identical either way.
  const EncodedDataset* encoded = nullptr;

  /// Optional worker pool for intra-Train parallelism (the breadth-wise
  /// node frontier of histogram-mode C4.5). Classifiers that cannot use it
  /// ignore it; results are bitwise-identical with and without a pool and
  /// for every pool size (pre-assigned result slots, deterministic
  /// reduction order). The pool must outlive the Train call.
  ThreadPool* pool = nullptr;

  Status Check() const;
};

/// \brief Dependency-model inducer interface (decision tree, naive Bayes,
/// instance-based, rule inducer, ...).
class Classifier {
 public:
  virtual ~Classifier() = default;

  virtual Status Train(const TrainingData& data) = 0;

  /// \brief Class distribution + support for a record (row of the same
  /// schema as the training table).
  virtual Prediction Predict(const Row& row) const = 0;

  virtual std::string name() const = 0;
};

/// \brief Factory signature so audit configurations can choose inducers.
using ClassifierFactory = std::unique_ptr<Classifier> (*)();

}  // namespace dq

#endif  // DQ_MINING_CLASSIFIER_H_
