// EncodedDataset: the audit-wide encode cache.
//
// The multiple classification pass (sec. 5) induces one dependency model
// per attribute over the same table, so every per-attribute Train call
// used to rebuild its own columnar encoding and re-sort every ordered
// column (c45.encode + c45.presort ~30% of induce time at QUIS scale).
// This cache is built ONCE per audit and shared read-only across all
// parallel inductions:
//
//   * column views — for every ordered attribute a dense double column
//     (NaN = null), for every nominal attribute a dense int32 code column
//     (-1 = null). Numeric and nominal views alias the Table's own SoA
//     columns (zero copy); date columns are widened to double once.
//   * presort orders — per ordered attribute, the row indices with known
//     values stable-sorted by value (SLIQ-style). A Train call derives its
//     root instance lists by filtering this order to its class-known rows,
//     which preserves the exact (value, row) order a per-Train stable sort
//     would produce — bitwise-identical trees, O(n) instead of O(n log n).
//   * class encodings — per attribute, the fitted ClassEncoder (nominal
//     identity or equal-frequency bins) and the dense encoded class-code
//     column (-1 = null), so no Train call re-discretizes or re-encodes.
//
// Determinism: every field is a pure per-attribute function of the table,
// built into pre-assigned slots — identical for every thread count.

#ifndef DQ_MINING_ENCODED_DATASET_H_
#define DQ_MINING_ENCODED_DATASET_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "mining/class_encoder.h"
#include "mining/histogram.h"
#include "table/table.h"

namespace dq {

class EncodedDataset {
 public:
  /// \brief Builds the cache for `table`. `numeric_class_bins` parameterizes
  /// the equal-frequency class discretization of ordered attributes
  /// (AuditorConfig::numeric_class_bins); attribute encoders that cannot be
  /// fitted (ordered attribute with no non-null values) are left empty and
  /// the corresponding attribute simply cannot serve as a class attribute.
  /// Per-attribute work is dispatched over `num_threads` workers; the
  /// result is identical for every thread count.
  /// `histogram_bins` caps the per-attribute value bins backing the
  /// histogram split evaluator (C45Config::histogram_bins); it is clamped
  /// to [1, kMaxHistogramBins].
  static EncodedDataset Build(const Table& table, int numeric_class_bins,
                              int num_threads = 1, int histogram_bins = 255);

  const Table* table() const { return table_; }
  size_t num_rows() const { return num_rows_; }

  /// \brief Ordered view of attribute `a` (numeric or date): value as
  /// double, NaN = null. nullptr for nominal attributes.
  const double* ordered_col(size_t a) const { return ordered_[a]; }
  /// \brief Nominal code view of attribute `a`: code, -1 = null. nullptr
  /// for ordered attributes.
  const int32_t* nominal_col(size_t a) const { return nominal_[a]; }

  /// \brief Rows with a known (non-null) value of ordered attribute `a`,
  /// stable-sorted ascending by value (ties in row order). Empty for
  /// nominal attributes.
  const std::vector<uint32_t>& sort_order(size_t a) const {
    return sort_orders_[a];
  }

  /// \brief Equal-frequency value bins of ordered attribute `a`, derived
  /// once from sort_order(a) for the histogram split evaluator. nullptr
  /// for nominal attributes; num_bins == 0 when the column has no known
  /// values.
  const AttributeBins* bins(size_t a) const {
    return ordered_[a] != nullptr ? &bins_[a] : nullptr;
  }

  /// \brief Fitted class encoder for attribute `a`; empty when the
  /// attribute cannot be a class attribute (unfittable discretizer).
  const std::optional<ClassEncoder>& encoder(size_t a) const {
    return encoders_[a];
  }
  /// \brief Encoded class codes of attribute `a` under encoder(a), one per
  /// row, -1 = null. Aliases the table's code column for nominal attributes
  /// (identity encoding); nullptr when encoder(a) is empty.
  const int32_t* class_codes(size_t a) const { return class_code_views_[a]; }

 private:
  const Table* table_ = nullptr;
  size_t num_rows_ = 0;
  std::vector<const double*> ordered_;
  std::vector<const int32_t*> nominal_;
  /// Owned widened columns backing ordered_ for date attributes, and owned
  /// bin codes backing class_code_views_ for ordered class attributes.
  /// Moving an EncodedDataset moves the vectors (heap buffers stay put),
  /// so the view pointers stay valid.
  std::vector<std::vector<double>> date_storage_;
  std::vector<std::vector<uint32_t>> sort_orders_;
  std::vector<AttributeBins> bins_;
  std::vector<std::optional<ClassEncoder>> encoders_;
  std::vector<std::vector<int32_t>> class_code_storage_;
  std::vector<const int32_t*> class_code_views_;
};

}  // namespace dq

#endif  // DQ_MINING_ENCODED_DATASET_H_
