#include "mining/assoc_rules.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace dq {

namespace {

using Itemset = std::vector<std::pair<int, int32_t>>;  // sorted by attribute

/// True if the row carries every item of the (attribute-sorted) itemset.
bool RowHasItems(const Row& row, const Itemset& items) {
  for (const auto& [attr, code] : items) {
    const Value& v = row[static_cast<size_t>(attr)];
    if (!v.is_nominal() || v.nominal_code() != code) return false;
  }
  return true;
}

/// Typed-column variant of RowHasItems: a null cell's -1 sentinel never
/// equals a valid category code, so the null check is implicit.
bool TableRowHasItems(const Table& table, size_t r, const Itemset& items) {
  for (const auto& [attr, code] : items) {
    if (table.code_at(r, static_cast<size_t>(attr)) != code) return false;
  }
  return true;
}

uint64_t ItemKey(int attr, int32_t code) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(attr)) << 32) |
         static_cast<uint32_t>(code);
}

}  // namespace

bool AssociationRule::ViolatedBy(const Row& row) const {
  const Value& observed = row[static_cast<size_t>(consequent_attr)];
  if (!observed.is_nominal()) return false;  // nulls are not scored here
  if (observed.nominal_code() == consequent_code) return false;
  return RowHasItems(row, premise);
}

Rule AssociationRule::ToTdgRule() const {
  std::vector<Formula> conditions;
  conditions.reserve(premise.size());
  for (const auto& [attr, code] : premise) {
    conditions.push_back(
        Formula::MakeAtom(Atom::Prop(attr, AtomOp::kEq, Value::Nominal(code))));
  }
  Rule rule;
  rule.premise = conditions.size() == 1 ? std::move(conditions.front())
                                        : Formula::And(std::move(conditions));
  rule.consequent = Formula::MakeAtom(Atom::Prop(
      consequent_attr, AtomOp::kEq, Value::Nominal(consequent_code)));
  return rule;
}

std::string AssociationRule::ToString(const Schema& schema) const {
  std::string out;
  for (size_t i = 0; i < premise.size(); ++i) {
    if (i > 0) out += " AND ";
    const AttributeDef& def =
        schema.attribute(static_cast<size_t>(premise[i].first));
    out += def.name + " = " +
           def.categories[static_cast<size_t>(premise[i].second)];
  }
  const AttributeDef& cdef =
      schema.attribute(static_cast<size_t>(consequent_attr));
  out += " -> " + cdef.name + " = " +
         cdef.categories[static_cast<size_t>(consequent_code)];
  out += "  [support " + std::to_string(static_cast<long long>(support)) +
         ", confidence " + std::to_string(confidence).substr(0, 6) + "]";
  return out;
}

Status AssociationRuleAuditor::Mine(const Table& table) {
  const Schema& schema = table.schema();
  if (config_.min_support <= 0.0) {
    return Status::InvalidArgument("min_support must be positive");
  }
  if (config_.min_confidence <= 0.0 || config_.min_confidence > 1.0) {
    return Status::InvalidArgument("min_confidence must be in (0, 1]");
  }
  rules_.clear();

  // Level 1: frequent items over the nominal attributes.
  std::map<Itemset, double> frequent;
  {
    std::unordered_map<uint64_t, double> counts;
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      if (schema.attribute(a).type != DataType::kNominal) continue;
      for (int32_t code : table.code_col(a)) {
        if (code < 0) continue;  // null sentinel
        counts[ItemKey(static_cast<int>(a), code)] += 1.0;
      }
    }
    for (const auto& [key, count] : counts) {
      if (count < config_.min_support) continue;
      const int attr = static_cast<int>(key >> 32);
      const int32_t code = static_cast<int32_t>(key & 0xffffffffULL);
      frequent[{{attr, code}}] = count;
    }
  }

  // Level-wise expansion up to max_premise_items + 1 items per set.
  std::map<Itemset, double> all_frequent = frequent;
  std::map<Itemset, double> current = frequent;
  const int max_size = config_.max_premise_items + 1;
  for (int size = 2; size <= max_size && !current.empty(); ++size) {
    // Candidates: join sets sharing all but the last item; items stay
    // sorted by attribute and use distinct attributes (a row carries one
    // value per attribute).
    std::map<Itemset, double> candidates;
    for (auto it = current.begin(); it != current.end(); ++it) {
      auto jt = it;
      for (++jt; jt != current.end(); ++jt) {
        const Itemset& a = it->first;
        const Itemset& b = jt->first;
        if (!std::equal(a.begin(), a.end() - 1, b.begin(), b.end() - 1)) {
          continue;
        }
        if (a.back().first == b.back().first) continue;  // same attribute
        Itemset merged = a;
        merged.push_back(b.back());
        std::sort(merged.begin(), merged.end());
        candidates.emplace(std::move(merged), 0.0);
      }
    }
    // Count candidate supports in one table scan over the typed columns.
    for (size_t r = 0; r < table.num_rows(); ++r) {
      for (auto& [items, count] : candidates) {
        if (TableRowHasItems(table, r, items)) count += 1.0;
      }
    }
    std::map<Itemset, double> next;
    for (const auto& [items, count] : candidates) {
      if (count >= config_.min_support) next[items] = count;
    }
    for (const auto& [items, count] : next) all_frequent[items] = count;
    current = std::move(next);
  }

  // Rules: each item of a frequent set (size >= 2) may be the consequent.
  for (const auto& [items, count] : all_frequent) {
    if (items.size() < 2) continue;
    for (size_t c = 0; c < items.size(); ++c) {
      Itemset premise;
      for (size_t i = 0; i < items.size(); ++i) {
        if (i != c) premise.push_back(items[i]);
      }
      auto it = all_frequent.find(premise);
      if (it == all_frequent.end() || it->second <= 0.0) continue;
      const double confidence = count / it->second;
      if (confidence < config_.min_confidence) continue;
      AssociationRule rule;
      rule.premise = std::move(premise);
      rule.consequent_attr = items[c].first;
      rule.consequent_code = items[c].second;
      rule.support = count;
      rule.confidence = confidence;
      rules_.push_back(std::move(rule));
    }
  }

  if (rules_.size() > config_.max_rules) {
    std::nth_element(rules_.begin(),
                     rules_.begin() + static_cast<long>(config_.max_rules),
                     rules_.end(),
                     [](const AssociationRule& a, const AssociationRule& b) {
                       return a.support > b.support;
                     });
    rules_.resize(config_.max_rules);
  }

  return Status::OK();
}

double AssociationRuleAuditor::Score(const Row& row,
                                     ScoreCombination combination) const {
  double score = 0.0;
  for (const AssociationRule& rule : rules_) {
    if (!rule.ViolatedBy(row)) continue;
    if (combination == ScoreCombination::kSum) {
      score += rule.confidence;
    } else {
      score = std::max(score, rule.confidence);
    }
  }
  if (combination == ScoreCombination::kSum) score = std::min(score, 1.0);
  return score;
}

std::vector<double> AssociationRuleAuditor::ScoreTable(
    const Table& table, ScoreCombination combination, double threshold,
    std::vector<bool>* flagged) const {
  std::vector<double> scores(table.num_rows(), 0.0);
  if (flagged != nullptr) flagged->assign(table.num_rows(), false);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    scores[r] = Score(table.row(r), combination);
    if (flagged != nullptr && scores[r] >= threshold) (*flagged)[r] = true;
  }
  return scores;
}

}  // namespace dq
