#include "mining/class_encoder.h"

#include <cmath>

#include "table/date.h"

namespace dq {

Result<ClassEncoder> ClassEncoder::Fit(const Table& table, int class_attr,
                                       int max_bins) {
  if (class_attr < 0 ||
      static_cast<size_t>(class_attr) >= table.schema().num_attributes()) {
    return Status::OutOfRange("class attribute index out of range");
  }
  const AttributeDef& def =
      table.schema().attribute(static_cast<size_t>(class_attr));

  ClassEncoder enc;
  enc.attr_ = class_attr;
  enc.type_ = def.type;

  if (def.type == DataType::kNominal) {
    enc.num_classes_ = static_cast<int>(def.categories.size());
    return enc;
  }

  // Typed column read: no per-cell Value materialization.
  std::vector<double> sample;
  sample.reserve(table.num_rows());
  const size_t attr = static_cast<size_t>(class_attr);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const double x = table.ordered_at(r, attr);
    if (!std::isnan(x)) sample.push_back(x);
  }
  if (sample.empty()) {
    return Status::FailedPrecondition("ordered class attribute '" + def.name +
                                      "' has no non-null values");
  }
  DQ_ASSIGN_OR_RETURN(EqualFrequencyDiscretizer disc,
                      EqualFrequencyDiscretizer::Fit(std::move(sample), max_bins));
  enc.num_classes_ = disc.num_bins();
  enc.discretizer_ = std::move(disc);
  return enc;
}

Result<ClassEncoder> ClassEncoder::FromParts(
    const Schema& schema, int class_attr,
    std::optional<EqualFrequencyDiscretizer> discretizer) {
  if (class_attr < 0 ||
      static_cast<size_t>(class_attr) >= schema.num_attributes()) {
    return Status::OutOfRange("class attribute index out of range");
  }
  const AttributeDef& def = schema.attribute(static_cast<size_t>(class_attr));
  ClassEncoder enc;
  enc.attr_ = class_attr;
  enc.type_ = def.type;
  if (def.type == DataType::kNominal) {
    if (discretizer.has_value()) {
      return Status::InvalidArgument(
          "nominal attribute '" + def.name + "' takes no discretizer");
    }
    enc.num_classes_ = static_cast<int>(def.categories.size());
    return enc;
  }
  if (!discretizer.has_value()) {
    return Status::InvalidArgument("ordered attribute '" + def.name +
                                   "' needs a discretizer");
  }
  enc.num_classes_ = discretizer->num_bins();
  enc.discretizer_ = std::move(discretizer);
  return enc;
}

int ClassEncoder::Encode(const Value& v) const {
  if (v.is_null()) return -1;
  if (type_ == DataType::kNominal) return v.nominal_code();
  return discretizer_->BinOf(v.OrderedValue());
}

Value ClassEncoder::Representative(int cls) const {
  if (type_ == DataType::kNominal) return Value::Nominal(cls);
  const double rep = discretizer_->Representative(cls);
  if (type_ == DataType::kDate) {
    return Value::Date(static_cast<int32_t>(std::llround(rep)));
  }
  return Value::Numeric(rep);
}

std::string ClassEncoder::Label(int cls, const Schema& schema) const {
  if (type_ == DataType::kNominal) {
    const auto& categories =
        schema.attribute(static_cast<size_t>(attr_)).categories;
    if (cls >= 0 && static_cast<size_t>(cls) < categories.size()) {
      return categories[static_cast<size_t>(cls)];
    }
    return "<invalid>";
  }
  return discretizer_->BinLabel(cls);
}

}  // namespace dq
