#include "mining/naive_bayes.h"

#include <cmath>

#include "mining/encoded_dataset.h"

namespace dq {

Status NaiveBayesClassifier::Train(const TrainingData& data) {
  DQ_RETURN_NOT_OK(data.Check());
  table_ = data.table;
  base_attrs_ = data.base_attrs;
  encoder_ = data.encoder;
  num_classes_ = data.encoder->num_classes();
  const Schema& schema = table_->schema();

  priors_.assign(static_cast<size_t>(num_classes_), 0.0);
  total_weight_ = 0.0;
  nominal_.assign(schema.num_attributes(), {});
  gaussian_.assign(schema.num_attributes(), {});
  attr_is_nominal_.assign(schema.num_attributes(), false);

  // First pass: priors, nominal counts, Gaussian sums.
  struct Sums {
    std::vector<double> sum, sum_sq, count;
  };
  std::vector<Sums> sums(schema.num_attributes());
  for (int attr : base_attrs_) {
    const AttributeDef& def = schema.attribute(static_cast<size_t>(attr));
    if (def.type == DataType::kNominal) {
      attr_is_nominal_[static_cast<size_t>(attr)] = true;
      nominal_[static_cast<size_t>(attr)].counts.assign(
          static_cast<size_t>(num_classes_),
          std::vector<double>(def.categories.size(), 0.0));
      nominal_[static_cast<size_t>(attr)].class_totals.assign(
          static_cast<size_t>(num_classes_), 0.0);
    } else {
      sums[static_cast<size_t>(attr)].sum.assign(
          static_cast<size_t>(num_classes_), 0.0);
      sums[static_cast<size_t>(attr)].sum_sq.assign(
          static_cast<size_t>(num_classes_), 0.0);
      sums[static_cast<size_t>(attr)].count.assign(
          static_cast<size_t>(num_classes_), 0.0);
    }
  }

  const int32_t* cached =
      data.encoded != nullptr
          ? data.encoded->class_codes(static_cast<size_t>(data.class_attr))
          : nullptr;
  for (size_t r = 0; r < table_->num_rows(); ++r) {
    const int cls =
        cached != nullptr
            ? static_cast<int>(cached[r])
            : encoder_->Encode(
                  table_->cell(r, static_cast<size_t>(data.class_attr)));
    if (cls < 0) continue;
    priors_[static_cast<size_t>(cls)] += 1.0;
    total_weight_ += 1.0;
    for (int attr : base_attrs_) {
      const size_t a = static_cast<size_t>(attr);
      if (table_->is_null(r, a)) continue;
      if (attr_is_nominal_[a]) {
        NominalModel& m = nominal_[a];
        m.counts[static_cast<size_t>(cls)]
                [static_cast<size_t>(table_->code_at(r, a))] += 1.0;
        m.class_totals[static_cast<size_t>(cls)] += 1.0;
      } else {
        Sums& s = sums[a];
        const double x = table_->ordered_at(r, a);
        s.sum[static_cast<size_t>(cls)] += x;
        s.sum_sq[static_cast<size_t>(cls)] += x * x;
        s.count[static_cast<size_t>(cls)] += 1.0;
      }
    }
  }
  if (total_weight_ <= 0.0) {
    return Status::FailedPrecondition("no instances with non-null class");
  }

  // Finalize Gaussians with a variance floor.
  for (int attr : base_attrs_) {
    if (attr_is_nominal_[static_cast<size_t>(attr)]) continue;
    const AttributeDef& def = schema.attribute(static_cast<size_t>(attr));
    const double width = def.type == DataType::kNumeric
                             ? def.numeric_max - def.numeric_min
                             : static_cast<double>(def.date_max - def.date_min);
    const double floor_sd =
        std::max(config_.min_stddev_fraction * std::max(width, 1e-9), 1e-9);
    GaussianModel& g = gaussian_[static_cast<size_t>(attr)];
    const Sums& s = sums[static_cast<size_t>(attr)];
    g.mean.assign(static_cast<size_t>(num_classes_), 0.0);
    g.stddev.assign(static_cast<size_t>(num_classes_), floor_sd);
    g.count = s.count;
    for (int c = 0; c < num_classes_; ++c) {
      const double n = s.count[static_cast<size_t>(c)];
      if (n < 1.0) continue;
      const double mean = s.sum[static_cast<size_t>(c)] / n;
      g.mean[static_cast<size_t>(c)] = mean;
      if (n >= 2.0) {
        const double var =
            std::max((s.sum_sq[static_cast<size_t>(c)] - n * mean * mean) /
                         (n - 1.0),
                     0.0);
        g.stddev[static_cast<size_t>(c)] =
            std::max(std::sqrt(var), floor_sd);
      }
    }
  }
  return Status::OK();
}

Prediction NaiveBayesClassifier::Predict(const Row& row) const {
  Prediction out;
  out.distribution.assign(static_cast<size_t>(num_classes_), 0.0);
  if (total_weight_ <= 0.0) return out;

  std::vector<double> log_post(static_cast<size_t>(num_classes_), 0.0);
  for (int c = 0; c < num_classes_; ++c) {
    // Laplace-smoothed prior.
    log_post[static_cast<size_t>(c)] =
        std::log((priors_[static_cast<size_t>(c)] + config_.laplace) /
                 (total_weight_ + config_.laplace * num_classes_));
  }
  for (int attr : base_attrs_) {
    const Value& v = row[static_cast<size_t>(attr)];
    if (v.is_null()) continue;
    if (attr_is_nominal_[static_cast<size_t>(attr)]) {
      const NominalModel& m = nominal_[static_cast<size_t>(attr)];
      const size_t cat = static_cast<size_t>(v.nominal_code());
      const size_t k = m.counts.empty() ? 0 : m.counts[0].size();
      if (cat >= k) continue;
      for (int c = 0; c < num_classes_; ++c) {
        const double p =
            (m.counts[static_cast<size_t>(c)][cat] + config_.laplace) /
            (m.class_totals[static_cast<size_t>(c)] +
             config_.laplace * static_cast<double>(k));
        log_post[static_cast<size_t>(c)] += std::log(p);
      }
    } else {
      const GaussianModel& g = gaussian_[static_cast<size_t>(attr)];
      const double x = v.OrderedValue();
      for (int c = 0; c < num_classes_; ++c) {
        const double sd = g.stddev[static_cast<size_t>(c)];
        const double mu = g.mean[static_cast<size_t>(c)];
        const double z = (x - mu) / sd;
        log_post[static_cast<size_t>(c)] +=
            -0.5 * z * z - std::log(sd) - 0.918938533204673;  // log(sqrt(2pi))
      }
    }
  }

  // Softmax over log posteriors.
  double max_lp = log_post[0];
  for (double lp : log_post) max_lp = std::max(max_lp, lp);
  double total = 0.0;
  for (int c = 0; c < num_classes_; ++c) {
    out.distribution[static_cast<size_t>(c)] =
        std::exp(log_post[static_cast<size_t>(c)] - max_lp);
    total += out.distribution[static_cast<size_t>(c)];
  }
  for (double& p : out.distribution) p /= total;
  out.support = total_weight_;
  return out;
}

}  // namespace dq
