// Tight scan kernels for the C4.5 split search (histogram mode).
//
// The histogram split evaluator reduces tree build to two hot loops:
// joint (bin, class) count accumulation over dense code columns, and
// entropy-from-counts over small histogram rows. Both live here as plain
// autovectorization-friendly scalar loops plus explicit-width SSE2/AVX2
// variants (the wide variants compute the gather *indices* with SIMD and
// resolve the scatter increments scalarly — the counts are integers, so
// every variant is bit-identical to the scalar path and is unit-tested to
// be; see split_kernels_test).
//
// Dispatch: AVX2 is compiled behind a function-level target attribute and
// selected at runtime via __builtin_cpu_supports, so the baseline build
// (no -mavx2) still ships it. SSE2 is unconditional on x86-64.

#ifndef DQ_MINING_SPLIT_KERNELS_H_
#define DQ_MINING_SPLIT_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace dq::kernels {

/// \brief Name of the widest count-kernel variant the dispatcher picks on
/// this machine: "avx2", "sse2" or "scalar".
const char* SimdLevel();

// ---------------------------------------------------------------------------
// Dense joint-count kernels (whole-column scans, used at the tree root).
//
// All kernels ADD into `out` (callers zero it); rows with a negative class
// code are skipped, as are rows with a null attribute code (0xFF bin code
// resp. negative nominal code).

/// \brief out[bins[r] * nc + cls[r]] += 1 over all rows; bins[r] == 0xFF
/// (null) and cls[r] < 0 rows are skipped.
void CountBinClass(const uint8_t* bins, const int32_t* cls, size_t n,
                   size_t nc, uint32_t* out);
void CountBinClassScalar(const uint8_t* bins, const int32_t* cls, size_t n,
                         size_t nc, uint32_t* out);

/// \brief out[codes[r] * nc + cls[r]] += 1 over all rows; codes[r] < 0
/// (null) and cls[r] < 0 rows are skipped.
void CountCodeClass(const int32_t* codes, const int32_t* cls, size_t n,
                    size_t nc, uint32_t* out);
void CountCodeClassScalar(const int32_t* codes, const int32_t* cls, size_t n,
                          size_t nc, uint32_t* out);

/// \brief out[cls[r]] += 1 over all rows with cls[r] >= 0.
void CountClasses(const int32_t* cls, size_t n, uint32_t* out);
void CountClassesScalar(const int32_t* cls, size_t n, uint32_t* out);

#if defined(__x86_64__) && defined(__SSE2__)
#define DQ_KERNELS_SSE2 1
void CountBinClassSse2(const uint8_t* bins, const int32_t* cls, size_t n,
                       size_t nc, uint32_t* out);
void CountCodeClassSse2(const int32_t* codes, const int32_t* cls, size_t n,
                        size_t nc, uint32_t* out);
void CountClassesSse2(const int32_t* cls, size_t n, uint32_t* out);
#endif

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DQ_KERNELS_AVX2 1
/// \brief True when the CPU supports AVX2 (the build baseline does not
/// assume it; the AVX2 bodies are compiled with a target attribute).
bool HasAvx2();
void CountBinClassAvx2(const uint8_t* bins, const int32_t* cls, size_t n,
                       size_t nc, uint32_t* out);
void CountCodeClassAvx2(const int32_t* codes, const int32_t* cls, size_t n,
                        size_t nc, uint32_t* out);
void CountClassesAvx2(const int32_t* cls, size_t n, uint32_t* out);
#endif

// ---------------------------------------------------------------------------
// Batched entropy.

/// \brief Entropy (bits) of each of `rows` count rows of width `nc`
/// (row-major, stride nc): out[i] = EntropyBits(counts + i * nc, nc).
/// The log2 calls resolve through the stats XLog2X cache for integral
/// counts, which is the hot case (unit-weight training instances).
void EntropyRows(const double* counts, size_t rows, size_t nc, double* out);

}  // namespace dq::kernels

#endif  // DQ_MINING_SPLIT_KERNELS_H_
