#include "mining/sample.h"

#include <algorithm>

#include "common/check.h"

namespace dq {

ReservoirSampler::ReservoirSampler(size_t capacity, uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  DQ_DCHECK(capacity > 0);
  slots_.reserve(capacity);
}

void ReservoirSampler::Offer(const Row& row) {
  const uint64_t index = rows_seen_++;
  if (slots_.size() < capacity_) {
    slots_.emplace_back(index, row);
    return;
  }
  // Exactly one draw per overflowing row: j uniform in [0, index]; the row
  // enters the reservoir iff j lands in the first k slots. Chunk boundaries
  // never touch the RNG, so the sample is chunking-invariant.
  const auto j = static_cast<uint64_t>(
      rng_.UniformInt(0, static_cast<int64_t>(index)));
  if (j < capacity_) {
    slots_[static_cast<size_t>(j)] = {index, row};
  }
}

Table ReservoirSampler::BuildSampleTable(const Schema& schema) const {
  std::vector<const std::pair<uint64_t, Row>*> ordered;
  ordered.reserve(slots_.size());
  for (const auto& slot : slots_) ordered.push_back(&slot);
  std::sort(ordered.begin(), ordered.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  Table out(schema);
  out.Reserve(ordered.size());
  for (const auto* slot : ordered) {
    // Rows came off decoded, schema-validated chunks; re-validating every
    // cell here would double ingest's domain-check cost.
    out.AppendRowUnchecked(slot->second);
  }
  return out;
}

}  // namespace dq
