// Instance-based (k-nearest-neighbour) classifier — the "instance based
// classifiers" alternative of sec. 5.
//
// Distance is HEOM-style: overlap (0/1) on nominal attributes,
// range-normalized absolute difference on ordered attributes, and maximal
// distance (1) whenever either value is null. The predicted distribution is
// the (optionally distance-weighted) class histogram of the k nearest
// training instances; the support is k — small by construction, which is
// one reason instance-based deviation detection yields weaker error
// confidences than C4.5 leaves with thousands of supporting instances.

#ifndef DQ_MINING_KNN_H_
#define DQ_MINING_KNN_H_

#include "mining/classifier.h"

namespace dq {

struct KnnConfig {
  int k = 25;
  /// Cap on stored training instances (uniformly strided subsample) to
  /// bound the O(n) scan per prediction.
  size_t max_training_instances = 4000;
  bool distance_weighted = false;
};

class KnnClassifier : public Classifier {
 public:
  explicit KnnClassifier(KnnConfig config = {}) : config_(config) {}

  Status Train(const TrainingData& data) override;
  Prediction Predict(const Row& row) const override;
  std::string name() const override { return "knn"; }

 private:
  double Distance(const Row& probe, uint32_t train_row) const;

  KnnConfig config_;
  const Table* table_ = nullptr;
  std::vector<int> base_attrs_;
  const ClassEncoder* encoder_ = nullptr;
  int num_classes_ = 0;
  std::vector<uint32_t> train_rows_;
  std::vector<int> train_classes_;
  std::vector<double> inv_width_;  // per attr, for ordered normalization
};

}  // namespace dq

#endif  // DQ_MINING_KNN_H_
