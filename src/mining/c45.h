// C4.5 decision tree induction and classification (sec. 5.1), with the
// data-auditing adjustments of sec. 5.4.
//
// Implemented faithfully to the paper's description:
//  * ID3 information gain refined to C4.5's gain ratio ("C4.5 divides the
//    information gain by split information"), including the restriction to
//    splits with at least average gain;
//  * numerical base attributes through binary threshold splits over the
//    occurring values;
//  * missing-value handling by distributing training instances over
//    branches with fractional weights and combining leaf distributions at
//    classification time;
//  * classic pessimistic-error subtree replacement (sec. 5.1.2) driven by
//    a parameterizable confidence, kept as the unadjusted baseline;
//  * the paper's adjustments (sec. 5.4): minInst pre-pruning derived from
//    the user's minimal error confidence, and integrated pruning by
//    *expected error confidence* (Def. 9) applied during construction.
//
// Expected-error-confidence semantics: errorConf values below the user's
// minimal error confidence "are mostly not useful in reality" (sec. 5.4),
// so they contribute zero to Def. 9 here; a subtree is replaced by a leaf
// exactly when the leaf attains a strictly higher expected error
// confidence, i.e. when partitioning does not increase the error detection
// capability.

#ifndef DQ_MINING_C45_H_
#define DQ_MINING_C45_H_

#include <functional>
#include <memory>

#include "mining/classifier.h"

namespace dq {

enum class PruningMode {
  kNone,
  kPessimistic,              ///< classic C4.5 subtree replacement
  kExpectedErrorConfidence,  ///< the paper's integrated Def. 9 pruning
};

const char* PruningModeToString(PruningMode mode);

enum class SplitMode {
  /// Histogram split evaluation (LightGBM-style): ordered attributes are
  /// bucketed once per table into <= 255 equal-frequency bins and every
  /// node evaluates thresholds by scanning (bin x class) histograms, with
  /// sibling histograms reconstructed by subtraction (parent - scanned
  /// children = largest child) and the node frontier built breadth-wise in
  /// parallel on the Train pool. Identical trees to kExact whenever every
  /// ordered attribute has at most histogram_bins distinct values;
  /// statistically equivalent audits otherwise.
  kHistogram,
  /// The exact SLIQ row-sweep evaluator (the original path, kept as the
  /// reference): every distinct value boundary is a candidate threshold.
  kExact,
};

const char* SplitModeToString(SplitMode mode);

struct C45Config {
  /// Minimum weight of at least two branches of any split (C4.5 MINOBJS).
  double min_split_weight = 2.0;

  /// Confidence for the classic pessimistic error bound (C4.5 CF).
  double pruning_cf = 0.25;

  /// Two-sided confidence level for leftBound/rightBound in error
  /// confidences (Def. 7/9); "the confidence level of this interval can be
  /// parameterized".
  double confidence_level = 0.95;

  PruningMode pruning = PruningMode::kExpectedErrorConfidence;

  /// The user's minimal confidence for detected errors; derives the
  /// minInst pre-pruning threshold and truncates Def. 9 contributions.
  /// "Low error confidence values are mostly not useful in reality"
  /// (sec. 5.4): without the truncation, the integrated pruning prefers
  /// mixed leaves (which flag weakly) over pure splits (which flag nothing
  /// on training data) and collapses genuine structure, so a positive
  /// threshold is the intended operating regime. Set 0 only together with
  /// PruningMode::kPessimistic or kNone.
  double min_error_confidence = 0.8;

  /// Hard recursion cap (safety; C4.5 trees on audit data stay shallow).
  int max_depth = 40;

  /// Gain ratio (C4.5) vs plain information gain (ID3).
  bool use_gain_ratio = true;

  /// Release-8 MDL correction for numeric splits
  /// (gain -= log2(distinct-1)/n).
  bool mdl_numeric_correction = true;

  /// SLIQ-style presort: encode the training table into dense per-attribute
  /// columns and sort every ordered base attribute once up front; each node
  /// then partitions the sorted index lists stably instead of re-sorting,
  /// turning numeric split search from O(nodes * rows log rows) into one
  /// upfront sort plus linear scans. Off = the original per-node
  /// std::sort path (kept for memory-constrained use and as the
  /// equivalence-test reference). Only meaningful in kExact split mode;
  /// the histogram evaluator never materializes sorted lists.
  bool presort = true;

  /// Split evaluator: histogram scans (default) or the exact row sweep.
  SplitMode split_mode = SplitMode::kHistogram;

  /// Bin budget per ordered attribute in histogram mode (clamped to
  /// [1, 255]; 255 keeps one value per bin on attributes with few distinct
  /// values, making histogram splits exact there).
  int histogram_bins = 255;

  /// Reconstruct the largest child's histogram as parent minus scanned
  /// siblings instead of scanning it (histogram mode only). Exposed so the
  /// equivalence tests can pin the scan-everything path.
  bool histogram_subtraction = true;

  /// Smallest per-level instance total for which the histogram build
  /// dispatches node/attribute tasks onto the Train pool; smaller levels
  /// run inline (task overhead would dominate). Identical results either
  /// way.
  size_t parallel_min_insts = 4096;
};

/// \brief Smallest number of single-class instances a leaf needs before a
/// deviating record can reach `min_conf` error confidence: the minInst of
/// sec. 5.4 ("the system can easily calculate the minimal number minInst of
/// instances of one class that have to occur in a leaf").
double MinInstForConfidence(double min_conf, double confidence_level);

/// \brief One condition along a root-to-leaf path.
struct SplitCondition {
  int attr = -1;
  enum class Kind { kCategory, kLessEq, kGreater } kind = Kind::kCategory;
  int32_t category = 0;
  double threshold = 0.0;

  std::string ToString(const Schema& schema) const;
};

/// \brief Statistics of a leaf, exposed for rule extraction (sec. 5.4).
struct LeafInfo {
  std::vector<double> class_counts;
  double weight = 0.0;
  int majority = -1;
  /// Expected error confidence of the leaf under Def. 9.
  double expected_error_confidence = 0.0;
};

/// \brief C4.5 decision tree classifier.
class C45Tree : public Classifier {
 public:
  explicit C45Tree(C45Config config = {});
  ~C45Tree() override;
  C45Tree(C45Tree&&) noexcept;
  C45Tree& operator=(C45Tree&&) noexcept;

  Status Train(const TrainingData& data) override;
  Prediction Predict(const Row& row) const override;
  std::string name() const override { return "c4.5"; }

  const C45Config& config() const { return config_; }

  size_t NodeCount() const;
  size_t LeafCount() const;
  size_t TreeDepth() const;

  /// \brief Wall-clock spent encoding columns + presorting ordered
  /// attributes in the last Train call (0 when presort is off).
  double presort_ms() const { return presort_ms_; }
  /// \brief Wall-clock of the recursive tree construction in the last
  /// Train call (split search + partitioning, excluding the presort).
  double build_ms() const { return build_ms_; }

  /// \brief Pretty-prints the tree.
  std::string ToString(const Schema& schema) const;

  /// \brief Visits every root-to-leaf path (for the decision-tree -> rule
  /// set transformation of sec. 5.4).
  void VisitPaths(const std::function<void(const std::vector<SplitCondition>&,
                                           const LeafInfo&)>& visitor) const;

 private:
  struct Node;
  struct BuildContext;
  struct NodeData;
  friend struct C45HistogramBuilder;  // histogram-mode frontier build

  std::unique_ptr<Node> Build(BuildContext* ctx, NodeData data,
                              std::vector<bool> avail, int depth);
  Status TrainHistogram(const TrainingData& data, BuildContext* ctx,
                        std::vector<std::pair<uint32_t, double>> insts,
                        bool has_ordered_base);
  void PruneExpectedErrorConf(Node* node);
  double PessimisticErrors(const Node& node) const;
  void PrunePessimistic(Node* node);
  void PredictInto(const Node& node, const Row& row, double weight,
                   std::vector<double>* dist, double* support) const;

  C45Config config_;
  const Table* table_ = nullptr;
  int class_attr_ = -1;
  const ClassEncoder* encoder_ = nullptr;
  int num_classes_ = 0;
  double presort_ms_ = 0.0;
  double build_ms_ = 0.0;
  std::unique_ptr<Node> root_;
};

}  // namespace dq

#endif  // DQ_MINING_C45_H_
