#include "pollution/polluter.h"

namespace dq {

const char* PolluterKindToString(PolluterKind kind) {
  switch (kind) {
    case PolluterKind::kWrongValue:
      return "wrong-value";
    case PolluterKind::kNullValue:
      return "null-value";
    case PolluterKind::kLimiter:
      return "limiter";
    case PolluterKind::kSwitcher:
      return "switcher";
    case PolluterKind::kDuplicator:
      return "duplicator";
  }
  return "unknown";
}

std::string CorruptionEvent::ToString(const Schema& schema) const {
  std::string out = PolluterKindToString(kind);
  out += " row=";
  out += dirty_row == kNoRow ? "-" : std::to_string(dirty_row);
  if (attr >= 0) {
    out += " attr=" + schema.attribute(static_cast<size_t>(attr)).name;
    out += " " + schema.ValueToString(attr, old_value) + " -> " +
           schema.ValueToString(attr, new_value);
  }
  if (attr2 >= 0) {
    out += " attr2=" + schema.attribute(static_cast<size_t>(attr2)).name;
  }
  return out;
}

Status ValidatePolluter(const PolluterConfig& config, const Schema& schema) {
  if (config.activation_prob < 0.0 || config.activation_prob > 1.0) {
    return Status::InvalidArgument("activation_prob outside [0,1]");
  }
  for (int attr : config.target_attrs) {
    if (attr < 0 || static_cast<size_t>(attr) >= schema.num_attributes()) {
      return Status::OutOfRange("polluter target attribute out of range");
    }
  }
  switch (config.kind) {
    case PolluterKind::kLimiter: {
      if (config.limiter_low_fraction < 0.0 ||
          config.limiter_high_fraction > 1.0 ||
          config.limiter_low_fraction > config.limiter_high_fraction) {
        return Status::InvalidArgument("limiter fractions must satisfy 0 <= lo <= hi <= 1");
      }
      for (int attr : config.target_attrs) {
        if (!IsOrdered(schema.attribute(static_cast<size_t>(attr)).type)) {
          return Status::InvalidArgument(
              "limiter targets must be numeric or date attributes");
        }
      }
      break;
    }
    case PolluterKind::kDuplicator:
      if (config.duplicate_prob < 0.0 || config.duplicate_prob > 1.0) {
        return Status::InvalidArgument("duplicate_prob outside [0,1]");
      }
      break;
    case PolluterKind::kSwitcher: {
      if (ApplicableAttributes(config, schema).size() < 2) {
        return Status::FailedPrecondition(
            "switcher needs at least two compatible attributes");
      }
      break;
    }
    default:
      break;
  }
  return Status::OK();
}

std::vector<int> ApplicableAttributes(const PolluterConfig& config,
                                      const Schema& schema) {
  std::vector<int> candidates = config.target_attrs;
  if (candidates.empty()) {
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      candidates.push_back(static_cast<int>(a));
    }
  }
  std::vector<int> out;
  for (int a : candidates) {
    const AttributeDef& def = schema.attribute(static_cast<size_t>(a));
    switch (config.kind) {
      case PolluterKind::kLimiter:
        if (IsOrdered(def.type)) out.push_back(a);
        break;
      case PolluterKind::kWrongValue:
      case PolluterKind::kNullValue:
      case PolluterKind::kSwitcher:
        out.push_back(a);
        break;
      case PolluterKind::kDuplicator:
        break;  // record-level; attributes unused
    }
  }
  return out;
}

std::vector<PolluterConfig> DefaultPolluterMix() {
  return {
      PolluterConfig::WrongValue(0.10),
      PolluterConfig::NullValue(0.02),
      PolluterConfig::Limiter(0.01),
      PolluterConfig::Switcher(0.01),
      PolluterConfig::Duplicator(0.008, 0.5),
  };
}

}  // namespace dq
