// Controlled data corruption (sec. 4.2).
//
// "Components in the test environment, each parameterized with an
// activation probability, simulate the strategies for identification and
// analysis of different forms of data pollution as defined by Dasu and
// Hernandez: Wrong value polluter, Null-value polluter, Limiter, Switcher,
// Duplicator."
//
// Pollution is applied in a controlled and logged procedure: every change
// is recorded as a CorruptionEvent, and the set of corrupted records forms
// the ground truth against which a data auditing tool's sensitivity and
// specificity are computed (sec. 4.3).

#ifndef DQ_POLLUTION_POLLUTER_H_
#define DQ_POLLUTION_POLLUTER_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "stats/distribution.h"
#include "table/table.h"

namespace dq {

enum class PolluterKind : uint8_t {
  kWrongValue,  ///< re-draws an attribute value from a distribution
  kNullValue,   ///< replaces an attribute value by null
  kLimiter,     ///< cuts a numerical value off at a max/min bound
  kSwitcher,    ///< switches the values of two attributes
  kDuplicator,  ///< duplicates (or deletes) a record
};

const char* PolluterKindToString(PolluterKind kind);

/// \brief Parameterization of one polluter component.
struct PolluterConfig {
  PolluterKind kind = PolluterKind::kWrongValue;

  /// Per-record activation probability; the common pollution factor of the
  /// evaluation (fig. 5) multiplies this.
  double activation_prob = 0.01;

  /// Attributes the polluter may touch; empty = all type-compatible
  /// attributes.
  std::vector<int> target_attrs;

  /// kWrongValue: distribution the replacement value is drawn from
  /// ("according to a probability distribution defined in the same way as
  /// in section 4.1.4").
  DistributionSpec wrong_value_dist = DistributionSpec::Uniform();

  /// kLimiter: cut bounds, as fractions of the attribute's domain width.
  /// A value above/below the bound is clamped to it.
  double limiter_low_fraction = 0.1;
  double limiter_high_fraction = 0.9;

  /// kDuplicator: probability that an activated duplicator duplicates the
  /// record (otherwise it deletes it).
  double duplicate_prob = 0.5;

  static PolluterConfig WrongValue(double prob) {
    PolluterConfig c;
    c.kind = PolluterKind::kWrongValue;
    c.activation_prob = prob;
    return c;
  }
  static PolluterConfig NullValue(double prob) {
    PolluterConfig c;
    c.kind = PolluterKind::kNullValue;
    c.activation_prob = prob;
    return c;
  }
  static PolluterConfig Limiter(double prob, double low_frac = 0.1,
                                double high_frac = 0.9) {
    PolluterConfig c;
    c.kind = PolluterKind::kLimiter;
    c.activation_prob = prob;
    c.limiter_low_fraction = low_frac;
    c.limiter_high_fraction = high_frac;
    return c;
  }
  static PolluterConfig Switcher(double prob) {
    PolluterConfig c;
    c.kind = PolluterKind::kSwitcher;
    c.activation_prob = prob;
    return c;
  }
  static PolluterConfig Duplicator(double prob, double duplicate_share = 0.5) {
    PolluterConfig c;
    c.kind = PolluterKind::kDuplicator;
    c.activation_prob = prob;
    c.duplicate_prob = duplicate_share;
    return c;
  }
};

/// \brief One logged change made by a polluter.
struct CorruptionEvent {
  PolluterKind kind = PolluterKind::kWrongValue;
  /// Row index in the *dirty* table. Deletions refer to the clean table
  /// via `clean_row` and have dirty_row == kNoRow.
  static constexpr size_t kNoRow = static_cast<size_t>(-1);
  size_t dirty_row = kNoRow;
  size_t clean_row = kNoRow;
  int attr = -1;   ///< affected attribute (-1 for record-level events)
  int attr2 = -1;  ///< switcher partner attribute
  Value old_value;
  Value new_value;

  std::string ToString(const Schema& schema) const;
};

/// \brief Checks a polluter configuration against a schema (probabilities
/// in range, target attributes applicable to the polluter kind).
Status ValidatePolluter(const PolluterConfig& config, const Schema& schema);

/// \brief Attributes a polluter may act on for a schema: the configured
/// targets filtered for type compatibility, or all compatible attributes.
std::vector<int> ApplicableAttributes(const PolluterConfig& config,
                                      const Schema& schema);

/// \brief The evaluation's standard polluter mix ("a variety of pollution
/// procedures with different activation probabilities", sec. 6.1): wrong
/// value, null value, limiter, switcher and duplicator with graduated
/// per-record probabilities.
std::vector<PolluterConfig> DefaultPolluterMix();

}  // namespace dq

#endif  // DQ_POLLUTION_POLLUTER_H_
