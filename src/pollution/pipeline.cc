#include "pollution/pipeline.h"

#include <algorithm>
#include <cmath>

namespace dq {

namespace {

/// Scaled activation probability, clamped to [0, 1].
double Activation(const PolluterConfig& config, double factor) {
  return std::clamp(config.activation_prob * factor, 0.0, 1.0);
}

/// Applies the limiter cut to an ordered value; returns the (possibly
/// unchanged) new value.
Value ApplyLimiter(const PolluterConfig& config, const AttributeDef& attr,
                   const Value& v) {
  const double lo_axis = attr.type == DataType::kNumeric
                             ? attr.numeric_min
                             : static_cast<double>(attr.date_min);
  const double hi_axis = attr.type == DataType::kNumeric
                             ? attr.numeric_max
                             : static_cast<double>(attr.date_max);
  const double width = hi_axis - lo_axis;
  const double low_cut = lo_axis + config.limiter_low_fraction * width;
  const double high_cut = lo_axis + config.limiter_high_fraction * width;
  double x = v.OrderedValue();
  x = std::clamp(x, low_cut, high_cut);
  if (attr.type == DataType::kNumeric) return Value::Numeric(x);
  return Value::Date(static_cast<int32_t>(std::llround(x)));
}

}  // namespace

Status PollutionPipeline::Validate(const Schema& schema) const {
  if (pollution_factor_ < 0.0) {
    return Status::InvalidArgument("pollution factor must be >= 0");
  }
  for (const PolluterConfig& p : polluters_) {
    DQ_RETURN_NOT_OK(ValidatePolluter(p, schema));
  }
  return Status::OK();
}

Result<PollutionResult> PollutionPipeline::Apply(const Table& clean) const {
  const Schema& schema = clean.schema();
  DQ_RETURN_NOT_OK(Validate(schema));

  PollutionResult out;
  out.dirty = Table(schema);
  Rng rng(seed_);

  // Phase 1: duplicator decisions define the dirty row set.
  std::vector<size_t> duplicated_rows;
  std::vector<bool> deleted(clean.num_rows(), false);
  for (const PolluterConfig& p : polluters_) {
    if (p.kind != PolluterKind::kDuplicator) continue;
    const double prob = Activation(p, pollution_factor_);
    for (size_t r = 0; r < clean.num_rows(); ++r) {
      if (deleted[r] || !rng.Bernoulli(prob)) continue;
      if (rng.Bernoulli(p.duplicate_prob)) {
        duplicated_rows.push_back(r);
      } else {
        deleted[r] = true;
        CorruptionEvent ev;
        ev.kind = PolluterKind::kDuplicator;
        ev.clean_row = r;
        out.deleted_clean_rows.push_back(r);
        out.log.push_back(ev);
      }
    }
  }

  out.dirty.Reserve(clean.num_rows() + duplicated_rows.size());
  for (size_t r = 0; r < clean.num_rows(); ++r) {
    if (deleted[r]) continue;
    out.dirty.AppendRowFrom(clean, r);
    out.origin.push_back(r);
    out.is_corrupted.push_back(false);
  }
  for (size_t r : duplicated_rows) {
    if (deleted[r]) continue;
    const size_t dirty_idx = out.dirty.num_rows();
    out.dirty.AppendRowFrom(clean, r);
    out.origin.push_back(r);
    out.is_corrupted.push_back(true);  // the surplus copy is the error
    CorruptionEvent ev;
    ev.kind = PolluterKind::kDuplicator;
    ev.dirty_row = dirty_idx;
    ev.clean_row = r;
    out.log.push_back(ev);
  }

  // Phase 2: cell-level polluters on the dirty rows.
  for (const PolluterConfig& p : polluters_) {
    if (p.kind == PolluterKind::kDuplicator) continue;
    const double prob = Activation(p, pollution_factor_);
    const std::vector<int> attrs = ApplicableAttributes(p, schema);
    if (attrs.empty()) continue;
    for (size_t r = 0; r < out.dirty.num_rows(); ++r) {
      if (!rng.Bernoulli(prob)) continue;
      const int attr = attrs[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(attrs.size()) - 1))];
      const AttributeDef& def = schema.attribute(static_cast<size_t>(attr));
      const Value old_value = out.dirty.cell(r, static_cast<size_t>(attr));

      CorruptionEvent ev;
      ev.kind = p.kind;
      ev.dirty_row = r;
      ev.clean_row = out.origin[r];
      ev.attr = attr;
      ev.old_value = old_value;

      switch (p.kind) {
        case PolluterKind::kWrongValue: {
          // Draw until the value actually differs (bounded; singleton
          // domains cannot be corrupted this way).
          Value nv;
          bool changed = false;
          for (int attempt = 0; attempt < 16; ++attempt) {
            nv = SampleValue(p.wrong_value_dist, def, &rng);
            if (!nv.StrictEquals(old_value)) {
              changed = true;
              break;
            }
          }
          if (!changed) continue;
          ev.new_value = nv;
          break;
        }
        case PolluterKind::kNullValue: {
          if (old_value.is_null()) continue;
          ev.new_value = Value::Null();
          break;
        }
        case PolluterKind::kLimiter: {
          if (old_value.is_null()) continue;
          const Value nv = ApplyLimiter(p, def, old_value);
          if (nv.StrictEquals(old_value)) continue;
          ev.new_value = nv;
          break;
        }
        case PolluterKind::kSwitcher: {
          // Partner with a type-compatible attribute so the dirty table
          // still validates against the schema.
          std::vector<int> partners;
          for (int other : attrs) {
            if (other == attr) continue;
            const AttributeDef& odef =
                schema.attribute(static_cast<size_t>(other));
            if (odef.type != def.type) continue;
            if (def.type == DataType::kNominal &&
                odef.categories.size() != def.categories.size()) {
              continue;
            }
            partners.push_back(other);
          }
          if (partners.empty()) continue;
          const int partner = partners[static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(partners.size()) - 1))];
          const Value other_value =
              out.dirty.cell(r, static_cast<size_t>(partner));
          if (other_value.StrictEquals(old_value)) continue;
          // Clamp switched ordered values into the receiving domain.
          Value to_attr = other_value;
          Value to_partner = old_value;
          if (!def.InDomain(to_attr) ||
              !schema.attribute(static_cast<size_t>(partner))
                   .InDomain(to_partner)) {
            continue;
          }
          ev.attr2 = partner;
          ev.new_value = to_attr;
          out.dirty.SetCell(r, static_cast<size_t>(attr), to_attr);
          out.dirty.SetCell(r, static_cast<size_t>(partner), to_partner);
          out.is_corrupted[r] = true;
          out.log.push_back(ev);
          continue;  // cells already written
        }
        case PolluterKind::kDuplicator:
          continue;
      }

      out.dirty.SetCell(r, static_cast<size_t>(attr), ev.new_value);
      out.is_corrupted[r] = true;
      out.log.push_back(ev);
    }
  }
  return out;
}

}  // namespace dq
