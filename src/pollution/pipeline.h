// PollutionPipeline: applies polluter components to a clean table and logs
// every change, producing the labelled dirty database of the test
// environment (fig. 2): "pollutes this data in a controlled and logged
// procedure".

#ifndef DQ_POLLUTION_PIPELINE_H_
#define DQ_POLLUTION_PIPELINE_H_

#include <vector>

#include "pollution/polluter.h"

namespace dq {

/// \brief Labelled output of a pollution run.
struct PollutionResult {
  Table dirty;

  /// Clean-table row index each dirty row descends from (duplicates share
  /// their original's index).
  std::vector<size_t> origin;

  /// Ground truth per dirty row: true iff some polluter actually changed
  /// the record (or it is a surplus duplicate).
  std::vector<bool> is_corrupted;

  /// Clean rows removed by the duplicator's delete branch.
  std::vector<size_t> deleted_clean_rows;

  /// Every change, in application order.
  std::vector<CorruptionEvent> log;

  size_t CorruptedCount() const {
    size_t n = 0;
    for (bool b : is_corrupted) n += b ? 1 : 0;
    return n;
  }
};

/// \brief Orchestrates a set of polluter components.
///
/// Application order: record-level duplicator decisions first (building the
/// dirty row set), then cell-level polluters per dirty row. A common
/// `pollution_factor` scales every activation probability, mirroring the
/// evaluation of fig. 5 ("multiplying them with a common pollution
/// factor").
class PollutionPipeline {
 public:
  PollutionPipeline(std::vector<PolluterConfig> polluters, uint64_t seed,
                    double pollution_factor = 1.0)
      : polluters_(std::move(polluters)),
        seed_(seed),
        pollution_factor_(pollution_factor) {}

  /// \brief Validates all component configurations against `schema`.
  Status Validate(const Schema& schema) const;

  /// \brief Applies the pipeline to `clean`.
  Result<PollutionResult> Apply(const Table& clean) const;

 private:
  std::vector<PolluterConfig> polluters_;
  uint64_t seed_;
  double pollution_factor_;
};

}  // namespace dq

#endif  // DQ_POLLUTION_PIPELINE_H_
