#include "table/ingest_backend.h"

#include "table/columnar.h"

namespace dq {

const char* IngestFormatToString(IngestFormat format) {
  switch (format) {
    case IngestFormat::kCsv:
      return "csv";
    case IngestFormat::kDqcol:
      return "dqcol";
  }
  return "csv";
}

Result<IngestFormat> IngestFormatFromName(std::string_view name) {
  if (name == "csv") return IngestFormat::kCsv;
  if (name == "dqcol") return IngestFormat::kDqcol;
  return Status::InvalidArgument("unknown format '" + std::string(name) +
                                 "' (expected csv or dqcol)");
}

IngestFormat InferIngestFormat(const std::string& path) {
  constexpr std::string_view kExt = ".dqcol";
  if (path.size() >= kExt.size() &&
      std::string_view(path).substr(path.size() - kExt.size()) == kExt) {
    return IngestFormat::kDqcol;
  }
  return IngestFormat::kCsv;
}

Result<Table> ReadTableFile(IngestFormat format, const Schema& schema,
                            const std::string& path, const CsvOptions& csv,
                            IngestReport* report) {
  switch (format) {
    case IngestFormat::kCsv:
      return ReadCsvFile(schema, path, csv, report);
    case IngestFormat::kDqcol:
      return ReadDqcolFile(schema, path, report);
  }
  return Status::Internal("unreachable ingest format");
}

Status ReadTableFileChunks(IngestFormat format, const Schema& schema,
                           const std::string& path, const CsvOptions& csv,
                           CsvChunkSink* sink, IngestReport* report) {
  switch (format) {
    case IngestFormat::kCsv:
      return ReadCsvFileChunks(schema, path, csv, sink, report);
    case IngestFormat::kDqcol:
      return ReadDqcolFileChunks(schema, path, csv.batch_records, sink,
                                 report);
  }
  return Status::Internal("unreachable ingest format");
}

Status WriteTableFile(const Table& table, IngestFormat format,
                      const std::string& path, const CsvOptions& csv) {
  switch (format) {
    case IngestFormat::kCsv:
      return WriteCsvFile(table, path, csv);
    case IngestFormat::kDqcol:
      return WriteDqcolFile(table, path);
  }
  return Status::Internal("unreachable ingest format");
}

}  // namespace dq
