#include "table/table.h"

namespace dq {

namespace {

Status CheckRow(const Schema& schema, const Row& row) {
  if (row.size() != schema.num_attributes()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema.num_attributes()));
  }
  for (size_t a = 0; a < row.size(); ++a) {
    if (!schema.attribute(a).InDomain(row[a])) {
      return Status::OutOfRange("cell for attribute '" +
                                schema.attribute(a).name +
                                "' outside domain: " + row[a].ToDebugString());
    }
  }
  return Status::OK();
}

}  // namespace

Status Table::AppendRow(Row row) {
  DQ_RETURN_NOT_OK(CheckRow(schema_, row));
  rows_.push_back(std::move(row));
  return Status::OK();
}

Status Table::Validate() const {
  for (size_t i = 0; i < rows_.size(); ++i) {
    Status s = CheckRow(schema_, rows_[i]);
    if (!s.ok()) {
      return Status(s.code(), "row " + std::to_string(i) + ": " + s.message());
    }
  }
  return Status::OK();
}

}  // namespace dq
