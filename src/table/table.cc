#include "table/table.h"

#include <stdexcept>
#include <string>

namespace dq {

namespace {

Status CheckRowAgainstSchema(const Schema& schema, const Row& row) {
  if (row.size() != schema.num_attributes()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema.num_attributes()));
  }
  for (size_t a = 0; a < row.size(); ++a) {
    if (!schema.attribute(a).InDomain(row[a])) {
      return Status::OutOfRange("cell for attribute '" +
                                schema.attribute(a).name +
                                "' outside domain: " + row[a].ToDebugString());
    }
  }
  return Status::OK();
}

}  // namespace

// --- TableChunk --------------------------------------------------------------

void TableChunk::Attach(const Schema& schema) {
  cols_.clear();
  cols_.resize(schema.num_attributes());
  for (size_t a = 0; a < cols_.size(); ++a) {
    cols_[a].type = schema.attribute(a).type;
  }
  num_rows_ = 0;
}

void TableChunk::Reset(size_t rows) {
  num_rows_ = rows;
  for (Column& c : cols_) {
    c.null_.assign(rows, 1);
    if (c.type == DataType::kNumeric) {
      c.num.assign(rows, std::numeric_limits<double>::quiet_NaN());
    } else {
      c.code.assign(rows, c.type == DataType::kNominal ? -1 : 0);
    }
  }
}

void TableChunk::Set(size_t row, size_t attr, const Value& v) {
  DQ_DCHECK(attr < cols_.size() && row < num_rows_);
  Column& c = cols_[attr];
  if (v.is_null()) {
    c.null_[row] = 1;
    if (c.type == DataType::kNumeric) {
      c.num[row] = std::numeric_limits<double>::quiet_NaN();
    } else {
      c.code[row] = c.type == DataType::kNominal ? -1 : 0;
    }
    return;
  }
  c.null_[row] = 0;
  switch (c.type) {
    case DataType::kNumeric:
      DQ_DCHECK(v.is_numeric());
      c.num[row] = v.numeric();
      break;
    case DataType::kNominal:
      DQ_DCHECK(v.is_nominal());
      c.code[row] = v.nominal_code();
      break;
    case DataType::kDate:
      DQ_DCHECK(v.is_date());
      c.code[row] = v.date_days();
      break;
  }
}

Row TableChunk::MaterializeRow(size_t row) const {
  DQ_DCHECK(row < num_rows_);
  Row out(cols_.size());
  for (size_t a = 0; a < cols_.size(); ++a) {
    const Column& c = cols_[a];
    if (c.null_[row] != 0) {
      out[a] = Value::Null();
      continue;
    }
    switch (c.type) {
      case DataType::kNumeric:
        out[a] = Value::Numeric(c.num[row]);
        break;
      case DataType::kNominal:
        out[a] = Value::Nominal(c.code[row]);
        break;
      case DataType::kDate:
        out[a] = Value::Date(c.code[row]);
        break;
    }
  }
  return out;
}

// --- Table -------------------------------------------------------------------

Table::Table(Schema schema) : schema_(std::move(schema)) {
  cols_.resize(schema_.num_attributes());
  for (size_t a = 0; a < cols_.size(); ++a) {
    cols_[a].type = schema_.attribute(a).type;
  }
}

void Table::PushCell(Column* c, const Value& v) {
  if (v.is_null()) {
    switch (c->type) {
      case DataType::kNumeric:
        c->num.push_back(std::numeric_limits<double>::quiet_NaN());
        break;
      case DataType::kNominal:
        c->code.push_back(-1);
        break;
      case DataType::kDate:
        c->code.push_back(0);
        break;
    }
    GrowBits(&c->nulls, num_rows_ + 1);
    SetBit(&c->nulls, num_rows_);
    return;
  }
  switch (c->type) {
    case DataType::kNumeric:
      DQ_DCHECK(v.is_numeric());
      c->num.push_back(v.numeric());
      break;
    case DataType::kNominal:
      DQ_DCHECK(v.is_nominal());
      c->code.push_back(v.nominal_code());
      break;
    case DataType::kDate:
      DQ_DCHECK(v.is_date());
      c->code.push_back(v.date_days());
      break;
  }
  GrowBits(&c->nulls, num_rows_ + 1);
}

Status Table::AppendRow(const Row& row) {
  DQ_RETURN_NOT_OK(CheckRowAgainstSchema(schema_, row));
  AppendRowUnchecked(row);
  return Status::OK();
}

void Table::AppendRowUnchecked(const Row& row) {
  DQ_DCHECK(row.size() == cols_.size());
  for (size_t a = 0; a < cols_.size(); ++a) {
    PushCell(&cols_[a], row[a]);
  }
  ++num_rows_;
}

void Table::AppendRowFrom(const Table& src, size_t src_row) {
  DQ_DCHECK(src.cols_.size() == cols_.size() && src_row < src.num_rows_);
  for (size_t a = 0; a < cols_.size(); ++a) {
    Column& dst = cols_[a];
    const Column& from = src.cols_[a];
    DQ_DCHECK(dst.type == from.type);
    if (dst.type == DataType::kNumeric) {
      dst.num.push_back(from.num[src_row]);
    } else {
      dst.code.push_back(from.code[src_row]);
    }
    GrowBits(&dst.nulls, num_rows_ + 1);
    if (BitIsSet(from.nulls, src_row)) SetBit(&dst.nulls, num_rows_);
  }
  ++num_rows_;
}

void Table::AppendChunk(const TableChunk& chunk,
                        const std::vector<uint8_t>* keep) {
  DQ_DCHECK(chunk.cols_.size() == cols_.size());
  DQ_DCHECK(keep == nullptr || keep->size() == chunk.num_rows());
  size_t kept = 0;
  if (keep == nullptr) {
    kept = chunk.num_rows();
  } else {
    for (uint8_t k : *keep) kept += k != 0 ? 1 : 0;
  }
  if (kept == 0) return;
  for (size_t a = 0; a < cols_.size(); ++a) {
    Column& dst = cols_[a];
    const TableChunk::Column& src = chunk.cols_[a];
    DQ_DCHECK(dst.type == src.type);
    GrowBits(&dst.nulls, num_rows_ + kept);
    size_t out = num_rows_;
    for (size_t i = 0; i < chunk.num_rows(); ++i) {
      if (keep != nullptr && (*keep)[i] == 0) continue;
      if (dst.type == DataType::kNumeric) {
        dst.num.push_back(src.num[i]);
      } else {
        dst.code.push_back(src.code[i]);
      }
      if (src.null_[i] != 0) SetBit(&dst.nulls, out);
      ++out;
    }
  }
  num_rows_ += kept;
}

void Table::AppendFrom(const Table& src) {
  DQ_DCHECK(src.cols_.size() == cols_.size());
  if (src.num_rows_ == 0) return;
  for (size_t a = 0; a < cols_.size(); ++a) {
    Column& dst = cols_[a];
    const Column& from = src.cols_[a];
    DQ_DCHECK(dst.type == from.type);
    if (dst.type == DataType::kNumeric) {
      dst.num.insert(dst.num.end(), from.num.begin(), from.num.end());
    } else {
      dst.code.insert(dst.code.end(), from.code.begin(), from.code.end());
    }
    GrowBits(&dst.nulls, num_rows_ + src.num_rows_);
    for (size_t r = 0; r < src.num_rows_; ++r) {
      if (BitIsSet(from.nulls, r)) SetBit(&dst.nulls, num_rows_ + r);
    }
  }
  num_rows_ += src.num_rows_;
}

Row Table::row(size_t i) const {
  DQ_DCHECK(i < num_rows_);
  Row out(cols_.size());
  for (size_t a = 0; a < cols_.size(); ++a) {
    out[a] = cell(i, a);
  }
  return out;
}

Value Table::cell_at(size_t row, size_t attr) const {
  if (row >= num_rows_ || attr >= cols_.size()) {
    throw std::out_of_range("Table::cell_at(" + std::to_string(row) + ", " +
                            std::to_string(attr) + ") outside " +
                            std::to_string(num_rows_) + "x" +
                            std::to_string(cols_.size()));
  }
  return cell(row, attr);
}

void Table::RemoveRows(const std::vector<size_t>& sorted_rows) {
  if (sorted_rows.empty() || num_rows_ == 0) return;
  // Byte-wide removal mask once, then one stable compaction pass per column.
  std::vector<uint8_t> remove(num_rows_, 0);
  for (size_t i = 0; i < sorted_rows.size(); ++i) {
    DQ_DCHECK(sorted_rows[i] < num_rows_);
    DQ_DCHECK(i == 0 || sorted_rows[i - 1] <= sorted_rows[i]);
    remove[sorted_rows[i]] = 1;
  }
  size_t kept = 0;
  for (uint8_t r : remove) kept += r == 0 ? 1 : 0;
  if (kept == num_rows_) return;
  for (Column& c : cols_) {
    std::vector<uint64_t> new_nulls;
    GrowBits(&new_nulls, kept);
    size_t out = 0;
    for (size_t r = 0; r < num_rows_; ++r) {
      if (remove[r] != 0) continue;
      if (c.type == DataType::kNumeric) {
        c.num[out] = c.num[r];
      } else {
        c.code[out] = c.code[r];
      }
      if (BitIsSet(c.nulls, r)) SetBit(&new_nulls, out);
      ++out;
    }
    if (c.type == DataType::kNumeric) {
      c.num.resize(kept);
    } else {
      c.code.resize(kept);
    }
    c.nulls = std::move(new_nulls);
  }
  num_rows_ = kept;
}

void Table::Reserve(size_t n) {
  for (Column& c : cols_) {
    if (c.type == DataType::kNumeric) {
      c.num.reserve(n);
    } else {
      c.code.reserve(n);
    }
    c.nulls.reserve((n + 63) >> 6);
  }
}

void Table::Clear() {
  for (Column& c : cols_) {
    c.num.clear();
    c.code.clear();
    c.nulls.clear();
  }
  num_rows_ = 0;
}

size_t Table::byte_size() const {
  // Residency = typed column payloads + null bitmaps + the schema string
  // pool (nominal cells are dictionary codes; their spellings are bytes
  // this table keeps alive). Leaving out the bitmaps or the pool made the
  // table.bytes gauge — and any memory-budget accounting built on it —
  // under-report what the table actually holds.
  size_t bytes = schema_.string_pool_bytes();
  for (const Column& c : cols_) {
    bytes += c.num.size() * sizeof(double);
    bytes += c.code.size() * sizeof(int32_t);
    bytes += c.nulls.size() * sizeof(uint64_t);
  }
  return bytes;
}

Status Table::Validate() const {
  for (size_t r = 0; r < num_rows_; ++r) {
    for (size_t a = 0; a < cols_.size(); ++a) {
      const Value v = cell(r, a);
      if (!schema_.attribute(a).InDomain(v)) {
        return Status::OutOfRange(
            "row " + std::to_string(r) + ": cell for attribute '" +
            schema_.attribute(a).name +
            "' outside domain: " + v.ToDebugString());
      }
    }
  }
  return Status::OK();
}

}  // namespace dq
