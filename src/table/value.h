// Value: the tagged scalar cell type of the relational substrate.
//
// A Value is null, a nominal category code, a numeric double, or a date
// (days since 1970-01-01). Nominal codes are indices into the owning
// attribute's category list (see schema.h); a Value alone does not know its
// category spelling.

#ifndef DQ_TABLE_VALUE_H_
#define DQ_TABLE_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>

namespace dq {

/// \brief Logical attribute type (sec. 3.2: QUIS attributes are nominal,
/// numerical or of date type).
enum class DataType : uint8_t { kNominal = 0, kNumeric = 1, kDate = 2 };

const char* DataTypeToString(DataType t);

/// \brief True for types with a meaningful total order (< / > comparisons).
inline bool IsOrdered(DataType t) {
  return t == DataType::kNumeric || t == DataType::kDate;
}

/// \brief One table cell.
class Value {
 public:
  enum class Kind : uint8_t { kNull = 0, kNominal = 1, kNumeric = 2, kDate = 3 };

  Value() : kind_(Kind::kNull), num_(0) {}

  static Value Null() { return Value(); }
  static Value Nominal(int32_t code) {
    Value v;
    v.kind_ = Kind::kNominal;
    v.cat_ = code;
    return v;
  }
  static Value Numeric(double x) {
    Value v;
    v.kind_ = Kind::kNumeric;
    v.num_ = x;
    return v;
  }
  static Value Date(int32_t days) {
    Value v;
    v.kind_ = Kind::kDate;
    v.cat_ = days;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_nominal() const { return kind_ == Kind::kNominal; }
  bool is_numeric() const { return kind_ == Kind::kNumeric; }
  bool is_date() const { return kind_ == Kind::kDate; }

  /// \brief Nominal category code; only valid when is_nominal().
  int32_t nominal_code() const { return cat_; }
  /// \brief Numeric payload; only valid when is_numeric().
  double numeric() const { return num_; }
  /// \brief Day count; only valid when is_date().
  int32_t date_days() const { return cat_; }

  /// \brief Ordered axis for numeric and date values (dates compare as day
  /// counts). Only valid for numeric/date kinds.
  double OrderedValue() const {
    return kind_ == Kind::kNumeric ? num_ : static_cast<double>(cat_);
  }

  /// \brief SQL-style equality: null never equals anything (not even null).
  bool EqualsSql(const Value& other) const {
    if (is_null() || other.is_null()) return false;
    return StrictEquals(other);
  }

  /// \brief Exact equality including the null/null case; used by tests,
  /// logs and containers, not by TDG semantics.
  bool StrictEquals(const Value& other) const;

  /// \brief Three-way order over non-null values of the same ordered kind.
  /// Returns <0, 0, >0. Must not be called with nulls or nominal values.
  int Compare(const Value& other) const;

  /// \brief Debug rendering without schema context ("#3" for nominal codes).
  std::string ToDebugString() const;

 private:
  Kind kind_;
  union {
    int32_t cat_;  // nominal code or date days
    double num_;
  };
};

}  // namespace dq

#endif  // DQ_TABLE_VALUE_H_
