#include "table/csv_parser.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <istream>

#include "table/csv_scan.h"

namespace dq {

const char* CsvErrorKindToString(CsvErrorKind kind) {
  switch (kind) {
    case CsvErrorKind::kUnterminatedQuote:
      return "unterminated-quote";
    case CsvErrorKind::kStrayQuote:
      return "stray-quote";
    case CsvErrorKind::kArityMismatch:
      return "arity-mismatch";
    case CsvErrorKind::kBadValue:
      return "bad-value";
    case CsvErrorKind::kBadHeader:
      return "bad-header";
  }
  return "unknown";
}

namespace {

/// First occurrence of `c` in text[from, end); text.size() when absent.
size_t FindByte(std::string_view text, size_t from, char c) {
  const void* hit = std::memchr(text.data() + from, c, text.size() - from);
  if (hit == nullptr) return text.size();
  return static_cast<size_t>(static_cast<const char*>(hit) - text.data());
}

/// Quote-free fast path: without a '"' anywhere in the record the state
/// machine below degenerates to plain separator splitting (a quote is the
/// only character that can change how a separator is interpreted), so the
/// fields are exactly the memchr-delimited substrings. Fields are assigned
/// in place so the caller's buffers keep their capacity across records.
void SplitUnquoted(std::string_view text, char separator,
                   std::vector<std::string>* fields) {
  size_t nf = 0;
  size_t start = 0;
  for (;;) {
    const size_t end = FindByte(text, start, separator);
    if (nf == fields->size()) fields->emplace_back();
    (*fields)[nf].assign(text.data() + start, end - start);
    ++nf;
    if (end == text.size()) break;
    start = end + 1;
  }
  fields->resize(nf);
}

}  // namespace

bool SplitCsvRecord(std::string_view text, char separator,
                    std::vector<std::string>* fields, CsvFieldError* error) {
  if (text.empty()) {  // one empty field; also keeps memchr off a null data()
    fields->resize(1);
    (*fields)[0].clear();
    return true;
  }
  if (std::memchr(text.data(), '"', text.size()) == nullptr) {
    SplitUnquoted(text, separator, fields);
    return true;
  }
  // Quoted slow path. Content still moves in memchr-delimited bulk spans;
  // the state machine only touches the separators and quotes between them.
  // Fields build up in place in the caller's buffers (contents are
  // unspecified on error, when the function returns false).
  size_t nf = 0;  // fields committed so far; slot nf is under construction
  if (fields->empty()) fields->emplace_back();
  std::string* cur = &(*fields)[0];
  cur->clear();
  auto commit = [&]() {
    ++nf;
    if (nf == fields->size()) fields->emplace_back();
    cur = &(*fields)[nf];
    cur->clear();
  };
  enum class State { kFieldStart, kUnquoted, kQuoted, kAfterQuoted };
  State state = State::kFieldStart;
  size_t quote_open = 0;  // 1-based offset of the field's opening quote
  size_t i = 0;
  while (i < text.size()) {
    switch (state) {
      case State::kFieldStart:
        if (text[i] == '"') {
          state = State::kQuoted;
          quote_open = i + 1;
          ++i;
        } else if (text[i] == separator) {
          commit();  // empty field
          ++i;
        } else {
          state = State::kUnquoted;  // reconsume as content
        }
        break;
      case State::kUnquoted: {
        // Content runs to the next separator or (illegal here) quote.
        const size_t sp = FindByte(text, i, separator);
        const size_t qp = FindByte(text, i, '"');
        if (qp < sp) {
          error->kind = CsvErrorKind::kStrayQuote;
          error->column = qp + 1;
          return false;
        }
        cur->append(text.data() + i, sp - i);
        i = sp;
        if (i < text.size()) {
          commit();
          state = State::kFieldStart;
          ++i;
        }
        break;
      }
      case State::kQuoted: {
        const size_t qp = FindByte(text, i, '"');
        cur->append(text.data() + i, qp - i);
        if (qp == text.size()) {
          i = qp;
          break;  // unterminated; diagnosed after the loop
        }
        if (qp + 1 < text.size() && text[qp + 1] == '"') {
          *cur += '"';  // "" escape stays quoted
          i = qp + 2;
        } else {
          state = State::kAfterQuoted;
          i = qp + 1;
        }
        break;
      }
      case State::kAfterQuoted:
        if (text[i] == separator) {
          commit();
          state = State::kFieldStart;
          ++i;
        } else {
          error->kind = CsvErrorKind::kStrayQuote;
          error->column = i + 1;
          return false;
        }
        break;
    }
  }
  if (state == State::kQuoted) {
    error->kind = CsvErrorKind::kUnterminatedQuote;
    error->column = quote_open;
    return false;
  }
  fields->resize(nf + 1);
  return true;
}

bool SplitCsvRecordViews(std::string_view text, char separator,
                         std::vector<std::string_view>* views,
                         std::vector<std::string>* storage,
                         CsvFieldError* error) {
  views->clear();
  if (text.empty()) {
    views->emplace_back();
    return true;
  }
  if (std::memchr(text.data(), '"', text.size()) == nullptr) {
    // Quote-free: every field is a verbatim slice of the record.
    size_t start = 0;
    for (;;) {
      const size_t end = FindByte(text, start, separator);
      views->push_back(text.substr(start, end - start));
      if (end == text.size()) return true;
      start = end + 1;
    }
  }
  // Quoted: unescape into the storage strings, then view them.
  if (!SplitCsvRecord(text, separator, storage, error)) return false;
  views->reserve(storage->size());
  for (const std::string& field : *storage) views->emplace_back(field);
  return true;
}

CsvRecordReader::CsvRecordReader(std::istream* in, char separator,
                                 size_t chunk_bytes)
    : in_(in), sep_(separator), buf_(std::max<size_t>(chunk_bytes, 16)) {
  structural_.resize(csvscan::StructuralWords(buf_.size()));
}

bool CsvRecordReader::Refill() {
  if (in_ == nullptr || !in_->good()) return false;
  in_->read(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  len_ = static_cast<size_t>(in_->gcount());
  pos_ = 0;
  if (len_ > 0) {
    // Stage one: one SIMD classification pass builds the structural index
    // of the whole chunk. Next() consults only this index to find the
    // bytes where the state machine has to run.
    csvscan::ScanStructural(buf_.data(), len_, sep_, structural_.data());
  }
  return len_ > 0;
}

size_t CsvRecordReader::NextStructural(size_t from) const {
  size_t w = from >> 6;
  const size_t words = csvscan::StructuralWords(len_);
  if (w >= words) return len_;
  uint64_t bits = structural_[w] & (~uint64_t{0} << (from & 63));
  for (;;) {
    if (bits != 0) {
      const size_t i = (w << 6) + static_cast<size_t>(std::countr_zero(bits));
      return std::min(i, len_);
    }
    if (++w >= words) return len_;
    bits = structural_[w];
  }
}

bool CsvRecordReader::Next(RawCsvRecord* out) {
  if (at_start_) {
    at_start_ = false;
    // Skip a UTF-8 byte-order mark. The buffer holds at least 16 bytes, so
    // one refill is enough to see all three BOM bytes of a non-empty file.
    if (pos_ >= len_) Refill();
    if (len_ - pos_ >= 3 &&
        static_cast<unsigned char>(buf_[pos_]) == 0xEF &&
        static_cast<unsigned char>(buf_[pos_ + 1]) == 0xBB &&
        static_cast<unsigned char>(buf_[pos_ + 2]) == 0xBF) {
      pos_ += 3;
      bytes_read_ += 3;
    }
  }
  out->text.clear();
  out->line = line_;
  // Stage two: the quoting state machine advances only at structural
  // positions (separators, quotes, CR, LF — the bits of the index); the
  // plain-content runs in between are bulk appends. It tracks just enough
  // state to find the record terminator; the precise error classification
  // is SplitCsvRecord's job, and the two machines agree on when a quote
  // opens a quoted field (only at field start) so they always delimit the
  // same records.
  enum class State { kFieldStart, kUnquoted, kQuoted, kQuoteInQuoted };
  State state = State::kFieldStart;
  bool any = false;
  for (;;) {
    if (pos_ >= len_ && !Refill()) break;  // end of input
    const size_t next = NextStructural(pos_);
    if (next > pos_) {
      // A run of plain content bytes: nothing in it can be a separator,
      // quote or terminator, so the only state effect is leaving field
      // start (first content byte of a field) or closing a pending quote
      // (the "" escape already resolved by the byte after it).
      out->text.append(buf_.data() + pos_, next - pos_);
      bytes_read_ += next - pos_;
      pos_ = next;
      any = true;
      if (state == State::kFieldStart || state == State::kQuoteInQuoted) {
        state = State::kUnquoted;
      }
      continue;
    }
    const char c = buf_[pos_++];
    ++bytes_read_;
    any = true;
    if (state == State::kQuoted) {
      if (c == '"') {
        state = State::kQuoteInQuoted;
      } else if (c == '\n') {
        ++line_;
      }
      out->text += c;
      continue;
    }
    if (state == State::kQuoteInQuoted) {
      // The pending quote was either an escape ("" stays quoted) or the
      // closing quote (anything else drops back to unquoted scanning).
      state = (c == '"') ? State::kQuoted : State::kUnquoted;
    }
    if (state != State::kQuoted && (c == '\n' || c == '\r')) {
      ++line_;
      if (c == '\r') {  // swallow the LF of a CRLF pair
        if (pos_ >= len_ && !Refill()) return true;
        if (buf_[pos_] == '\n') {
          ++pos_;
          ++bytes_read_;
        }
      }
      return true;
    }
    if (c == sep_) {
      state = State::kFieldStart;
    } else if (c == '"' && state == State::kFieldStart) {
      state = State::kQuoted;
    } else if (state == State::kFieldStart) {
      state = State::kUnquoted;
    }
    out->text += c;
  }
  return any;
}

}  // namespace dq
