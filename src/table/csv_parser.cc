#include "table/csv_parser.h"

#include <algorithm>
#include <istream>

namespace dq {

const char* CsvErrorKindToString(CsvErrorKind kind) {
  switch (kind) {
    case CsvErrorKind::kUnterminatedQuote:
      return "unterminated-quote";
    case CsvErrorKind::kStrayQuote:
      return "stray-quote";
    case CsvErrorKind::kArityMismatch:
      return "arity-mismatch";
    case CsvErrorKind::kBadValue:
      return "bad-value";
    case CsvErrorKind::kBadHeader:
      return "bad-header";
  }
  return "unknown";
}

bool SplitCsvRecord(std::string_view text, char separator,
                    std::vector<std::string>* fields, CsvFieldError* error) {
  fields->clear();
  std::string cur;
  enum class State { kFieldStart, kUnquoted, kQuoted, kAfterQuoted };
  State state = State::kFieldStart;
  size_t quote_open = 0;  // 1-based offset of the field's opening quote
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    switch (state) {
      case State::kFieldStart:
        if (c == '"') {
          state = State::kQuoted;
          quote_open = i + 1;
        } else if (c == separator) {
          fields->emplace_back();
        } else {
          cur += c;
          state = State::kUnquoted;
        }
        break;
      case State::kUnquoted:
        if (c == separator) {
          fields->push_back(std::move(cur));
          cur.clear();
          state = State::kFieldStart;
        } else if (c == '"') {
          error->kind = CsvErrorKind::kStrayQuote;
          error->column = i + 1;
          return false;
        } else {
          cur += c;
        }
        break;
      case State::kQuoted:
        if (c == '"') {
          if (i + 1 < text.size() && text[i + 1] == '"') {
            cur += '"';
            ++i;
          } else {
            state = State::kAfterQuoted;
          }
        } else {
          cur += c;
        }
        break;
      case State::kAfterQuoted:
        if (c == separator) {
          fields->push_back(std::move(cur));
          cur.clear();
          state = State::kFieldStart;
        } else {
          error->kind = CsvErrorKind::kStrayQuote;
          error->column = i + 1;
          return false;
        }
        break;
    }
  }
  if (state == State::kQuoted) {
    error->kind = CsvErrorKind::kUnterminatedQuote;
    error->column = quote_open;
    return false;
  }
  fields->push_back(std::move(cur));
  return true;
}

CsvRecordReader::CsvRecordReader(std::istream* in, char separator,
                                 size_t chunk_bytes)
    : in_(in), sep_(separator), buf_(std::max<size_t>(chunk_bytes, 16)) {}

bool CsvRecordReader::Refill() {
  if (in_ == nullptr || !in_->good()) return false;
  in_->read(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  len_ = static_cast<size_t>(in_->gcount());
  pos_ = 0;
  return len_ > 0;
}

bool CsvRecordReader::Next(RawCsvRecord* out) {
  if (at_start_) {
    at_start_ = false;
    // Skip a UTF-8 byte-order mark. The buffer holds at least 16 bytes, so
    // one refill is enough to see all three BOM bytes of a non-empty file.
    if (pos_ >= len_) Refill();
    if (len_ - pos_ >= 3 &&
        static_cast<unsigned char>(buf_[pos_]) == 0xEF &&
        static_cast<unsigned char>(buf_[pos_ + 1]) == 0xBB &&
        static_cast<unsigned char>(buf_[pos_ + 2]) == 0xBF) {
      pos_ += 3;
      bytes_read_ += 3;
    }
  }
  out->text.clear();
  out->line = line_;
  // Tracks just enough quoting state to find the record terminator; the
  // precise error classification is SplitCsvRecord's job, and the two state
  // machines agree on when a quote opens a quoted field (only at field
  // start) so they always delimit the same records.
  enum class State { kFieldStart, kUnquoted, kQuoted, kQuoteInQuoted };
  State state = State::kFieldStart;
  bool any = false;
  for (;;) {
    if (pos_ >= len_ && !Refill()) break;  // end of input
    const char c = buf_[pos_++];
    ++bytes_read_;
    any = true;
    if (state == State::kQuoted) {
      if (c == '"') {
        state = State::kQuoteInQuoted;
      } else if (c == '\n') {
        ++line_;
      }
      out->text += c;
      continue;
    }
    if (state == State::kQuoteInQuoted) {
      // The pending quote was either an escape ("" stays quoted) or the
      // closing quote (anything else drops back to unquoted scanning).
      state = (c == '"') ? State::kQuoted : State::kUnquoted;
    }
    if (state != State::kQuoted && (c == '\n' || c == '\r')) {
      ++line_;
      if (c == '\r') {  // swallow the LF of a CRLF pair
        if (pos_ >= len_ && !Refill()) return true;
        if (buf_[pos_] == '\n') {
          ++pos_;
          ++bytes_read_;
        }
      }
      return true;
    }
    if (c == sep_) {
      state = State::kFieldStart;
    } else if (c == '"' && state == State::kFieldStart) {
      state = State::kQuoted;
    } else if (state == State::kFieldStart) {
      state = State::kUnquoted;
    }
    out->text += c;
  }
  return any;
}

}  // namespace dq
