// Proleptic Gregorian date arithmetic. Dates are stored as int32 day counts
// relative to 1970-01-01 (negative for earlier dates), which makes date
// attributes totally ordered and lets the mining layer treat them as a
// numeric axis while keeping a distinct logical type.

#ifndef DQ_TABLE_DATE_H_
#define DQ_TABLE_DATE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace dq {

struct CivilDate {
  int32_t year = 1970;
  int32_t month = 1;  // 1..12
  int32_t day = 1;    // 1..31
};

/// \brief Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
int32_t DaysFromCivil(const CivilDate& d);

/// \brief Civil date for a day count since 1970-01-01.
CivilDate CivilFromDays(int32_t days);

/// \brief True if (year, month, day) denotes a real calendar date.
bool IsValidCivil(const CivilDate& d);

/// \brief Formats as "YYYY-MM-DD".
std::string FormatDate(int32_t days);

/// \brief Parses "YYYY-MM-DD" into a day count.
Result<int32_t> ParseDate(std::string_view text);

}  // namespace dq

#endif  // DQ_TABLE_DATE_H_
