// Textual schema specifications for command-line tooling.
//
// One attribute per non-empty, non-comment line:
//   <name> nominal <cat1,cat2,...>
//   <name> numeric <min> <max>
//   <name> date <YYYY-MM-DD> <YYYY-MM-DD>
// Lines starting with '#' are comments.

#ifndef DQ_TABLE_SCHEMA_SPEC_H_
#define DQ_TABLE_SCHEMA_SPEC_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "table/schema.h"

namespace dq {

/// \brief Parses a schema specification from a stream.
Result<Schema> ParseSchemaSpec(std::istream* in);

/// \brief Parses a schema specification file.
Result<Schema> ParseSchemaSpecFile(const std::string& path);

/// \brief Renders a schema back into the specification format.
std::string FormatSchemaSpec(const Schema& schema);

}  // namespace dq

#endif  // DQ_TABLE_SCHEMA_SPEC_H_
