#include "table/csv_scan.h"

#include <algorithm>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace dq::csvscan {

// ---------------------------------------------------------------------------
// Scalar reference kernel. Byte classification is exact, so this defines
// the result every wide variant must reproduce bit-for-bit.

void ScanStructuralScalar(const char* data, size_t n, char sep,
                          uint64_t* words) {
  std::fill(words, words + StructuralWords(n), uint64_t{0});
  for (size_t i = 0; i < n; ++i) {
    const char c = data[i];
    if (c == sep || c == '"' || c == '\n' || c == '\r') {
      words[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

// ---------------------------------------------------------------------------
// SSE2 (baseline on x86-64): four byte-compares per 16-byte lane, OR'd and
// movemask'd into 16 index bits; four lanes fill one 64-bit word.

#if defined(DQ_CSV_SCAN_SSE2)

void ScanStructuralSse2(const char* data, size_t n, char sep,
                        uint64_t* words) {
  std::fill(words, words + StructuralWords(n), uint64_t{0});
  const __m128i vsep = _mm_set1_epi8(sep);
  const __m128i vquote = _mm_set1_epi8('"');
  const __m128i vlf = _mm_set1_epi8('\n');
  const __m128i vcr = _mm_set1_epi8('\r');
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    const __m128i hit = _mm_or_si128(
        _mm_or_si128(_mm_cmpeq_epi8(v, vsep), _mm_cmpeq_epi8(v, vquote)),
        _mm_or_si128(_mm_cmpeq_epi8(v, vlf), _mm_cmpeq_epi8(v, vcr)));
    const auto bits =
        static_cast<uint64_t>(static_cast<uint32_t>(_mm_movemask_epi8(hit)));
    words[i >> 6] |= bits << (i & 63);
  }
  for (; i < n; ++i) {
    const char c = data[i];
    if (c == sep || c == '"' || c == '\n' || c == '\r') {
      words[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

#endif  // DQ_CSV_SCAN_SSE2

// ---------------------------------------------------------------------------
// AVX2: same classification two 32-byte lanes per word. The build baseline
// does not enable -mavx2, so the body carries a target attribute and the
// dispatcher gates on HasAvx2().

#if defined(DQ_CSV_SCAN_AVX2)

bool HasAvx2() { return __builtin_cpu_supports("avx2") != 0; }

__attribute__((target("avx2"))) void ScanStructuralAvx2(const char* data,
                                                        size_t n, char sep,
                                                        uint64_t* words) {
  std::fill(words, words + StructuralWords(n), uint64_t{0});
  const __m256i vsep = _mm256_set1_epi8(sep);
  const __m256i vquote = _mm256_set1_epi8('"');
  const __m256i vlf = _mm256_set1_epi8('\n');
  const __m256i vcr = _mm256_set1_epi8('\r');
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const __m256i hit = _mm256_or_si256(
        _mm256_or_si256(_mm256_cmpeq_epi8(v, vsep),
                        _mm256_cmpeq_epi8(v, vquote)),
        _mm256_or_si256(_mm256_cmpeq_epi8(v, vlf),
                        _mm256_cmpeq_epi8(v, vcr)));
    const auto bits = static_cast<uint64_t>(
        static_cast<uint32_t>(_mm256_movemask_epi8(hit)));
    words[i >> 6] |= bits << (i & 63);
  }
  for (; i < n; ++i) {
    const char c = data[i];
    if (c == sep || c == '"' || c == '\n' || c == '\r') {
      words[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

#endif  // DQ_CSV_SCAN_AVX2

// ---------------------------------------------------------------------------
// Dispatch (mirrors mining/split_kernels).

namespace {

enum class Level { kScalar, kSse2, kAvx2 };

Level PickLevel() {
#if defined(DQ_CSV_SCAN_AVX2)
  if (HasAvx2()) return Level::kAvx2;
#endif
#if defined(DQ_CSV_SCAN_SSE2)
  return Level::kSse2;
#else
  return Level::kScalar;
#endif
}

Level CachedLevel() {
  static const Level level = PickLevel();
  return level;
}

}  // namespace

const char* SimdLevel() {
  switch (CachedLevel()) {
    case Level::kAvx2:
      return "avx2";
    case Level::kSse2:
      return "sse2";
    case Level::kScalar:
      return "scalar";
  }
  return "scalar";
}

void ScanStructural(const char* data, size_t n, char sep, uint64_t* words) {
  switch (CachedLevel()) {
#if defined(DQ_CSV_SCAN_AVX2)
    case Level::kAvx2:
      ScanStructuralAvx2(data, n, sep, words);
      return;
#endif
#if defined(DQ_CSV_SCAN_SSE2)
    case Level::kSse2:
      ScanStructuralSse2(data, n, sep, words);
      return;
#endif
    default:
      ScanStructuralScalar(data, n, sep, words);
  }
}

}  // namespace dq::csvscan
