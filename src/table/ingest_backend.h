// Pluggable ingest backends: one seam, two on-disk formats.
//
// Every consumer of tabular input (the classic auditor, the streaming
// out-of-core auditor, the generator round-trip checks) reads through this
// dispatch layer, which routes to either the CSV parser (table/csv.h) or
// the dqcol binary columnar codec (table/columnar.h). Both backends
// produce the same two shapes — a whole Table or a chunk stream into a
// CsvChunkSink — and populate the same IngestReport, so swapping --format
// changes only how bytes become columns, never what the downstream
// pipeline sees: a table ingested from CSV and its dqcol conversion yield
// byte-identical audit reports.

#ifndef DQ_TABLE_INGEST_BACKEND_H_
#define DQ_TABLE_INGEST_BACKEND_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "table/csv.h"
#include "table/table.h"

namespace dq {

/// \brief On-disk table format of an ingest source or export target.
enum class IngestFormat {
  kCsv,    ///< RFC-4180 subset text (table/csv.h)
  kDqcol,  ///< dqcol v1 binary columnar (table/columnar.h)
};

/// \brief Stable spelling used by --format flags: "csv" or "dqcol".
const char* IngestFormatToString(IngestFormat format);

/// \brief Parses a --format value; accepts "csv" and "dqcol".
Result<IngestFormat> IngestFormatFromName(std::string_view name);

/// \brief Format implied by a path's extension: ".dqcol" means dqcol,
/// anything else means CSV.
IngestFormat InferIngestFormat(const std::string& path);

/// \brief Reads a whole table from `path` in the given format. CSV obeys
/// every CsvOptions knob; dqcol uses none of them (the file is
/// self-describing and already validated at write time, so there is no
/// dialect and no quarantine) but fills `report` with the same counters.
Result<Table> ReadTableFile(IngestFormat format, const Schema& schema,
                            const std::string& path, const CsvOptions& csv,
                            IngestReport* report = nullptr);

/// \brief Chunk-streaming variant of ReadTableFile: decoded batches flow
/// to `sink` in record order with memory bounded by one batch. dqcol
/// chunks carry csv.batch_records rows (rounded up to a 64-row multiple).
Status ReadTableFileChunks(IngestFormat format, const Schema& schema,
                           const std::string& path, const CsvOptions& csv,
                           CsvChunkSink* sink,
                           IngestReport* report = nullptr);

/// \brief Writes `table` to `path` in the given format (CSV honors the
/// write-side CsvOptions).
Status WriteTableFile(const Table& table, IngestFormat format,
                      const std::string& path, const CsvOptions& csv);

}  // namespace dq

#endif  // DQ_TABLE_INGEST_BACKEND_H_
