// dqcol v1: write-once binary columnar table files (docs/FORMATS.md).
//
// Generalizes the dqseg spill codec (table/segment_store.cc) into a
// standalone, versioned interchange format: unlike a spill file, a dqcol
// file carries its full schema (attribute names, types and domains) and an
// endianness tag, so it can be opened without out-of-band metadata and
// refuses to load on a foreign machine instead of decoding garbage. Column
// payloads and null bitmaps are stored verbatim in the Table's SoA layout,
// so loading is a near-memcpy — no tokenizing, no value parsing, no
// dictionary lookups — and a CSV -> Table -> dqcol -> Table round trip is
// bitwise identical. Repeat audits of the same extract convert once
// (dqconvert) and then skip CSV parsing entirely.
//
// The reader exposes the same two shapes as the CSV reader: a whole-table
// load and a chunked load feeding a CsvChunkSink, which is the pluggable
// ingest-backend seam (table/ingest_backend.h) the streaming auditor sits
// on.

#ifndef DQ_TABLE_COLUMNAR_H_
#define DQ_TABLE_COLUMNAR_H_

#include <string>

#include "common/result.h"
#include "table/csv.h"
#include "table/ingest_report.h"
#include "table/table.h"

namespace dq {

/// \brief Raw-column access seam for the dqcol reader/writer (friend of
/// Table and TableChunk). Use the free functions below.
class ColumnarCodec {
 public:
  static Status Write(const Table& table, const std::string& path);
  static Result<Schema> ReadSchema(const std::string& path);
  static Result<Table> Read(const Schema& schema, const std::string& path,
                            IngestReport* report);
  static Status ReadChunks(const Schema& schema, const std::string& path,
                           size_t chunk_rows, CsvChunkSink* sink,
                           IngestReport* report);
};

/// \brief Writes `table` (payloads, null bitmaps and schema) to a dqcol v1
/// file at `path`, replacing any existing file.
inline Status WriteDqcolFile(const Table& table, const std::string& path) {
  return ColumnarCodec::Write(table, path);
}

/// \brief Reads just the embedded schema of a dqcol file.
inline Result<Schema> ReadDqcolSchema(const std::string& path) {
  return ColumnarCodec::ReadSchema(path);
}

/// \brief Loads a dqcol file into a Table. The file's embedded schema must
/// match `schema` exactly (names, types, domains, category order); every
/// column is checked against its domain and null bitmap after the bulk
/// load, so the result upholds the same invariants as a CSV ingest.
/// `report`, when given, receives the ingest counters (all records kept —
/// dqcol files are written from already-validated tables, there is no
/// quarantine path).
inline Result<Table> ReadDqcolFile(const Schema& schema,
                                   const std::string& path,
                                   IngestReport* report = nullptr) {
  return ColumnarCodec::Read(schema, path, report);
}

/// \brief Streaming variant of ReadDqcolFile: delivers the rows to `sink`
/// in chunks of `chunk_rows` (rounded up to a multiple of 64 so null
/// bitmap slices stay word-aligned), keeping memory bounded by one chunk.
/// The delivered record sequence is identical to ReadDqcolFile's rows.
inline Status ReadDqcolFileChunks(const Schema& schema,
                                  const std::string& path, size_t chunk_rows,
                                  CsvChunkSink* sink,
                                  IngestReport* report = nullptr) {
  return ColumnarCodec::ReadChunks(schema, path, chunk_rows, sink, report);
}

}  // namespace dq

#endif  // DQ_TABLE_COLUMNAR_H_
