// SegmentStore: a chunked columnar store whose segments live in RAM or
// spill to disk under a memory budget.
//
// Ingest appends decoded chunks into an open segment; once the open segment
// reaches segment_rows it is sealed and becomes immutable. Sealed segments
// are the paging unit: when resident bytes exceed memory_budget_bytes the
// store writes the oldest unpinned resident segment to a spill file
// ("dqseg v1", docs/FORMATS.md) and frees its columns. Pin() brings a
// spilled segment back; because sealed segments never change, the spill
// file is written once and re-eviction is a free drop of the in-memory
// copy. Segment boundaries depend only on the record sequence — never on
// the budget — so any consumer that walks segments in order sees bitwise
// identical data whether nothing, some, or everything spilled.
//
// Residency accounting uses Table::byte_size() (column payloads + null
// bitmaps + schema string pool), published through the segstore.* metrics.

#ifndef DQ_TABLE_SEGMENT_STORE_H_
#define DQ_TABLE_SEGMENT_STORE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace dq {

struct SegmentStoreOptions {
  /// Rows per sealed segment. The open segment seals at the first chunk
  /// boundary at or past this many rows, so actual segment sizes may
  /// overshoot by up to one ingest batch.
  size_t segment_rows = 65536;

  /// Resident-byte cap across all segments; 0 = unlimited (never spill).
  uint64_t memory_budget_bytes = 0;

  /// Directory for spill files (created if missing). Required when
  /// memory_budget_bytes > 0.
  std::string spill_dir;
};

/// \brief Spillable sequence of immutable columnar segments.
///
/// Lifecycle: Append() chunks in record order, then Finish() exactly once
/// (seals the open segment), then Pin()/Unpin() segments for reading or
/// Materialize() the whole table. Not thread-safe; callers serialize.
class SegmentStore {
 public:
  SegmentStore(Schema schema, SegmentStoreOptions options);

  /// Spill files are scratch owned by this store; the destructor deletes
  /// them (and the spill directory, if it emptied out).
  ~SegmentStore();

  SegmentStore(const SegmentStore&) = delete;
  SegmentStore& operator=(const SegmentStore&) = delete;

  /// Spill and residency traffic of one store instance. The same numbers
  /// feed the process-wide segstore.* metrics; tests read them here so they
  /// are not polluted by other stores in the process.
  struct Stats {
    uint64_t segments_sealed = 0;
    uint64_t spill_writes = 0;        ///< segment files written (first evictions)
    uint64_t spill_bytes_written = 0;
    uint64_t spill_reads = 0;         ///< segment loads from disk (Pin misses)
    uint64_t spill_bytes_read = 0;
    uint64_t evictions = 0;           ///< residents dropped (incl. re-evictions)
    uint64_t resident_bytes_peak = 0;
  };

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_segments() const { return segments_.size(); }
  const Stats& stats() const { return stats_; }
  uint64_t resident_bytes() const { return resident_bytes_; }

  /// First global row index of segment `i` (segments partition [0,
  /// num_rows) in order).
  size_t segment_base_row(size_t i) const { return segments_[i].base_row; }
  size_t segment_num_rows(size_t i) const { return segments_[i].rows; }
  bool segment_resident(size_t i) const {
    return segments_[i].table.has_value();
  }

  /// \brief Appends the kept slots of a decoded chunk (keep == nullptr
  /// keeps all), sealing and possibly spilling when the open segment fills.
  Status Append(const TableChunk& chunk,
                const std::vector<uint8_t>* keep = nullptr);

  /// \brief Seals the open segment (if non-empty) and enforces the budget.
  /// Must be called once, after the last Append and before any Pin.
  Status Finish();

  /// \brief Returns segment `i` resident, loading it from its spill file if
  /// needed, and holds it resident until the matching Unpin. Pins nest.
  Result<const Table*> Pin(size_t i);

  /// \brief Releases a pin and re-enforces the budget (a reloaded segment
  /// over budget is dropped again; its spill file already exists).
  Status Unpin(size_t i);

  /// \brief Deterministic in-order assembly of every segment into `out`
  /// (column-to-column appends; equals the table a plain ReadCsv builds).
  Status Materialize(Table* out);

 private:
  struct Segment {
    size_t base_row = 0;
    size_t rows = 0;
    uint64_t bytes = 0;          ///< byte_size at seal time (stable: immutable)
    std::optional<Table> table;  ///< resident copy; nullopt when evicted
    bool on_disk = false;        ///< spill file written (write-once)
    int pins = 0;
    std::string path;
  };

  Status SealOpen();
  Status EnforceBudget();
  Status SpillSegment(Segment* seg);
  Status LoadSegment(Segment* seg);
  void PublishGauges();

  Schema schema_;
  SegmentStoreOptions options_;
  Table open_;              ///< the one mutable segment, appended into
  uint64_t open_bytes_ = 0; ///< open_.byte_size(), cached per Append
  std::vector<Segment> segments_;
  size_t num_rows_ = 0;
  uint64_t resident_bytes_ = 0;  ///< sealed residents + open segment
  bool finished_ = false;
  Stats stats_;
};

}  // namespace dq

#endif  // DQ_TABLE_SEGMENT_STORE_H_
