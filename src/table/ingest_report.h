// IngestReport: the structured quarantine record of one CSV ingestion.
//
// Robust ingestion of imperfect operational extracts is the gate every
// measurement capability sits behind (the paper's sec. 5-6 workflow points
// the auditor at real, dirty tables). Instead of dying on the first
// malformed record, the lenient reader (CsvErrorPolicy::kSkipAndReport)
// quarantines each bad record here with its position, error kind and raw
// text — the data quality tool auditing its own input. dqaudit/dqgen print
// the summary and can dump the full report as JSON (--ingest-report).

#ifndef DQ_TABLE_INGEST_REPORT_H_
#define DQ_TABLE_INGEST_REPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "table/csv_parser.h"

namespace dq {

/// \brief One quarantined record.
struct IngestError {
  /// 1-based line the record starts on (quoted fields may span lines).
  size_t line = 0;
  /// 1-based byte offset of the offending character within the record's
  /// raw text; 0 when the whole record is at fault (arity, bad values).
  size_t column = 0;
  CsvErrorKind kind = CsvErrorKind::kBadValue;
  /// Human-readable detail ("expected 4 fields, got 2", parse failure...).
  std::string message;
  /// Raw record text, truncated to kMaxRawBytes.
  std::string raw;
};

/// \brief Outcome of one ReadCsv pass: throughput counters plus the
/// quarantine list (empty in strict mode unless the read failed).
struct IngestReport {
  /// Raw-text bytes a quarantined record keeps at most.
  static constexpr size_t kMaxRawBytes = 200;

  size_t records_total = 0;        ///< data records seen (header excluded)
  size_t records_kept = 0;         ///< records decoded into table rows
  size_t records_quarantined = 0;  ///< records in `errors`
  size_t bytes_read = 0;
  double parse_ms = 0.0;
  int threads_used = 1;
  std::vector<IngestError> errors;

  bool HasErrors() const { return !errors.empty(); }

  /// \brief Number of quarantined records of one kind.
  size_t CountOf(CsvErrorKind kind) const;

  /// \brief One-line summary, e.g.
  /// "quarantined 4 of 34 records (arity-mismatch 1, bad-value 1, ...)".
  std::string Summary() const;

  /// \brief Per-error listing ("line 7: stray-quote: ...") for terminals.
  std::string RenderText() const;

  /// \brief Full report as a JSON object (schema in docs/FORMATS.md).
  std::string ToJson() const;

  /// \brief Writes ToJson() to `path`.
  Status WriteJsonFile(const std::string& path) const;
};

/// \brief "line L, column C: kind: message" — the strict-mode Status text.
std::string FormatIngestError(const IngestError& error);

}  // namespace dq

#endif  // DQ_TABLE_INGEST_REPORT_H_
