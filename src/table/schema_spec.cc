#include "table/schema_spec.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "table/date.h"

namespace dq {

Result<Schema> ParseSchemaSpec(std::istream* in) {
  Schema schema;
  std::string line;
  size_t line_no = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;

    std::istringstream ls{std::string(trimmed)};
    std::string name, type;
    ls >> name >> type;
    if (name.empty() || type.empty()) {
      return Status::InvalidArgument("schema spec line " +
                                     std::to_string(line_no) +
                                     ": expected '<name> <type> ...'");
    }
    Status added;
    if (type == "nominal") {
      std::string cats;
      ls >> cats;
      auto categories = SplitString(cats, ',');
      added = schema.AddNominal(name, std::move(categories));
    } else if (type == "numeric") {
      double lo = 0, hi = 0;
      ls >> lo >> hi;
      if (!ls) {
        return Status::InvalidArgument("schema spec line " +
                                       std::to_string(line_no) +
                                       ": numeric needs '<min> <max>'");
      }
      added = schema.AddNumeric(name, lo, hi);
    } else if (type == "date") {
      std::string lo_text, hi_text;
      ls >> lo_text >> hi_text;
      auto lo = ParseDate(lo_text);
      auto hi = ParseDate(hi_text);
      if (!lo.ok() || !hi.ok()) {
        return Status::InvalidArgument(
            "schema spec line " + std::to_string(line_no) +
            ": date needs '<YYYY-MM-DD> <YYYY-MM-DD>'");
      }
      added = schema.AddDate(name, *lo, *hi);
    } else {
      return Status::InvalidArgument("schema spec line " +
                                     std::to_string(line_no) +
                                     ": unknown type '" + type + "'");
    }
    if (!added.ok()) {
      return Status::InvalidArgument("schema spec line " +
                                     std::to_string(line_no) + ": " +
                                     added.message());
    }
  }
  if (schema.num_attributes() == 0) {
    return Status::InvalidArgument("schema spec defines no attributes");
  }
  return schema;
}

Result<Schema> ParseSchemaSpecFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot open '" + path + "' for reading");
  return ParseSchemaSpec(&f);
}

std::string FormatSchemaSpec(const Schema& schema) {
  std::string out;
  for (const AttributeDef& attr : schema.attributes()) {
    out += attr.name;
    switch (attr.type) {
      case DataType::kNominal:
        out += " nominal " + JoinStrings(attr.categories, ",");
        break;
      case DataType::kNumeric:
        out += " numeric " + FormatDouble(attr.numeric_min) + " " +
               FormatDouble(attr.numeric_max);
        break;
      case DataType::kDate:
        out += " date " + FormatDate(attr.date_min) + " " +
               FormatDate(attr.date_max);
        break;
    }
    out += "\n";
  }
  return out;
}

}  // namespace dq
