// Schema: attribute definitions with explicit domain ranges.
//
// The test data generator (sec. 4.1) requires "a schema for the target
// relation with domain ranges for each attribute": nominal attributes carry
// a closed category list, numeric and date attributes carry inclusive
// bounds. All attributes are nullable (TDG-formulae reason about isnull /
// isnotnull explicitly).

#ifndef DQ_TABLE_SCHEMA_H_
#define DQ_TABLE_SCHEMA_H_

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "table/value.h"

namespace dq {

/// \brief Transparent string hash so category lookups work directly on
/// string_view fields without materializing a std::string key.
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

/// \brief One attribute of the target relation.
struct AttributeDef {
  std::string name;
  DataType type = DataType::kNominal;

  /// Nominal domain: category spellings; a cell stores an index into this.
  std::vector<std::string> categories;

  /// Spelling -> code lookup over `categories`, maintained by
  /// Schema::AddNominal so CategoryCode is O(1) on the ingest hot path
  /// instead of a linear scan per cell. Heterogeneous: find() accepts a
  /// string_view.
  std::unordered_map<std::string, int32_t, TransparentStringHash,
                     std::equal_to<>>
      category_index;

  /// Numeric domain: inclusive range.
  double numeric_min = 0.0;
  double numeric_max = 1.0;

  /// Date domain: inclusive day-count range.
  int32_t date_min = 0;
  int32_t date_max = 0;

  /// \brief Number of distinct domain values (numeric counts as unbounded;
  /// returns 0 for numeric).
  size_t DomainSize() const;

  /// \brief True if `v` is null or lies inside this attribute's domain.
  bool InDomain(const Value& v) const;
};

/// \brief Ordered list of attributes with name lookup.
class Schema {
 public:
  Schema() = default;

  /// \brief Appends a nominal attribute with the given category list.
  /// Fails on duplicate attribute names, empty/duplicate categories.
  Status AddNominal(const std::string& name,
                    std::vector<std::string> categories);

  /// \brief Appends a numeric attribute with inclusive range [min, max].
  Status AddNumeric(const std::string& name, double min, double max);

  /// \brief Appends a date attribute with inclusive range (day counts).
  Status AddDate(const std::string& name, int32_t min_days, int32_t max_days);

  size_t num_attributes() const { return attrs_.size(); }
  const AttributeDef& attribute(size_t i) const { return attrs_.at(i); }
  const std::vector<AttributeDef>& attributes() const { return attrs_; }

  /// \brief Index of the attribute named `name`.
  Result<int> IndexOf(const std::string& name) const;

  /// \brief Bytes held by the schema's string pool: attribute names and
  /// nominal category spellings (payload bytes plus the fixed per-entry
  /// std::string footprint — logical sizes, deterministic across
  /// allocators). Tables report this as part of their residency: nominal
  /// columns store dictionary codes whose spellings live here.
  size_t string_pool_bytes() const;

  /// \brief Category code of `category` within nominal attribute `attr`.
  Result<int32_t> CategoryCode(int attr, const std::string& category) const;

  /// \brief Renders a cell using this schema's category spellings; nulls
  /// render as `null_token`.
  std::string ValueToString(int attr, const Value& v,
                            const std::string& null_token = "?") const;

  /// \brief Parses a cell; `null_token` maps to Value::Null().
  Result<Value> ParseValue(int attr, const std::string& text,
                           const std::string& null_token = "?") const;

 private:
  Status CheckNewName(const std::string& name) const;

  std::vector<AttributeDef> attrs_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace dq

#endif  // DQ_TABLE_SCHEMA_H_
