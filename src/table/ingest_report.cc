#include "table/ingest_report.h"

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace dq {

namespace {

constexpr std::array<CsvErrorKind, 5> kAllKinds = {
    CsvErrorKind::kUnterminatedQuote, CsvErrorKind::kStrayQuote,
    CsvErrorKind::kArityMismatch, CsvErrorKind::kBadValue,
    CsvErrorKind::kBadHeader};

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

size_t IngestReport::CountOf(CsvErrorKind kind) const {
  size_t n = 0;
  for (const IngestError& e : errors) {
    if (e.kind == kind) ++n;
  }
  return n;
}

std::string IngestReport::Summary() const {
  std::ostringstream os;
  os << "quarantined " << records_quarantined << " of " << records_total
     << " records";
  if (records_quarantined > 0) {
    os << " (";
    bool first = true;
    for (CsvErrorKind kind : kAllKinds) {
      const size_t n = CountOf(kind);
      if (n == 0) continue;
      if (!first) os << ", ";
      first = false;
      os << CsvErrorKindToString(kind) << ' ' << n;
    }
    os << ')';
  }
  return os.str();
}

std::string IngestReport::RenderText() const {
  std::ostringstream os;
  for (const IngestError& e : errors) {
    os << "  " << FormatIngestError(e) << '\n';
  }
  return os.str();
}

std::string IngestReport::ToJson() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"records_total\": " << records_total << ",\n";
  os << "  \"records_kept\": " << records_kept << ",\n";
  os << "  \"records_quarantined\": " << records_quarantined << ",\n";
  os << "  \"bytes_read\": " << bytes_read << ",\n";
  char ms[64];
  std::snprintf(ms, sizeof(ms), "%.3f", parse_ms);
  os << "  \"parse_ms\": " << ms << ",\n";
  os << "  \"threads_used\": " << threads_used << ",\n";
  os << "  \"counts\": {";
  bool first = true;
  for (CsvErrorKind kind : kAllKinds) {
    // Every kind appears, zero or not: consumers can key on a stable set.
    const size_t n = CountOf(kind);
    if (!first) os << ", ";
    first = false;
    os << '"' << CsvErrorKindToString(kind) << "\": " << n;
  }
  os << "},\n";
  os << "  \"errors\": [";
  for (size_t i = 0; i < errors.size(); ++i) {
    const IngestError& e = errors[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"line\": " << e.line << ", \"column\": " << e.column
       << ", \"kind\": \"" << CsvErrorKindToString(e.kind)
       << "\", \"message\": \"" << EscapeJson(e.message) << "\", \"raw\": \""
       << EscapeJson(e.raw) << "\"}";
  }
  os << (errors.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
  return os.str();
}

Status IngestReport::WriteJsonFile(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot open '" + path + "' for writing");
  f << ToJson();
  if (!f) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

std::string FormatIngestError(const IngestError& error) {
  std::ostringstream os;
  os << "line " << error.line;
  if (error.column > 0) os << ", column " << error.column;
  os << ": " << CsvErrorKindToString(error.kind) << ": " << error.message;
  return os.str();
}

}  // namespace dq
