#include "table/value.h"

#include <cassert>

#include "common/strings.h"
#include "table/date.h"

namespace dq {

const char* DataTypeToString(DataType t) {
  switch (t) {
    case DataType::kNominal:
      return "nominal";
    case DataType::kNumeric:
      return "numeric";
    case DataType::kDate:
      return "date";
  }
  return "unknown";
}

bool Value::StrictEquals(const Value& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull:
      return true;
    case Kind::kNominal:
    case Kind::kDate:
      return cat_ == other.cat_;
    case Kind::kNumeric:
      return num_ == other.num_;
  }
  return false;
}

int Value::Compare(const Value& other) const {
  assert(!is_null() && !other.is_null());
  assert(!is_nominal() && !other.is_nominal());
  double a = OrderedValue();
  double b = other.OrderedValue();
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

std::string Value::ToDebugString() const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kNominal:
      return "#" + std::to_string(cat_);
    case Kind::kNumeric:
      return FormatDouble(num_);
    case Kind::kDate:
      return FormatDate(cat_);
  }
  return "?";
}

}  // namespace dq
