// Low-level streaming RFC-4180 tokenizer: bytes -> raw records -> fields.
//
// Layering: CsvRecordReader scans the input stream in fixed-size chunks and
// yields one raw record at a time. The scan is two-stage: a SIMD pass
// (csv_scan.h) classifies each chunk into a structural index — one bit per
// byte, set at separators, quotes and record terminators — and the
// quote-aware state machine then advances only at the set bits, bulk-
// appending the plain-content runs in between. Quoted fields may span
// record terminators (LF, CRLF or lone CR) and memory use is bounded by
// the chunk size plus the largest single record, independent of file size.
// SplitCsvRecord then turns a raw record into its fields or a typed,
// position-annotated error. The schema-aware layer in table/csv.h builds
// Tables and IngestReports on top of these two primitives.

#ifndef DQ_TABLE_CSV_PARSER_H_
#define DQ_TABLE_CSV_PARSER_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace dq {

/// \brief What is wrong with one ingested CSV record.
enum class CsvErrorKind {
  kUnterminatedQuote,  ///< a quoted field is still open at end of input
  kStrayQuote,         ///< quote inside an unquoted field or after a close
  kArityMismatch,      ///< field count differs from the schema
  kBadValue,           ///< a field does not parse into its attribute domain
  kBadHeader,          ///< header row malformed or not matching the schema
};

/// \brief Stable kebab-case spelling ("stray-quote", ...) used in reports.
const char* CsvErrorKindToString(CsvErrorKind kind);

/// \brief One raw record: the bytes between two unquoted record terminators
/// (terminator stripped) plus the 1-based line it starts on.
struct RawCsvRecord {
  std::string text;
  size_t line = 1;
};

/// \brief Field-split failure: error kind plus the 1-based byte offset of
/// the offending character within the record's text (for quoted fields the
/// record may span lines, so the offset is relative to the record start).
struct CsvFieldError {
  CsvErrorKind kind = CsvErrorKind::kStrayQuote;
  size_t column = 0;
};

/// \brief Splits a raw record into fields honoring double-quote quoting
/// ("" is a literal quote inside a quoted field). Returns false and fills
/// `error` on a stray quote (mid-field, or trailing a closing quote) or an
/// unterminated quoted field.
bool SplitCsvRecord(std::string_view text, char separator,
                    std::vector<std::string>* fields, CsvFieldError* error);

/// \brief Zero-copy variant of SplitCsvRecord for the decode hot path: the
/// fields come back as views. For a quote-free record (the common case)
/// they point straight into `text`; a record with quotes is unescaped into
/// `storage` and the views point there. Either way the views are valid
/// until `text` or `storage` is next modified. Error behavior (and the
/// resulting field sequence) is identical to SplitCsvRecord.
bool SplitCsvRecordViews(std::string_view text, char separator,
                         std::vector<std::string_view>* views,
                         std::vector<std::string>* storage,
                         CsvFieldError* error);

/// \brief Pulls raw records out of a stream in fixed-size chunks.
///
/// A UTF-8 byte-order mark at the start of the stream is skipped. LF, CRLF
/// and lone CR all terminate a record (normalized away); newlines inside
/// quoted fields are content and kept verbatim. A terminator at end of
/// input does not open a final empty record, so `a\n` is one record while
/// `a\n\n` is two (the second empty).
class CsvRecordReader {
 public:
  CsvRecordReader(std::istream* in, char separator, size_t chunk_bytes);

  /// \brief Reads the next record into `out`; false at end of input.
  bool Next(RawCsvRecord* out);

  /// \brief Total bytes consumed so far (including any skipped BOM).
  size_t bytes_read() const { return bytes_read_; }

 private:
  /// Refills the chunk buffer and rebuilds its structural index; false at
  /// end of stream.
  bool Refill();

  /// First structural position (separator, quote, CR or LF) at or after
  /// `from` in the current chunk; len_ when the rest is plain content.
  size_t NextStructural(size_t from) const;

  std::istream* in_;
  char sep_;
  std::vector<char> buf_;
  /// Structural index of buf_[0, len_): one bit per byte, set at
  /// separators, quotes and record terminators (csv_scan.h). Rebuilt by
  /// Refill with one SIMD pass; Next() walks only the set bits.
  std::vector<uint64_t> structural_;
  size_t pos_ = 0;
  size_t len_ = 0;
  size_t line_ = 1;
  size_t bytes_read_ = 0;
  bool at_start_ = true;
};

}  // namespace dq

#endif  // DQ_TABLE_CSV_PARSER_H_
