// Table: columnar (SoA) in-memory relation over a Schema.
//
// Storage is one typed dense vector per attribute — double for numeric,
// int32_t dictionary codes for nominal, int32_t day counts for date — plus
// a per-column null bitmap (bit set = cell is null). The row-major API the
// rest of the pipeline grew up with (cell()/row()/AppendRow) is preserved
// as a thin materialization layer: cell() rebuilds a tagged Value from the
// column payload, row() materializes a std::vector<Value>. Hot paths read
// the typed column accessors (is_null/numeric_at/code_at/ordered_at or the
// whole-column spans) and never touch Value at all.
//
// Null payload convention (what the typed vectors hold for null cells):
// numeric columns store quiet_NaN, nominal columns store -1, date columns
// store 0. The bitmap is authoritative; the sentinels exist so encoders
// can hand out raw column pointers (NaN = missing, -1 = missing) without a
// per-cell bitmap test.

#ifndef DQ_TABLE_TABLE_H_
#define DQ_TABLE_TABLE_H_

#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/result.h"
#include "table/schema.h"
#include "table/value.h"

namespace dq {

using Row = std::vector<Value>;

/// \brief A batch of decoded records in columnar form, ready for a bulk
/// append. Producers that already work record-at-a-time (the CSV decode
/// workers) scatter typed cells into a chunk slot; AppendChunk then moves
/// whole columns into the table in one pass per attribute.
///
/// Slots start out null after Reset(); Set() overwrites one cell. Cells
/// must be null or match the attribute's type; domains are the caller's
/// contract (same as Table::AppendRowUnchecked).
class TableChunk {
 public:
  TableChunk() = default;
  explicit TableChunk(const Schema& schema) { Attach(schema); }

  /// \brief Binds the chunk to a schema (allocates one typed column per
  /// attribute). Must be called before Reset/Set.
  void Attach(const Schema& schema);

  /// \brief Resizes to `rows` slots, all null. Reuses column capacity.
  void Reset(size_t rows);

  size_t num_rows() const { return num_rows_; }
  size_t num_attributes() const { return cols_.size(); }

  /// \brief Writes one cell (null or type-matching) into slot `row`.
  void Set(size_t row, size_t attr, const Value& v);

  /// \brief Materializes slot `row` as tagged Values (the streaming-ingest
  /// reservoir sampler reads decoded records straight off the chunk,
  /// before they reach any table).
  Row MaterializeRow(size_t row) const;

 private:
  friend class Table;
  // The dqcol reader fills chunk columns by bulk copy from the file's
  // column payloads (table/columnar.h) instead of per-cell Set calls.
  friend class ColumnarCodec;

  struct Column {
    DataType type = DataType::kNominal;
    std::vector<double> num;     ///< numeric payloads (NaN when null)
    std::vector<int32_t> code;   ///< nominal codes / date days
    std::vector<uint8_t> null_;  ///< 1 = null (byte-wide: chunks are small)
  };

  std::vector<Column> cols_;
  size_t num_rows_ = 0;
};

/// \brief In-memory relation: a Schema plus typed value columns.
///
/// Rows are validated against the schema on AppendRow; cells are null or
/// in-domain by construction.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_attributes() const { return schema_.num_attributes(); }

  /// \brief Appends a row after checking arity and per-cell domains.
  Status AppendRow(const Row& row);

  /// \brief Appends without domain validation; for internal producers that
  /// guarantee in-domain values (generator hot path). Cells must still be
  /// null or type-matching — the typed columns cannot hold a mismatched
  /// kind (enforced by DQ_DCHECK in debug builds).
  void AppendRowUnchecked(const Row& row);

  /// \brief Column-to-column copy of one row of `src` (same schema); the
  /// fast path for split/pollution row shuffling — no Value materialization.
  void AppendRowFrom(const Table& src, size_t src_row);

  /// \brief Bulk append of a decoded chunk. When `keep` is non-null only
  /// slots with keep[i] != 0 land in the table (in slot order); quarantined
  /// CSV records are dropped this way without re-packing the chunk.
  void AppendChunk(const TableChunk& chunk,
                   const std::vector<uint8_t>* keep = nullptr);

  /// \brief Column-to-column bulk append of every row of `src` (same
  /// schema); the deterministic in-order assembly path segment stores use
  /// to materialize a full table from sealed segments.
  void AppendFrom(const Table& src);

  /// \brief Materializes row `i` as tagged Values. Compat layer: new code
  /// should read the typed accessors instead.
  Row row(size_t i) const;

  /// \brief Materializes cell (row, attr). Unchecked in Release
  /// (DQ_DCHECK'd in debug); see cell_at for the checked variant.
  Value cell(size_t row, size_t attr) const {
    DQ_DCHECK(row < num_rows_ && attr < cols_.size());
    const Column& c = cols_[attr];
    if (BitIsSet(c.nulls, row)) return Value::Null();
    switch (c.type) {
      case DataType::kNumeric:
        return Value::Numeric(c.num[row]);
      case DataType::kNominal:
        return Value::Nominal(c.code[row]);
      case DataType::kDate:
        return Value::Date(c.code[row]);
    }
    return Value::Null();
  }

  /// \brief Bounds-checked cell access for ingest paths and tests; throws
  /// std::out_of_range like the vector::at-based accessor it replaces.
  Value cell_at(size_t row, size_t attr) const;

  /// \brief Overwrites one cell (null or type-matching; domain unchecked).
  void SetCell(size_t row, size_t attr, const Value& v) {
    DQ_DCHECK(row < num_rows_ && attr < cols_.size());
    Column& c = cols_[attr];
    if (v.is_null()) {
      SetBit(&c.nulls, row);
      switch (c.type) {
        case DataType::kNumeric:
          c.num[row] = std::numeric_limits<double>::quiet_NaN();
          break;
        case DataType::kNominal:
          c.code[row] = -1;
          break;
        case DataType::kDate:
          c.code[row] = 0;
          break;
      }
      return;
    }
    ClearBit(&c.nulls, row);
    switch (c.type) {
      case DataType::kNumeric:
        DQ_DCHECK(v.is_numeric());
        c.num[row] = v.numeric();
        break;
      case DataType::kNominal:
        DQ_DCHECK(v.is_nominal());
        c.code[row] = v.nominal_code();
        break;
      case DataType::kDate:
        DQ_DCHECK(v.is_date());
        c.code[row] = v.date_days();
        break;
    }
  }

  // --- Typed column accessors (the hot path) -------------------------------

  bool is_null(size_t row, size_t attr) const {
    DQ_DCHECK(row < num_rows_ && attr < cols_.size());
    return BitIsSet(cols_[attr].nulls, row);
  }
  /// \brief Numeric payload (NaN when null). Numeric columns only.
  double numeric_at(size_t row, size_t attr) const {
    DQ_DCHECK(row < num_rows_ && cols_[attr].type == DataType::kNumeric);
    return cols_[attr].num[row];
  }
  /// \brief Nominal code / date day count (-1 / 0 when null).
  int32_t code_at(size_t row, size_t attr) const {
    DQ_DCHECK(row < num_rows_ && cols_[attr].type != DataType::kNumeric);
    return cols_[attr].code[row];
  }
  /// \brief Ordered axis of a numeric or date cell as a double; NaN when
  /// null (mirrors Value::OrderedValue with NaN for missing).
  double ordered_at(size_t row, size_t attr) const {
    DQ_DCHECK(row < num_rows_ && attr < cols_.size());
    const Column& c = cols_[attr];
    DQ_DCHECK(c.type != DataType::kNominal);
    if (c.type == DataType::kNumeric) return c.num[row];
    return BitIsSet(c.nulls, row) ? std::numeric_limits<double>::quiet_NaN()
                                  : static_cast<double>(c.code[row]);
  }

  /// \brief Whole-column spans. numeric_col: numeric attributes (NaN =
  /// null); code_col: nominal codes (-1 = null) or date day counts.
  const std::vector<double>& numeric_col(size_t attr) const {
    DQ_DCHECK(attr < cols_.size() && cols_[attr].type == DataType::kNumeric);
    return cols_[attr].num;
  }
  const std::vector<int32_t>& code_col(size_t attr) const {
    DQ_DCHECK(attr < cols_.size() && cols_[attr].type != DataType::kNumeric);
    return cols_[attr].code;
  }
  /// \brief Null bitmap words of a column (bit r set = cell r null).
  const std::vector<uint64_t>& null_words(size_t attr) const {
    DQ_DCHECK(attr < cols_.size());
    return cols_[attr].nulls;
  }

  // --- Mutation ------------------------------------------------------------

  /// \brief Removes one row; prefer RemoveRows for sweeps.
  void RemoveRow(size_t i) { RemoveRows({i}); }

  /// \brief Batched stable removal: `sorted_rows` must be ascending and
  /// in-range (duplicates tolerated). One compaction pass per column, so a
  /// sweep deleting m rows costs O(columns * n), not O(m * n).
  void RemoveRows(const std::vector<size_t>& sorted_rows);

  void Reserve(size_t n);
  void Clear();

  /// \brief Heap bytes held by the column payloads, null bitmaps and the
  /// schema's string pool (logical sizes, not capacities — deterministic
  /// across allocators). This is the residency figure memory budgets use.
  size_t byte_size() const;

  /// \brief Validates every cell against the schema (used by tests and
  /// after deserialization / unchecked bulk appends).
  Status Validate() const;

 private:
  // The segment store serializes column payloads verbatim to its spill
  // files and rebuilds them on load; it is the table's paging layer, so it
  // sees the raw columns instead of a public raw-mutation API. The dqcol
  // codec (table/columnar.h) is the interchange-format sibling of that
  // path and reads/writes the same raw columns.
  friend class SegmentStore;
  friend class ColumnarCodec;

  struct Column {
    DataType type = DataType::kNominal;
    std::vector<double> num;      ///< kNumeric payloads (NaN when null)
    std::vector<int32_t> code;    ///< kNominal codes / kDate day counts
    std::vector<uint64_t> nulls;  ///< bit r set = cell r is null
  };

  static bool BitIsSet(const std::vector<uint64_t>& bits, size_t i) {
    return (bits[i >> 6] >> (i & 63)) & 1u;
  }
  static void SetBit(std::vector<uint64_t>* bits, size_t i) {
    (*bits)[i >> 6] |= uint64_t{1} << (i & 63);
  }
  static void ClearBit(std::vector<uint64_t>* bits, size_t i) {
    (*bits)[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }
  /// Grows a bitmap to cover `rows` bits (new bits cleared).
  static void GrowBits(std::vector<uint64_t>* bits, size_t rows) {
    bits->resize((rows + 63) >> 6, 0);
  }

  void PushCell(Column* c, const Value& v);

  Schema schema_;
  std::vector<Column> cols_;
  size_t num_rows_ = 0;
};

}  // namespace dq

#endif  // DQ_TABLE_TABLE_H_
