// Table: row-major in-memory relation over a Schema.

#ifndef DQ_TABLE_TABLE_H_
#define DQ_TABLE_TABLE_H_

#include <vector>

#include "common/result.h"
#include "table/schema.h"
#include "table/value.h"

namespace dq {

using Row = std::vector<Value>;

/// \brief In-memory relation: a Schema plus rows of Values.
///
/// Rows are validated against the schema on AppendRow; cells are null or
/// in-domain by construction.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  size_t num_attributes() const { return schema_.num_attributes(); }

  /// \brief Appends a row after checking arity and per-cell domains.
  Status AppendRow(Row row);

  /// \brief Appends without validation; for internal producers that
  /// guarantee in-domain values (generator hot path).
  void AppendRowUnchecked(Row row) { rows_.push_back(std::move(row)); }

  const Row& row(size_t i) const { return rows_.at(i); }
  Row& mutable_row(size_t i) { return rows_.at(i); }
  const std::vector<Row>& rows() const { return rows_; }

  const Value& cell(size_t row, size_t attr) const { return rows_.at(row).at(attr); }
  void SetCell(size_t row, size_t attr, const Value& v) {
    rows_.at(row).at(attr) = v;
  }

  void RemoveRow(size_t i) { rows_.erase(rows_.begin() + static_cast<long>(i)); }
  void Reserve(size_t n) { rows_.reserve(n); }
  void Clear() { rows_.clear(); }

  /// \brief Validates every cell against the schema (used by tests and after
  /// deserialization).
  Status Validate() const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace dq

#endif  // DQ_TABLE_TABLE_H_
