#include "table/csv.h"

#include <fstream>
#include <functional>
#include <optional>
#include <ostream>
#include <utility>

#include "common/parallel.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "table/csv_parser.h"

namespace dq {

namespace {

bool NeedsQuoting(const std::string& field, char sep) {
  return field.find(sep) != std::string::npos ||
         field.find('"') != std::string::npos ||
         field.find('\n') != std::string::npos ||
         field.find('\r') != std::string::npos;
}

}  // namespace

std::string CsvQuote(const std::string& field, char sep) {
  if (!NeedsQuoting(field, sep)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

Status WriteCsv(const Table& table, std::ostream* out,
                const CsvOptions& options) {
  const Schema& schema = table.schema();
  if (options.write_header) {
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      if (a > 0) *out << options.separator;
      *out << CsvQuote(schema.attribute(a).name, options.separator);
    }
    *out << '\n';
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      if (a > 0) *out << options.separator;
      const Value& cell = table.cell(r, a);
      // Numeric cells use the shortest exact form, not the display
      // rendering: ValueToString rounds to 6 decimals, which would break
      // the bitwise write/read round trip.
      *out << CsvQuote(
          cell.is_numeric()
              ? FormatDoubleRoundTrip(cell.numeric())
              : schema.ValueToString(static_cast<int>(a), cell,
                                     options.null_token),
          options.separator);
    }
    *out << '\n';
  }
  if (!*out) return Status::IOError("stream write failed");
  return Status::OK();
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  // Binary mode: text mode would rewrite '\n' inside quoted fields on CRLF
  // platforms and corrupt the round trip.
  std::ofstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot open '" + path + "' for writing");
  return WriteCsv(table, &f, options);
}

namespace {

std::string TruncatedRaw(const std::string& text) {
  if (text.size() <= IngestReport::kMaxRawBytes) return text;
  return text.substr(0, IngestReport::kMaxRawBytes) + "...";
}

/// Outcome of decoding one raw record: kept, or a quarantine entry.
struct DecodedRecord {
  bool ok = false;
  IngestError error;
};

/// Raw record -> typed cells of chunk slot `slot`, fully validated against
/// the schema (so assembly can bulk-append unchecked). Runs on worker
/// threads: touches only its own chunk slot / output slot and const state.
/// A slot whose record fails decoding may hold a partial prefix of cells;
/// the keep mask drops it at AppendChunk time.
void DecodeRecord(const Schema& schema, const CsvOptions& options,
                  const RawCsvRecord& rec, std::vector<std::string>* fields,
                  TableChunk* chunk, size_t slot, DecodedRecord* out) {
  out->error.line = rec.line;
  CsvFieldError ferr;
  if (!SplitCsvRecord(rec.text, options.separator, fields, &ferr)) {
    out->error.kind = ferr.kind;
    out->error.column = ferr.column;
    out->error.message = ferr.kind == CsvErrorKind::kUnterminatedQuote
                             ? "quoted field never closed"
                             : "quote inside an unquoted field or after a "
                               "closing quote";
    out->error.raw = TruncatedRaw(rec.text);
    return;
  }
  if (fields->size() != schema.num_attributes()) {
    out->error.kind = CsvErrorKind::kArityMismatch;
    out->error.message = "expected " +
                         std::to_string(schema.num_attributes()) +
                         " fields, got " + std::to_string(fields->size());
    out->error.raw = TruncatedRaw(rec.text);
    return;
  }
  for (size_t a = 0; a < fields->size(); ++a) {
    auto value = schema.ParseValue(static_cast<int>(a), (*fields)[a],
                                   options.null_token);
    const AttributeDef& def = schema.attribute(a);
    if (value.ok() && !def.InDomain(*value)) {
      value = Status::InvalidArgument("value '" + (*fields)[a] +
                                      "' outside the attribute's domain");
    }
    if (!value.ok()) {
      out->error.kind = CsvErrorKind::kBadValue;
      out->error.message =
          "attribute '" + def.name + "': " + value.status().message();
      out->error.raw = TruncatedRaw(rec.text);
      return;
    }
    chunk->Set(slot, a, *value);
  }
  out->ok = true;
}

Status CheckHeader(const Schema& schema, const CsvOptions& options,
                   const RawCsvRecord& rec, IngestReport* report) {
  auto fail = [&](size_t column, std::string message) {
    IngestError err;
    err.line = rec.line;
    err.column = column;
    err.kind = CsvErrorKind::kBadHeader;
    err.message = std::move(message);
    err.raw = TruncatedRaw(rec.text);
    Status status = Status::IOError(FormatIngestError(err));
    report->errors.push_back(std::move(err));
    return status;
  };
  std::vector<std::string> fields;
  CsvFieldError ferr;
  if (!SplitCsvRecord(rec.text, options.separator, &fields, &ferr)) {
    return fail(ferr.column, std::string("malformed header (") +
                                 CsvErrorKindToString(ferr.kind) + ")");
  }
  if (fields.size() != schema.num_attributes()) {
    return fail(0, "header arity mismatch at line " +
                       std::to_string(rec.line));
  }
  for (size_t a = 0; a < fields.size(); ++a) {
    if (fields[a] != schema.attribute(a).name) {
      return fail(0, "header field '" + fields[a] +
                         "' does not match schema attribute '" +
                         schema.attribute(a).name + "'");
    }
  }
  return Status::OK();
}

/// Shared streaming driver behind ReadCsv and ReadCsvChunks: tokenize,
/// batch-parallel decode, serial quarantine bookkeeping in record order,
/// then hand each batch (chunk + keep mask) to `deliver`. The delivered
/// sequence is identical whichever consumer sits on the other end.
Status ReadCsvDriver(const Schema& schema, std::istream* in,
                     const CsvOptions& options, IngestReport* rep,
                     const std::function<Status(const TableChunk&,
                                                const std::vector<uint8_t>&)>&
                         deliver) {
  obs::Span span("ingest");
  *rep = IngestReport();

  const int threads = ResolveThreadCount(options.num_threads);
  rep->threads_used = threads;
  // One pool for the whole read (a pool per batch would respawn workers).
  std::optional<ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);

  CsvRecordReader reader(in, options.separator, options.chunk_bytes);
  std::vector<RawCsvRecord> batch;
  std::vector<DecodedRecord> decoded;
  std::vector<std::vector<std::string>> scratch;  // per-slot field buffers
  TableChunk chunk(schema);  // columnar batch staging, reused across flushes
  std::vector<uint8_t> keep;

  auto finish = [&](Status status) {
    rep->bytes_read = reader.bytes_read();
    // parse_ms is a view of the "ingest" span measurement; the span itself
    // closes (and records) when the driver returns.
    rep->parse_ms = span.ElapsedMs();
    static obs::Counter* const total = obs::GetCounter("ingest.records_total");
    static obs::Counter* const kept = obs::GetCounter("ingest.records_kept");
    static obs::Counter* const quarantined =
        obs::GetCounter("ingest.records_quarantined");
    static obs::Counter* const bytes = obs::GetCounter("ingest.bytes_read");
    total->Add(rep->records_total);
    kept->Add(rep->records_kept);
    quarantined->Add(rep->records_quarantined);
    bytes->Add(rep->bytes_read);
    return status;
  };

  auto flush_batch = [&]() -> Status {
    if (batch.empty()) return Status::OK();
    decoded.clear();
    decoded.resize(batch.size());
    scratch.resize(batch.size());
    chunk.Reset(batch.size());
    // Workers decode straight into disjoint chunk slots — no Row
    // materialization between the parser and the consumer's columns.
    auto decode_one = [&](size_t i) {
      DecodeRecord(schema, options, batch[i], &scratch[i], &chunk, i,
                   &decoded[i]);
    };
    if (pool.has_value()) {
      pool->ParallelFor(batch.size(), decode_one);
    } else {
      for (size_t i = 0; i < batch.size(); ++i) decode_one(i);
    }
    // Serial bookkeeping in record order (quarantine entries land in the
    // same sequence for every thread count), then one bulk delivery of the
    // kept slots. Under kFail, slots after the failing record stay unkept —
    // the consumer holds exactly the records before the error.
    keep.assign(batch.size(), 0);
    Status failed = Status::OK();
    for (size_t i = 0; i < batch.size(); ++i) {
      ++rep->records_total;
      if (decoded[i].ok) {
        ++rep->records_kept;
        keep[i] = 1;
        continue;
      }
      ++rep->records_quarantined;
      rep->errors.push_back(std::move(decoded[i].error));
      if (options.on_error == CsvErrorPolicy::kFail) {
        failed = Status::IOError(FormatIngestError(rep->errors.back()));
        break;
      }
    }
    Status delivered = deliver(chunk, keep);
    if (!delivered.ok()) return delivered;  // sink failure aborts the read
    batch.clear();
    return failed;
  };

  RawCsvRecord rec;
  bool saw_header = !options.expect_header;
  // Blank records of a multi-attribute table are held back: trailing blank
  // lines are silently dropped at end of input, while interior blank lines
  // are real (arity-violating) records. For a single-attribute schema a
  // blank line IS a legitimate record (the empty string / an empty null
  // token), so it is never held back.
  std::vector<RawCsvRecord> pending_blanks;
  while (reader.Next(&rec)) {
    if (!saw_header) {
      saw_header = true;
      Status header = CheckHeader(schema, options, rec, rep);
      if (!header.ok()) return finish(std::move(header));
      continue;
    }
    if (rec.text.empty() && schema.num_attributes() > 1) {
      pending_blanks.push_back(rec);
      continue;
    }
    for (RawCsvRecord& blank : pending_blanks) {
      batch.push_back(std::move(blank));
    }
    pending_blanks.clear();
    batch.push_back(std::move(rec));
    if (batch.size() >= options.batch_records) {
      Status flushed = flush_batch();
      if (!flushed.ok()) return finish(std::move(flushed));
    }
  }
  Status flushed = flush_batch();
  if (!flushed.ok()) return finish(std::move(flushed));
  return finish(Status::OK());
}

}  // namespace

Result<Table> ReadCsv(const Schema& schema, std::istream* in,
                      const CsvOptions& options, IngestReport* report) {
  IngestReport local;
  IngestReport* rep = report != nullptr ? report : &local;
  Table table(schema);
  Status status = ReadCsvDriver(
      schema, in, options, rep,
      [&table](const TableChunk& chunk, const std::vector<uint8_t>& keep) {
        table.AppendChunk(chunk, &keep);
        return Status::OK();
      });
  obs::GetGauge("table.bytes")->Set(static_cast<double>(table.byte_size()));
  if (!status.ok()) return status;
  return table;
}

Status ReadCsvChunks(const Schema& schema, std::istream* in,
                     const CsvOptions& options, CsvChunkSink* sink,
                     IngestReport* report) {
  IngestReport local;
  IngestReport* rep = report != nullptr ? report : &local;
  return ReadCsvDriver(
      schema, in, options, rep,
      [sink](const TableChunk& chunk, const std::vector<uint8_t>& keep) {
        return sink->OnChunk(chunk, keep);
      });
}

Status ReadCsvFileChunks(const Schema& schema, const std::string& path,
                         const CsvOptions& options, CsvChunkSink* sink,
                         IngestReport* report) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot open '" + path + "' for reading");
  return ReadCsvChunks(schema, &f, options, sink, report);
}

Result<Table> ReadCsvFile(const Schema& schema, const std::string& path,
                          const CsvOptions& options, IngestReport* report) {
  // Binary mode: the parser normalizes CRLF/CR record terminators itself
  // and quoted embedded newlines must reach it unmodified.
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot open '" + path + "' for reading");
  return ReadCsv(schema, &f, options, report);
}

}  // namespace dq
